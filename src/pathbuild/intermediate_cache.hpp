// IntermediateCache: Firefox's alternative to AIA fetching.
//
// Firefox does not follow AIA URIs; instead it remembers intermediate
// certificates observed in previously validated chains and consults that
// cache when a server omits one (§5.1: "Firefox compensates by caching
// intermediate certificates"). The differential harness pre-seeds the
// cache by browsing compliant chains first, which reproduces finding
// I-4's Firefox column: cache-hit chains validate, cache-miss chains
// fail with an unknown-issuer error.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "x509/certificate.hpp"

namespace chainchaos::pathbuild {

class IntermediateCache {
 public:
  /// Remembers an intermediate (non-leaf, non-self-signed CA certs only;
  /// anything else is ignored, mirroring what browsers retain).
  void remember(const x509::CertPtr& cert);

  /// Remembers every eligible certificate in a chain.
  void remember_chain(const std::vector<x509::CertPtr>& chain);

  /// Candidates whose subject DN matches `issuer_dn`.
  std::vector<x509::CertPtr> find_by_subject(const asn1::Name& issuer_dn) const;

  std::size_t size() const { return by_fingerprint_.size(); }
  void clear();

 private:
  std::map<std::string, x509::CertPtr> by_fingerprint_;
  std::multimap<std::string, x509::CertPtr> by_subject_;
};

}  // namespace chainchaos::pathbuild
