// Fixed-width text table rendering for the bench binaries. Every
// regenerated paper table goes through this formatter so outputs are
// uniform and diffable across runs.
#pragma once

#include <string>
#include <vector>

namespace chainchaos::report {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);

  /// Renders with a title line, column rule, and padded cells.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1234 (12.3%)" — the paper's count-with-share cell format.
/// Zero-total cells render as "0 (n/a)".
std::string count_pct(std::uint64_t count, std::uint64_t total);

/// "12.3%" with one decimal; "n/a" when the denominator is zero.
std::string pct(double numerator, double denominator);

/// Integer with thousands separators ("12,087").
std::string with_commas(std::uint64_t value);

}  // namespace chainchaos::report
