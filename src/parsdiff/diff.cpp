#include "parsdiff/diff.hpp"

#include "lint/registry.hpp"
#include "parsdiff/profile.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::parsdiff {

namespace {

using lint::Rule;
using lint::Severity;

const std::vector<Rule>& pd_rule_table() {
  static const std::vector<Rule> rules = {
      {"PD-01", Severity::kWarn, "X.690 §10.1",
       "length-form leniency: profiles disagree on BER vs minimal-DER "
       "length octets"},
      {"PD-02", Severity::kWarn, "X.690 §11.1",
       "boolean-encoding leniency: non-canonical BOOLEAN accepted by "
       "some profiles"},
      {"PD-03", Severity::kError, "RFC 5280 §4.1.2.5",
       "time-syntax leniency: UTCTime/offset/fraction tolerance differs "
       "across profiles"},
      {"PD-04", Severity::kWarn, "X.680 §41, RFC 3629",
       "string leniency: legacy string tags or charset validation "
       "differs across profiles"},
      {"PD-05", Severity::kError, "X.690 §8.1",
       "trailing bytes after the Certificate SEQUENCE split the panel"},
      {"PD-06", Severity::kError, "RFC 5280 §4.2",
       "unknown critical extension: rejection requirement differs "
       "across profiles"},
      {"PD-07", Severity::kInfo, "(none)",
       "other divergence: the panel split on accept/reject for a cause "
       "outside the named classes"},
  };
  return rules;
}

/// "expected tag 0x18, found 0x17" and friends — the generic tag
/// mismatch that is really a time-leniency difference.
bool mentions_time_tag(std::string_view detail) {
  return detail.find("0x17") != std::string_view::npos ||
         detail.find("0x18") != std::string_view::npos;
}

}  // namespace

const std::vector<Rule>& pd_rules() {
  static const bool registered = [] {
    lint::register_rule_family(&pd_rule_table());
    return true;
  }();
  (void)registered;
  return pd_rule_table();
}

const Rule* find_pd_rule(std::string_view id) {
  for (const Rule& rule : pd_rules()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

std::string_view classify_error(std::string_view error_code,
                                std::string_view error_detail) {
  if (error_code == "x509.unknown_critical_ext") return "PD-06";
  if (error_code == "x509.trailing_bytes") return "PD-05";
  if (error_code == "der.bad_time") return "PD-03";
  if (error_code == "der.bad_string") return "PD-04";
  if (error_code == "der.bad_boolean") return "PD-02";
  if (error_code == "der.bad_length") return "PD-01";
  if (error_code == "der.unexpected_tag") {
    if (mentions_time_tag(error_detail)) return "PD-03";
    if (error_detail.find("string type") != std::string_view::npos) {
      return "PD-04";
    }
  }
  return "PD-07";
}

ChainDiff diff_chain(const std::vector<Bytes>& certs) {
  std::vector<BytesView> views(certs.begin(), certs.end());
  return diff_chain(views);
}

ChainDiff diff_chain(const std::vector<BytesView>& certs) {
  const std::vector<ProfileSpec>& panel = profiles();
  ChainDiff diff;
  diff.outcomes.reserve(panel.size());
  for (const ProfileSpec& spec : panel) {
    ProfileOutcome outcome;
    outcome.accepted = true;
    for (std::size_t i = 0; i < certs.size(); ++i) {
      auto parsed = x509::parse_certificate(certs[i], spec.profile);
      if (!parsed.ok()) {
        outcome.accepted = false;
        outcome.cert_index = i;
        outcome.error_code = parsed.error().code;
        outcome.error_detail = parsed.error().message;
        break;
      }
    }
    // Empty inputs: no blob for any profile to object to; the whole
    // panel trivially accepts.
    if (outcome.accepted) {
      ++diff.accept_count;
    } else {
      ++diff.reject_count;
    }
    diff.outcomes.push_back(std::move(outcome));
  }
  diff.discrepancy = diff.accept_count > 0 && diff.reject_count > 0;
  if (diff.discrepancy) {
    // First rejecting profile in registry order names the class; the
    // panel order is fixed, so the attribution is deterministic.
    for (const ProfileOutcome& outcome : diff.outcomes) {
      if (!outcome.accepted) {
        diff.pd_class =
            classify_error(outcome.error_code, outcome.error_detail);
        break;
      }
    }
  }
  return diff;
}

std::vector<Bytes> split_der_blobs(BytesView wire) {
  std::vector<Bytes> blobs;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t start = pos;
    std::size_t p = pos + 1;  // past the tag byte
    bool well_formed = p < wire.size();
    std::uint64_t length = 0;
    if (well_formed) {
      const std::uint8_t first = wire[p++];
      if (first < 0x80) {
        length = first;
      } else if (first == 0x80) {
        well_formed = false;  // indefinite length
      } else {
        const std::size_t octets = first & 0x7f;
        if (octets > 8 || p + octets > wire.size()) {
          well_formed = false;
        } else {
          for (std::size_t k = 0; k < octets; ++k) length = length << 8 | wire[p++];
        }
      }
    }
    if (!well_formed || length > wire.size() - p) {
      // Damaged header or overrunning length: the remainder is one
      // final blob, so every byte lands in exactly one unit.
      blobs.emplace_back(wire.begin() + static_cast<std::ptrdiff_t>(start),
                         wire.end());
      break;
    }
    pos = p + static_cast<std::size_t>(length);
    blobs.emplace_back(wire.begin() + static_cast<std::ptrdiff_t>(start),
                       wire.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  return blobs;
}

}  // namespace chainchaos::parsdiff
