#include "crypto/bigint.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace chainchaos::crypto {

BigInt::BigInt(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes(BytesView be) {
  BigInt out;
  out.limbs_.assign((be.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    // byte i (from the end) goes to limb i/4, shift (i%4)*8
    const std::size_t from_end = be.size() - 1 - i;
    out.limbs_[i / 4] |= static_cast<std::uint32_t>(be[from_end]) << (8 * (i % 4));
  }
  out.trim();
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  const auto bytes = hex_decode(padded);
  if (!bytes) throw std::invalid_argument("BigInt::from_hex: bad hex");
  return from_bytes(*bytes);
}

BigInt BigInt::random_with_bits(Rng& rng, int bits) {
  assert(bits >= 2);
  BigInt out;
  const int limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng.next());
  // Clear bits above `bits`, then force the top bit.
  const int top_bits = bits - 32 * (limbs - 1);
  if (top_bits < 32) {
    out.limbs_.back() &= (1u << top_bits) - 1;
  }
  out.limbs_.back() |= 1u << (top_bits - 1);
  out.trim();
  return out;
}

Bytes BigInt::to_bytes() const {
  if (limbs_.empty()) return Bytes{0};
  Bytes out;
  out.reserve(limbs_.size() * 4);
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const std::uint32_t limb = limbs_[i];
    out.push_back(static_cast<std::uint8_t>(limb >> 24));
    out.push_back(static_cast<std::uint8_t>(limb >> 16));
    out.push_back(static_cast<std::uint8_t>(limb >> 8));
    out.push_back(static_cast<std::uint8_t>(limb));
  }
  // Strip leading zeros but keep at least one byte.
  std::size_t first = 0;
  while (first + 1 < out.size() && out[first] == 0) ++first;
  return Bytes(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

Bytes BigInt::to_bytes_padded(std::size_t width) const {
  Bytes minimal = to_bytes();
  if (minimal.size() == 1 && minimal[0] == 0) minimal.clear();
  if (minimal.size() > width) {
    throw std::invalid_argument("BigInt::to_bytes_padded: value too wide");
  }
  Bytes out(width - minimal.size(), 0);
  append(out, minimal);
  return out;
}

std::string BigInt::to_hex() const {
  return hex_encode(to_bytes());
}

int BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const std::uint32_t top = limbs_.back();
  int bits = 32 * static_cast<int>(limbs_.size() - 1);
  for (int i = 31; i >= 0; --i) {
    if (top & (1u << i)) return bits + i + 1;
  }
  return bits;  // unreachable given trim()
}

bool BigInt::bit(int i) const {
  const std::size_t limb = static_cast<std::size_t>(i) / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t BigInt::low_u64() const {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigInt::compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  assert(*this >= o);
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) diff -= o.limbs_[i];
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (limbs_.empty() || o.limbs_.empty()) return BigInt{};
  BigInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + a * o.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::operator<<(int bits) const {
  if (limbs_.empty() || bits == 0) return *this;
  const int limb_shift = bits / 32;
  const int bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(int bits) const {
  const int limb_shift = bits / 32;
  const int bit_shift = bits % 32;
  if (static_cast<std::size_t>(limb_shift) >= limbs_.size()) return BigInt{};
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

void BigInt::divmod(const BigInt& num, const BigInt& den, BigInt& quot,
                    BigInt& rem) {
  if (den.is_zero()) throw std::domain_error("BigInt: division by zero");
  quot = BigInt{};
  rem = BigInt{};
  if (num < den) {
    rem = num;
    return;
  }

  // Single-limb divisor: plain short division.
  if (den.limbs_.size() == 1) {
    const std::uint64_t d = den.limbs_[0];
    quot.limbs_.assign(num.limbs_.size(), 0);
    std::uint64_t r = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (r << 32) | num.limbs_[i];
      quot.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      r = cur % d;
    }
    quot.trim();
    rem = BigInt(r);
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm D (base 2^32).
  const std::size_t n = den.limbs_.size();
  const std::size_t m = num.limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  for (std::uint32_t top = den.limbs_.back(); !(top & 0x80000000u); top <<= 1) {
    ++shift;
  }
  BigInt v = den << shift;
  BigInt u = num << shift;
  u.limbs_.resize(num.limbs_.size() + 1, 0);  // u has m+n+1 limbs

  quot.limbs_.assign(m + 1, 0);
  constexpr std::uint64_t kBase = std::uint64_t{1} << 32;

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q̂ from the top two limbs of the current remainder.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    std::uint64_t qhat = numerator / v.limbs_[n - 1];
    std::uint64_t rhat = numerator % v.limbs_[n - 1];
    while (qhat >= kBase ||
           qhat * v.limbs_[n - 2] > ((rhat << 32) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v.limbs_[n - 1];
      if (rhat >= kBase) break;
    }

    // D4: multiply-and-subtract u[j .. j+n] -= q̂ * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = qhat * v.limbs_[i] + carry;
      carry = product >> 32;
      const std::int64_t diff = static_cast<std::int64_t>(u.limbs_[i + j]) -
                                static_cast<std::int64_t>(product & 0xffffffffu) -
                                borrow;
      u.limbs_[i + j] = static_cast<std::uint32_t>(diff);
      borrow = (diff < 0) ? 1 : 0;
    }
    const std::int64_t diff = static_cast<std::int64_t>(u.limbs_[j + n]) -
                              static_cast<std::int64_t>(carry) - borrow;
    u.limbs_[j + n] = static_cast<std::uint32_t>(diff);

    // D5/D6: if we subtracted one time too many, add the divisor back.
    if (diff < 0) {
      --qhat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u.limbs_[i + j]) + v.limbs_[i] + add_carry;
        u.limbs_[i + j] = static_cast<std::uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u.limbs_[j + n] =
          static_cast<std::uint32_t>(u.limbs_[j + n] + add_carry);
    }
    quot.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  // D8: the remainder is the low n limbs of u, denormalized.
  u.limbs_.resize(n);
  u.trim();
  rem = u >> shift;
  quot.trim();
}

BigInt BigInt::operator%(const BigInt& m) const {
  BigInt q, r;
  divmod(*this, m, q, r);
  return r;
}

BigInt BigInt::operator/(const BigInt& d) const {
  BigInt q, r;
  divmod(*this, d, q, r);
  return q;
}

BigInt BigInt::mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(!m.is_zero());
  BigInt result(1);
  BigInt b = base % m;
  const int ebits = exp.bit_length();
  for (int i = 0; i < ebits; ++i) {
    if (exp.bit(i)) result = (result * b) % m;
    b = (b * b) % m;
  }
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = b;
    b = r;
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid over non-negative values, tracking coefficients with
  // explicit signs to stay within the unsigned BigInt.
  BigInt old_r = a % m, r = m;
  BigInt old_s(1), s{};
  bool old_s_neg = false, s_neg = false;

  while (!r.is_zero()) {
    BigInt q = old_r / r;

    BigInt next_r = old_r - q * r;
    old_r = r;
    r = next_r;

    // next_s = old_s - q * s (signed arithmetic emulated)
    BigInt qs = q * s;
    BigInt next_s;
    bool next_s_neg;
    if (old_s_neg == s_neg) {
      if (old_s >= qs) {
        next_s = old_s - qs;
        next_s_neg = old_s_neg;
      } else {
        next_s = qs - old_s;
        next_s_neg = !old_s_neg;
      }
    } else {
      next_s = old_s + qs;
      next_s_neg = old_s_neg;
    }
    old_s = s;
    old_s_neg = s_neg;
    s = next_s;
    s_neg = next_s_neg;
  }

  if (old_r != BigInt(1)) return BigInt{};  // not invertible
  BigInt inv = old_s % m;
  if (old_s_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

}  // namespace chainchaos::crypto
