#include "ca/ca_model.hpp"

#include <algorithm>

namespace chainchaos::ca {

const char* to_string(CaKind kind) {
  switch (kind) {
    case CaKind::kLetsEncrypt: return "Let's Encrypt";
    case CaKind::kDigicert: return "Digicert";
    case CaKind::kSectigo: return "Sectigo Limited";
    case CaKind::kZeroSsl: return "ZeroSSL";
    case CaKind::kGoGetSsl: return "GoGetSSL";
    case CaKind::kTaiwanCa: return "TAIWAN-CA";
    case CaKind::kCyberFolks: return "cyber_Folks S.A.";
    case CaKind::kTrustico: return "Trustico";
  }
  return "?";
}

CaCharacteristics characteristics_for(CaKind kind) {
  CaCharacteristics traits;
  switch (kind) {
    case CaKind::kLetsEncrypt:
      traits.automatic_certificate_management = true;  // ACME end to end
      traits.provides_fullchain_file = true;
      traits.provides_ca_bundle_file = true;
      traits.guide = InstallationGuide::kAllServers;
      break;
    case CaKind::kDigicert:
      traits.provides_fullchain_file = true;
      traits.provides_ca_bundle_file = true;
      traits.guide = InstallationGuide::kAllServers;
      break;
    case CaKind::kSectigo:
      traits.provides_ca_bundle_file = true;
      traits.provides_root_certificate = true;
      traits.guide = InstallationGuide::kApacheIisOnly;
      break;
    case CaKind::kZeroSsl:
      traits.automatic_certificate_management = true;
      traits.provides_ca_bundle_file = true;
      traits.guide = InstallationGuide::kApacheIisOnly;
      break;
    case CaKind::kGoGetSsl:
      traits.provides_ca_bundle_file = true;
      traits.provides_root_certificate = true;
      traits.bundle_in_compliant_order = false;  // ships reversed (§4.2)
      traits.guide = InstallationGuide::kApacheIisOnly;
      break;
    case CaKind::kTaiwanCa:
      traits.provides_ca_bundle_file = true;
      traits.omits_required_intermediate = true;  // Appendix C finding
      traits.guide = InstallationGuide::kNone;
      break;
    case CaKind::kCyberFolks:
      traits.provides_ca_bundle_file = true;
      traits.provides_root_certificate = true;
      traits.bundle_in_compliant_order = false;
      traits.guide = InstallationGuide::kNone;
      break;
    case CaKind::kTrustico:
      traits.provides_ca_bundle_file = true;
      traits.provides_root_certificate = true;
      traits.bundle_in_compliant_order = false;  // "users can rearrange"
      traits.guide = InstallationGuide::kNone;
      break;
  }
  return traits;
}

CaModel::CaModel(CaKind kind, const CaHierarchy* hierarchy)
    : kind_(kind),
      name_(to_string(kind)),
      traits_(characteristics_for(kind)),
      hierarchy_(hierarchy) {}

IssuedPackage CaModel::issue(const std::string& domain) const {
  IssuedPackage package;
  package.ca_name = name_;
  package.leaf = hierarchy_->issue_leaf(domain);
  package.certificate_file = {package.leaf};

  if (traits_.provides_fullchain_file) {
    package.fullchain_file = hierarchy_->compliant_chain(package.leaf);
  }

  if (traits_.provides_ca_bundle_file) {
    std::vector<x509::CertPtr> bundle = hierarchy_->bundle_ascending();
    if (traits_.omits_required_intermediate && bundle.size() > 1) {
      // TAIWAN-CA-style: drop the intermediate nearest the root, leaving
      // a hole no client can bridge without AIA.
      bundle.pop_back();
    }
    if (traits_.provides_root_certificate) {
      bundle.push_back(hierarchy_->root());
    }
    if (!traits_.bundle_in_compliant_order) {
      std::reverse(bundle.begin(), bundle.end());
    }
    package.ca_bundle_file = std::move(bundle);
  }
  return package;
}

std::vector<x509::CertPtr> CaModel::naive_admin_deployment(
    const IssuedPackage& package) const {
  if (!package.fullchain_file.empty()) {
    return package.fullchain_file;  // ready-made, deployed verbatim
  }
  // Leaf file + ca-bundle concatenated without reordering: the merge the
  // paper identified behind the reversed-sequence clusters.
  std::vector<x509::CertPtr> deployed = package.certificate_file;
  deployed.insert(deployed.end(), package.ca_bundle_file.begin(),
                  package.ca_bundle_file.end());
  return deployed;
}

}  // namespace chainchaos::ca
