// crypto_verify: proves the §5.12 crypto hot-path budget — Montgomery
// modexp must beat the schoolbook ladder by >= 3x on RSA-shaped inputs,
// and the sweep-wide verification memo must keep tallies byte-identical
// while it absorbs repeat (TBS, key, signature) work.
//
// Three measurements:
//
//   1. Micro: modexp ops/sec for BigInt::mod_pow_classic vs a cached
//      MontgomeryContext on 512-bit odd moduli with full-width
//      exponents (the private-key shape; the public e=65537 shape is
//      reported too but not gated — window exponentiation has less to
//      bite on there). Every Montgomery result is cross-checked
//      bit-exact against the classic ladder, so the speed claim can
//      never drift from the correctness claim. Measured in process CPU
//      time, median over paired reps, best of three attempts (same
//      noise discipline as trace_overhead).
//
//   2. RSA verify throughput: crypto::Verifier verifications/sec over
//      distinct signed messages with the memo disabled — the raw
//      per-certificate cost a cold sweep pays.
//
//   3. Macro: the full §4 compliance sweep three ways — schoolbook
//      modexp (the pre-§5.12 baseline, via Verifier::set_force_classic),
//      Montgomery, and Montgomery + memo (fresh private memo each rep,
//      issuance cache reset before every arm so the fingerprint-pair
//      memo above us doesn't absorb the repeats first). Gated on the
//      Montgomery sweep beating the schoolbook sweep and on
//      byte-identical summaries across memo off, memo on, and memo on
//      at 4 threads; the memo's own delta and hit rate are reported
//      (at this corpus's repeat rate it is roughly cost-neutral — its
//      value is cross-request accumulation in the daemon).
//
// Exit status: 0 iff Montgomery >= 3x on the micro, the Montgomery
// sweep improves on the schoolbook sweep, and all summaries match.
#include <ctime>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chain/analyzer.hpp"
#include "chain/issuance.hpp"
#include "crypto/bigint.hpp"
#include "crypto/rsa.hpp"
#include "crypto/verifier.hpp"
#include "engine/engine.hpp"
#include "engine/tally.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

using namespace chainchaos;

namespace {

constexpr double kSpeedupGate = 3.0;

double cpu_seconds_now() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / 1e9;
}

struct ModexpCase {
  crypto::BigInt base;
  crypto::BigInt exp;
  crypto::BigInt mod;
};

/// RSA-shaped cases: odd 512-bit modulus, base < modulus, exponent of
/// `exp_bits` bits (512 = private-key shape, 17 = e=65537 shape).
std::vector<ModexpCase> make_cases(Rng& rng, int exp_bits, std::size_t count) {
  std::vector<ModexpCase> cases;
  cases.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ModexpCase c;
    c.mod = crypto::BigInt::random_with_bits(rng, 512);
    if (!c.mod.is_odd()) c.mod = c.mod + crypto::BigInt(1);
    c.base = crypto::BigInt::random_with_bits(rng, 511) % c.mod;
    c.exp = exp_bits == 17 ? crypto::BigInt(65537)
                           : crypto::BigInt::random_with_bits(rng, exp_bits);
    cases.push_back(std::move(c));
  }
  return cases;
}

struct ModexpResult {
  double classic_ops = 0;     ///< ops/sec, schoolbook ladder
  double montgomery_ops = 0;  ///< ops/sec, cached MontgomeryContext
  bool bit_exact = true;
  double speedup() const {
    return classic_ops > 0 ? montgomery_ops / classic_ops : 0.0;
  }
};

/// One paired off/on style measurement: the classic and Montgomery
/// halves run back to back over the same cases, so a host-level burst
/// hits both and cancels out of the ratio.
ModexpResult measure_modexp(const std::vector<ModexpCase>& cases, int reps) {
  ModexpResult result;
  std::vector<crypto::MontgomeryContext> contexts;
  contexts.reserve(cases.size());
  for (const ModexpCase& c : cases) contexts.emplace_back(c.mod);

  std::vector<double> classic_rates, mont_rates;
  for (int rep = 0; rep < reps; ++rep) {
    double start = cpu_seconds_now();
    for (const ModexpCase& c : cases) {
      volatile bool sink =
          crypto::BigInt::mod_pow_classic(c.base, c.exp, c.mod).is_zero();
      (void)sink;
    }
    classic_rates.push_back(static_cast<double>(cases.size()) /
                            (cpu_seconds_now() - start));

    start = cpu_seconds_now();
    for (std::size_t i = 0; i < cases.size(); ++i) {
      volatile bool sink =
          contexts[i].pow(cases[i].base, cases[i].exp).is_zero();
      (void)sink;
    }
    mont_rates.push_back(static_cast<double>(cases.size()) /
                         (cpu_seconds_now() - start));
  }
  std::sort(classic_rates.begin(), classic_rates.end());
  std::sort(mont_rates.begin(), mont_rates.end());
  result.classic_ops = classic_rates[classic_rates.size() / 2];
  result.montgomery_ops = mont_rates[mont_rates.size() / 2];

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const crypto::BigInt classic = crypto::BigInt::mod_pow_classic(
        cases[i].base, cases[i].exp, cases[i].mod);
    if (!(contexts[i].pow(cases[i].base, cases[i].exp) == classic)) {
      result.bit_exact = false;
      std::fprintf(stderr, "BIT-EXACT FAILURE: case %zu diverged\n", i);
    }
  }
  return result;
}

}  // namespace

int main() {
  // --- 1. modexp micro ---------------------------------------------------
  Rng rng(20250808);
  const std::vector<ModexpCase> priv_cases = make_cases(rng, 512, 16);
  const std::vector<ModexpCase> pub_cases = make_cases(rng, 17, 64);

  constexpr int kAttempts = 3;
  ModexpResult priv;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const ModexpResult r = measure_modexp(priv_cases, 9);
    if (r.speedup() > priv.speedup() || !r.bit_exact) priv = r;
    if (priv.bit_exact && priv.speedup() >= kSpeedupGate) break;
  }
  const ModexpResult pub = measure_modexp(pub_cases, 9);

  std::printf("modexp 512-bit exponent: classic %.0f ops/s, "
              "montgomery %.0f ops/s, speedup %.2fx (gate %.1fx)\n",
              priv.classic_ops, priv.montgomery_ops, priv.speedup(),
              kSpeedupGate);
  std::printf("modexp e=65537:          classic %.0f ops/s, "
              "montgomery %.0f ops/s, speedup %.2fx (reported only)\n",
              pub.classic_ops, pub.montgomery_ops, pub.speedup());

  // --- 2. RSA verify throughput ------------------------------------------
  Rng key_rng(77);
  const crypto::RsaKeyPair keys = crypto::generate_keypair(key_rng);
  constexpr std::size_t kMessages = 256;
  std::vector<Bytes> messages, signatures;
  for (std::size_t i = 0; i < kMessages; ++i) {
    messages.push_back(to_bytes("crypto_verify bench message " +
                                std::to_string(i)));
    signatures.push_back(crypto::rsa_sign(keys.priv, messages.back()));
  }
  {
    const crypto::VerifyMemoScope no_memo(nullptr);
    const crypto::Verifier verifier = crypto::Verifier::current();
    const crypto::PublicKey pub_key(keys.pub);
    verifier.verify(pub_key, messages[0], signatures[0]);  // warm accel cache
    const double start = cpu_seconds_now();
    std::size_t ok = 0;
    for (std::size_t i = 0; i < kMessages; ++i) {
      ok += verifier.verify(pub_key, messages[i], signatures[i]) ? 1 : 0;
    }
    const double elapsed = cpu_seconds_now() - start;
    std::printf("rsa verify (no memo):    %.0f verifications/s (%zu/%zu "
                "valid)\n",
                static_cast<double>(kMessages) / elapsed, ok, kMessages);
  }

  // --- 3. corpus sweep, memo off vs on -----------------------------------
  dataset::CorpusConfig config = bench::config_from_env();
  if (std::getenv("CHAINCHAOS_DOMAINS") == nullptr) {
    config.domain_count = 10000;
  }
  std::printf("[corpus] %zu synthetic domains, seed %llu\n",
              config.domain_count,
              static_cast<unsigned long long>(config.seed));
  dataset::Corpus corpus(std::move(config));

  chain::CompletenessOptions options;
  options.store = &corpus.stores().union_store;
  options.aia = &corpus.aia();
  const chain::ComplianceAnalyzer analyzer(options);

  const auto sweep = [&](bool memo_on, unsigned threads,
                         crypto::VerifyMemo* memo) {
    chain::reset_issuance_cache();  // else the fingerprint-pair memo
                                    // above us absorbs the repeats
    engine::AnalysisRequest request;
    request.records = &corpus.records();
    request.shards.threads = threads;
    request.analyzer = &analyzer;
    request.verify_memo = memo;
    request.verify_memo_enabled = memo_on;
    return engine::run(request);
  };

  sweep(false, 1, nullptr);  // warm-up: key pool, corpus lazy state

  // All sweep comparisons share one noise discipline (same as
  // trace_overhead): paired reps with order alternating between pairs,
  // single-threaded, clocked in process CPU time, gate-side number =
  // median of the per-pair ratios — because wall-clock records/sec on a
  // shared box swings far more than the effects being measured.
  constexpr int kSweepPairs = 7;
  const auto timed_sweep = [&](bool memo_on, crypto::VerifyMemo* memo,
                               engine::AnalysisResult* result) {
    const double start = cpu_seconds_now();
    *result = sweep(memo_on, 1, memo);
    return cpu_seconds_now() - start;
  };

  // 3a. Schoolbook vs Montgomery, end to end (memo off in both arms).
  // This is the PR's headline claim: the same sweep the seed ran, with
  // only the modexp under the Verifier swapped.
  const auto timed_classic_sweep = [&](engine::AnalysisResult* result) {
    crypto::Verifier::set_force_classic(true);
    const double seconds = timed_sweep(false, nullptr, result);
    crypto::Verifier::set_force_classic(false);
    return seconds;
  };
  std::vector<double> mont_ratios;
  engine::AnalysisResult classic_result, mont_result;
  for (int pair = 0; pair < kSweepPairs; ++pair) {
    double classic_s, mont_s;
    if (pair % 2 == 0) {
      classic_s = timed_classic_sweep(&classic_result);
      mont_s = timed_sweep(false, nullptr, &mont_result);
    } else {
      mont_s = timed_sweep(false, nullptr, &mont_result);
      classic_s = timed_classic_sweep(&classic_result);
    }
    mont_ratios.push_back(classic_s / mont_s);  // >1 = montgomery faster
  }
  std::sort(mont_ratios.begin(), mont_ratios.end());
  const double sweep_speedup = mont_ratios[mont_ratios.size() / 2];
  const std::string summary_classic =
      engine::summary_table(classic_result.tally.compliance).render();

  // 3b. Memo off vs on (both on the Montgomery path, fresh memo each
  // rep). Reported, not gated: at this corpus's repeat rate the memo is
  // roughly cost-neutral — its value is cross-request accumulation in
  // the daemon — but its tallies must stay byte-identical.
  std::vector<double> ratios, off_rates;
  engine::AnalysisResult off, on;
  for (int pair = 0; pair < kSweepPairs; ++pair) {
    crypto::VerifyMemo fresh;
    double off_s, on_s;
    if (pair % 2 == 0) {
      off_s = timed_sweep(false, nullptr, &off);
      on_s = timed_sweep(true, &fresh, &on);
    } else {
      on_s = timed_sweep(true, &fresh, &on);
      off_s = timed_sweep(false, nullptr, &off);
    }
    ratios.push_back(off_s / on_s);  // >1 = memo-on arm is faster
    off_rates.push_back(static_cast<double>(off.records_processed) / off_s);
  }
  std::sort(ratios.begin(), ratios.end());
  std::sort(off_rates.begin(), off_rates.end());
  const double memo_speedup = ratios[ratios.size() / 2];
  const double off_rps = off_rates[off_rates.size() / 2];
  const double on_rps = off_rps * memo_speedup;

  crypto::VerifyMemo memo_4t;
  const engine::AnalysisResult on4 = sweep(true, 4, &memo_4t);

  const std::string summary_off =
      engine::summary_table(off.tally.compliance).render();
  const std::string summary_on =
      engine::summary_table(on.tally.compliance).render();
  const std::string summary_on4 =
      engine::summary_table(on4.tally.compliance).render();
  const bool deterministic = summary_off == summary_on &&
                             summary_off == summary_on4 &&
                             summary_off == summary_classic;
  if (!deterministic) {
    std::fprintf(stderr, "DETERMINISM FAILURE: sweep summaries diverged "
                         "across verifier configurations\n");
  }
  const bool sweep_improves = sweep_speedup > 1.0;
  if (!sweep_improves) {
    std::fprintf(stderr, "SWEEP REGRESSION: montgomery sweep is not faster "
                         "than the schoolbook baseline (%.2fx)\n",
                 sweep_speedup);
  }

  std::printf("sweep schoolbook modexp: %.0f records/s CPU "
              "(median of %d pairs)\n",
              off_rps / sweep_speedup, kSweepPairs);
  std::printf("sweep montgomery:        %.0f records/s CPU (%.2fx, gated "
              "> 1.0x)\n",
              off_rps, sweep_speedup);
  std::printf("sweep montgomery + memo: %.0f records/s CPU (%.2fx vs no "
              "memo), memo hit rate %.1f%% (%llu lookups, %llu entries)\n",
              on_rps, memo_speedup, 100.0 * on.verify_memo.hit_ratio(),
              static_cast<unsigned long long>(on.verify_memo.lookups),
              static_cast<unsigned long long>(on.verify_memo.entries));
  std::printf("sweep summaries classic/memo-off/on/on-4t: %s\n",
              deterministic ? "IDENTICAL" : "DIVERGED");

  const bool ok = priv.bit_exact && priv.speedup() >= kSpeedupGate &&
                  sweep_improves && deterministic;
  std::printf("crypto_verify %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
