#include "dataset/corpus.hpp"

#include <cassert>

#include "x509/builder.hpp"

namespace chainchaos::dataset {

std::string synth_domain(Rng& rng, std::size_t index,
                         const std::string& ca_name) {
  static const char* kSyllables[] = {
      "ar", "bel", "cor", "dan", "el",  "fin", "gor", "han", "ir",
      "jo", "kal", "lum", "mar", "nor", "ol",  "pra", "qu",  "ros",
      "sol", "tur", "ul", "vor", "win", "xen", "yar", "zel"};
  constexpr std::size_t kCount = sizeof(kSyllables) / sizeof(kSyllables[0]);
  std::string word;
  for (int i = 0; i < 3; ++i) word += kSyllables[rng.below(kCount)];
  if (ca_name == "TAIWAN-CA") {
    return word + std::to_string(index) + ".gov.tw";
  }
  static const char* kTlds[] = {"com", "net", "org", "io"};
  return word + std::to_string(index) + "." + kTlds[rng.below(4)];
}

Corpus::Corpus(CorpusConfig config)
    : config_(std::move(config)),
      aia_(std::make_unique<net::AiaRepository>()),
      zoo_(std::make_unique<CaZoo>(aia_.get())) {
  stores_ = truststore::make_program_stores(zoo_->core_roots(),
                                            zoo_->exclusive_roots());
  records_.reserve(config_.domain_count + 32);
  generate_statistical_records();
  if (config_.include_exemplars) append_exemplars();
}

const DomainRecord* Corpus::exemplar(const std::string& name) const {
  for (const DomainRecord& record : records_) {
    if (record.exemplar && record.exemplar_name == name) return &record;
  }
  return nullptr;
}

namespace {

/// Primary-defect categories in the per-CA calibration.
enum class Category {
  kNone,
  kDuplicate,
  kIrrelevant,
  kMultiplePaths,
  kReversed,
  kIncomplete
};

Category draw_category(Rng& rng, const CaCalibration& ca) {
  double draw = rng.unit();
  const auto take = [&draw](double rate) {
    if (draw < rate) return true;
    draw -= rate;
    return false;
  };
  if (take(ca.duplicate_rate)) return Category::kDuplicate;
  if (take(ca.irrelevant_rate)) return Category::kIrrelevant;
  if (take(ca.multiple_paths_rate)) return Category::kMultiplePaths;
  if (take(ca.reversed_rate)) return Category::kReversed;
  if (take(ca.incomplete_rate)) return Category::kIncomplete;
  return Category::kNone;
}

const ServerMix& mix_for(Category category) {
  static const ServerMix kCompliant = CorpusConfig::server_mix_compliant();
  static const ServerMix kDup = CorpusConfig::server_mix_duplicates();
  static const ServerMix kIrrel = CorpusConfig::server_mix_irrelevant();
  static const ServerMix kMulti = CorpusConfig::server_mix_multiple_paths();
  static const ServerMix kRev = CorpusConfig::server_mix_reversed();
  static const ServerMix kIncomp = CorpusConfig::server_mix_incomplete();
  switch (category) {
    case Category::kDuplicate: return kDup;
    case Category::kIrrelevant: return kIrrel;
    case Category::kMultiplePaths: return kMulti;
    case Category::kReversed: return kRev;
    case Category::kIncomplete: return kIncomp;
    case Category::kNone: break;
  }
  return kCompliant;
}

}  // namespace

void Corpus::generate_statistical_records() {
  Rng master(config_.seed);

  std::vector<double> ca_weights;
  for (const CaCalibration& ca : config_.cas) ca_weights.push_back(ca.share);

  for (std::size_t i = 0; i < config_.domain_count; ++i) {
    Rng rng = master.fork(i);
    DomainRecord record;

    // --- Table 3 leaf-placement draws ------------------------------------
    const double leaf_draw = rng.unit();
    const bool leaf_other = leaf_draw < config_.leaf_other_rate;
    const bool leaf_mismatched =
        !leaf_other &&
        leaf_draw < config_.leaf_other_rate + config_.leaf_correct_mismatched_rate;

    if (leaf_other) {
      // A lone self-signed test certificate; no CA involved.
      record.leaf_defect = DefectType::kLeafOther;
      record.observation.domain = synth_domain(rng, i, "");
      record.observation.certificates = make_other_leaf_chain(rng);
      record.observation.ca_name = "(self-signed)";
      record.observation.server_software =
          CorpusConfig::server_names()[rng.weighted(mix_for(Category::kNone))];
      records_.push_back(std::move(record));
      continue;
    }

    // --- CA + primary defect -----------------------------------------------
    const CaCalibration& ca = config_.cas[rng.weighted(ca_weights)];
    const Category category = draw_category(rng, ca);
    record.observation.ca_name = ca.name;
    record.observation.domain = synth_domain(rng, i, ca.name);
    record.observation.server_software =
        CorpusConfig::server_names()[rng.weighted(mix_for(category))];

    const bool rare =
        category == Category::kIncomplete &&
        rng.chance(config_.incomplete_rare_hierarchy_rate);
    record.rare_hierarchy = rare;
    const ca::CaHierarchy& hierarchy =
        rare ? zoo_->rare_hierarchy(i) : zoo_->hierarchy_for(ca.name, i);

    // --- base chain -----------------------------------------------------------
    const std::string leaf_host =
        leaf_mismatched ? "shared" + std::to_string(rng.below(500)) +
                              ".webhosting.example"
                        : record.observation.domain;
    if (leaf_mismatched) record.leaf_defect = DefectType::kLeafMismatched;

    x509::CertPtr leaf = hierarchy.issue_leaf(leaf_host);
    Chain chain = hierarchy.compliant_chain(leaf);
    record.root_included = rng.chance(config_.root_included_rate);
    if (record.root_included) chain.push_back(hierarchy.root());

    // --- inject the drawn defect ---------------------------------------------
    switch (category) {
      case Category::kNone:
        record.primary_defect = DefectType::kNone;
        break;

      case Category::kDuplicate: {
        const double sub = rng.unit();
        if (sub < config_.duplicate_leaf_share) {
          record.primary_defect = DefectType::kDuplicateLeaf;
          chain = inject_duplicate_leaf(std::move(chain));
        } else if (sub < config_.duplicate_leaf_share +
                             config_.duplicate_intermediate_share) {
          record.primary_defect = DefectType::kDuplicateIntermediate;
          chain = inject_duplicate_intermediate(std::move(chain), rng);
        } else {
          record.primary_defect = DefectType::kDuplicateRoot;
          chain = inject_duplicate_root(std::move(chain), hierarchy);
          record.root_included = true;
        }
        break;
      }

      case Category::kIrrelevant: {
        const double sub = rng.unit();
        if (sub < config_.irrelevant_root_share) {
          record.primary_defect = DefectType::kIrrelevantRoot;
          chain = inject_irrelevant_root(std::move(chain), zoo_->aaa_root());
        } else if (sub < config_.irrelevant_root_share +
                             config_.irrelevant_stale_leaves_share) {
          record.primary_defect = DefectType::kStaleLeaves;
          chain = inject_stale_leaves(std::move(chain), hierarchy, leaf_host,
                                      1 + static_cast<int>(rng.below(4)));
        } else if (sub < config_.irrelevant_root_share +
                             config_.irrelevant_stale_leaves_share +
                             config_.irrelevant_other_chain_share) {
          record.primary_defect = DefectType::kIrrelevantOtherChain;
          chain = inject_other_chain(std::move(chain),
                                     zoo_->hierarchy_for("", i + 1));
        } else {
          record.primary_defect = DefectType::kIrrelevantIntermediate;
          chain = inject_irrelevant_intermediate(std::move(chain),
                                                 zoo_->hierarchy_for("", i + 3));
        }
        break;
      }

      case Category::kMultiplePaths: {
        if (rng.chance(1.0 - 5.0 / 246.0)) {
          record.primary_defect = DefectType::kMultiplePathsCrossSign;
          chain = inject_cross_sign_multipath(leaf_host, *zoo_, hierarchy);
        } else {
          record.primary_defect = DefectType::kMultiplePathsTwinValidity;
          chain = inject_twin_validity_multipath(leaf_host, *zoo_, hierarchy);
        }
        record.root_included = false;
        break;
      }

      case Category::kReversed:
        record.primary_defect = DefectType::kReversedSequence;
        chain = inject_reversed(std::move(chain), hierarchy);
        break;

      case Category::kIncomplete: {
        const double sub = rng.unit();
        if (sub < config_.incomplete_no_aia_rate) {
          record.primary_defect = DefectType::kMissingIntermediateNoAia;
          chain = make_missing_no_aia(leaf_host, hierarchy);
          record.missing_count = 1;
        } else if (sub < config_.incomplete_no_aia_rate +
                             config_.incomplete_unreachable_rate) {
          record.primary_defect = DefectType::kMissingIntermediateDeadAia;
          chain = make_missing_dead_aia(leaf_host, hierarchy, *aia_);
          record.missing_count = 1;
        } else {
          record.primary_defect = DefectType::kMissingIntermediate;
          const int depth = static_cast<int>(hierarchy.intermediates().size());
          const int how_many =
              (depth >= 2 && !rng.chance(config_.incomplete_missing_one_rate))
                  ? 2
                  : 1;
          record.missing_count = how_many;
          chain = inject_missing_intermediate(std::move(chain), how_many);
        }
        record.root_included = false;
        break;
      }
    }

    // --- Table 8 sensitivity: AKID-less terminal intermediates -------------
    // Applies to compliant root-omitted chains: the terminal (top)
    // intermediate is swapped for a variant without an AKID, defeating
    // the paper's AKID-only store probe when AIA is off.
    if (category == Category::kNone && !record.root_included &&
        !leaf_mismatched && rng.chance(225608.0 / 906336.0)) {
      record.akidless_terminal = true;
      chain.back() = zoo_->akidless_top_intermediate(hierarchy);
    }

    record.observation.certificates = std::move(chain);
    records_.push_back(std::move(record));
  }

  // Table 8's with-AIA store deltas: a handful of domains chain to
  // program-exclusive roots and carry no AIA material at all, so clients
  // whose store lacks the root cannot complete them. Counts scale from
  // the paper's 66 (missing for Mozilla/Chrome) and 5 (for
  // Microsoft/Apple) per 906,336 domains.
  const double scale =
      static_cast<double>(config_.domain_count) / 906336.0;
  const auto add_exclusive = [this](const ca::CaHierarchy& hierarchy,
                                    std::size_t count, const char* tag) {
    Rng rng(config_.seed ^ Rng::hash(tag));
    for (std::size_t i = 0; i < count; ++i) {
      DomainRecord record;
      record.exclusive_store_domain = true;
      record.observation.ca_name = "Other CAs";
      record.observation.server_software = "Other";
      record.observation.domain =
          std::string(tag) + std::to_string(i) + ".example.net";
      x509::CertPtr leaf =
          hierarchy.issue_leaf(record.observation.domain);
      record.observation.certificates = hierarchy.compliant_chain(leaf);
      records_.push_back(std::move(record));
    }
    (void)rng;
  };
  if (config_.domain_count > 0) {
    add_exclusive(zoo_->ms_apple_exclusive(),
                  std::max<std::size_t>(
                      1, static_cast<std::size_t>(66.0 * scale + 0.5)),
                  "msapple-only");
    add_exclusive(zoo_->moz_chrome_exclusive(),
                  static_cast<std::size_t>(5.0 * scale + 0.5), "mozchrome-only");
  }
}

// ---------------------------------------------------------------------------
// Exemplars: the paper's named case studies, reconstructed.
// ---------------------------------------------------------------------------

void Corpus::append_exemplars() {
  const auto push = [this](std::string name, std::string ca, std::string server,
                           Chain chain, DefectType defect) {
    DomainRecord record;
    record.exemplar = true;
    record.exemplar_name = name;
    record.primary_defect = defect;
    record.observation.domain = std::move(name);
    record.observation.ca_name = std::move(ca);
    record.observation.server_software = std::move(server);
    record.observation.certificates = std::move(chain);
    records_.push_back(std::move(record));
  };

  // mot.gov.ps — the single "incorrectly placed and mismatched" domain:
  // a Sophos appliance certificate first, its self-signed issuer (with a
  // domain-shaped CN) second.
  {
    const crypto::RsaKeyPair& appliance_keys =
        crypto::KeyPool::instance().for_name("mot-appliance");
    x509::CertificateBuilder issuer_builder;
    issuer_builder.subject(asn1::Name::make("www.mot.gov.ps"))
        .as_ca()
        .public_key(appliance_keys.pub)
        .validity(1700000000, 1900000000);
    x509::CertPtr issuer = issuer_builder.self_sign(appliance_keys);

    x509::SigningIdentity issuer_id;
    issuer_id.name = issuer->subject;
    issuer_id.keys = appliance_keys;
    x509::CertificateBuilder leaf_builder;
    leaf_builder.subject(asn1::Name::make("SophosApplianceCertificate_ss1142"))
        .validity(1700000000, 1900000000);
    x509::CertPtr leaf = leaf_builder.sign(issuer_id);
    push("mot.gov.ps", "(self-signed)", "Other", {leaf, issuer},
         DefectType::kLeafOther);
  }

  // ns3.link family — leaf + the two Let's Encrypt intermediates... then
  // those two intermediates duplicated up to a 29-certificate list.
  {
    const ca::CaHierarchy& le = zoo_->hierarchy_for("Let's Encrypt", 0);
    for (const char* domain : {"ns3.link", "ns3.com", "ns3.cx", "n0.eu"}) {
      Chain chain;
      chain.push_back(le.issue_leaf(domain));
      const x509::CertPtr& r3 = le.intermediates().back();
      const x509::CertPtr& isrg = le.root();
      for (int rep = 0; rep < 14; ++rep) {
        chain.push_back(r3);
        chain.push_back(isrg);
      }  // 1 + 28 = 29 certificates
      push(domain, "Let's Encrypt", "Apache", std::move(chain),
           DefectType::kDuplicateIntermediate);
    }
  }

  // webcanny.com — five same-CA leaves, newest first, then the chain.
  {
    const ca::CaHierarchy& sectigo = zoo_->hierarchy_for("Sectigo Limited", 0);
    Chain chain = sectigo.compliant_chain(sectigo.issue_leaf("webcanny.com"));
    chain = inject_stale_leaves(std::move(chain), sectigo, "webcanny.com", 4);
    push("webcanny.com", "Sectigo Limited", "Apache", std::move(chain),
         DefectType::kStaleLeaves);
  }

  // archives.gov.tw — a complete primary chain plus another operator
  // chain (TWCA-like) appended wholesale.
  {
    const ca::CaHierarchy& taiwan = zoo_->hierarchy_for("TAIWAN-CA", 0);
    Chain chain = taiwan.compliant_chain(taiwan.issue_leaf("archives.gov.tw"));
    chain.push_back(taiwan.root());
    chain = inject_other_chain(std::move(chain), zoo_->hierarchy_for("", 2));
    push("archives.gov.tw", "TAIWAN-CA", "Apache", std::move(chain),
         DefectType::kIrrelevantOtherChain);
  }

  // assiste6.serpro.gov.br (Figure 3) — a 17-certificate list whose only
  // valid path is 8 -> 1 -> 16 -> 0; GnuTLS's input cap of 16 rejects it.
  {
    const ca::CaHierarchy& serpro =
        zoo_->hierarchy_for("", 4);  // an anonymous depth>=2 hierarchy
    assert(serpro.intermediates().size() >= 2);
    x509::CertPtr leaf = serpro.issue_leaf("assiste6.serpro.gov.br");
    Chain chain(17);
    chain[0] = leaf;
    chain[1] = serpro.intermediates().front();   // tier-1 (issued by root)
    chain[8] = serpro.root();
    chain[16] = serpro.intermediates().back();   // issuing intermediate
    // Fill the rest with unrelated intermediates and their duplicates.
    std::size_t fill = 0;
    for (std::size_t pos = 0; pos < chain.size(); ++pos) {
      if (chain[pos]) continue;
      const ca::CaHierarchy& junk = zoo_->rare_hierarchy(fill % 3);
      chain[pos] = fill % 2 == 0 ? junk.intermediates().back() : junk.root();
      ++fill;
    }
    push("assiste6.serpro.gov.br", "Other CAs", "Nginx", std::move(chain),
         DefectType::kIrrelevantIntermediate);
  }

  // moex.gov.tw (Figure 4) — three candidate paths; node 1 is an
  // untrusted root that non-backtracking clients commit to.
  {
    const x509::SigningIdentity& old_root_id = zoo_->untrusted_gov_identity();
    const ca::CaHierarchy& taiwan = zoo_->hierarchy_for("TAIWAN-CA", 0);

    // M': the serving intermediate, issued by the *old* (untrusted) root.
    x509::SigningIdentity moex_ca = x509::make_identity(
        asn1::Name::make("MOEX Issuing CA", "MOEX-like", "TW"));
    x509::CertificateBuilder m_builder;
    m_builder.subject(moex_ca.name)
        .as_ca(0)
        .public_key(moex_ca.keys.pub)
        .validity(1700000000, 1900000000);
    x509::CertPtr m_prime = m_builder.sign(old_root_id);

    // X_old: cross of the old root, signed by the trusted TAIWAN-CA root
    // — deliberately *older* than the old root itself so VP2 clients try
    // the untrusted root first and must backtrack.
    x509::SigningIdentity taiwan_root_id =
        x509::make_identity(taiwan.root()->subject);
    x509::CertificateBuilder x_builder;
    x_builder.subject(old_root_id.name)
        .as_ca(1)
        .public_key(old_root_id.keys.pub)
        .validity(1650000000, 1900000000);
    x509::CertPtr x_old = x_builder.sign(taiwan_root_id);

    x509::CertificateBuilder leaf_builder;
    leaf_builder.as_leaf("moex.gov.tw").validity(1700000000, 1900000000);
    x509::CertPtr leaf = leaf_builder.sign(moex_ca);

    Chain chain = {leaf, zoo_->untrusted_gov_root(), m_prime, x_old,
                   taiwan.root()};
    push("moex.gov.tw", "TAIWAN-CA", "Apache", std::move(chain),
         DefectType::kMultiplePathsCrossSign);
  }

  // CAcert class-3 analogue — the one chain whose AIA URI serves the
  // certificate itself instead of its issuer.
  {
    x509::SigningIdentity cacert_root_id = x509::make_identity(
        asn1::Name::make("CA Cert Signing Authority", "CAcert-like", "AU"));
    // Root deliberately NOT in any program store.
    x509::SigningIdentity class3 = x509::make_identity(
        asn1::Name::make("CAcert Class 3 Root", "CAcert-like", "AU"));
    const std::string self_uri = "http://www.cacert-like.example/class3.crt";
    x509::CertificateBuilder class3_builder;
    class3_builder.subject(class3.name)
        .as_ca(0)
        .public_key(class3.keys.pub)
        .validity(1600000000, 1950000000)
        .aia_ca_issuers(self_uri);
    x509::CertPtr class3_cert = class3_builder.sign(cacert_root_id);
    aia_->publish(self_uri, class3_cert);  // serves *itself*

    x509::CertificateBuilder leaf_builder;
    leaf_builder.as_leaf("community.cacert-like.example")
        .validity(1700000000, 1900000000)
        .aia_ca_issuers(self_uri);  // resolves to class3, then loops
    x509::CertPtr leaf = leaf_builder.sign(class3);
    push("community.cacert-like.example", "Other CAs", "Other",
         {leaf, class3_cert}, DefectType::kMissingIntermediate);
  }
}

}  // namespace chainchaos::dataset
