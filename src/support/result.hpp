// Minimal Result<T> error-or-value type.
//
// The library reports recoverable failures (parse errors, validation
// failures, fetch failures) by value rather than by exception, following
// the Core Guidelines advice to make error paths explicit in interfaces
// that are exercised on hot measurement loops.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace chainchaos {

/// Error payload: a short machine-readable code plus human detail.
struct Error {
  std::string code;     ///< stable identifier, e.g. "der.truncated"
  std::string message;  ///< free-form context for humans

  std::string to_string() const {
    return message.empty() ? code : code + ": " + message;
  }
};

/// Value-or-Error. `ok()` must be checked before `value()`.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// value() if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Convenience factory for error results.
inline Error make_error(std::string code, std::string message = {}) {
  return Error{std::move(code), std::move(message)};
}

}  // namespace chainchaos
