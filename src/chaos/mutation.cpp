#include "chaos/mutation.hpp"

#include <algorithm>

#include "asn1/der.hpp"
#include "dataset/corpus.hpp"
#include "support/rng.hpp"
#include "x509/builder.hpp"

namespace chainchaos::chaos {

namespace {

constexpr std::array<MutationSpec, kMutationClassCount> kRegistry = {{
    {MutationClass::kTruncateTlv, "B1", "truncate-tlv",
     "incomplete chain, transport edition (Table 5 cut mid-TLV)"},
    {MutationClass::kLengthCorrupt, "B2", "length-corrupt",
     "DER length field over/under-states the body"},
    {MutationClass::kBitFlip, "B3", "bit-flip",
     "random in-flight corruption of an otherwise valid chain"},
    {MutationClass::kGarbagePrefix, "B4", "garbage-prefix",
     "junk before the outer SEQUENCE (framing desync)"},
    {MutationClass::kGarbageSuffix, "B5", "garbage-suffix",
     "trailing junk after the certificate (framing desync)"},
    {MutationClass::kDeepNest, "B6", "deep-nest",
     "constructed-TLV tower vs recursive decoders (der.too_deep)"},
    {MutationClass::kEmptyChain, "S1", "empty-chain",
     "zero certificates presented"},
    {MutationClass::kDuplicateCert, "S2", "duplicate-cert",
     "Table 9 duplicate-certificates deviation, amplified"},
    {MutationClass::kReversedOrder, "S3", "reversed-order",
     "Table 9 reversed-sequence deviation"},
    {MutationClass::kShuffledOrder, "S4", "shuffled-order",
     "Table 9 disordered chain, arbitrary permutation"},
    {MutationClass::kIrrelevantCert, "S5", "irrelevant-cert",
     "Table 9 irrelevant-certificates deviation (foreign splice)"},
    {MutationClass::kLongChain, "S6", "long-chain",
     "input-list restriction probing (finding I-2, 100+ certs)"},
    {MutationClass::kIssuerCycle, "S7", "issuer-cycle",
     "cyclic / self-referential issuer graph (work-budget guard)"},
}};

/// One TLV's layout inside an encoding: where its header, length field,
/// and body live. Collected by a bounded iterative walk.
struct TlvSite {
  std::size_t header_offset = 0;
  std::size_t length_offset = 0;
  std::size_t body_offset = 0;
  std::size_t end_offset = 0;
};

/// Walks the TLV tree iteratively and records up to `limit` sites.
/// Tolerant of damage: stops at the first frame it cannot make sense of
/// (the sites found so far are still usable mutation targets).
std::vector<TlvSite> tlv_sites(BytesView der, std::size_t limit = 512) {
  std::vector<TlvSite> sites;
  std::vector<std::size_t> ends;
  std::size_t pos = 0;
  while (pos < der.size() && sites.size() < limit) {
    while (!ends.empty() && pos >= ends.back()) ends.pop_back();
    const std::size_t header = pos;
    const std::uint8_t tag = der[pos++];
    if ((tag & 0x1f) == 0x1f) break;  // multi-byte tag: not our material
    if (pos >= der.size()) break;
    const std::size_t length_offset = pos;
    const std::uint8_t first = der[pos++];
    std::size_t length = 0;
    if (first < 0x80) {
      length = first;
    } else {
      const std::size_t num = first & 0x7f;
      if (num == 0 || num > 4 || pos + num > der.size()) break;
      for (std::size_t i = 0; i < num; ++i) {
        length = (length << 8) | der[pos++];
      }
    }
    if (length > der.size() - pos) break;
    sites.push_back({header, length_offset, pos, pos + length});
    if ((tag & 0x20) != 0) {
      ends.push_back(pos + length);  // descend into constructed body
    } else {
      pos += length;
    }
  }
  return sites;
}

Bytes random_bytes(Rng& rng, std::size_t count) {
  Bytes out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng.below(256)));
  }
  return out;
}

}  // namespace

const std::array<MutationSpec, kMutationClassCount>& all_mutations() {
  return kRegistry;
}

const MutationSpec& spec(MutationClass cls) {
  for (const MutationSpec& s : kRegistry) {
    if (s.cls == cls) return s;
  }
  return kRegistry[0];  // unreachable for valid enumerators
}

Result<MutationClass> mutation_from_name(std::string_view text) {
  for (const MutationSpec& s : kRegistry) {
    if (text == s.id || text == s.name) return s.cls;
  }
  return make_error("chaos.unknown_mutation", std::string(text));
}

Bytes MutatedChain::wire() const {
  Bytes out;
  for (const Bytes& cert : certs) append(out, cert);
  return out;
}

Bytes deep_nested_tlv(std::size_t depth) {
  // Innermost element: NULL (2 bytes). sizes[i] = total encoded size of
  // the tower truncated to i constructed levels — computed arithmetically
  // inside-out so the whole build is O(depth), never O(depth²) rewraps.
  std::vector<std::size_t> sizes;
  sizes.reserve(depth + 1);
  sizes.push_back(2);
  for (std::size_t i = 0; i < depth; ++i) {
    const std::size_t body = sizes.back();
    sizes.push_back(1 + asn1::encode_length(body).size() + body);
  }
  Bytes out;
  out.reserve(sizes.back());
  for (std::size_t i = depth; i > 0; --i) {
    out.push_back(0x30);  // SEQUENCE, constructed
    append(out, asn1::encode_length(sizes[i - 1]));
  }
  out.push_back(0x05);  // NULL
  out.push_back(0x00);
  return out;
}

ChainMutator::ChainMutator(std::vector<std::vector<Bytes>> base_chains,
                           std::vector<Bytes> foreign_pool)
    : base_chains_(std::move(base_chains)),
      foreign_pool_(std::move(foreign_pool)) {
  if (base_chains_.empty()) {
    base_chains_.push_back({deep_nested_tlv(4)});  // degenerate fallback
  }
  if (foreign_pool_.empty()) {
    // Splice material must come from somewhere: fall back to the last
    // base chain (still "irrelevant" relative to the others).
    foreign_pool_ = base_chains_.back();
  }

  // S7 kit: two CAs signing each other, a leaf hanging off one of them,
  // and the ouroboros certificate (issuer DN == subject DN but signed by
  // a different key, so name-chasing loops forever on it).
  const auto id_a = x509::make_identity(asn1::Name::make("Chaos Cycle CA A"));
  const auto id_b = x509::make_identity(asn1::Name::make("Chaos Cycle CA B"));
  cycle_a_ = x509::CertificateBuilder()
                 .subject(id_a.name)
                 .public_key(id_a.keys.pub)
                 .serial(0xc1c1e0a)
                 .as_ca()
                 .sign(id_b)
                 ->der;
  cycle_b_ = x509::CertificateBuilder()
                 .subject(id_b.name)
                 .public_key(id_b.keys.pub)
                 .serial(0xc1c1e0b)
                 .as_ca()
                 .sign(id_a)
                 ->der;
  cycle_leaf_ = x509::CertificateBuilder()
                    .as_leaf("cycle.chaos.example")
                    .serial(0xc1c1ead)
                    .sign(id_a)
                    ->der;
  const auto id_self =
      x509::make_identity(asn1::Name::make("Chaos Ouroboros CA"));
  const auto id_hidden =
      x509::make_identity(asn1::Name::make("Chaos Hidden Signer"));
  const x509::SigningIdentity forged{id_self.name, id_hidden.keys};
  self_referential_ = x509::CertificateBuilder()
                          .subject(id_self.name)
                          .public_key(id_self.keys.pub)
                          .serial(0x5e1f)
                          .as_ca()
                          .sign(forged)
                          ->der;
}

ChainMutator ChainMutator::from_corpus(const dataset::Corpus& corpus,
                                       std::size_t base_limit) {
  std::vector<std::vector<Bytes>> base;
  std::vector<Bytes> foreign;
  for (const dataset::DomainRecord& record : corpus.records()) {
    const auto& certs = record.observation.certificates;
    if (certs.empty()) continue;
    if (base.size() < base_limit) {
      std::vector<Bytes> chain;
      chain.reserve(certs.size());
      for (const x509::CertPtr& cert : certs) chain.push_back(cert->der);
      base.push_back(std::move(chain));
    } else if (foreign.size() < 32) {
      for (const x509::CertPtr& cert : certs) foreign.push_back(cert->der);
    } else {
      break;
    }
  }
  return ChainMutator(std::move(base), std::move(foreign));
}

MutatedChain ChainMutator::mutate(MutationClass cls,
                                  std::uint64_t seed) const {
  Rng rng(seed ^ Rng::hash(spec(cls).id));
  MutatedChain out;
  out.cls = cls;
  out.mutation_id = spec(cls).id;
  out.seed = seed;

  // Pick a base chain; structure classes that need >= 2 certificates
  // advance to the nearest chain that has them.
  std::size_t base_idx = rng.below(base_chains_.size());
  const bool wants_pair = cls == MutationClass::kReversedOrder ||
                          cls == MutationClass::kShuffledOrder;
  for (std::size_t probe = 0;
       wants_pair && base_chains_[base_idx].size() < 2 &&
       probe < base_chains_.size();
       ++probe) {
    base_idx = (base_idx + 1) % base_chains_.size();
  }
  out.certs = base_chains_[base_idx];

  switch (cls) {
    // --- byte-level ------------------------------------------------------
    case MutationClass::kTruncateTlv: {
      const std::size_t victim = rng.below(out.certs.size());
      Bytes& der = out.certs[victim];
      const auto sites = tlv_sites(der);
      if (!sites.empty()) {
        const TlvSite& site = sites[rng.below(sites.size())];
        // Boundary menu: before the TLV, after its header, after its body.
        const std::size_t cuts[3] = {site.header_offset, site.body_offset,
                                     site.end_offset};
        std::size_t cut = cuts[rng.below(3)];
        if (cut == 0 || cut >= der.size()) cut = site.body_offset;
        if (cut > 0 && cut < der.size()) der.resize(cut);
      }
      break;
    }
    case MutationClass::kLengthCorrupt: {
      const std::size_t victim = rng.below(out.certs.size());
      Bytes& der = out.certs[victim];
      const auto sites = tlv_sites(der);
      if (!sites.empty()) {
        const TlvSite& site = sites[rng.below(sites.size())];
        // Reserved, indefinite, overlong, or plain wrong short form.
        const std::uint8_t menu[4] = {
            0x85, 0x80, 0xff,
            static_cast<std::uint8_t>(rng.below(0x80))};
        der[site.length_offset] = menu[rng.below(4)];
      }
      break;
    }
    case MutationClass::kBitFlip: {
      const std::size_t victim = rng.below(out.certs.size());
      Bytes& der = out.certs[victim];
      const std::size_t flips = rng.between(1, 8);
      for (std::size_t i = 0; i < flips && !der.empty(); ++i) {
        der[rng.below(der.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
    }
    case MutationClass::kGarbagePrefix: {
      const std::size_t victim = rng.below(out.certs.size());
      Bytes garbage = random_bytes(rng, rng.between(1, 64));
      append(garbage, out.certs[victim]);
      out.certs[victim] = std::move(garbage);
      break;
    }
    case MutationClass::kGarbageSuffix: {
      const std::size_t victim = rng.below(out.certs.size());
      append(out.certs[victim], random_bytes(rng, rng.between(1, 64)));
      break;
    }
    case MutationClass::kDeepNest: {
      const std::size_t victim = rng.below(out.certs.size());
      // Straddle the depth cap: some towers parse (shallow), most must be
      // rejected with der.too_deep, the deepest stress the iterative gate.
      out.certs[victim] = deep_nested_tlv(rng.between(2, 12000));
      break;
    }

    // --- structure-level -------------------------------------------------
    case MutationClass::kEmptyChain: {
      out.certs.clear();
      break;
    }
    case MutationClass::kDuplicateCert: {
      const std::size_t victim = rng.below(out.certs.size());
      const Bytes dup = out.certs[victim];
      const std::size_t copies = rng.between(1, 3);
      for (std::size_t i = 0; i < copies; ++i) {
        out.certs.insert(
            out.certs.begin() +
                static_cast<std::ptrdiff_t>(rng.below(out.certs.size() + 1)),
            dup);
      }
      break;
    }
    case MutationClass::kReversedOrder: {
      std::reverse(out.certs.begin(), out.certs.end());
      break;
    }
    case MutationClass::kShuffledOrder: {
      // Fisher-Yates with our own Rng (std::shuffle's draw sequence is
      // implementation-defined; determinism requires owning it).
      for (std::size_t i = out.certs.size(); i > 1; --i) {
        std::swap(out.certs[i - 1], out.certs[rng.below(i)]);
      }
      break;
    }
    case MutationClass::kIrrelevantCert: {
      const std::size_t splices = rng.between(1, 2);
      for (std::size_t i = 0; i < splices; ++i) {
        out.certs.insert(
            out.certs.begin() +
                static_cast<std::ptrdiff_t>(rng.below(out.certs.size() + 1)),
            foreign_pool_[rng.below(foreign_pool_.size())]);
      }
      break;
    }
    case MutationClass::kLongChain: {
      const std::size_t target = rng.between(100, 260);
      while (out.certs.size() < target) {
        const Bytes& filler =
            rng.chance(0.5)
                ? foreign_pool_[rng.below(foreign_pool_.size())]
                : base_chains_[rng.below(base_chains_.size())].front();
        out.certs.push_back(filler);
      }
      break;
    }
    case MutationClass::kIssuerCycle: {
      switch (rng.below(3)) {
        case 0:
          out.certs = {cycle_leaf_, cycle_a_, cycle_b_, cycle_a_, cycle_b_};
          break;
        case 1:
          out.certs = {cycle_leaf_, cycle_a_, cycle_b_};
          break;
        default:
          out.certs = {self_referential_, self_referential_};
          break;
      }
      break;
    }
  }
  return out;
}

}  // namespace chainchaos::chaos
