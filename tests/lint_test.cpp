#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/bigint.hpp"
#include "dataset/corpus.hpp"
#include "engine/engine.hpp"
#include "lint/lint.hpp"
#include "lint/sweep.hpp"
#include "x509/builder.hpp"

namespace chainchaos::lint {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::make_identity;
using x509::SigningIdentity;

constexpr std::int64_t kNb = 1700000000;
constexpr std::int64_t kNa = 1900000000;
constexpr std::int64_t kNow = 1800000000;  // inside [kNb, kNa]
constexpr std::int64_t kYear2050 = 2524608000;

bool has_rule(const std::vector<Finding>& findings, std::string_view id) {
  for (const Finding& f : findings) {
    if (f.rule->id == id) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Registry invariants
// ---------------------------------------------------------------------------

TEST(LintRegistryTest, ShipsAtLeastTwelveRulesWithFullDescriptors) {
  const std::vector<const Rule*> rules = all_rules();
  EXPECT_GE(rules.size(), 12u);
  for (const Rule* rule : rules) {
    EXPECT_FALSE(rule->id.empty());
    EXPECT_FALSE(rule->citation.empty()) << rule->id;
    EXPECT_FALSE(rule->description.empty()) << rule->id;
    EXPECT_TRUE(rule->id.substr(0, 5) == "cert." ||
                rule->id.substr(0, 6) == "chain.")
        << rule->id;
  }
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(rules[i - 1]->id, rules[i]->id) << "unsorted or duplicate ID";
  }
}

TEST(LintRegistryTest, FindRuleResolvesKnownAndRejectsUnknown) {
  const Rule* rule = find_rule("chain.leaf_not_first");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->severity, Severity::kError);
  EXPECT_EQ(find_rule("chain.no_such_rule"), nullptr);
}

TEST(LintRegistryTest, SeverityNamesAreStable) {
  EXPECT_STREQ(to_string(Severity::kError), "error");
  EXPECT_STREQ(to_string(Severity::kWarn), "warn");
  EXPECT_STREQ(to_string(Severity::kInfo), "info");
  EXPECT_STREQ(to_string(Severity::kNotice), "notice");
}

// ---------------------------------------------------------------------------
// Shared mini-PKI: root -> I1 -> I2 -> leaf, plus a foreign root and a
// cross-signed twin of the root (multipath material).
// ---------------------------------------------------------------------------

class LintFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    root_id_ = new SigningIdentity(
        make_identity(asn1::Name::make("LintT Root", "LintT", "US")));
    CertificateBuilder rb;
    rb.subject(root_id_->name).as_ca().public_key(root_id_->keys.pub);
    root_ = new CertPtr(rb.self_sign(root_id_->keys));

    i1_id_ = new SigningIdentity(
        make_identity(asn1::Name::make("LintT I1", "LintT", "US")));
    CertificateBuilder i1b;
    i1b.subject(i1_id_->name).as_ca(1).public_key(i1_id_->keys.pub);
    i1_ = new CertPtr(i1b.sign(*root_id_));

    i2_id_ = new SigningIdentity(
        make_identity(asn1::Name::make("LintT I2", "LintT", "US")));
    CertificateBuilder i2b;
    i2b.subject(i2_id_->name).as_ca(0).public_key(i2_id_->keys.pub);
    i2_ = new CertPtr(i2b.sign(*i1_id_));

    CertificateBuilder lb;
    lb.as_leaf("lint.example.com");
    leaf_ = new CertPtr(lb.sign(*i2_id_));

    foreign_id_ = new SigningIdentity(
        make_identity(asn1::Name::make("Foreign Root", "Elsewhere", "DE")));
    CertificateBuilder fb;
    fb.subject(foreign_id_->name).as_ca().public_key(foreign_id_->keys.pub);
    foreign_root_ = new CertPtr(fb.self_sign(foreign_id_->keys));

    CertificateBuilder xb;
    xb.subject(root_id_->name).as_ca().public_key(root_id_->keys.pub);
    cross_root_ = new CertPtr(xb.sign(*foreign_id_));

    store_ = new truststore::RootStore("lint-test");
    store_->add(*root_);

    chain::CompletenessOptions options;
    options.store = store_;
    options.aia_enabled = false;
    analyzer_ = new chain::ComplianceAnalyzer(options);
  }

  static std::vector<Finding> lint_cert(const CertPtr& cert,
                                        std::int64_t now = kNow) {
    return Linter(LintOptions{now}).lint_certificate(*cert);
  }

  static LintReport lint_chain(const std::vector<CertPtr>& certs,
                               const std::string& domain,
                               std::int64_t now = kNow) {
    chain::ChainObservation obs;
    obs.domain = domain;
    obs.certificates = certs;
    const chain::ComplianceReport report = analyzer_->analyze(obs);
    return Linter(LintOptions{now}).lint(obs, report);
  }

  static std::vector<CertPtr> compliant_chain() {
    return {*leaf_, *i2_, *i1_};
  }

  static SigningIdentity* root_id_;
  static SigningIdentity* i1_id_;
  static SigningIdentity* i2_id_;
  static SigningIdentity* foreign_id_;
  static CertPtr* root_;
  static CertPtr* i1_;
  static CertPtr* i2_;
  static CertPtr* leaf_;
  static CertPtr* foreign_root_;
  static CertPtr* cross_root_;
  static truststore::RootStore* store_;
  static chain::ComplianceAnalyzer* analyzer_;
};

SigningIdentity* LintFixture::root_id_ = nullptr;
SigningIdentity* LintFixture::i1_id_ = nullptr;
SigningIdentity* LintFixture::i2_id_ = nullptr;
SigningIdentity* LintFixture::foreign_id_ = nullptr;
CertPtr* LintFixture::root_ = nullptr;
CertPtr* LintFixture::i1_ = nullptr;
CertPtr* LintFixture::i2_ = nullptr;
CertPtr* LintFixture::leaf_ = nullptr;
CertPtr* LintFixture::foreign_root_ = nullptr;
CertPtr* LintFixture::cross_root_ = nullptr;
truststore::RootStore* LintFixture::store_ = nullptr;
chain::ComplianceAnalyzer* LintFixture::analyzer_ = nullptr;

// ---------------------------------------------------------------------------
// Certificate-level rules: one positive, one negative each
// ---------------------------------------------------------------------------

// Re-encodes a certificate's outer SEQUENCE length with a leading zero
// octet: BER-legal, DER-illegal, and tolerated by the reader (the TBS —
// and therefore the signature — is untouched).
Bytes pad_outer_length(const Bytes& der) {
  EXPECT_GE(der.size(), 4u);
  EXPECT_EQ(der[0], 0x30);
  EXPECT_TRUE(der[1] & 0x80) << "expected a long-form outer length";
  const std::size_t octets = der[1] & 0x7f;
  Bytes out;
  out.reserve(der.size() + 1);
  out.push_back(0x30);
  out.push_back(static_cast<std::uint8_t>(0x80 | (octets + 1)));
  out.push_back(0x00);
  out.insert(out.end(), der.begin() + 2, der.end());
  return out;
}

TEST_F(LintFixture, DerNonminimalLengthFiresOnZeroPaddedLength) {
  auto reparsed = x509::parse_certificate(pad_outer_length((*leaf_)->der));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_TRUE(has_rule(lint_cert(reparsed.value()),
                       "cert.der_nonminimal_length"));
}

TEST_F(LintFixture, DerNonminimalLengthCleanOnBuilderOutput) {
  EXPECT_FALSE(has_rule(lint_cert(*leaf_), "cert.der_nonminimal_length"));
}

TEST_F(LintFixture, SerialNotPositiveFiresOnZeroSerial) {
  CertificateBuilder b;
  b.as_leaf("zero-serial.example.com").serial(crypto::BigInt());
  EXPECT_TRUE(has_rule(lint_cert(b.sign(*i2_id_)),
                       "cert.serial_not_positive"));
}

TEST_F(LintFixture, SerialNotPositiveCleanOnOrdinarySerial) {
  EXPECT_FALSE(has_rule(lint_cert(*leaf_), "cert.serial_not_positive"));
}

TEST_F(LintFixture, SerialTooLongFiresBeyondTwentyOctets) {
  CertificateBuilder b;
  b.as_leaf("long-serial.example.com")
      .serial(crypto::BigInt::from_hex("7f" + std::string(40, '1')));
  EXPECT_TRUE(has_rule(lint_cert(b.sign(*i2_id_)), "cert.serial_too_long"));
}

TEST_F(LintFixture, SerialTooLongCleanAtExactlyTwentyOctets) {
  CertificateBuilder b;
  b.as_leaf("ok-serial.example.com")
      .serial(crypto::BigInt::from_hex("7f" + std::string(38, '1')));
  EXPECT_FALSE(has_rule(lint_cert(b.sign(*i2_id_)), "cert.serial_too_long"));
}

TEST_F(LintFixture, WrongValidityEncodingFiresOnPre2050GeneralizedTime) {
  // The builder always emits GeneralizedTime; with pre-2050 dates that
  // violates RFC 5280's UTCTime requirement.
  EXPECT_TRUE(has_rule(lint_cert(*leaf_), "cert.wrong_validity_encoding"));
}

TEST_F(LintFixture, WrongValidityEncodingCleanFrom2050On) {
  CertificateBuilder b;
  b.as_leaf("future.example.com").validity(kYear2050, kYear2050 + 86400);
  EXPECT_FALSE(has_rule(lint_cert(b.sign(*i2_id_)),
                        "cert.wrong_validity_encoding"));
}

TEST_F(LintFixture, ValidityInvertedFiresWhenWindowIsEmpty) {
  CertificateBuilder b;
  b.as_leaf("inverted.example.com").validity(kNa, kNb);
  EXPECT_TRUE(has_rule(lint_cert(b.sign(*i2_id_)), "cert.validity_inverted"));
}

TEST_F(LintFixture, ValidityInvertedCleanOnOrderedWindow) {
  EXPECT_FALSE(has_rule(lint_cert(*leaf_), "cert.validity_inverted"));
}

TEST_F(LintFixture, ExpiredFiresAfterNotAfter) {
  CertificateBuilder b;
  b.as_leaf("expired.example.com").validity(kNb, kNow - 1000);
  const CertPtr cert = b.sign(*i2_id_);
  EXPECT_TRUE(has_rule(lint_cert(cert), "cert.expired"));
  // now == 0 disables the time-dependent rules entirely.
  EXPECT_FALSE(has_rule(lint_cert(cert, 0), "cert.expired"));
}

TEST_F(LintFixture, ExpiredCleanInsideValidityWindow) {
  EXPECT_FALSE(has_rule(lint_cert(*leaf_), "cert.expired"));
}

TEST_F(LintFixture, CaNoSkiFiresOnCaWithoutSubjectKeyId) {
  CertificateBuilder b;
  b.subject(asn1::Name::make("No-SKI CA", "LintT", "US"))
      .as_ca()
      .omit_subject_key_id();
  EXPECT_TRUE(has_rule(lint_cert(b.sign(*root_id_)), "cert.ca_no_ski"));
}

TEST_F(LintFixture, CaNoSkiCleanOnConformingCa) {
  EXPECT_FALSE(has_rule(lint_cert(*i1_), "cert.ca_no_ski"));
}

TEST_F(LintFixture, NoAkiFiresOnNonSelfIssuedWithoutAki) {
  CertificateBuilder b;
  b.as_leaf("no-aki.example.com").omit_authority_key_id();
  EXPECT_TRUE(has_rule(lint_cert(b.sign(*i2_id_)), "cert.no_aki"));
}

TEST_F(LintFixture, NoAkiCleanOnConformingLeafAndOnSelfIssuedRoot) {
  EXPECT_FALSE(has_rule(lint_cert(*leaf_), "cert.no_aki"));
  // Self-issued anchors are exempt even when they omit the AKI.
  EXPECT_FALSE(has_rule(lint_cert(*root_), "cert.no_aki"));
}

TEST_F(LintFixture, CaNoKeycertsignFiresOnCaWithoutSigningBit) {
  x509::KeyUsage ku;
  ku.digital_signature = true;
  CertificateBuilder b;
  b.subject(asn1::Name::make("Weak CA", "LintT", "US")).as_ca().key_usage(ku);
  EXPECT_TRUE(has_rule(lint_cert(b.sign(*root_id_)),
                       "cert.ca_no_keycertsign"));
}

TEST_F(LintFixture, CaNoKeycertsignCleanOnConformingCa) {
  EXPECT_FALSE(has_rule(lint_cert(*i1_), "cert.ca_no_keycertsign"));
}

TEST_F(LintFixture, KeycertsignNotCaFiresOnLeafWithSigningBit) {
  x509::KeyUsage ku;
  ku.digital_signature = true;
  ku.key_cert_sign = true;
  CertificateBuilder b;
  b.as_leaf("signer.example.com").key_usage(ku);
  EXPECT_TRUE(has_rule(lint_cert(b.sign(*i2_id_)),
                       "cert.keycertsign_not_ca"));
}

TEST_F(LintFixture, KeycertsignNotCaCleanOnOrdinaryLeaf) {
  EXPECT_FALSE(has_rule(lint_cert(*leaf_), "cert.keycertsign_not_ca"));
}

TEST_F(LintFixture, AiaUrlMalformedFiresOnNonHttpUri) {
  CertificateBuilder b;
  b.as_leaf("bad-aia.example.com").aia_ca_issuers("ldap://ca.example/issuer");
  EXPECT_TRUE(has_rule(lint_cert(b.sign(*i2_id_)),
                       "cert.aia_url_malformed"));
}

TEST_F(LintFixture, AiaUrlMalformedCleanOnHttpUriAndAbsentAia) {
  CertificateBuilder good;
  good.as_leaf("good-aia.example.com")
      .aia_ca_issuers("http://repo.example/ca.der");
  EXPECT_FALSE(has_rule(lint_cert(good.sign(*i2_id_)),
                        "cert.aia_url_malformed"));
  CertificateBuilder none;
  none.as_leaf("no-aia.example.com").no_aia();
  EXPECT_FALSE(has_rule(lint_cert(none.sign(*i2_id_)),
                        "cert.aia_url_malformed"));
}

TEST_F(LintFixture, LeafNoSanFiresWhenSanAbsent) {
  CertificateBuilder b;
  b.as_leaf("san-less.example.com").subject_alt_name(std::nullopt);
  EXPECT_TRUE(has_rule(lint_cert(b.sign(*i2_id_)), "cert.leaf_no_san"));
}

TEST_F(LintFixture, LeafNoSanCleanOnConformingLeafAndCa) {
  EXPECT_FALSE(has_rule(lint_cert(*leaf_), "cert.leaf_no_san"));
  EXPECT_FALSE(has_rule(lint_cert(*i1_), "cert.leaf_no_san"));
}

// ---------------------------------------------------------------------------
// Chain-level rules: one positive, one negative each
// ---------------------------------------------------------------------------

TEST_F(LintFixture, LeafNotFirstFiresWhenLeafIsBuried) {
  const LintReport report =
      lint_chain({*i2_, *leaf_, *i1_}, "lint.example.com");
  EXPECT_TRUE(report.has("chain.leaf_not_first"));
}

TEST_F(LintFixture, LeafNotFirstCleanOnCompliantChain) {
  EXPECT_FALSE(
      lint_chain(compliant_chain(), "lint.example.com").has("chain.leaf_not_first"));
}

TEST_F(LintFixture, NoLeafIdentifiedFiresWhenNothingIsDomainShaped) {
  const LintReport report = lint_chain({*root_}, "lint.example.com");
  EXPECT_TRUE(report.has("chain.no_leaf_identified"));
}

TEST_F(LintFixture, NoLeafIdentifiedCleanOnCompliantChain) {
  EXPECT_FALSE(lint_chain(compliant_chain(), "lint.example.com")
                   .has("chain.no_leaf_identified"));
}

TEST_F(LintFixture, DuplicateCertsFiresOnRepeatedLeaf) {
  const LintReport report =
      lint_chain({*leaf_, *leaf_, *i2_, *i1_}, "lint.example.com");
  EXPECT_TRUE(report.has("chain.duplicate_certs"));
}

TEST_F(LintFixture, DuplicateCertsCleanOnCompliantChain) {
  EXPECT_FALSE(lint_chain(compliant_chain(), "lint.example.com")
                   .has("chain.duplicate_certs"));
}

TEST_F(LintFixture, IrrelevantCertsFiresOnForeignRoot) {
  const LintReport report =
      lint_chain({*leaf_, *i2_, *i1_, *foreign_root_}, "lint.example.com");
  EXPECT_TRUE(report.has("chain.irrelevant_certs"));
}

TEST_F(LintFixture, IrrelevantCertsCleanOnCompliantChain) {
  EXPECT_FALSE(lint_chain(compliant_chain(), "lint.example.com")
                   .has("chain.irrelevant_certs"));
}

TEST_F(LintFixture, MultiplePathsFiresOnCrossSignedTwin) {
  const LintReport report = lint_chain({*leaf_, *i2_, *i1_, *cross_root_, *root_},
                                       "lint.example.com");
  EXPECT_TRUE(report.has("chain.multiple_paths"));
}

TEST_F(LintFixture, MultiplePathsCleanOnCompliantChain) {
  EXPECT_FALSE(lint_chain(compliant_chain(), "lint.example.com")
                   .has("chain.multiple_paths"));
}

TEST_F(LintFixture, ReversedOrderFiresOnReversedBundle) {
  const LintReport report =
      lint_chain({*leaf_, *i1_, *i2_}, "lint.example.com");
  EXPECT_TRUE(report.has("chain.reversed_order"));
}

TEST_F(LintFixture, ReversedOrderCleanOnCompliantChain) {
  EXPECT_FALSE(lint_chain(compliant_chain(), "lint.example.com")
                   .has("chain.reversed_order"));
}

TEST_F(LintFixture, IncompleteFiresWhenIssuingIntermediateMissing) {
  const LintReport report = lint_chain({*leaf_}, "lint.example.com");
  EXPECT_TRUE(report.has("chain.incomplete"));
}

TEST_F(LintFixture, IncompleteCleanOnCompliantChain) {
  EXPECT_FALSE(
      lint_chain(compliant_chain(), "lint.example.com").has("chain.incomplete"));
}

TEST_F(LintFixture, RootIncludedFiresWhenAnchorTransmitted) {
  const LintReport report =
      lint_chain({*leaf_, *i2_, *i1_, *root_}, "lint.example.com");
  EXPECT_TRUE(report.has("chain.root_included"));
}

TEST_F(LintFixture, RootIncludedCleanWhenAnchorOmitted) {
  EXPECT_FALSE(lint_chain(compliant_chain(), "lint.example.com")
                   .has("chain.root_included"));
}

TEST_F(LintFixture, ExpiredIntermediateFiresAtReferenceTime) {
  CertificateBuilder b;
  b.subject(i2_id_->name)
      .as_ca(0)
      .public_key(i2_id_->keys.pub)
      .validity(kNb, kNow - 1000);
  const CertPtr expired_i2 = b.sign(*i1_id_);
  const LintReport report =
      lint_chain({*leaf_, expired_i2, *i1_}, "lint.example.com");
  EXPECT_TRUE(report.has("chain.expired_intermediate"));
  // Findings carry the offending position.
  for (const Finding& f : report.findings) {
    if (f.rule->id == "chain.expired_intermediate") {
      EXPECT_EQ(f.cert_index, 1);
    }
  }
  // now == 0 disables the rule.
  EXPECT_FALSE(lint_chain({*leaf_, expired_i2, *i1_}, "lint.example.com", 0)
                   .has("chain.expired_intermediate"));
}

TEST_F(LintFixture, ExpiredIntermediateCleanOnCompliantChain) {
  EXPECT_FALSE(lint_chain(compliant_chain(), "lint.example.com")
                   .has("chain.expired_intermediate"));
}

// ---------------------------------------------------------------------------
// Report structure
// ---------------------------------------------------------------------------

TEST_F(LintFixture, FindingsAreOrderedChainLevelThenByCertificate) {
  const LintReport report =
      lint_chain({*leaf_, *leaf_, *i2_, *i1_}, "lint.example.com");
  ASSERT_FALSE(report.clean());
  int last_index = -1;
  for (const Finding& f : report.findings) {
    EXPECT_GE(f.cert_index, last_index);
    last_index = f.cert_index;
  }
  EXPECT_EQ(report.certificates, 4u);
  EXPECT_EQ(report.domain, "lint.example.com");
  EXPECT_GT(report.count(Severity::kWarn), 0u);
}

// ---------------------------------------------------------------------------
// Corpus sweep determinism on the engine
// ---------------------------------------------------------------------------

class LintSweepFixture : public ::testing::Test {
 protected:
  static dataset::Corpus& corpus() {
    static dataset::Corpus* instance = [] {
      dataset::CorpusConfig config;
      config.domain_count = 2000;
      return new dataset::Corpus(std::move(config));
    }();
    return *instance;
  }

  static const chain::ComplianceAnalyzer& analyzer() {
    static chain::ComplianceAnalyzer* instance = [] {
      chain::CompletenessOptions options;
      options.store = &corpus().stores().union_store;
      options.aia = &corpus().aia();
      return new chain::ComplianceAnalyzer(options);
    }();
    return *instance;
  }

  static CorpusLintSummary sweep(unsigned threads) {
    CorpusLintRequest request;
    request.records = &corpus().records();
    request.shards.threads = threads;
    request.analyzer = &analyzer();
    request.options.now = kNow;
    return lint_corpus(request);
  }
};

// The engine promise extended to lint: per-rule tallies, the rendered
// table, and the JSON report are byte-identical at 1 vs 8 threads.
TEST_F(LintSweepFixture, SweepIsByteIdenticalAcrossThreadCounts) {
  CorpusLintSummary one = sweep(1);
  CorpusLintSummary eight = sweep(8);
  EXPECT_EQ(one.chains, corpus().records().size());
  EXPECT_EQ(one.threads_used, 1u);
  EXPECT_EQ(eight.threads_used, 8u);

  // Blank out the run-shape fields; everything measured must match.
  one.threads_used = eight.threads_used = 0;
  one.elapsed_seconds = eight.elapsed_seconds = 0.0;
  EXPECT_EQ(one, eight);
  EXPECT_EQ(summary_table(one).render(), summary_table(eight).render());
  EXPECT_EQ(summary_json(one), summary_json(eight));
}

// The injected defect mix must surface as lint findings: the corpus
// carries duplicates, reversed bundles and missing intermediates, so the
// corresponding rules all have non-zero tallies.
TEST_F(LintSweepFixture, SweepSurfacesTheCorpusDefectMix) {
  const CorpusLintSummary summary = sweep(4);
  EXPECT_GT(summary.findings, 0u);
  EXPECT_GT(summary.chains_with_findings, 0u);
  EXPECT_LE(summary.chains_with_findings, summary.chains);
  EXPECT_GT(summary.findings_by_rule.count("chain.duplicate_certs"), 0u);
  EXPECT_GT(summary.findings_by_rule.count("chain.reversed_order"), 0u);
  EXPECT_GT(summary.findings_by_rule.count("chain.incomplete"), 0u);
  // chains_by_rule never exceeds findings_by_rule.
  for (const auto& [rule, chains] : summary.chains_by_rule) {
    const auto findings = summary.findings_by_rule.find(rule);
    ASSERT_NE(findings, summary.findings_by_rule.end()) << rule;
    EXPECT_LE(chains, findings->second) << rule;
  }
}

// Lint findings and the engine's compliance tally are two views of the
// same analyzers; their headline counts must agree exactly.
TEST_F(LintSweepFixture, SweepAgreesWithComplianceTally) {
  engine::AnalysisRequest request;
  request.records = &corpus().records();
  request.shards.threads = 4;
  request.analyzer = &analyzer();
  const engine::AnalysisResult compliance = engine::run(request);
  const CorpusLintSummary summary = sweep(4);

  const auto chains_for = [&summary](const char* rule) -> std::uint64_t {
    const auto it = summary.chains_by_rule.find(rule);
    return it == summary.chains_by_rule.end() ? 0 : it->second;
  };
  EXPECT_EQ(chains_for("chain.duplicate_certs"),
            compliance.tally.compliance.duplicates);
  EXPECT_EQ(chains_for("chain.irrelevant_certs"),
            compliance.tally.compliance.irrelevant);
  EXPECT_EQ(chains_for("chain.multiple_paths"),
            compliance.tally.compliance.multiple_paths);
  EXPECT_EQ(chains_for("chain.reversed_order"),
            compliance.tally.compliance.reversed);
  EXPECT_EQ(chains_for("chain.incomplete"),
            compliance.tally.compliance.incomplete);
}

}  // namespace
}  // namespace chainchaos::lint
