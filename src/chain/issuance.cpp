#include "chain/issuance.hpp"

#include <string>
#include <unordered_map>

namespace chainchaos::chain {

KidMatch kid_match(const x509::Certificate& issuer,
                   const x509::Certificate& subject) {
  if (!issuer.subject_key_id.has_value() ||
      !subject.authority_key_id.has_value()) {
    return KidMatch::kAbsent;
  }
  return equal(*issuer.subject_key_id, *subject.authority_key_id)
             ? KidMatch::kMatch
             : KidMatch::kMismatch;
}

bool dn_links(const x509::Certificate& issuer,
              const x509::Certificate& subject) {
  return issuer.subject == subject.issuer;
}

bool plausibly_issued_by(const x509::Certificate& subject,
                         const x509::Certificate& issuer) {
  const KidMatch kid = kid_match(issuer, subject);
  if (kid == KidMatch::kMatch) return true;
  if (dn_links(issuer, subject)) return true;
  return false;
}

namespace {

struct Cache {
  std::unordered_map<std::string, bool> results;
  IssuanceCacheStats stats;
};

Cache& cache() {
  static Cache instance;
  return instance;
}

std::string pair_key(const x509::Certificate& subject,
                     const x509::Certificate& issuer) {
  std::string key;
  key.reserve(subject.fingerprint.size() + issuer.fingerprint.size());
  key.append(subject.fingerprint.begin(), subject.fingerprint.end());
  key.append(issuer.fingerprint.begin(), issuer.fingerprint.end());
  return key;
}

}  // namespace

bool issued_by(const x509::Certificate& subject,
               const x509::Certificate& issuer) {
  // Cheap field checks first: if neither the DN nor the KID links the
  // two, no signature check is needed (and no cache entry either).
  if (!plausibly_issued_by(subject, issuer)) return false;

  Cache& c = cache();
  ++c.stats.lookups;
  const std::string key = pair_key(subject, issuer);
  const auto it = c.results.find(key);
  if (it != c.results.end()) {
    ++c.stats.hits;
    return it->second;
  }
  ++c.stats.signature_checks;
  const bool verified = subject.verify_signed_by(issuer.public_key);
  c.results.emplace(key, verified);
  return verified;
}

const IssuanceCacheStats& issuance_cache_stats() {
  return cache().stats;
}

void reset_issuance_cache() {
  cache().results.clear();
  cache().stats = IssuanceCacheStats{};
}

}  // namespace chainchaos::chain
