#include "obs/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace chainchaos::obs {

namespace {

void append_labels(std::string& out, const Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += name;
    out += "=\"";
    for (const char c : value) {
      // The exposition format escapes backslash, quote and newline.
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

}  // namespace

void PromWriter::family(std::string_view name, std::string_view help,
                        std::string_view type) {
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PromWriter::sample(std::string_view name, const Labels& labels,
                        double value) {
  out_ += name;
  append_labels(out_, labels);
  out_ += ' ';
  out_ += format_double(value);
  out_ += '\n';
}

void PromWriter::sample(std::string_view name, const Labels& labels,
                        std::uint64_t value) {
  out_ += name;
  append_labels(out_, labels);
  out_ += ' ';
  out_ += std::to_string(value);
  out_ += '\n';
}

void PromWriter::histogram(std::string_view name, std::string_view help,
                           const Labels& labels,
                           const std::uint64_t* bucket_counts,
                           std::size_t bucket_count,
                           const std::uint64_t* upper_bounds,
                           double unit_per_second,
                           std::uint64_t total_units) {
  family(name, help, "histogram");
  std::uint64_t cumulative = 0;
  std::uint64_t total_count = 0;
  for (std::size_t i = 0; i < bucket_count; ++i) {
    total_count += bucket_counts[i];
  }
  const std::string bucket_name = std::string(name) + "_bucket";
  for (std::size_t i = 0; i + 1 < bucket_count; ++i) {
    cumulative += bucket_counts[i];
    Labels with_le = labels;
    with_le.emplace_back(
        "le", format_double(static_cast<double>(upper_bounds[i]) /
                            unit_per_second));
    sample(bucket_name, with_le, cumulative);
  }
  Labels inf = labels;
  inf.emplace_back("le", "+Inf");
  sample(bucket_name, inf, total_count);
  sample(std::string(name) + "_sum", labels,
         static_cast<double>(total_units) / unit_per_second);
  sample(std::string(name) + "_count", labels, total_count);
}

std::string render_stage_metrics(const StageStatsSnapshot& snapshot) {
  PromWriter w;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const StageStats& stats = snapshot[s];
    if (stats.count == 0) continue;
    const Stage stage = static_cast<Stage>(s);
    const std::string metric =
        std::string("chainchaos_stage_duration_seconds_") +
        [&] {
          // Stage names use '.'; metric-name charset does not allow it.
          std::string flat = to_string(stage);
          for (char& c : flat) {
            if (c == '.') c = '_';
          }
          return flat;
        }();
    w.histogram(metric, "Per-stage pipeline duration", {},
                stats.buckets.data(), stats.buckets.size(),
                kDurationBucketUpperNs.data(), 1e9, stats.total_ns);
  }
  return w.take();
}

// ---------------------------------------------------------------------------
// Exposition checker
// ---------------------------------------------------------------------------

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  const auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!tail(name[i])) return false;
  }
  return true;
}

bool valid_value(std::string_view token) {
  if (token == "+Inf" || token == "-Inf" || token == "NaN") return true;
  if (token.empty()) return false;
  char* end = nullptr;
  const std::string copy(token);
  std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0' && end != copy.c_str();
}

struct ParsedSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Parses one sample line; returns an error message or empty on success.
std::string parse_sample(std::string_view line, ParsedSample* out) {
  std::size_t pos = 0;
  while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
  out->name = std::string(line.substr(0, pos));
  if (!valid_metric_name(out->name)) return "bad metric name";

  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      std::size_t eq = line.find('=', pos);
      if (eq == std::string_view::npos) return "label without '='";
      const std::string label_name = std::string(line.substr(pos, eq - pos));
      if (!valid_metric_name(label_name)) return "bad label name";
      if (eq + 1 >= line.size() || line[eq + 1] != '"') {
        return "unquoted label value";
      }
      std::string value;
      std::size_t i = eq + 2;
      for (; i < line.size() && line[i] != '"'; ++i) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          ++i;
          value += line[i] == 'n' ? '\n' : line[i];
          continue;
        }
        value += line[i];
      }
      if (i >= line.size()) return "unterminated label value";
      out->labels[label_name] = value;
      pos = i + 1;
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') return "unterminated label set";
    ++pos;
  }

  if (pos >= line.size() || line[pos] != ' ') return "missing value";
  const std::string_view rest = line.substr(pos + 1);
  // Optional trailing timestamp after the value.
  const std::size_t space = rest.find(' ');
  const std::string_view value_token =
      space == std::string_view::npos ? rest : rest.substr(0, space);
  if (!valid_value(value_token)) return "bad sample value";
  if (value_token == "+Inf") {
    out->value = HUGE_VAL;
  } else if (value_token == "-Inf") {
    out->value = -HUGE_VAL;
  } else if (value_token == "NaN") {
    out->value = NAN;
  } else {
    out->value = std::strtod(std::string(value_token).c_str(), nullptr);
  }
  return {};
}

/// Family name of a sample: histogram series fold into their base name.
std::string family_of(const std::string& name,
                      const std::map<std::string, std::string>& types) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::size_t len = std::string(suffix).size();
    if (name.size() > len &&
        name.compare(name.size() - len, len, suffix) == 0) {
      const std::string base = name.substr(0, name.size() - len);
      const auto it = types.find(base);
      if (it != types.end() && it->second == "histogram") return base;
    }
  }
  return name;
}

}  // namespace

Result<std::size_t> check_exposition(std::string_view text) {
  if (text.empty()) return make_error("prom.empty", "no exposition content");
  if (text.back() != '\n') {
    return make_error("prom.trailing", "document must end with a newline");
  }

  std::map<std::string, std::string> types;  // family -> type
  struct HistogramState {
    std::uint64_t last_bucket = 0;
    bool saw_inf = false;
    bool saw_sum = false;
    bool saw_count = false;
    std::uint64_t inf_count = 0;
  };
  std::map<std::string, HistogramState> histograms;  // family+labels key
  std::size_t samples = 0;
  std::size_t line_no = 0;

  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // Only HELP/TYPE comments carry structure; anything else is free text.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          return make_error("prom.type", "TYPE line without a type at line " +
                                             std::to_string(line_no));
        }
        const std::string name = std::string(rest.substr(0, space));
        const std::string type = std::string(rest.substr(space + 1));
        if (!valid_metric_name(name)) {
          return make_error("prom.type", "bad family name at line " +
                                             std::to_string(line_no));
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return make_error("prom.type",
                            "unknown type '" + type + "' at line " +
                                std::to_string(line_no));
        }
        if (types.count(name) != 0) {
          return make_error("prom.type", "duplicate TYPE for " + name);
        }
        types[name] = type;
      }
      continue;
    }

    ParsedSample sample;
    const std::string problem = parse_sample(line, &sample);
    if (!problem.empty()) {
      return make_error("prom.sample",
                        problem + " at line " + std::to_string(line_no));
    }
    ++samples;

    const std::string family = family_of(sample.name, types);
    const auto type_it = types.find(family);
    if (type_it == types.end()) {
      return make_error("prom.untyped", "sample '" + sample.name +
                                            "' has no preceding TYPE");
    }

    if (type_it->second == "histogram") {
      std::string key = family;
      for (const auto& [label, value] : sample.labels) {
        if (label == "le") continue;
        key += ';' + label + '=' + value;
      }
      HistogramState& state = histograms[key];
      if (sample.name == family + "_bucket") {
        const auto le = sample.labels.find("le");
        if (le == sample.labels.end()) {
          return make_error("prom.histogram",
                            "bucket without le label at line " +
                                std::to_string(line_no));
        }
        const std::uint64_t count =
            static_cast<std::uint64_t>(sample.value);
        if (count < state.last_bucket) {
          return make_error("prom.histogram",
                            "non-monotonic buckets for " + family);
        }
        state.last_bucket = count;
        if (le->second == "+Inf") {
          state.saw_inf = true;
          state.inf_count = count;
        }
      } else if (sample.name == family + "_sum") {
        state.saw_sum = true;
      } else if (sample.name == family + "_count") {
        state.saw_count = true;
        if (state.saw_inf &&
            static_cast<std::uint64_t>(sample.value) != state.inf_count) {
          return make_error("prom.histogram",
                            "_count disagrees with +Inf bucket for " +
                                family);
        }
      }
    }
  }

  for (const auto& [key, state] : histograms) {
    if (!state.saw_inf || !state.saw_sum || !state.saw_count) {
      return make_error("prom.histogram",
                        "incomplete histogram family: " + key);
    }
  }
  if (samples == 0) {
    return make_error("prom.empty", "no samples in exposition");
  }
  return samples;
}

}  // namespace chainchaos::obs
