#include "lint/sweep.hpp"

#include <string_view>

#include "report/json.hpp"

namespace chainchaos::lint {

namespace {

constexpr std::string_view kFindingsPrefix = "lint.findings/";
constexpr std::string_view kChainsPrefix = "lint.chains/";
constexpr std::string_view kChainsWithFindings = "lint.chains_with_findings";

}  // namespace

CorpusLintSummary lint_corpus(const CorpusLintRequest& request) {
  CorpusLintSummary summary;
  if ((request.records == nullptr && request.source == nullptr) ||
      request.analyzer == nullptr) {
    return summary;
  }

  const Linter linter(request.options);
  engine::AnalysisRequest engine_request;
  engine_request.records = request.records;
  engine_request.source = request.source;
  engine_request.shards = request.shards;
  engine_request.analyzer = request.analyzer;
  engine_request.per_record =
      [&linter](const dataset::DomainRecord& record, std::size_t,
                const chain::ComplianceReport* report,
                engine::ShardTally& tally) {
        const LintReport lint_report =
            linter.lint(record.observation, *report);
        if (lint_report.clean()) return;
        ++tally.counters[std::string(kChainsWithFindings)];
        // Findings arrive grouped by rule only incidentally; count per
        // rule, then mark each rule once for the chains-affected tally.
        std::map<std::string_view, std::uint64_t> per_rule;
        for (const Finding& finding : lint_report.findings) {
          ++per_rule[finding.rule->id];
        }
        for (const auto& [rule_id, count] : per_rule) {
          tally.counters[std::string(kFindingsPrefix) +
                         std::string(rule_id)] += count;
          ++tally.counters[std::string(kChainsPrefix) +
                           std::string(rule_id)];
        }
      };

  const engine::AnalysisResult result = engine::run(engine_request);

  summary.chains = result.records_processed;
  summary.threads_used = result.threads_used;
  summary.elapsed_seconds = result.elapsed_seconds;
  for (const auto& [key, count] : result.tally.counters) {
    const std::string_view k = key;
    if (k == kChainsWithFindings) {
      summary.chains_with_findings = count;
    } else if (k.substr(0, kFindingsPrefix.size()) == kFindingsPrefix) {
      const std::string rule_id(k.substr(kFindingsPrefix.size()));
      summary.findings_by_rule[rule_id] = count;
      summary.findings += count;
      if (const Rule* rule = find_rule(rule_id)) {
        summary.findings_by_severity[static_cast<std::size_t>(
            rule->severity)] += count;
      }
    } else if (k.substr(0, kChainsPrefix.size()) == kChainsPrefix) {
      summary.chains_by_rule[std::string(k.substr(kChainsPrefix.size()))] =
          count;
    }
  }
  return summary;
}

report::Table summary_table(const CorpusLintSummary& summary) {
  report::Table table("chainlint corpus sweep");
  table.header({"rule", "severity", "citation", "findings", "chains"});
  for (const Rule* rule : all_rules()) {
    const auto findings = summary.findings_by_rule.find(std::string(rule->id));
    const auto chains = summary.chains_by_rule.find(std::string(rule->id));
    const std::uint64_t finding_count =
        findings == summary.findings_by_rule.end() ? 0 : findings->second;
    const std::uint64_t chain_count =
        chains == summary.chains_by_rule.end() ? 0 : chains->second;
    table.row({std::string(rule->id), to_string(rule->severity),
               std::string(rule->citation),
               report::with_commas(finding_count),
               report::count_pct(chain_count, summary.chains)});
  }
  table.row({"(any rule)", "", "", report::with_commas(summary.findings),
             report::count_pct(summary.chains_with_findings,
                               summary.chains)});
  return table;
}

std::string summary_json(const CorpusLintSummary& summary) {
  report::JsonWriter json;
  json.begin_object();
  json.key("chains").value(summary.chains);
  json.key("chains_with_findings").value(summary.chains_with_findings);
  json.key("findings").value(summary.findings);

  json.key("by_severity").begin_object();
  for (std::size_t s = 0; s < kSeverityCount; ++s) {
    json.key(to_string(static_cast<Severity>(s)))
        .value(summary.findings_by_severity[s]);
  }
  json.end_object();

  json.key("rules").begin_array();
  for (const Rule* rule : all_rules()) {
    const auto findings = summary.findings_by_rule.find(std::string(rule->id));
    const auto chains = summary.chains_by_rule.find(std::string(rule->id));
    json.begin_object();
    json.key("id").value(rule->id);
    json.key("severity").value(to_string(rule->severity));
    json.key("citation").value(rule->citation);
    json.key("description").value(rule->description);
    json.key("findings")
        .value(findings == summary.findings_by_rule.end() ? 0
                                                          : findings->second);
    json.key("chains").value(
        chains == summary.chains_by_rule.end() ? 0 : chains->second);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

}  // namespace chainchaos::lint
