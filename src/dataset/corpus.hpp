// Corpus: the synthetic Tranco-like measurement dataset.
//
// Substitutes for the paper's live TLS scans (see DESIGN.md §2): a
// deterministic population of domains whose chains carry the calibrated
// defect mix of CorpusConfig, plus the paper's named case-study domains
// as exemplars. The corpus owns the shared infrastructure every analysis
// needs — the AIA repository, the four program root stores, the CA zoo —
// so benches and tests construct exactly one object.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chain/analyzer.hpp"
#include "dataset/config.hpp"
#include "dataset/defects.hpp"
#include "dataset/zoo.hpp"
#include "net/aia_repository.hpp"
#include "truststore/root_store.hpp"

namespace chainchaos::dataset {

struct DomainRecord {
  chain::ChainObservation observation;

  // Ground-truth generation labels (what was injected). The analyzers
  // never see these; tests compare analyzer output against them.
  DefectType primary_defect = DefectType::kNone;
  DefectType leaf_defect = DefectType::kNone;
  bool root_included = false;
  bool rare_hierarchy = false;      ///< cache-defeating incomplete chain
  bool akidless_terminal = false;   ///< Table 8 no-AIA sensitivity
  bool exclusive_store_domain = false;  ///< Table 8 with-AIA sensitivity
  int missing_count = 0;            ///< for missing-intermediate defects
  bool exemplar = false;
  std::string exemplar_name;        ///< e.g. "moex.gov.tw"
};

class Corpus {
 public:
  explicit Corpus(CorpusConfig config);

  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;

  const CorpusConfig& config() const { return config_; }
  const std::vector<DomainRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  net::AiaRepository& aia() { return *aia_; }
  const net::AiaRepository& aia() const { return *aia_; }
  const truststore::ProgramStores& stores() const { return stores_; }
  CaZoo& zoo() { return *zoo_; }
  const CaZoo& zoo() const { return *zoo_; }

  /// Finds an exemplar by its case-study name; nullptr if absent.
  const DomainRecord* exemplar(const std::string& name) const;

 private:
  void generate_statistical_records();
  void append_exemplars();

  CorpusConfig config_;
  std::unique_ptr<net::AiaRepository> aia_;
  std::unique_ptr<CaZoo> zoo_;
  truststore::ProgramStores stores_;
  std::vector<DomainRecord> records_;
};

/// Deterministic pseudo-word domain for index i; TAIWAN-CA customers get
/// .gov.tw names (the population the paper's I-1/I-3 findings live in).
std::string synth_domain(Rng& rng, std::size_t index,
                         const std::string& ca_name);

}  // namespace chainchaos::dataset
