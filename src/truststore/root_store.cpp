#include "truststore/root_store.hpp"

#include <stdexcept>

namespace chainchaos::truststore {

void RootStore::add(x509::CertPtr root) {
  if (!root) return;
  if (contains(*root)) return;
  roots_.push_back(std::move(root));
}

bool RootStore::contains(const x509::Certificate& cert) const {
  for (const x509::CertPtr& root : roots_) {
    if (equal(root->fingerprint, cert.fingerprint)) return true;
  }
  return false;
}

std::vector<x509::CertPtr> RootStore::find_by_key_id(BytesView akid) const {
  std::vector<x509::CertPtr> out;
  for (const x509::CertPtr& root : roots_) {
    if (root->subject_key_id.has_value() && equal(*root->subject_key_id, akid)) {
      out.push_back(root);
    }
  }
  return out;
}

std::vector<x509::CertPtr> RootStore::find_by_subject(
    const asn1::Name& issuer_dn) const {
  std::vector<x509::CertPtr> out;
  for (const x509::CertPtr& root : roots_) {
    if (root->subject == issuer_dn) out.push_back(root);
  }
  return out;
}

RootStore RootStore::merged_with(const RootStore& other,
                                 std::string merged_name) const {
  RootStore merged(std::move(merged_name));
  for (const x509::CertPtr& root : roots_) merged.add(root);
  for (const x509::CertPtr& root : other.roots()) merged.add(root);
  return merged;
}

const RootStore& ProgramStores::by_name(std::string_view name) const {
  if (name == "mozilla") return mozilla;
  if (name == "chrome") return chrome;
  if (name == "microsoft") return microsoft;
  if (name == "apple") return apple;
  if (name == "union") return union_store;
  throw std::invalid_argument("unknown root store: " + std::string(name));
}

ProgramStores make_program_stores(
    const std::vector<x509::CertPtr>& core,
    const std::vector<std::pair<x509::CertPtr, unsigned>>& exclusive) {
  ProgramStores stores;
  stores.mozilla = RootStore("mozilla");
  stores.chrome = RootStore("chrome");
  stores.microsoft = RootStore("microsoft");
  stores.apple = RootStore("apple");
  stores.union_store = RootStore("union");

  for (const x509::CertPtr& root : core) {
    stores.mozilla.add(root);
    stores.chrome.add(root);
    stores.microsoft.add(root);
    stores.apple.add(root);
    stores.union_store.add(root);
  }
  for (const auto& [root, mask] : exclusive) {
    if (mask & 1u) stores.mozilla.add(root);
    if (mask & 2u) stores.chrome.add(root);
    if (mask & 4u) stores.microsoft.add(root);
    if (mask & 8u) stores.apple.add(root);
    stores.union_store.add(root);
  }
  return stores;
}

}  // namespace chainchaos::truststore
