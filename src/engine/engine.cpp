#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "obs/event_log.hpp"
#include "obs/trace.hpp"

namespace chainchaos::engine {

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t resolve_shard_size(std::size_t count, unsigned threads,
                               std::size_t requested) {
  if (requested > 0) return requested;
  // Several shards per worker so the stealing cursor can balance uneven
  // per-record costs, but shards big enough to amortize the cursor
  // traffic.
  const std::size_t target_shards = static_cast<std::size_t>(threads) * 8;
  return std::clamp<std::size_t>(count / std::max<std::size_t>(target_shards, 1),
                                 1, 4096);
}

void for_each_shard(std::size_t count, const ShardOptions& options,
                    const std::function<void(std::size_t, std::size_t,
                                             unsigned)>& shard_fn) {
  if (count == 0) return;
  const unsigned threads = resolve_threads(options.threads);
  const std::size_t shard = resolve_shard_size(count, threads,
                                               options.shard_size);
  const std::size_t shards = (count + shard - 1) / shard;

  std::atomic<std::size_t> cursor{0};
  const auto worker_loop = [&](unsigned worker) {
    CHAINCHAOS_SPAN(obs::Stage::kEngineSweep);
    std::uint64_t idle_since = 0;
    for (;;) {
      const std::size_t s = cursor.fetch_add(1, std::memory_order_relaxed);
      if (s >= shards) return;
      const std::size_t first = s * shard;
      const std::size_t last = std::min(first + shard, count);
#ifndef CHAINCHAOS_OBS_DISABLED
      // Steal gap: time between finishing the previous shard on this
      // worker and claiming the next one. Histogram-only — the interval
      // is cursor traffic, not nested work, so it gets no span.
      if (obs::Tracer::instance().enabled()) {
        const std::uint64_t claimed_at = obs::Tracer::now_ns();
        if (idle_since != 0) {
          obs::Tracer::instance().record_duration(
              obs::Stage::kEngineSteal, claimed_at - idle_since);
        }
      }
#endif
      {
        CHAINCHAOS_SPAN(obs::Stage::kEngineShard);
        shard_fn(first, last, worker);
      }
#ifndef CHAINCHAOS_OBS_DISABLED
      if (obs::Tracer::instance().enabled()) {
        idle_since = obs::Tracer::now_ns();
      }
#endif
    }
  };

  if (threads <= 1 || shards <= 1) {
    worker_loop(0);
    return;
  }
  std::vector<std::thread> pool;
  const unsigned spawned = static_cast<unsigned>(
      std::min<std::size_t>(threads - 1, shards - 1));
  pool.reserve(spawned);
  for (unsigned w = 1; w <= spawned; ++w) {
    pool.emplace_back(worker_loop, w);
  }
  worker_loop(0);  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
}

AnalysisResult run(const AnalysisRequest& request) {
  AnalysisResult result;
  const VectorRecordSource vector_source(request.records);
  const RecordSource* source =
      request.source != nullptr ? request.source : &vector_source;
  if (request.source == nullptr && request.records == nullptr) return result;
  const std::size_t count = source->size();

  const unsigned threads = resolve_threads(request.shards.threads);
  result.threads_used = threads;
  if (count > 0) {
    const std::size_t shard =
        resolve_shard_size(count, threads, request.shards.shard_size);
    result.shard_count = (count + shard - 1) / shard;
  }

  struct WorkerState {
    ShardTally tally;
    std::size_t processed = 0;
    std::size_t skipped = 0;
  };
  std::vector<WorkerState> workers(threads);

  // Resolve the sweep's memo once; every worker installs it as its
  // thread-local scope so verification deep in the analyzers (issuance
  // predicate, self-signed checks, path building) lands in the shared
  // memo without a parameter threaded through each layer. Scoping also
  // pins worker 0 (the calling thread), which might otherwise carry an
  // unrelated caller scope into the sweep.
  crypto::VerifyMemo* memo =
      request.verify_memo_enabled
          ? (request.verify_memo != nullptr ? request.verify_memo
                                            : &crypto::process_verify_memo())
          : nullptr;
  const crypto::VerifyMemoStats memo_before =
      memo != nullptr ? memo->stats() : crypto::VerifyMemoStats{};

  // Progress accounting rides shared relaxed atomics the shard loop
  // bumps as ranges finish; the reporting path reads only these and the
  // clock, never the tallies, so progress on/off cannot change the
  // sweep's byte-identical summary.
  std::atomic<std::size_t> records_done{0};
  std::atomic<std::size_t> shards_done{0};
  std::atomic<std::int64_t> last_report_ms{0};

  const auto start = std::chrono::steady_clock::now();

  const auto emit_progress = [&](bool final_report, double elapsed) {
    SweepProgress p;
    p.records_done = records_done.load(std::memory_order_relaxed);
    p.records_total = count;
    p.shards_done = shards_done.load(std::memory_order_relaxed);
    p.shard_count = result.shard_count;
    p.elapsed_seconds = elapsed;
    p.records_per_second =
        elapsed > 0.0 ? static_cast<double>(p.records_done) / elapsed : 0.0;
    const std::size_t remaining = count - p.records_done;
    p.eta_seconds = p.records_per_second > 0.0
                        ? static_cast<double>(remaining) / p.records_per_second
                        : 0.0;
    p.final_report = final_report;
    if (request.progress != nullptr) request.progress->on_progress(p);
    if (obs::EventLog::instance().enabled()) {
      obs::EventLog::instance().emit(
          obs::EventLevel::kInfo, "sweep.progress",
          std::to_string(p.shards_done) + "/" + std::to_string(p.shard_count) +
              " shards",
          p.records_done);
    }
  };
  const bool report_progress =
      request.progress != nullptr || obs::EventLog::instance().enabled();

  for_each_shard(
      count, request.shards,
      [&](std::size_t first, std::size_t last, unsigned worker) {
        const crypto::VerifyMemoScope memo_scope(memo);
        WorkerState& state = workers[worker];
        source->visit(
            first, last,
            [&](const dataset::DomainRecord& record, std::size_t i) {
              if (request.filter && !request.filter(record)) {
                ++state.skipped;
                return;
              }
              ++state.processed;
              chain::ComplianceReport report;
              const chain::ComplianceReport* report_ptr = nullptr;
              if (request.analyzer != nullptr) {
                report = request.analyzer->analyze(record.observation);
                report_ptr = &report;
                state.tally.compliance.account(report);
                if (request.key_of) {
                  state.tally.by_key[request.key_of(record)].account(report);
                }
              }
              if (request.per_record) {
                request.per_record(record, i, report_ptr, state.tally);
              }
            });
        records_done.fetch_add(last - first, std::memory_order_relaxed);
        shards_done.fetch_add(1, std::memory_order_relaxed);
        if (report_progress) {
          // Whichever worker crosses the interval first wins the CAS and
          // delivers the report; losers skip, so reports never pile up.
          const auto now = std::chrono::steady_clock::now();
          const std::int64_t elapsed_ms =
              std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                                    start)
                  .count();
          std::int64_t prev = last_report_ms.load(std::memory_order_relaxed);
          if (elapsed_ms - prev >=
                  static_cast<std::int64_t>(request.progress_interval_ms) &&
              last_report_ms.compare_exchange_strong(
                  prev, elapsed_ms, std::memory_order_relaxed)) {
            emit_progress(false, static_cast<double>(elapsed_ms) / 1000.0);
          }
        }
      });
  const auto stop = std::chrono::steady_clock::now();
  result.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  if (report_progress && count > 0) {
    emit_progress(true, result.elapsed_seconds);
  }

  if (memo != nullptr) {
    const crypto::VerifyMemoStats after = memo->stats();
    result.verify_memo.lookups = after.lookups - memo_before.lookups;
    result.verify_memo.hits = after.hits - memo_before.hits;
    result.verify_memo.misses = after.misses - memo_before.misses;
    result.verify_memo.insertions = after.insertions - memo_before.insertions;
    result.verify_memo.evictions = after.evictions - memo_before.evictions;
    result.verify_memo.entries = after.entries;
  }

  for (const WorkerState& state : workers) {
    result.tally.merge(state.tally);
    result.records_processed += state.processed;
    result.records_skipped += state.skipped;
  }
  return result;
}

}  // namespace chainchaos::engine
