// The verification front door (DESIGN.md §5.12).
//
// Every signature check in the library — Certificate::verify_signed_by,
// the issuance predicate, the daemon's request paths — funnels through
// crypto::Verifier. That single entry point is what makes the two perf
// levers compose: the per-key Montgomery context (RsaPublicKey::accel)
// removes the per-exponentiation setup, and the sweep-wide VerifyMemo
// removes repeat exponentiations entirely (heavily shared intermediates
// mean the same (TBS, issuer key, signature) triple is checked thousands
// of times per corpus).
//
// It is also the PQC seam for ROADMAP item 5: keys are algorithm-tagged
// PublicKey values, so a new signature family is a new enum case plus a
// verify branch — x509 and the analyzers never hardcode RSA again.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "crypto/rsa.hpp"
#include "support/bytes.hpp"

namespace chainchaos::crypto {

/// Signature families the library can verify. One live member today;
/// the tag exists so certificates and stores stay algorithm-agnostic.
enum class SignatureAlgorithm : std::uint8_t {
  kRsaSha256,  ///< PKCS#1-v1.5-style RSA over SHA-256
};

const char* to_string(SignatureAlgorithm algorithm);

/// Algorithm-tagged public key (variant-style). RsaPublicKey converts
/// implicitly, so existing construction sites keep reading naturally;
/// consumers dispatch on algorithm() instead of assuming RSA.
class PublicKey {
 public:
  PublicKey() = default;
  /*implicit*/ PublicKey(RsaPublicKey rsa)
      : algorithm_(SignatureAlgorithm::kRsaSha256), rsa_(std::move(rsa)) {}

  SignatureAlgorithm algorithm() const { return algorithm_; }
  bool is_rsa() const { return algorithm_ == SignatureAlgorithm::kRsaSha256; }

  /// The RSA payload. Only meaningful when is_rsa(); a future PQC
  /// member would sit alongside with its own accessor.
  const RsaPublicKey& rsa() const { return rsa_; }

  /// Signature width in bytes for this key (RSA: modulus bytes).
  std::size_t signature_width() const { return rsa_.modulus_bytes(); }

  /// Bytes that feed key-identifier derivation (SKID) and the memo's
  /// key fingerprint.
  Bytes fingerprint_material() const { return rsa_.fingerprint_material(); }

  /// Cached SHA-256 of fingerprint_material() (via the key accel).
  const Bytes& fingerprint() const { return rsa_.accel().fingerprint; }

  bool operator==(const PublicKey& o) const {
    return algorithm_ == o.algorithm_ && rsa_ == o.rsa_;
  }

 private:
  SignatureAlgorithm algorithm_ = SignatureAlgorithm::kRsaSha256;
  RsaPublicKey rsa_;
};

/// Mergeable snapshot of one memo's counters. Deltas of two snapshots
/// are themselves valid stats (all members are monotonic sums except
/// `entries`, a gauge).
struct VerifyMemoStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  ///< resident entries (gauge, not a sum)

  double hit_ratio() const {
    return lookups > 0 ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  }
};

/// Sweep-wide signature-verification memo. Mutex-striped exactly like
/// the issuance memo (64 shards, one uncontended lock per lookup), so
/// every engine worker can share one instance; counters are atomics and
/// therefore mergeable across workers by construction.
///
/// Keying (the determinism-critical detail): the memo key is
/// SHA-256(TBS DER) || key fingerprint || signature bytes — injective
/// over the triple because the first two parts are fixed-width.
/// Folding the signature in goes beyond the obvious (TBS, key) pair on
/// purpose — chaos-mutated corpora contain same-TBS/different-signature
/// certificates, and a signature-blind key would make results depend on
/// insertion order, breaking the engine's byte-identical-tallies
/// contract. With the signature in the key, a memoized answer is always
/// exactly the answer the full verification would produce.
class VerifyMemo {
 public:
  /// `max_entries_per_shard` bounds residency; a full shard is cleared
  /// wholesale before the next insert (cheap, and correctness never
  /// depends on retention).
  explicit VerifyMemo(std::size_t max_entries_per_shard = 1u << 16);

  VerifyMemo(const VerifyMemo&) = delete;
  VerifyMemo& operator=(const VerifyMemo&) = delete;

  /// The verified bit for `key`, if present. Counts a lookup.
  std::optional<bool> lookup(const Bytes& key);

  /// Records the verification outcome for `key`.
  void insert(const Bytes& key, bool verified);

  VerifyMemoStats stats() const;

  /// Drops all entries and zeroes the counters. Must not race a sweep.
  void reset();

 private:
  static constexpr std::size_t kShardCount = 64;

  /// Memo keys start with a SHA-256 digest, so their leading bytes are
  /// already uniform: the map hash is an identity read of the first 8
  /// bytes, and shard selection uses the last byte (signature tail —
  /// modexp output, also uniform, and disjoint from the bucket bits).
  struct KeyHash {
    std::size_t operator()(const Bytes& key) const;
  };

  struct Shard {
    mutable std::mutex mutex;  ///< stats() locks shards of a const memo
    std::unordered_map<Bytes, bool, KeyHash> entries;
  };

  Shard shards_[kShardCount];
  std::size_t max_entries_per_shard_;
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// The process-wide memo: what Verifier::current() uses when no scope
/// overrides it. The daemon accumulates into this one across requests,
/// which is what /v1/stats and /v1/metrics export.
VerifyMemo& process_verify_memo();

/// Thread-local memo override, installed by engine workers so a sweep
/// can direct all of its verifications into one request-owned memo —
/// or disable memoization entirely (scope over nullptr) for the
/// memo-on/off determinism checks. Nests; the destructor restores the
/// previous scope.
class VerifyMemoScope {
 public:
  explicit VerifyMemoScope(VerifyMemo* memo);
  ~VerifyMemoScope();

  VerifyMemoScope(const VerifyMemoScope&) = delete;
  VerifyMemoScope& operator=(const VerifyMemoScope&) = delete;

 private:
  VerifyMemo* previous_memo_;
  bool previous_active_;
};

/// Process-wide computation counters: how many signature checks ran the
/// exponentiation, and on which path. Memo hits never reach these.
struct VerifierStats {
  std::uint64_t verifications = 0;  ///< full checks (montgomery + classic)
  std::uint64_t montgomery = 0;     ///< odd modulus: CIOS fast path
  std::uint64_t classic = 0;        ///< even/trivial modulus fallback
};

/// The single verification entry point. A Verifier is a cheap value
/// (one memo pointer); current() resolves the active memo (thread
/// scope, else the process memo).
class Verifier {
 public:
  /// `memo` may be nullptr: verify without memoization.
  explicit Verifier(VerifyMemo* memo) : memo_(memo) {}

  /// The verifier every call site should use.
  static Verifier current();

  /// Verifies `signature` over `message` under `key`. Dispatches on the
  /// key's algorithm tag; opens a crypto.verify span; consults the memo
  /// (when one is attached) before doing the exponentiation.
  bool verify(const PublicKey& key, BytesView message,
              BytesView signature) const;

  static VerifierStats computation_stats();
  static void reset_computation_stats();

  /// Bench/CI hook: when true, verify runs the classic ladder even
  /// where a Montgomery context is available, so bench/crypto_verify
  /// can measure the fast path's end-to-end sweep speedup against the
  /// schoolbook baseline in one binary. Not for production use.
  static void set_force_classic(bool force);

 private:
  VerifyMemo* memo_;
};

/// Flattened snapshot for the observability layer: the process memo's
/// counters plus the computation counters, as /v1/stats and the
/// Prometheus exposition render them.
struct VerifySnapshot {
  VerifyMemoStats memo;
  VerifierStats computation;
};

VerifySnapshot verify_snapshot();

}  // namespace chainchaos::crypto
