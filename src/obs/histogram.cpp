#include "obs/histogram.hpp"

namespace chainchaos::obs {

std::size_t duration_bucket(std::uint64_t ns) {
  for (std::size_t i = 0; i < kDurationBucketUpperNs.size(); ++i) {
    if (ns <= kDurationBucketUpperNs[i]) return i;
  }
  return kDurationBucketUpperNs.size();
}

double quantile_from_buckets(const std::uint64_t* counts,
                             std::size_t bucket_count,
                             const std::uint64_t* upper_bounds, double q) {
  if (bucket_count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < bucket_count; ++i) total += counts[i];
  if (total == 0) return 0.0;

  // Continuous rank in [0, total]; rank r falls in the first bucket
  // whose cumulative count reaches it.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucket_count; ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      if (i == bucket_count - 1) {
        // +Inf bucket: clamp to the largest finite bound.
        return bucket_count >= 2
                   ? static_cast<double>(upper_bounds[bucket_count - 2])
                   : 0.0;
      }
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(upper_bounds[i - 1]);
      const double upper = static_cast<double>(upper_bounds[i]);
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      return lower + (upper - lower) * fraction;
    }
    cumulative = next;
  }
  return static_cast<double>(upper_bounds[bucket_count - 2]);
}

}  // namespace chainchaos::obs
