#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/trace.hpp"
#include "support/str.hpp"

namespace chainchaos::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Granularity of the shutdown-responsiveness polls: both the acceptor
/// and blocked readers wake this often to check the stopping flag.
constexpr int kPollIntervalMs = 50;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

/// Sends the whole buffer, honouring the deadline. Returns false on any
/// error or timeout (the connection is then abandoned).
bool send_all(int fd, const std::uint8_t* data, std::size_t size,
              Clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int wait = std::min(kPollIntervalMs, remaining_ms(deadline));
      if (wait == 0) return false;
      struct pollfd pfd = {fd, POLLOUT, 0};
      ::poll(&pfd, 1, wait);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool send_response(int fd, const net::HttpResponse& response,
                   int write_timeout_ms) {
  const Bytes wire = response.encode();
  return send_all(fd, wire.data(), wire.size(),
                  Clock::now() + std::chrono::milliseconds(write_timeout_ms));
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(config),
      cache_(config.cache_capacity, config.cache_shards),
      handler_(config.handler, &cache_, &metrics_) {}

Server::~Server() { stop(); }

Result<std::uint16_t> Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return make_error("service.socket", std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return make_error("service.bind", detail);
  }
  if (::listen(listen_fd_, 128) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return make_error("service.listen", detail);
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  started_ = true;
  stopping_.store(false);
  const unsigned workers = config_.workers == 0 ? 1 : config_.workers;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
  return port_;
}

void Server::stop() {
  if (!started_) return;
  stopping_.store(true);
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void Server::acceptor_loop() {
  while (!stopping_.load()) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout (stop check) or EINTR

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;  // listening socket is gone
    }

    // Bound blocking sends so a peer that stops reading cannot pin a
    // worker past the write deadline (reads are already poll()-driven).
    timeval send_timeout{};
    send_timeout.tv_sec = config_.write_timeout_ms / 1000;
    send_timeout.tv_usec = (config_.write_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof send_timeout);

    bool accepted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() < config_.queue_capacity) {
        queue_.push_back(QueuedConnection{fd, Clock::now()});
        metrics_.note_queue_depth(queue_.size());
        accepted = true;
      }
    }
    if (accepted) {
      queue_cv_.notify_one();
    } else {
      // Backpressure: answer immediately instead of queueing unboundedly.
      metrics_.record_rejected();
      send_response(fd, busy_response(config_.retry_after_seconds),
                    config_.write_timeout_ms);
      ::close(fd);
    }
  }
}

int Server::dequeue() {
  QueuedConnection next;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_cv_.wait(lock,
                   [this] { return stopping_.load() || !queue_.empty(); });
    if (queue_.empty()) return -1;  // stopping and fully drained
    next = queue_.front();
    queue_.pop_front();
  }
  const auto wait_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - next.enqueued)
                           .count();
  metrics_.record_queue_wait(static_cast<std::uint64_t>(wait_us));
#ifndef CHAINCHAOS_OBS_DISABLED
  // Cross-thread interval (acceptor enqueued, worker dequeued): histogram
  // only, no span — a span needs a single owning thread stack.
  if (obs::Tracer::instance().enabled()) {
    obs::Tracer::instance().record_duration(
        obs::Stage::kServiceQueueWait,
        static_cast<std::uint64_t>(wait_us) * 1000);
  }
#endif
  return next.fd;
}

void Server::worker_loop() {
  // Keep serving until the queue is drained even when stopping: graceful
  // shutdown completes queued work rather than dropping it.
  for (int fd = dequeue(); fd >= 0; fd = dequeue()) {
    try {
      serve_connection(fd);
    } catch (...) {
      // Crash-free contract: a connection must never cost a worker
      // thread. Anything a handler throws (bad_alloc under memory
      // pressure, a defect surfaced by the chaos campaign) is absorbed
      // here; the fd is closed and the worker lives to dequeue the next
      // connection. The counter makes the event visible in /v1/stats.
      metrics_.record_worker_recovery();
      ::close(fd);
    }
  }
}

void Server::serve_connection(int fd) {
  std::string buffer;
  bool keep_alive = true;
  while (keep_alive) {
    // --- read one request frame ---------------------------------------
    const auto read_deadline =
        Clock::now() + std::chrono::milliseconds(config_.read_timeout_ms);
    std::size_t frame_bytes = 0;
    bool fatal = false;
    // service.read measures first-byte-to-complete-frame, so idle
    // keep-alive time between requests never pollutes the stage.
    std::uint64_t read_begin_ns =
        !buffer.empty() && obs::Tracer::instance().enabled()
            ? obs::Tracer::now_ns()
            : 0;
    while (frame_bytes == 0) {
      auto probe = net::probe_request_frame(buffer);
      if (!probe.ok()) {
        // Hostile or broken framing (oversized headers, bad
        // Content-Length): reject and drop the connection.
        net::HttpResponse error = json_error(
            probe.error().code == "http.headers_too_large" ? 431 : 400,
            "Bad Request", probe.error().code, probe.error().message);
        error.headers["connection"] = "close";
        send_response(fd, error, config_.write_timeout_ms);
        metrics_.record_response(error.status, 0);
        fatal = true;
        break;
      }
      if (probe.value().complete) {
        frame_bytes = probe.value().total_bytes;
        break;
      }
      const int wait = std::min(kPollIntervalMs, remaining_ms(read_deadline));
      if (wait == 0 && remaining_ms(read_deadline) == 0) {
        fatal = true;  // idle past the deadline: close silently
        break;
      }
      struct pollfd pfd = {fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, wait);
      if (ready <= 0) {
        if (stopping_.load() && buffer.empty()) {
          // Shutting down, no request started and none pending on this
          // connection — nothing in flight to drain.
          fatal = true;
          break;
        }
        continue;
      }
      char chunk[16384];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n == 0) {
        // Peer closed. Between requests (empty buffer) that is a normal
        // keep-alive teardown; with a request partially buffered it is a
        // mid-request disconnect, counted so the chaos harness can see
        // the server shrug it off.
        if (!buffer.empty()) metrics_.record_client_disconnect();
        fatal = true;
        break;
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        // ECONNRESET and friends: same taxonomy as the EOF case above.
        if (!buffer.empty()) metrics_.record_client_disconnect();
        fatal = true;
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      if (read_begin_ns == 0 && obs::Tracer::instance().enabled()) {
        read_begin_ns = obs::Tracer::now_ns();
      }
    }
    if (fatal) break;
    if (read_begin_ns != 0) {
      obs::Tracer::instance().record_duration(
          obs::Stage::kServiceRead, obs::Tracer::now_ns() - read_begin_ns);
    }

    // --- parse, dispatch, respond --------------------------------------
    const auto start = Clock::now();
    auto request = net::parse_request(buffer.substr(0, frame_bytes));
    buffer.erase(0, frame_bytes);

    // Correlate every span this request produces with the caller-chosen
    // x-trace-id (if any); the header is echoed on the response so the
    // caller can line up client- and server-side spans — including on
    // the cache-hit path, which never reaches the analyzers.
    std::string trace_header;
    if (request.ok()) {
      const auto it = request.value().headers.find("x-trace-id");
      if (it != request.value().headers.end()) trace_header = it->second;
    }
    obs::TraceContext trace_ctx(
        trace_header.empty() ? 0 : obs::trace_id_from_string(trace_header));

    net::HttpResponse response;
    if (!request.ok()) {
      response = json_error(400, "Bad Request", request.error().code,
                            request.error().message);
      keep_alive = false;
    } else {
      CHAINCHAOS_SPAN(obs::Stage::kServiceHandle);
      response = handler_.handle(request.value());
      const auto connection = request.value().headers.find("connection");
      if (connection != request.value().headers.end() &&
          to_lower(connection->second) == "close") {
        keep_alive = false;
      }
    }
    if (!trace_header.empty()) response.headers["x-trace-id"] = trace_header;
    if (stopping_.load()) keep_alive = false;
    if (!keep_alive) response.headers["connection"] = "close";

    bool sent = false;
    {
      CHAINCHAOS_SPAN(obs::Stage::kServiceWrite);
      sent = send_response(fd, response, config_.write_timeout_ms);
    }
    if (!sent) {
      // EPIPE/reset or a write deadline: the response is lost but the
      // worker is not. Count it and move on to the next connection.
      metrics_.record_write_failure();
      break;
    }
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - start)
                            .count();
    metrics_.record_response(response.status,
                             static_cast<std::uint64_t>(micros));
  }
  ::close(fd);
}

}  // namespace chainchaos::service
