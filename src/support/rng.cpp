#include "support/rng.hpp"

#include <cassert>

namespace chainchaos {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Rng::unit() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return unit() < p;
}

std::size_t Rng::weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return 0;
  double draw = unit() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (draw < w) return i;
    draw -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t salt) {
  return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ULL) ^ 0xa5a5a5a5a5a5a5a5ULL);
}

std::uint64_t Rng::hash(std::string_view s) {
  // FNV-1a, widened.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace chainchaos
