// chainlint: per-chain static analysis over certificates and served
// chains (paper §4 as a zlint-style rule pass — see DESIGN.md §5.8).
//
// Two passes share one report: every certificate in the served list is
// run through the certificate-level rules (DER strictness, RFC 5280
// profile), and the list as a whole through the chain-level rules
// (Tables 3/5/7 taxonomy, delegated to the chain:: analyzers via the
// ComplianceReport). Findings are ordered deterministically: chain-level
// first, then per-certificate in list order, rules in sorted-ID order
// within each group.
#pragma once

#include "chain/analyzer.hpp"
#include "lint/registry.hpp"
#include "lint/rule.hpp"

namespace chainchaos::lint {

class Linter {
 public:
  explicit Linter(LintOptions options = {}) : options_(options) {}

  const LintOptions& options() const { return options_; }

  /// Certificate pass only: lints one certificate as a standalone
  /// subject (chain position index 0 of 1).
  std::vector<Finding> lint_certificate(const x509::Certificate& cert) const;

  /// Full pass over a served chain. `report` must come from analyzing
  /// `observation` (chain::ComplianceAnalyzer) — the chain rules read it
  /// verbatim so lint findings always agree with engine tallies.
  LintReport lint(const chain::ChainObservation& observation,
                  const chain::ComplianceReport& report) const;

 private:
  LintOptions options_;
};

}  // namespace chainchaos::lint
