// Regenerates Table 10: HTTP server software behind non-compliant
// chains, bucketed by non-compliance type (paper Appendix B).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "chain/analyzer.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  const auto corpus = bench::make_corpus();

  chain::CompletenessOptions options;
  options.store = &corpus->stores().union_store;
  options.aia = &corpus->aia();
  const chain::ComplianceAnalyzer analyzer(options);

  const std::vector<std::string>& servers =
      dataset::CorpusConfig::server_names();
  const std::vector<std::string> kinds = {
      "Overview",     "Duplicate Certificates", "Duplicate Leaf",
      "Irrelevant Certificates", "Multiple Paths", "Reversed Sequences",
      "Incomplete Chain"};

  std::map<std::string, std::map<std::string, std::uint64_t>> counts;
  std::map<std::string, std::uint64_t> totals;

  for (const dataset::DomainRecord& record : corpus->records()) {
    const chain::ComplianceReport report = analyzer.analyze(record.observation);
    if (report.compliant()) continue;
    const std::string& server = record.observation.server_software;
    const auto tally = [&](const std::string& kind) {
      ++counts[kind][server];
      ++totals[kind];
    };
    tally("Overview");
    if (report.order.has_duplicates) tally("Duplicate Certificates");
    if (report.order.duplicate_leaf) tally("Duplicate Leaf");
    if (report.order.has_irrelevant) tally("Irrelevant Certificates");
    if (report.order.multiple_paths) tally("Multiple Paths");
    if (report.order.reversed_sequence) tally("Reversed Sequences");
    if (!report.completeness.complete()) tally("Incomplete Chain");
  }

  report::Table table("Table 10: HTTP servers behind non-compliant chains");
  std::vector<std::string> header = {"Non-compliant type"};
  header.insert(header.end(), servers.begin(), servers.end());
  header.push_back("Total");
  table.header(header);

  for (const std::string& kind : kinds) {
    std::vector<std::string> row = {kind};
    for (const std::string& server : servers) {
      row.push_back(report::count_pct(counts[kind][server], totals[kind]));
    }
    row.push_back(report::with_commas(totals[kind]));
    table.row(row);
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\n[paper] Table 10 reference rows (share of each type):\n"
      "  Overview:    Apache 39.7%%, Nginx 35.7%%, Azure 5.5%%, cloudflare "
      "3.3%%, IIS 3.0%%, AWS ELB 2.3%%, Other 10.5%%\n"
      "  Duplicates:  Apache-heavy (56.1%%), Azure nearly absent (0.2%%, no "
      "duplicate-leaf at all: its upload check)\n"
      "  Reversed:    Azure over-represented (14.2%%, custom-upload path)\n"
      "  Incomplete:  Apache/Nginx each ~40%%\n");
  return 0;
}
