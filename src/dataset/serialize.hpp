// Corpus serialization: export a generated corpus to a portable on-disk
// bundle and read it back.
//
// Format: a single text file. Each domain starts with a tab-separated
// metadata line —
//   #domain <name>\t<ca>\t<server>\t<primary-defect>\t<leaf-defect>
//          \t<root-included>\t<rare-hierarchy>\t<akidless-terminal>
//          \t<exclusive-store>\t<missing-count>
// — booleans as 0/1 — followed by the served chain as standard PEM
// blocks. The format is greppable, versionable, and consumable by
// external tooling (any PEM parser skips the metadata lines as
// comments). The importer also accepts the historical 5-field line
// (labels default to false/0), so old bundles keep loading.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dataset/corpus.hpp"
#include "support/result.hpp"

namespace chainchaos::dataset {

/// A domain entry read back from an exported bundle. Certificates are
/// reparsed; defect labels survive as strings, the boolean/count
/// ground-truth labels as values (false/0 for 5-field legacy bundles).
struct ExportedRecord {
  std::string domain;
  std::string ca_name;
  std::string server_software;
  std::string primary_defect;
  std::string leaf_defect;
  bool root_included = false;
  bool rare_hierarchy = false;
  bool akidless_terminal = false;
  bool exclusive_store_domain = false;
  int missing_count = 0;
  std::vector<x509::CertPtr> certificates;
};

/// Writes every corpus record to `out` in the bundle format.
void export_corpus(const Corpus& corpus, std::ostream& out);

/// Convenience: export to a file path. Returns false on I/O failure.
bool export_corpus_to_file(const Corpus& corpus, const std::string& path);

/// Parses a bundle produced by export_corpus.
Result<std::vector<ExportedRecord>> import_corpus(std::istream& in);

Result<std::vector<ExportedRecord>> import_corpus_from_file(
    const std::string& path);

}  // namespace chainchaos::dataset
