// ComplianceTally / ShardTally: the engine's mergeable accumulators.
//
// Every corpus sweep used to carry its own ad-hoc counter struct
// (examples/measure_corpus.cpp, bench/table*_*.cpp each re-implemented
// "iterate records -> analyze -> tally"). The engine replaces those with
// one tally that records the full §4 taxonomy — leaf placement (Table 3),
// issuance order (Table 5), completeness and AIA repair (Table 7/§4.3),
// and the headline compliance verdict — so any consumer can render any
// table from the same sweep.
//
// Tallies are pure sums: merge() is commutative and associative, which is
// what makes the sharded engine deterministic regardless of thread count
// or shard boundaries (see engine.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "chain/analyzer.hpp"
#include "report/table.hpp"

namespace chainchaos::engine {

struct ComplianceTally {
  std::uint64_t total = 0;

  // Headline verdict (§4 summary).
  std::uint64_t leaf_placed = 0;         ///< leaf first (matched or not)
  std::uint64_t order_noncompliant = 0;  ///< any Table 5 issue
  std::uint64_t incomplete = 0;          ///< missing intermediates
  std::uint64_t noncompliant = 0;        ///< order issue OR incomplete

  // Table 3: leaf placement classes, indexed by chain::LeafPlacement.
  std::array<std::uint64_t, 5> leaf_placement{};

  // Table 5: issuance-order taxonomy (categories overlap).
  std::uint64_t duplicates = 0;
  std::uint64_t duplicate_leaf = 0;
  std::uint64_t duplicate_intermediate = 0;
  std::uint64_t duplicate_root = 0;
  int max_duplicate_occurrences = 0;  ///< merged with max()
  std::uint64_t irrelevant = 0;
  std::uint64_t multiple_paths = 0;
  std::uint64_t reversed = 0;
  std::uint64_t all_paths_reversed = 0;

  // Table 7 + §4.3: completeness and the AIA repair probe.
  std::uint64_t complete_with_root = 0;
  std::uint64_t complete_without_root = 0;
  std::uint64_t missing_one = 0;  ///< incomplete missing exactly one cert
  std::uint64_t aia_completed = 0;
  std::uint64_t aia_no_field = 0;
  std::uint64_t aia_unreachable = 0;
  std::uint64_t aia_wrong_issuer = 0;

  /// Folds one per-domain report into the tally.
  void account(const chain::ComplianceReport& report);

  /// Adds another tally (commutative, associative; identity = {}).
  void merge(const ComplianceTally& other);

  std::uint64_t count(chain::LeafPlacement placement) const {
    return leaf_placement[static_cast<std::size_t>(placement)];
  }

  bool operator==(const ComplianceTally&) const = default;
};

/// Per-worker accumulator for an engine sweep: the corpus-wide tally plus
/// optional per-key attribution tallies (Table 10 keys on server
/// software, Table 11 on CA name). Workers each own one ShardTally; the
/// engine merges them after the sweep, so no locks are taken on the
/// accounting hot path.
struct ShardTally {
  ComplianceTally compliance;
  std::map<std::string, ComplianceTally> by_key;

  /// Generic named counters for consumers beyond the fixed compliance
  /// taxonomy (the chainlint sweep keys per-rule finding counts here).
  /// Merged by per-key sum, so the engine's determinism guarantee
  /// extends to them.
  std::map<std::string, std::uint64_t> counters;

  void merge(const ShardTally& other);

  bool operator==(const ShardTally&) const = default;
};

/// The §4 summary table measure_corpus prints ("2.9% of Top 1M domains
/// deploy non-compliant chains"), rendered straight from a tally.
report::Table summary_table(const ComplianceTally& tally);

}  // namespace chainchaos::engine
