// Shared plumbing for the table-regeneration benches.
//
// Every bench binary regenerates one of the paper's tables over a shared
// synthetic corpus. Corpus size comes from the CHAINCHAOS_DOMAINS
// environment variable (default 20,000 ≈ a 1/45 scale Tranco run — all
// reported quantities are rates, so scale only affects noise), the seed
// from CHAINCHAOS_SEED.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "dataset/corpus.hpp"

namespace chainchaos::bench {

inline dataset::CorpusConfig config_from_env() {
  dataset::CorpusConfig config;
  config.domain_count = 20000;
  if (const char* env = std::getenv("CHAINCHAOS_DOMAINS")) {
    config.domain_count = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("CHAINCHAOS_SEED")) {
    config.seed = std::strtoull(env, nullptr, 10);
  }
  return config;
}

inline std::unique_ptr<dataset::Corpus> make_corpus() {
  dataset::CorpusConfig config = config_from_env();
  std::printf("[corpus] %zu synthetic domains, seed %llu%s\n",
              config.domain_count,
              static_cast<unsigned long long>(config.seed),
              config.include_exemplars ? " (+ exemplars)" : "");
  return std::make_unique<dataset::Corpus>(std::move(config));
}

/// Prints the side-by-side "paper vs measured" footer used by every
/// table bench so EXPERIMENTS.md can be assembled from raw output.
inline void print_paper_note(const char* table, const char* claim) {
  std::printf("\n[paper] %s: %s\n", table, claim);
}

}  // namespace chainchaos::bench
