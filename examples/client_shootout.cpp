// client_shootout: serve one deliberately hostile certificate chain and
// let all eight client profiles race over the real TLS wire format —
// a compact demonstration of the paper's client-side findings.
#include <cstdio>

#include "ca/hierarchy.hpp"
#include "clients/profiles.hpp"
#include "tls/handshake.hpp"
#include "truststore/root_store.hpp"

using namespace chainchaos;

int main() {
  // Hostile-but-legal deployment: duplicated leaf, reversed intermediates,
  // an irrelevant certificate, and the root omitted.
  const ca::CaHierarchy authority = ca::CaHierarchy::create("Shootout CA", 2);
  const ca::CaHierarchy bystander = ca::CaHierarchy::create("Bystander CA", 1);
  truststore::RootStore store("shootout");
  store.add(authority.root());
  store.add(bystander.root());

  const x509::CertPtr leaf = authority.issue_leaf("arena.example.com");
  std::vector<x509::CertPtr> chaos = {
      leaf,
      leaf,                                  // duplicate
      authority.intermediates().front(),     // reversed: upper tier first
      bystander.intermediates().back(),      // irrelevant
      authority.intermediates().back(),
  };
  const tls::ChainServer server("arena.example.com", chaos);

  std::printf("served list (%zu certificates, wire size %zu bytes):\n",
              chaos.size(),
              server.certificate_message(tls::TlsVersion::kTls13).size());
  for (std::size_t i = 0; i < chaos.size(); ++i) {
    std::printf("  [%zu] %s\n", i, chaos[i]->subject.to_string().c_str());
  }
  std::printf("\n%-16s %-24s %-6s %-11s %-10s\n", "client", "status", "path",
              "candidates", "backtracks");

  for (const clients::ClientProfile& profile : clients::all_profiles()) {
    const pathbuild::PathBuilder builder(profile.policy, &store);
    const tls::HandshakeOutcome outcome =
        tls::simulate_handshake(server, builder);
    std::printf("%-16s %-24s %-6zu %-11d %-10d\n", profile.name.c_str(),
                outcome.wire_ok ? to_string(outcome.build.status)
                                : outcome.error.c_str(),
                outcome.build.path.size(),
                outcome.build.stats.candidates_considered,
                outcome.build.stats.backtracks);
  }

  std::printf("\nEvery client received byte-identical Certificate messages; "
              "the verdict differences are purely chain-construction "
              "capability differences (Table 9).\n");
  return 0;
}
