// corpus_pack: generate a synthetic corpus and pack it into the binary
// on-disk format (DESIGN.md §5.14) that measure_corpus / lint_corpus /
// parsdiff_corpus can later sweep via --corpus without regenerating
// anything.
//
// Usage:  corpus_pack --out corpus.chc [--domains N] [--seed S]
//                     [--no-exemplars] [--replicate R]
//
// --replicate appends the generated record range R times — the cheap
// way to produce a multi-million-record benchmark file from a modest
// generation run.
#include <cstdio>

#include "cli_common.hpp"
#include "corpusio/reader.hpp"
#include "corpusio/writer.hpp"
#include "dataset/corpus.hpp"

using namespace chainchaos;

int main(int argc, char** argv) {
  std::size_t domains = 20000;
  std::uint64_t seed = 833;
  std::size_t replicate = 1;
  bool no_exemplars = false;
  std::string out_path;
  cli::Flags flags;
  flags.add("--out", &out_path, "FILE");
  flags.add("--domains", &domains, "N");
  flags.add("--seed", &seed, "S");
  flags.add("--replicate", &replicate, "R");
  flags.add("--no-exemplars", &no_exemplars);
  if (!flags.parse(argc, argv)) return 1;
  if (out_path.empty()) {
    std::fprintf(stderr, "--out is required\n%s",
                 flags.usage(argv[0]).c_str());
    return 1;
  }

  dataset::CorpusConfig config;
  config.domain_count = domains;
  config.seed = seed;
  config.include_exemplars = !no_exemplars;
  std::printf("generating %zu synthetic domains (seed %llu)...\n", domains,
              static_cast<unsigned long long>(seed));
  dataset::Corpus corpus(std::move(config));

  auto packed = corpusio::pack_corpus(corpus, out_path, replicate);
  if (!packed.ok()) {
    std::fprintf(stderr, "pack failed: %s\n",
                 packed.error().to_string().c_str());
    return 1;
  }

  auto reader = corpusio::CorpusReader::open(out_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "packed file fails validation: %s\n",
                 reader.error().to_string().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu records, %zu bytes\n", out_path.c_str(),
              reader.value()->size(), reader.value()->file_bytes());
  return 0;
}
