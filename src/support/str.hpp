// Small string utilities used across the measurement pipeline, including
// the domain/IP format heuristics that the leaf-placement classifier
// (paper §3.1, "Leaf certificate analysis") relies on.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace chainchaos {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// True if `s` is syntactically a DNS name: labels of [a-z0-9-] (and '*'
/// as a whole leftmost label), 1-63 chars each, at least two labels,
/// no leading/trailing hyphen, total <= 253.
bool looks_like_dns_name(std::string_view s);

/// True if `s` parses as a dotted-quad IPv4 address.
bool looks_like_ipv4(std::string_view s);

/// Paper's classifier input: "is this CN/SAN in domain-or-IP format?"
bool looks_like_domain_or_ip(std::string_view s);

/// True if `pattern` (possibly a wildcard like *.example.com) matches
/// `host` under RFC 6125 left-most-label wildcard rules.
bool wildcard_match(std::string_view pattern, std::string_view host);

}  // namespace chainchaos
