#include "asn1/name.hpp"

#include "asn1/der.hpp"
#include "asn1/oids.hpp"

namespace chainchaos::asn1 {

Name Name::make(std::string common_name, std::string organization,
                std::string country) {
  Name name;
  if (!country.empty()) name.add(std::string(oid::kCountryName), std::move(country));
  if (!organization.empty()) {
    name.add(std::string(oid::kOrganizationName), std::move(organization));
  }
  if (!common_name.empty()) {
    name.add(std::string(oid::kCommonName), std::move(common_name));
  }
  return name;
}

Name& Name::add(std::string oid, std::string value) {
  attrs_.push_back(NameAttribute{std::move(oid), std::move(value)});
  return *this;
}

namespace {

std::optional<std::string> find_attr(const std::vector<NameAttribute>& attrs,
                                     std::string_view oid) {
  for (const NameAttribute& a : attrs) {
    if (a.oid == oid) return a.value;
  }
  return std::nullopt;
}

std::string short_label(std::string_view oid_text) {
  if (oid_text == oid::kCommonName) return "CN";
  if (oid_text == oid::kCountryName) return "C";
  if (oid_text == oid::kOrganizationName) return "O";
  if (oid_text == oid::kOrganizationalUnitName) return "OU";
  return std::string(oid_text);
}

}  // namespace

std::optional<std::string> Name::common_name() const {
  return find_attr(attrs_, oid::kCommonName);
}

std::optional<std::string> Name::organization() const {
  return find_attr(attrs_, oid::kOrganizationName);
}

std::string Name::to_string() const {
  std::string out;
  // Render most-specific-first (CN first), matching the familiar
  // OpenSSL-style one-liner.
  for (std::size_t i = attrs_.size(); i-- > 0;) {
    if (!out.empty()) out += ", ";
    out += short_label(attrs_[i].oid) + "=" + attrs_[i].value;
  }
  return out;
}

Bytes Name::encode() const {
  // RDNSequence ::= SEQUENCE OF (SET OF AttributeTypeAndValue); we emit
  // one single-attribute SET per RDN, the ubiquitous Web PKI profile.
  DerWriter rdn_sequence;
  for (const NameAttribute& attr : attrs_) {
    DerWriter atv;  // AttributeTypeAndValue
    atv.add_oid(attr.oid);
    atv.add_utf8_string(attr.value);
    rdn_sequence.add_tlv(Tag::kSet, atv.wrap_sequence());
  }
  return rdn_sequence.wrap_sequence();
}

Result<Name> Name::decode(BytesView der, const ParseProfile& profile) {
  DerReader outer(der, profile);
  Result<DerElement> seq = outer.read(Tag::kSequence);
  if (!seq.ok()) return seq.error();

  Name name;
  DerReader rdns(seq.value().body, profile);
  while (!rdns.at_end()) {
    Result<DerElement> set = rdns.read(Tag::kSet);
    if (!set.ok()) return set.error();
    DerReader set_reader(set.value().body, profile);
    while (!set_reader.at_end()) {
      Result<DerElement> atv = set_reader.read(Tag::kSequence);
      if (!atv.ok()) return atv.error();
      DerReader atv_reader(atv.value().body, profile);
      Result<std::string> oid_text = atv_reader.read_oid();
      if (!oid_text.ok()) return oid_text.error();
      Result<std::string> value = atv_reader.read_string();
      if (!value.ok()) return value.error();
      name.add(std::move(oid_text).value(), std::move(value).value());
    }
  }
  return name;
}

}  // namespace chainchaos::asn1
