// Regenerates Table 9: chain-construction capabilities of the 8 TLS
// implementations, by running the Table 2 test cases against each client
// profile on the shared PathBuilder engine.
#include <cstdio>

#include "clients/capability_tests.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  // Probe to 52 like the paper ( ">52" columns).
  clients::CapabilityTester tester(52);

  report::Table table("Table 9: Differences in the capabilities of TLS "
                      "implementations (measured)");
  table.header({"Type", "OpenSSL", "GnuTLS", "MbedTLS", "CryptoAPI", "Chrome",
                "Edge", "Safari", "Firefox"});

  std::vector<clients::CapabilityRow> rows;
  for (const clients::ClientProfile& profile : clients::all_profiles()) {
    std::printf("evaluating %s...\n", profile.name.c_str());
    rows.push_back(tester.evaluate(profile));
  }

  const auto bool_row = [&rows](const char* label, auto member) {
    std::vector<std::string> cells = {label};
    for (const auto& row : rows) cells.push_back(row.*member ? "yes" : "no");
    return cells;
  };
  const auto text_row = [&rows](const char* label, auto member) {
    std::vector<std::string> cells = {label};
    for (const auto& row : rows) cells.push_back(row.*member);
    return cells;
  };

  table.row(bool_row("Order Reorganization",
                     &clients::CapabilityRow::order_reorganization));
  table.row(bool_row("Redundancy Elimination",
                     &clients::CapabilityRow::redundancy_elimination));
  table.row(bool_row("AIA Completion", &clients::CapabilityRow::aia_completion));
  table.row(text_row("Validity Priority",
                     &clients::CapabilityRow::validity_priority));
  table.row(text_row("KID Matching Priority",
                     &clients::CapabilityRow::kid_priority));
  table.row(text_row("KeyUsage Correctness Priority",
                     &clients::CapabilityRow::key_usage_priority));
  table.row(text_row("Basic Constraints Priority",
                     &clients::CapabilityRow::basic_constraints_priority));
  table.row(text_row("Path Length Constraint",
                     &clients::CapabilityRow::path_length));
  table.row(bool_row("Self-signed Leaf Certificate",
                     &clients::CapabilityRow::self_signed_leaf));

  std::printf("\n%s", table.render().c_str());

  std::printf(
      "\n[paper] Table 9 expectations:\n"
      "  Order Reorg:    yes yes NO yes yes yes yes yes\n"
      "  Redundancy:     yes everywhere\n"
      "  AIA:            no no no YES YES YES YES no (Firefox: cache)\n"
      "  Validity:       VP1 -   VP1 VP2 VP2 VP2 VP2 VP1\n"
      "  KID:            KP1 KP1 -   KP2 KP2 KP2 KP1 -\n"
      "  KeyUsage:       -   -   KUP KUP KUP KUP KUP KUP\n"
      "  BasicConstr:    -   -   BP  BP  BP  BP  BP  BP\n"
      "  Path Length:    >52 =16 =10 =13 >52 =21 >52 =8\n"
      "  Self-signed EE: no  no  YES no  no  no  YES no\n");

  // The Firefox footnote: its cache compensates for missing AIA.
  pathbuild::IntermediateCache cache;
  cache.remember(tester.aia_missing_intermediate());
  const bool warm = tester.test_aia_completion(
      clients::make_profile(clients::ClientKind::kFirefox), &cache);
  std::printf("\nFirefox with a warmed intermediate cache completes the AIA "
              "test case: %s (paper §5.1: 'compensates by caching "
              "intermediate certificates')\n",
              warm ? "yes" : "no");
  return 0;
}
