// PathBuilder: the forward-construction certificate path building engine.
//
// One engine, parameterised by BuildPolicy, models every client in the
// study. Construction starts at the leaf (the first certificate of the
// server list) and repeatedly selects an issuer from the available
// sources — the server list itself, the intermediate cache, the root
// store, and (lazily) AIA fetches — ranked by the policy's priority
// rules. Dead ends (no candidate, untrusted self-signed terminus, depth
// limit) either backtrack to the next-ranked candidate or fail the
// build, depending on the policy.
//
// The returned BuildResult separates *construction* failures from
// *validation* failures, which is exactly the distinction the paper
// introduces (Figure 1: path construction vs path validation).
#pragma once

#include <string>
#include <vector>

#include "net/aia_repository.hpp"
#include "pathbuild/intermediate_cache.hpp"
#include "pathbuild/policy.hpp"
#include "truststore/root_store.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::pathbuild {

enum class BuildStatus {
  kOk,                ///< path built and validated
  kEmptyInput,
  kInputListTooLong,  ///< GnuTLS-style input-list cap hit (finding I-2)
  kSelfSignedLeaf,    ///< leaf self-signed and policy forbids it
  kNoIssuerFound,     ///< construction dead end (unknown issuer)
  kUntrustedRoot,     ///< terminus self-signed but not in the store
  kDepthExceeded,     ///< constructed-depth cap hit
  kWorkBudgetExceeded,///< max_build_steps exhausted (cyclic graphs)
  // ---- validation-phase failures (path was constructed) ----
  kExpired,
  kHostnameMismatch,
  kNotACa,            ///< intermediate without CA basic constraints
  kPathLenViolated,
  kNameConstraintViolation,  ///< leaf identity outside a CA's subtrees
  kBadEku,                   ///< leaf EKU lacks serverAuth
};

const char* to_string(BuildStatus status);

/// True for statuses that mean "no candidate path could even be built"
/// as opposed to "a path was built but failed validation".
bool is_construction_failure(BuildStatus status);

struct BuildStats {
  int candidates_considered = 0;
  int backtracks = 0;
  int aia_fetches = 0;
  int cache_hits = 0;
  int steps = 0;
};

struct BuildResult {
  BuildStatus status = BuildStatus::kNoIssuerFound;
  std::vector<x509::CertPtr> path;  ///< leaf..terminus (possibly partial)
  BuildStats stats;
  std::string detail;

  bool ok() const { return status == BuildStatus::kOk; }
};

class PathBuilder {
 public:
  /// `store` must outlive the builder; `aia` and `cache` may be null
  /// (disabling the corresponding sources regardless of policy).
  PathBuilder(BuildPolicy policy, const truststore::RootStore* store,
              net::AiaRepository* aia = nullptr,
              IntermediateCache* cache = nullptr);

  /// Builds and validates a path for the server-provided list.
  /// `hostname` may be empty to skip name checking.
  ///
  /// Thread safety: build() is a pure function of its inputs and the
  /// builder's (immutable) configuration, EXCEPT that a successful
  /// validation feeds the intermediate cache when the policy caches.
  /// Disable that with set_cache_learning(false) and one builder may be
  /// shared by any number of threads (the AIA repository and the
  /// process-wide issuance memo are internally synchronized).
  BuildResult build(const std::vector<x509::CertPtr>& server_list,
                    const std::string& hostname = {}) const;

  /// When disabled, successful builds no longer remember their path in
  /// the intermediate cache: the cache becomes a read-only snapshot, so
  /// per-record results stop depending on traversal order. The parallel
  /// engine's differential sweep runs in this mode.
  void set_cache_learning(bool learn) { cache_learning_ = learn; }

  const BuildPolicy& policy() const { return policy_; }

 private:
  struct Candidate {
    x509::CertPtr cert;
    int source_rank = 0;  ///< list < cache < store < aia
    int list_position = 0;
  };

  std::vector<Candidate> gather_candidates(
      const x509::Certificate& child, int child_list_pos,
      const std::vector<x509::CertPtr>& pool,
      const std::vector<x509::CertPtr>& path, BuildStats& stats) const;

  void rank_candidates(std::vector<Candidate>& candidates,
                       const x509::Certificate& child,
                       std::size_t path_len) const;

  bool extend(std::vector<x509::CertPtr>& path,
              const std::vector<x509::CertPtr>& pool, int child_list_pos,
              BuildStats& stats, BuildStatus& failure) const;

  BuildStatus validate(const std::vector<x509::CertPtr>& path,
                       const std::string& hostname) const;

  BuildPolicy policy_;
  const truststore::RootStore* store_;
  net::AiaRepository* aia_;
  IntermediateCache* cache_;
  bool cache_learning_ = true;
};

}  // namespace chainchaos::pathbuild
