// Tests for the chaos harness (src/chaos/): the mutation engine's
// per-class contracts, campaign determinism across seeds and thread
// counts, the asn1 nesting-depth cap, and the fault-injected AIA
// retry/backoff/deadline discipline — the ISSUE 4 acceptance scenarios.
#include <gtest/gtest.h>

#include <algorithm>

#include "asn1/der.hpp"
#include "chaos/campaign.hpp"
#include "chaos/mutation.hpp"
#include "net/aia_repository.hpp"
#include "pathbuild/path_builder.hpp"
#include "x509/builder.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::chaos {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::make_identity;
using x509::SigningIdentity;

// ---------------------------------------------------------------------------
// Mutation engine: a purpose-built 3-cert base chain so every structural
// assertion can be exact.
// ---------------------------------------------------------------------------

class MutatorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto root_id = make_identity(asn1::Name::make("Chaos Root"));
    const auto inter_id = make_identity(asn1::Name::make("Chaos Inter"));
    CertificateBuilder rb;
    rb.subject(root_id.name).as_ca().public_key(root_id.keys.pub);
    const CertPtr root = rb.self_sign(root_id.keys);
    CertificateBuilder ib;
    ib.subject(inter_id.name).as_ca().public_key(inter_id.keys.pub);
    const CertPtr inter = ib.sign(root_id);
    CertificateBuilder lb;
    lb.as_leaf("chaos.example");
    const CertPtr leaf = lb.sign(inter_id);

    const auto foreign_id = make_identity(asn1::Name::make("Foreign CA"));
    CertificateBuilder fb;
    fb.subject(foreign_id.name).as_ca().public_key(foreign_id.keys.pub);
    const CertPtr foreign = fb.self_sign(foreign_id.keys);

    base_ = new std::vector<Bytes>{leaf->der, inter->der, root->der};
    mutator_ = new ChainMutator({*base_}, {foreign->der});
    foreign_der_ = new Bytes(foreign->der);
  }

  MutatedChain mutate(MutationClass cls, std::uint64_t seed = 1) {
    return mutator_->mutate(cls, seed);
  }

  static std::vector<Bytes>* base_;
  static ChainMutator* mutator_;
  static Bytes* foreign_der_;
};

std::vector<Bytes>* MutatorFixture::base_ = nullptr;
ChainMutator* MutatorFixture::mutator_ = nullptr;
Bytes* MutatorFixture::foreign_der_ = nullptr;

TEST_F(MutatorFixture, RegistryCoversEveryClassWithStableIds) {
  ASSERT_EQ(all_mutations().size(), kMutationClassCount);
  EXPECT_STREQ(spec(MutationClass::kTruncateTlv).id, "B1");
  EXPECT_STREQ(spec(MutationClass::kDeepNest).id, "B6");
  EXPECT_STREQ(spec(MutationClass::kEmptyChain).id, "S1");
  EXPECT_STREQ(spec(MutationClass::kIssuerCycle).id, "S7");
  EXPECT_EQ(mutation_from_name("B3").value(), MutationClass::kBitFlip);
  EXPECT_EQ(mutation_from_name("issuer-cycle").value(),
            MutationClass::kIssuerCycle);
  EXPECT_FALSE(mutation_from_name("Z9").ok());
}

TEST_F(MutatorFixture, MutationsAreDeterministicPerSeed) {
  for (const MutationSpec& s : all_mutations()) {
    const MutatedChain a = mutate(s.cls, 42);
    const MutatedChain b = mutate(s.cls, 42);
    EXPECT_EQ(a.wire(), b.wire()) << s.id << " not reproducible";
  }
  // Different seeds must be able to produce different bytes.
  EXPECT_NE(mutate(MutationClass::kBitFlip, 1).wire(),
            mutate(MutationClass::kBitFlip, 2).wire());
}

TEST_F(MutatorFixture, TruncateTlvShortensOneCertificate) {
  const MutatedChain m = mutate(MutationClass::kTruncateTlv);
  ASSERT_EQ(m.certs.size(), base_->size());
  std::size_t shortened = 0;
  for (std::size_t i = 0; i < m.certs.size(); ++i) {
    if (m.certs[i].size() < (*base_)[i].size()) ++shortened;
  }
  EXPECT_EQ(shortened, 1u);
}

TEST_F(MutatorFixture, LengthCorruptKeepsSizeChangesBytes) {
  const MutatedChain m = mutate(MutationClass::kLengthCorrupt);
  ASSERT_EQ(m.certs.size(), base_->size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < m.certs.size(); ++i) {
    ASSERT_EQ(m.certs[i].size(), (*base_)[i].size());
    if (m.certs[i] != (*base_)[i]) ++changed;
  }
  EXPECT_EQ(changed, 1u);
}

TEST_F(MutatorFixture, BitFlipTouchesAtMostEightBits) {
  const MutatedChain m = mutate(MutationClass::kBitFlip);
  std::size_t flipped_bits = 0;
  for (std::size_t i = 0; i < m.certs.size(); ++i) {
    ASSERT_EQ(m.certs[i].size(), (*base_)[i].size());
    for (std::size_t j = 0; j < m.certs[i].size(); ++j) {
      flipped_bits += static_cast<std::size_t>(
          __builtin_popcount(m.certs[i][j] ^ (*base_)[i][j]));
    }
  }
  EXPECT_GE(flipped_bits, 1u);
  EXPECT_LE(flipped_bits, 8u);
}

TEST_F(MutatorFixture, GarbageFramingGrowsTheVictim) {
  const MutatedChain prefix = mutate(MutationClass::kGarbagePrefix);
  const MutatedChain suffix = mutate(MutationClass::kGarbageSuffix);
  EXPECT_GT(prefix.wire().size(), mutate(MutationClass::kEmptyChain).wire().size());
  std::size_t base_total = 0;
  for (const Bytes& der : *base_) base_total += der.size();
  EXPECT_GT(prefix.wire().size(), base_total);
  EXPECT_GT(suffix.wire().size(), base_total);
}

TEST_F(MutatorFixture, EmptyChainHasNoCertificates) {
  EXPECT_TRUE(mutate(MutationClass::kEmptyChain).certs.empty());
  EXPECT_TRUE(mutate(MutationClass::kEmptyChain).wire().empty());
}

TEST_F(MutatorFixture, DuplicateCertInsertsCopies) {
  const MutatedChain m = mutate(MutationClass::kDuplicateCert);
  EXPECT_GT(m.certs.size(), base_->size());
  std::size_t duplicate_pairs = 0;
  for (std::size_t i = 0; i < m.certs.size(); ++i) {
    for (std::size_t j = i + 1; j < m.certs.size(); ++j) {
      if (m.certs[i] == m.certs[j]) ++duplicate_pairs;
    }
  }
  EXPECT_GE(duplicate_pairs, 1u);
}

TEST_F(MutatorFixture, ReversedOrderIsExactReversal) {
  const MutatedChain m = mutate(MutationClass::kReversedOrder);
  std::vector<Bytes> expected = *base_;
  std::reverse(expected.begin(), expected.end());
  EXPECT_EQ(m.certs, expected);
}

TEST_F(MutatorFixture, ShuffledOrderIsAPermutation) {
  const MutatedChain m = mutate(MutationClass::kShuffledOrder);
  std::vector<Bytes> sorted_mutated = m.certs;
  std::vector<Bytes> sorted_base = *base_;
  std::sort(sorted_mutated.begin(), sorted_mutated.end());
  std::sort(sorted_base.begin(), sorted_base.end());
  EXPECT_EQ(sorted_mutated, sorted_base);
}

TEST_F(MutatorFixture, IrrelevantCertSplicesForeignMaterial) {
  const MutatedChain m = mutate(MutationClass::kIrrelevantCert);
  EXPECT_GT(m.certs.size(), base_->size());
  EXPECT_NE(std::find(m.certs.begin(), m.certs.end(), *foreign_der_),
            m.certs.end());
}

TEST_F(MutatorFixture, LongChainExceedsOneHundredCerts) {
  const MutatedChain m = mutate(MutationClass::kLongChain);
  EXPECT_GE(m.certs.size(), 100u);
  // Every member is still individually well-formed DER.
  for (const Bytes& der : m.certs) {
    EXPECT_TRUE(x509::parse_certificate(der).ok());
  }
}

TEST_F(MutatorFixture, IssuerCycleCertsParseAndLoop) {
  // All three variants must yield parseable certificates whose issuer
  // graph never reaches a trust anchor.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const MutatedChain m = mutate(MutationClass::kIssuerCycle, seed);
    ASSERT_FALSE(m.certs.empty());
    for (const Bytes& der : m.certs) {
      auto cert = x509::parse_certificate(der);
      ASSERT_TRUE(cert.ok());
      // Cycle members are CAs or the cycle leaf; none is trusted.
      EXPECT_FALSE(cert.value()->is_self_signed());
    }
  }
}

// ---------------------------------------------------------------------------
// asn1 nesting-depth cap (the B6 fix, pinned as a regression test)
// ---------------------------------------------------------------------------

TEST(AsnDepthCapTest, TenThousandDeepTowerRejectedCleanly) {
  const Bytes tower = deep_nested_tlv(10000);
  auto verdict = asn1::check_nesting(tower);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.error().code, "der.too_deep");
  // The certificate parser must surface the same clean error, not
  // exhaust the stack.
  auto parsed = x509::parse_certificate(tower);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "der.too_deep");
}

TEST(AsnDepthCapTest, ShallowTowersPassTheGate) {
  EXPECT_TRUE(asn1::check_nesting(deep_nested_tlv(4)).ok());
  EXPECT_TRUE(asn1::check_nesting(deep_nested_tlv(asn1::kMaxNestingDepth)).ok());
  EXPECT_FALSE(
      asn1::check_nesting(deep_nested_tlv(asn1::kMaxNestingDepth + 1)).ok());
}

TEST(AsnDepthCapTest, DeepTowerBuilderIsLinear) {
  // 12k levels must be near-instant; the O(depth) construction contract.
  const Bytes tower = deep_nested_tlv(12000);
  EXPECT_GT(tower.size(), 24000u);  // >= 2 bytes of header per level
  EXPECT_EQ(tower[0], 0x30);
  EXPECT_EQ(tower[tower.size() - 2], 0x05);  // innermost NULL
}

// ---------------------------------------------------------------------------
// AIA fault injection + FetchPolicy retry discipline
// ---------------------------------------------------------------------------

class AiaFaultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_id_ = make_identity(asn1::Name::make("Fault Root"));
    CertificateBuilder rb;
    rb.subject(root_id_.name).as_ca().public_key(root_id_.keys.pub);
    root_ = rb.self_sign(root_id_.keys);
    store_.add(root_);

    inter_id_ = make_identity(asn1::Name::make("Fault Inter"));
    CertificateBuilder ib;
    ib.subject(inter_id_.name).as_ca().public_key(inter_id_.keys.pub);
    inter_ = ib.sign(root_id_);
    aia_.publish(kUri, inter_);

    CertificateBuilder lb;
    lb.as_leaf("fault.example").aia_ca_issuers(kUri);
    leaf_ = lb.sign(inter_id_);
  }

  static constexpr const char* kUri = "http://fault/inter.crt";

  truststore::RootStore store_{"fault"};
  net::AiaRepository aia_;
  SigningIdentity root_id_, inter_id_;
  CertPtr root_, inter_, leaf_;
};

TEST_F(AiaFaultFixture, TransientFaultFailsSingleAttemptSucceedsWithRetries) {
  net::FaultSpec fault;
  fault.transient_failures = 2;
  aia_.inject_fault(kUri, fault);

  // Historical single-attempt fetch: the injected fault wins.
  auto once = aia_.fetch(kUri);
  ASSERT_FALSE(once.ok());
  EXPECT_EQ(once.error().code, "aia.transient");

  // Retry budget >= fault depth: the fetch recovers.
  net::FetchPolicy policy;
  policy.max_retries = 2;
  auto retried = aia_.fetch(kUri, policy);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value()->der, inter_->der);

  const net::FetchStats stats = aia_.stats();
  EXPECT_GE(stats.retries, 2u);
  EXPECT_GE(stats.transient_failures, 3u);  // 1 (single) + 2 (retried call)
}

TEST_F(AiaFaultFixture, RetryBudgetTooSmallStillFailsTransient) {
  net::FaultSpec fault;
  fault.transient_failures = 3;
  aia_.inject_fault(kUri, fault);
  net::FetchPolicy policy;
  policy.max_retries = 1;
  auto result = aia_.fetch(kUri, policy);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "aia.transient");
}

TEST_F(AiaFaultFixture, DeadlineAbandonsRetryLoop) {
  net::FaultSpec fault;
  fault.transient_failures = 100;
  aia_.inject_fault(kUri, fault);
  net::FetchPolicy policy;
  policy.max_retries = 100;
  policy.deadline_ms = 500;  // a couple of simulated attempts at most
  auto result = aia_.fetch(kUri, policy);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "aia.deadline");
  EXPECT_GE(aia_.stats().deadline_exceeded, 1u);
}

TEST_F(AiaFaultFixture, GarbageAndTruncatedResponsesCountAsCorrupt) {
  net::FaultSpec garbage;
  garbage.garbage_response = true;
  aia_.inject_fault(kUri, garbage);
  EXPECT_FALSE(aia_.fetch(kUri).ok());

  net::FaultSpec truncated;
  truncated.truncated_response = true;
  aia_.inject_fault(kUri, truncated);
  EXPECT_FALSE(aia_.fetch(kUri).ok());

  EXPECT_EQ(aia_.stats().corrupt_responses, 2u);
  aia_.clear_faults();
  EXPECT_TRUE(aia_.fetch(kUri).ok());
}

TEST_F(AiaFaultFixture, PathBuilderRecoversFromTransientFaultsViaRetry) {
  net::FaultSpec fault;
  fault.transient_failures = 2;
  aia_.inject_fault(kUri, fault);

  pathbuild::BuildPolicy policy;
  policy.aia_completion = true;
  policy.aia_max_retries = 2;
  pathbuild::PathBuilder builder(policy, &store_, &aia_);
  const pathbuild::BuildResult result =
      builder.build({leaf_}, "fault.example");
  EXPECT_EQ(result.status, pathbuild::BuildStatus::kOk);
  EXPECT_GE(aia_.stats().retries, 2u);
}

TEST_F(AiaFaultFixture, PathBuilderDegradesOnPermanentFaultNeverHangs) {
  net::FaultSpec fault;
  fault.permanent = true;
  aia_.inject_fault(kUri, fault);

  pathbuild::BuildPolicy policy;
  policy.aia_completion = true;
  policy.aia_max_retries = 5;  // retries must not help, or loop
  pathbuild::PathBuilder builder(policy, &store_, &aia_);
  const pathbuild::BuildResult result =
      builder.build({leaf_}, "fault.example");
  EXPECT_EQ(result.status, pathbuild::BuildStatus::kNoIssuerFound);
  EXPECT_GE(aia_.stats().unreachable, 1u);
}

TEST_F(AiaFaultFixture, DefaultPolicyPreservesHistoricalSingleAttempt) {
  // No faults: fetch(uri) and fetch(uri, {}) must count identically.
  ASSERT_TRUE(aia_.fetch(kUri).ok());
  const net::FetchStats after_plain = aia_.stats();
  EXPECT_EQ(after_plain.attempts, 1u);
  EXPECT_EQ(after_plain.retries, 0u);
  ASSERT_TRUE(aia_.fetch(kUri, net::FetchPolicy{}).ok());
  EXPECT_EQ(aia_.stats().attempts, 2u);
  EXPECT_EQ(aia_.stats().retries, 0u);
}

// ---------------------------------------------------------------------------
// Campaign: classifies everything, never crashes, deterministic
// ---------------------------------------------------------------------------

CampaignOptions small_campaign() {
  CampaignOptions options;
  options.count = 26;  // two inputs per class
  options.corpus_domains = 60;
  options.threads = 1;
  return options;
}

TEST(CampaignTest, ClassifiesEveryClassWithoutCrashOrHang) {
  CampaignOptions options = small_campaign();
  Campaign campaign(options);
  const CampaignSummary summary = campaign.run();
  EXPECT_EQ(summary.inputs, 26u);
  EXPECT_EQ(summary.crashes, 0u);
  EXPECT_EQ(summary.hangs, 0u);
  EXPECT_TRUE(summary.contract_ok());
  // Every class produced an outcome histogram.
  EXPECT_EQ(summary.outcomes.size(), kMutationClassCount);
  for (const auto& [id, histogram] : summary.outcomes) {
    std::size_t total = 0;
    for (const auto& [outcome, count] : histogram) {
      total += count;
      EXPECT_NE(outcome.rfind("crash:", 0), 0u)
          << id << " crashed: " << outcome;
    }
    EXPECT_EQ(total, 2u) << id;
  }
}

TEST(CampaignTest, SummaryByteIdenticalAcrossThreadCounts) {
  CampaignOptions options = small_campaign();
  Campaign one(options);
  const std::string single = one.run().to_string();

  options.threads = 4;
  Campaign four(options);
  EXPECT_EQ(four.run().to_string(), single);

  Campaign again(options);
  EXPECT_EQ(again.run().to_string(), single);
}

TEST(CampaignTest, DifferentSeedsDifferentDigests) {
  CampaignOptions options = small_campaign();
  Campaign a(options);
  options.seed = 834;
  Campaign b(options);
  EXPECT_NE(a.run().digest, b.run().digest);
}

TEST(CampaignTest, RestrictedClassListIsHonoured) {
  CampaignOptions options = small_campaign();
  options.classes = {MutationClass::kEmptyChain, MutationClass::kDeepNest};
  options.count = 8;
  Campaign campaign(options);
  const CampaignSummary summary = campaign.run();
  EXPECT_TRUE(summary.contract_ok());
  EXPECT_EQ(summary.outcomes.size(), 2u);
  EXPECT_TRUE(summary.outcomes.count("S1"));
  EXPECT_TRUE(summary.outcomes.count("B6"));
}

TEST(CampaignTest, SurvivesDegradedAiaWeb) {
  CampaignOptions options = small_campaign();
  options.aia_transient_failures = 2;
  options.aia_max_retries = 2;
  Campaign transient(options);
  EXPECT_TRUE(transient.run().contract_ok());

  options.aia_transient_failures = 0;
  options.aia_permanent_failures = true;
  Campaign permanent(options);
  EXPECT_TRUE(permanent.run().contract_ok());
}

TEST(CampaignTest, ThroughDaemonModeHoldsTheContract) {
  CampaignOptions options = small_campaign();
  options.through_daemon = true;
  options.threads = 2;
  Campaign campaign(options);
  const CampaignSummary summary = campaign.run();
  EXPECT_TRUE(summary.contract_ok()) << summary.to_string();
  // Every outcome must be an HTTP verdict (the daemon answered them all).
  for (const auto& [id, histogram] : summary.outcomes) {
    for (const auto& [outcome, count] : histogram) {
      EXPECT_EQ(outcome.rfind("http:", 0), 0u) << outcome;
    }
  }
}

TEST(CampaignTest, SocketFaultClassesEvictHostileClients) {
  CampaignOptions options = small_campaign();
  options.through_daemon = true;
  options.threads = 2;
  options.socket_faults = true;
  options.socket_fault_clients = 4;
  options.socket_fault_storm = 48;
  Campaign campaign(options);
  const CampaignSummary summary = campaign.run();
  EXPECT_TRUE(summary.contract_ok()) << summary.to_string();
  EXPECT_EQ(summary.socket_fault_failures, 0u) << summary.to_string();
  // All four classes ran, every hostile client was evicted, and the
  // daemon stayed healthy throughout.
  ASSERT_EQ(summary.socket_faults.size(), 4u);
  EXPECT_EQ(summary.socket_faults.at("F1-slowloris"),
            "evicted=4/4 healthy=ok");
  EXPECT_EQ(summary.socket_faults.at("F2-midframe-stall"),
            "evicted=4/4 healthy=ok");
  EXPECT_EQ(summary.socket_faults.at("F3-never-reading"),
            "evicted=4/4 healthy=ok");
  EXPECT_EQ(summary.socket_faults.at("F4-storm"),
            "stormed=48/48 healthy=ok");
  // The socket-fault outcomes ride in the summary rendering.
  EXPECT_NE(summary.to_string().find("socket faults:"), std::string::npos);
}

}  // namespace
}  // namespace chainchaos::chaos
