#include "ca/hierarchy.hpp"

#include <cassert>
#include <cctype>

namespace chainchaos::ca {

CaHierarchy CaHierarchy::create(const std::string& name,
                                int intermediate_count,
                                net::AiaRepository* aia) {
  assert(intermediate_count >= 1);
  CaHierarchy h;
  h.name_ = name;
  h.aia_published_ = aia != nullptr;

  h.root_id_ = x509::make_identity(
      asn1::Name::make(name + " Root CA", name, "US"));
  {
    x509::CertificateBuilder builder;
    builder.subject(h.root_id_.name)
        .as_ca()
        .public_key(h.root_id_.keys.pub)
        .validity(1500000000, 2000000000);  // long-lived anchor
    h.root_cert_ = builder.self_sign(h.root_id_.keys);
  }
  if (aia != nullptr) {
    aia->publish(h.aia_uri_for_tier(0), h.root_cert_);
  }

  const x509::SigningIdentity* parent = &h.root_id_;
  for (int tier = 1; tier <= intermediate_count; ++tier) {
    x509::SigningIdentity id = x509::make_identity(asn1::Name::make(
        name + " Intermediate CA " + std::to_string(tier), name, "US"));
    x509::CertificateBuilder builder;
    builder.subject(id.name)
        .as_ca(intermediate_count - tier)  // tight but satisfiable pathLen
        .public_key(id.keys.pub)
        .validity(1600000000, 1950000000);
    if (aia != nullptr) {
      builder.aia_ca_issuers(h.aia_uri_for_tier(tier - 1));
    }
    x509::CertPtr cert = builder.sign(*parent);
    if (aia != nullptr) {
      aia->publish(h.aia_uri_for_tier(tier), cert);
    }
    h.intermediate_certs_.push_back(std::move(cert));
    h.intermediate_ids_.push_back(std::move(id));
    parent = &h.intermediate_ids_.back();
  }
  return h;
}

x509::CertPtr CaHierarchy::issue_leaf(const std::string& domain,
                                      std::int64_t not_before,
                                      std::int64_t not_after) const {
  x509::CertificateBuilder builder;
  builder.as_leaf(domain).validity(not_before, not_after);
  if (aia_published_) {
    builder.aia_ca_issuers(
        aia_uri_for_tier(static_cast<int>(intermediate_certs_.size())));
  }
  return builder.sign(issuing_identity());
}

x509::CertPtr CaHierarchy::issue_leaf(const std::string& domain) const {
  return issue_leaf(domain, 1700000000, 1900000000);
}

std::vector<x509::CertPtr> CaHierarchy::compliant_chain(
    const x509::CertPtr& leaf) const {
  std::vector<x509::CertPtr> chain;
  chain.push_back(leaf);
  for (std::size_t i = intermediate_certs_.size(); i-- > 0;) {
    chain.push_back(intermediate_certs_[i]);
  }
  return chain;
}

std::vector<x509::CertPtr> CaHierarchy::bundle_ascending() const {
  std::vector<x509::CertPtr> bundle;
  for (std::size_t i = intermediate_certs_.size(); i-- > 0;) {
    bundle.push_back(intermediate_certs_[i]);
  }
  return bundle;
}

std::string CaHierarchy::aia_uri_for_tier(int tier) const {
  std::string slug;
  for (char c : name_) {
    slug.push_back(c == ' ' ? '-' : static_cast<char>(std::tolower(
                                        static_cast<unsigned char>(c))));
  }
  return "http://aia." + slug + ".example/tier" + std::to_string(tier) +
         ".crt";
}

}  // namespace chainchaos::ca
