#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.hpp"
#include "support/str.hpp"

namespace chainchaos::service {

Client::Client(std::uint16_t port, int timeout_ms)
    : port_(port), timeout_ms_(timeout_ms) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<bool> Client::connect_once() {
  disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return make_error("client.socket", std::strerror(errno));

  timeval timeout{};
  timeout.tv_sec = timeout_ms_ / 1000;
  timeout.tv_usec = (timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string detail = std::strerror(errno);
    disconnect();
    return make_error("client.connect", detail);
  }
  return true;
}

Result<net::HttpResponse> Client::round_trip(const std::string& wire) {
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error("client.send", std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string buffer;
  for (;;) {
    auto probe = net::probe_response_frame(buffer);
    if (!probe.ok()) return probe.error();
    if (probe.value().complete) {
      const std::size_t total = probe.value().total_bytes;
      auto response = net::parse_response(to_bytes(buffer.substr(0, total)));
      if (!response.ok()) return response.error();
      // A "connection: close" response will not be followed by another;
      // drop the socket so the next request redials.
      if (net::wants_close(response.value().headers)) disconnect();
      return response;
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) return make_error("client.closed", "server closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error("client.recv", std::strerror(errno));
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<std::vector<net::HttpResponse>> Client::pipeline(
    std::vector<net::HttpRequest> requests) {
  std::string wire;
  for (net::HttpRequest& req : requests) {
    req.host = "127.0.0.1:" + std::to_string(port_);
    if (req.headers.find("x-trace-id") == req.headers.end()) {
      req.headers["x-trace-id"] = "c" + std::to_string(port_) + "-" +
                                  std::to_string(++trace_seq_);
    }
    wire += req.encode();
  }

  if (fd_ < 0) {
    auto connected = connect_once();
    if (!connected.ok()) return connected.error();
  }
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = std::strerror(errno);
      disconnect();
      return make_error("client.send", detail);
    }
    sent += static_cast<std::size_t>(n);
  }

  std::vector<net::HttpResponse> out;
  out.reserve(requests.size());
  std::string buffer;
  while (out.size() < requests.size()) {
    auto probe = net::probe_response_frame(buffer);
    if (!probe.ok()) return probe.error();
    if (probe.value().complete) {
      const std::size_t total = probe.value().total_bytes;
      auto response = net::parse_response(to_bytes(buffer.substr(0, total)));
      if (!response.ok()) return response.error();
      buffer.erase(0, total);
      const bool closing = net::wants_close(response.value().headers);
      out.push_back(std::move(response.value()));
      if (closing) {
        // The server ended the stream; later requests were discarded.
        // Returning the shorter vector lets the caller see exactly how
        // far the pipeline got.
        disconnect();
        return out;
      }
      continue;
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) {
      disconnect();
      return make_error("client.closed",
                        "server closed mid-pipeline after " +
                            std::to_string(out.size()) + " responses");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = std::strerror(errno);
      disconnect();
      return make_error("client.recv", detail);
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return out;
}

Result<net::HttpResponse> Client::request(net::HttpRequest req) {
  req.host = "127.0.0.1:" + std::to_string(port_);
  std::string trace_header;
  if (const auto it = req.headers.find("x-trace-id");
      it != req.headers.end()) {
    trace_header = it->second;
  } else {
    trace_header = "c" + std::to_string(port_) + "-" +
                   std::to_string(++trace_seq_);
    req.headers["x-trace-id"] = trace_header;
  }
  const obs::TraceContext trace_ctx(obs::trace_id_from_string(trace_header));
  CHAINCHAOS_SPAN(obs::Stage::kClientRequest);
  const std::string wire = req.encode();

  const bool fresh = fd_ < 0;
  if (fresh) {
    auto connected = connect_once();
    if (!connected.ok()) return connected.error();
  }
  auto response = round_trip(wire);
  if (response.ok() || fresh) return response;

  // The kept-alive connection went stale (server timed it out between
  // requests): reconnect once and retry.
  auto connected = connect_once();
  if (!connected.ok()) return connected.error();
  return round_trip(wire);
}

Result<net::HttpResponse> Client::analyze(const std::string& body,
                                          const std::string& domain) {
  net::HttpRequest req;
  req.method = "POST";
  req.target = domain.empty() ? "/v1/analyze" : "/v1/analyze?domain=" + domain;
  req.headers["content-type"] = "application/x-pem-file";
  req.body = to_bytes(body);
  return request(std::move(req));
}

Result<net::HttpResponse> Client::lint(const std::string& body,
                                       const std::string& domain) {
  net::HttpRequest req;
  req.method = "POST";
  req.target = domain.empty() ? "/v1/lint" : "/v1/lint?domain=" + domain;
  req.headers["content-type"] = "application/x-pem-file";
  req.body = to_bytes(body);
  return request(std::move(req));
}

Result<net::HttpResponse> Client::stats() {
  net::HttpRequest req;
  req.target = "/v1/stats";
  return request(std::move(req));
}

Result<net::HttpResponse> Client::metrics() {
  net::HttpRequest req;
  req.target = "/v1/metrics";
  return request(std::move(req));
}

Result<net::HttpResponse> Client::trace() {
  net::HttpRequest req;
  req.target = "/v1/trace";
  return request(std::move(req));
}

Result<net::HttpResponse> Client::timeseries() {
  net::HttpRequest req;
  req.target = "/v1/timeseries";
  return request(std::move(req));
}

Result<net::HttpResponse> Client::flight() {
  net::HttpRequest req;
  req.target = "/v1/flight";
  return request(std::move(req));
}

Result<net::HttpResponse> Client::healthz() {
  net::HttpRequest req;
  req.target = "/healthz";
  return request(std::move(req));
}

}  // namespace chainchaos::service
