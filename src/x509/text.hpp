// Human-readable certificate rendering in the spirit of
// `openssl x509 -text`: the format operators actually read when they
// debug a deployment. Used by inspect_chain and available to any caller.
#pragma once

#include <string>

#include "x509/certificate.hpp"

namespace chainchaos::x509 {

/// Multi-line dump of every parsed field and extension.
std::string to_text(const Certificate& cert);

/// One-line summary: "subject <- issuer [role, validity]".
std::string to_summary_line(const Certificate& cert);

/// "YYYY-MM-DD HH:MM:SS UTC" rendering of a validity timestamp.
std::string format_time(std::int64_t unix_seconds);

}  // namespace chainchaos::x509
