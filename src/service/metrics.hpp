// Service metrics: lock-free counters for the /v1/stats endpoint.
//
// Everything on the request path is a relaxed atomic increment — the
// counters are monotonic sums with no cross-counter invariants, so
// relaxed ordering is sufficient and a stats read mid-traffic sees a
// merely slightly-stale snapshot. Latency lands in fixed log-spaced
// microsecond buckets (a poor man's histogram: enough for p50/p99-style
// eyeballing without dynamic allocation on the hot path).
//
// All renderers (JSON, Prometheus, the chainwatch time-series row) go
// through one MetricsSnapshot: every atomic is loaded exactly once per
// export, so consumers differencing consecutive exports (chainq watch)
// can never see a counter move backwards between two fields of the same
// document.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/verifier.hpp"
#include "net/aia_repository.hpp"
#include "service/cache.hpp"

namespace chainchaos::service {

/// Endpoint slots for per-endpoint request counters.
enum class Endpoint { kAnalyze, kLint, kStats, kHealth, kMetrics, kTrace,
                      kParsdiff, kTimeseries, kFlight, kOther };

inline constexpr std::size_t kEndpointCount = 10;

const char* to_string(Endpoint endpoint);

/// Upper bounds (µs) of the latency buckets; the last bucket is
/// unbounded.
inline constexpr std::array<std::uint64_t, 8> kLatencyBucketUpperUs = {
    50, 200, 1000, 5000, 20000, 100000, 500000, 2000000};

inline constexpr std::size_t kLatencyBucketCount =
    kLatencyBucketUpperUs.size() + 1;

/// Upper bounds of the epoll_wait batch-size buckets (events returned
/// per wakeup); the last bucket is unbounded.
inline constexpr std::array<std::uint64_t, 8> kBatchBucketUpper = {
    1, 2, 4, 8, 16, 32, 64, 128};

inline constexpr std::size_t kBatchBucketCount = kBatchBucketUpper.size() + 1;

/// Why the event loop forcibly closed a connection (DESIGN.md §5.15):
/// a frame that dripped in slower than the read deadline, a peer that
/// would not drain its response before the write deadline, or a
/// keep-alive connection idle past the idle deadline.
enum class Eviction { kSlowRead, kSlowWrite, kIdle };

inline constexpr std::size_t kEvictionKindCount = 3;

const char* to_string(Eviction kind);

/// One coherent read of every counter. Each atomic is loaded exactly
/// once to build this, so the fields are mutually consistent in the
/// only sense that matters for rate computation: no counter appears
/// older in a later export than it did in an earlier one.
struct MetricsSnapshot {
  std::uint64_t requests_total = 0;
  std::array<std::uint64_t, kEndpointCount> by_endpoint{};
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t rejected = 0;
  std::uint64_t client_disconnects = 0;
  std::uint64_t write_failures = 0;
  std::uint64_t worker_recoveries = 0;
  std::array<std::uint64_t, kLatencyBucketCount> latency{};
  std::uint64_t latency_total_us = 0;
  std::array<std::uint64_t, kLatencyBucketCount> queue_wait{};
  std::uint64_t queue_wait_total_us = 0;
  std::uint64_t queue_high_water = 0;
  std::uint64_t accept_errors = 0;
  std::uint64_t fd_exhausted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t connections_peak = 0;
  std::uint64_t connections_accepted = 0;
  std::array<std::uint64_t, kEvictionKindCount> evictions{};
  // Event-loop health (DESIGN.md §5.16).
  std::uint64_t loop_ticks = 0;
  std::array<std::uint64_t, kLatencyBucketCount> loop_tick{};
  std::uint64_t loop_tick_total_us = 0;
  std::array<std::uint64_t, kBatchBucketCount> poll_batch{};
  std::uint64_t poll_waits = 0;
  std::uint64_t poll_events_total = 0;
  std::uint64_t wheel_pending = 0;
  std::uint64_t pump_stalls = 0;
  double uptime_seconds = 0.0;

  std::uint64_t evictions_total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t count : evictions) sum += count;
    return sum;
  }
};

class Metrics {
 public:
  void record_request(Endpoint endpoint);

  /// `status` is the HTTP status sent; `micros` the parse-to-response
  /// handler time (queue wait is accounted separately below).
  void record_response(int status, std::uint64_t micros);

  /// Time a connection sat in the accept queue before a worker dequeued
  /// it. Kept in its own histogram so backpressure (long queue waits) is
  /// distinguishable from slow analysis (long handler times) in
  /// /v1/stats.
  void record_queue_wait(std::uint64_t micros);

  /// Accepted connections that were turned away with 503 because the
  /// request queue was full.
  void record_rejected();

  /// Peer vanished (EOF/ECONNRESET) with a request partially received —
  /// a mid-request disconnect, as opposed to an idle keep-alive close.
  void record_client_disconnect();

  /// Response could not be written back (EPIPE/reset/write deadline).
  void record_write_failure();

  /// A worker swallowed an unexpected error while serving a connection
  /// and lived to dequeue the next one (the crash-free contract's
  /// last line of defence; should stay 0 in healthy operation).
  void record_worker_recovery();

  /// Tracks the queue-depth high-water mark (CAS max).
  void note_queue_depth(std::size_t depth);

  /// accept() returned an error other than EAGAIN/EINTR.
  void record_accept_error();

  /// accept() hit EMFILE/ENFILE and the reserved-fd shed path ran.
  void record_fd_exhausted();

  /// A connection was admitted into the event loop.
  void record_connection_open();

  /// An admitted connection left the event loop (any reason).
  void record_connection_close();

  /// The event loop evicted a connection for missing a deadline.
  void record_eviction(Eviction kind);

  /// One full event-loop iteration's busy time (dispatch + completions
  /// + deadlines, excluding the blocking wait itself).
  void record_loop_tick(std::uint64_t micros);

  /// epoll_wait returned `events` ready events in one wakeup.
  void record_poll_batch(std::size_t events);

  /// Timeout-wheel occupancy at the end of a loop tick (gauge).
  void note_wheel_pending(std::size_t pending);

  /// A loop tick's busy time exceeded the poll interval — the pump
  /// could not keep up with its own cadence.
  void record_pump_stall();

  std::uint64_t requests_total() const {
    return requests_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected_total() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  std::uint64_t queue_high_water() const {
    return queue_high_water_.load(std::memory_order_relaxed);
  }
  std::uint64_t client_disconnects() const {
    return client_disconnects_.load(std::memory_order_relaxed);
  }
  std::uint64_t write_failures() const {
    return write_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t worker_recoveries() const {
    return worker_recoveries_.load(std::memory_order_relaxed);
  }
  std::uint64_t accept_errors() const {
    return accept_errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t fd_exhausted() const {
    return fd_exhausted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_open() const {
    return connections_open_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_peak() const {
    return connections_peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions(Eviction kind) const {
    return evictions_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t loop_ticks() const {
    return loop_ticks_.load(std::memory_order_relaxed);
  }
  std::uint64_t pump_stalls() const {
    return pump_stalls_.load(std::memory_order_relaxed);
  }

  /// Seconds since this Metrics object was constructed (server start).
  double uptime_seconds() const;

  /// One coherent read of every counter (see MetricsSnapshot).
  MetricsSnapshot snapshot() const;

  /// Renders the full metrics document (request counters, status
  /// classes, latency buckets, queue high-water mark, connection
  /// robustness counters, event-loop health, uptime, cache counters,
  /// AIA fetch/retry counters, signature-verification memo counters) as
  /// one JSON object via report::JsonWriter. `aia` is the snapshot of
  /// the handler's repository (all-zero when the service runs without
  /// AIA completion); `verify` the crypto::verify_snapshot() of the
  /// process.
  std::string to_json(const CacheStats& cache,
                      const net::FetchStats& aia = net::FetchStats{},
                      const crypto::VerifySnapshot& verify =
                          crypto::VerifySnapshot{}) const;

  /// Renders the same counters in Prometheus text exposition format
  /// (version 0.0.4) for GET /v1/metrics; the latency and queue-wait
  /// histograms become `_bucket`/`_sum`/`_count` families in seconds.
  std::string to_prometheus(const CacheStats& cache,
                            const net::FetchStats& aia = net::FetchStats{},
                            const crypto::VerifySnapshot& verify =
                                crypto::VerifySnapshot{}) const;

 private:
  using Clock = std::chrono::steady_clock;

  std::atomic<std::uint64_t> requests_total_{0};
  std::array<std::atomic<std::uint64_t>, kEndpointCount> by_endpoint_{};
  std::atomic<std::uint64_t> responses_2xx_{0};
  std::atomic<std::uint64_t> responses_4xx_{0};
  std::atomic<std::uint64_t> responses_5xx_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> client_disconnects_{0};
  std::atomic<std::uint64_t> write_failures_{0};
  std::atomic<std::uint64_t> worker_recoveries_{0};
  std::array<std::atomic<std::uint64_t>, kLatencyBucketCount> latency_{};
  std::atomic<std::uint64_t> latency_total_us_{0};
  std::array<std::atomic<std::uint64_t>, kLatencyBucketCount> queue_wait_{};
  std::atomic<std::uint64_t> queue_wait_total_us_{0};
  std::atomic<std::uint64_t> queue_high_water_{0};
  std::atomic<std::uint64_t> accept_errors_{0};
  std::atomic<std::uint64_t> fd_exhausted_{0};
  std::atomic<std::uint64_t> connections_open_{0};
  std::atomic<std::uint64_t> connections_peak_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::array<std::atomic<std::uint64_t>, kEvictionKindCount> evictions_{};
  std::atomic<std::uint64_t> loop_ticks_{0};
  std::array<std::atomic<std::uint64_t>, kLatencyBucketCount> loop_tick_{};
  std::atomic<std::uint64_t> loop_tick_total_us_{0};
  std::array<std::atomic<std::uint64_t>, kBatchBucketCount> poll_batch_{};
  std::atomic<std::uint64_t> poll_waits_{0};
  std::atomic<std::uint64_t> poll_events_total_{0};
  std::atomic<std::uint64_t> wheel_pending_{0};
  std::atomic<std::uint64_t> pump_stalls_{0};
  Clock::time_point started_at_ = Clock::now();
};

/// Retained window of the chainwatch per-second time-series ring: five
/// minutes at one sample per second.
inline constexpr std::size_t kTimeseriesWindowSeconds = 300;

/// Column names of one time-series row, in the order timeseries_row()
/// fills them. Shared by the Server (ring construction) and tests.
std::vector<std::string> timeseries_columns();

/// One time-series row sampled from coherent snapshots of the four
/// counter domains. Values align 1:1 with timeseries_columns().
std::vector<std::uint64_t> timeseries_row(const MetricsSnapshot& m,
                                          const CacheStats& cache,
                                          const net::FetchStats& aia,
                                          const crypto::VerifySnapshot& verify);

}  // namespace chainchaos::service
