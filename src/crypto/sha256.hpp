// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for certificate fingerprints, TBS digests under RSA signatures,
// and key-identifier derivation (SKID = SHA-256 of the public key, the
// modern profile of RFC 5280 §4.2.1.2 method (1)).
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace chainchaos::crypto {

/// Incremental SHA-256 context.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256();

  /// Absorbs more input. May be called any number of times.
  void update(BytesView data);

  /// Finalizes and returns the 32-byte digest. The context must not be
  /// updated afterwards.
  std::array<std::uint8_t, kDigestSize> finish();

  /// One-shot convenience.
  static Bytes digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finished_ = false;
};

/// HMAC-SHA256 (RFC 2104); used by the deterministic nonce derivation in
/// key generation so keys are a pure function of the seed.
Bytes hmac_sha256(BytesView key, BytesView message);

}  // namespace chainchaos::crypto
