// Issuance-order compliance analysis (paper §4.2, Table 5).
//
// Strict compliance per RFC 5246 §7.4.2: certificate p+1 MUST directly
// certify certificate p, for every adjacent pair. When a list violates
// that, the analyzer classifies the violation into the paper's taxonomy:
// duplicate certificates, irrelevant certificates, multiple paths, and
// reversed sequences (categories overlap — a chain may exhibit several).
#pragma once

#include <vector>

#include "chain/topology.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::chain {

/// Role of a certificate within a chain, used to break down duplicates
/// the way Table 10 does (leaf/intermediate/root).
enum class CertRole { kLeaf, kIntermediate, kRoot };

CertRole classify_role(const x509::Certificate& cert);

struct OrderAnalysis {
  bool compliant = true;  ///< adjacent-pair issuance holds list-wide

  // --- Table 5 taxonomy (only meaningful when !compliant or when the
  // corresponding structure exists regardless of strict order) ----------
  bool has_duplicates = false;
  bool duplicate_leaf = false;
  bool duplicate_intermediate = false;
  bool duplicate_root = false;
  int max_duplicate_occurrences = 0;  ///< most copies of one cert

  bool has_irrelevant = false;
  int irrelevant_count = 0;

  bool multiple_paths = false;
  int path_count = 0;

  bool reversed_sequence = false;   ///< at least one leaf path reversed
  bool all_paths_reversed = false;

  /// Any taxonomy flag set (what Table 5 counts as order non-compliance).
  bool any_order_issue() const {
    return has_duplicates || has_irrelevant || multiple_paths ||
           reversed_sequence;
  }
};

/// Strict RFC adjacency check on the raw list.
bool order_compliant(const std::vector<x509::CertPtr>& list);

/// Full analysis; reuses a pre-built topology.
OrderAnalysis analyze_order(const std::vector<x509::CertPtr>& list,
                            const Topology& topology);

}  // namespace chainchaos::chain
