// DER (Distinguished Encoding Rules) subset: the encoder/decoder beneath
// our X.509 certificates.
//
// Covers the universal types X.509 needs — BOOLEAN, INTEGER, BIT STRING,
// OCTET STRING, NULL, OBJECT IDENTIFIER, UTF8String/PrintableString,
// UTCTime/GeneralizedTime, SEQUENCE/SET — plus context-specific tags for
// extension wrappers. Definite-length encoding only, as DER requires.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "asn1/profile.hpp"
#include "crypto/bigint.hpp"
#include "support/bytes.hpp"
#include "support/result.hpp"

namespace chainchaos::asn1 {

/// DER tag numbers (universal class) plus helpers for context tags.
enum class Tag : std::uint8_t {
  kBoolean = 0x01,
  kInteger = 0x02,
  kBitString = 0x03,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kUtf8String = 0x0c,
  kPrintableString = 0x13,
  kIa5String = 0x16,
  kUtcTime = 0x17,
  kGeneralizedTime = 0x18,
  kSequence = 0x30,
  kSet = 0x31,
};

/// Context-specific constructed tag [n], e.g. the [3] wrapping extensions.
constexpr std::uint8_t context_constructed(unsigned n) {
  return static_cast<std::uint8_t>(0xa0 | n);
}

/// Context-specific primitive tag [n], e.g. SAN dNSName [2].
constexpr std::uint8_t context_primitive(unsigned n) {
  return static_cast<std::uint8_t>(0x80 | n);
}

/// Incremental DER writer. Values are appended in order; nested
/// structures are built inside-out: encode the body with its own writer,
/// then wrap with `add_tlv(kSequence, body)`.
class DerWriter {
 public:
  /// Appends a complete TLV with the given tag byte.
  void add_tlv(std::uint8_t tag, BytesView body);
  void add_tlv(Tag tag, BytesView body) {
    add_tlv(static_cast<std::uint8_t>(tag), body);
  }

  void add_boolean(bool value);

  /// Non-negative INTEGER from a big integer (minimal, leading 0x00 when
  /// the high bit is set, per DER).
  void add_integer(const crypto::BigInt& value);
  void add_integer(std::uint64_t value);

  /// BIT STRING with zero unused bits (how X.509 carries keys/signatures).
  void add_bit_string(BytesView bits);

  void add_octet_string(BytesView body);
  void add_null();

  /// OBJECT IDENTIFIER from dotted-decimal text, e.g. "2.5.29.19".
  /// Invalid input is a programming error and asserts.
  void add_oid(std::string_view dotted);

  void add_utf8_string(std::string_view s);
  void add_printable_string(std::string_view s);

  /// GeneralizedTime from seconds-since-epoch (UTC, "YYYYMMDDHHMMSSZ").
  void add_generalized_time(std::int64_t unix_seconds);

  /// Splices pre-encoded TLV bytes verbatim (e.g. a Name encoding).
  void add_raw(BytesView tlv);

  /// Wraps the writer's current content in a SEQUENCE and returns it.
  Bytes wrap_sequence() const;

  /// Raw concatenated TLVs written so far.
  const Bytes& bytes() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Encodes just a length field (used by the writer; exposed for tests).
Bytes encode_length(std::size_t length);

/// Encodes a dotted OID's body (no tag/length).
Bytes encode_oid_body(std::string_view dotted);

/// One decoded TLV element.
struct DerElement {
  std::uint8_t tag = 0;
  Bytes body;          ///< value bytes (content octets)
  std::size_t size = 0;  ///< total encoded size including tag+length

  bool is(Tag t) const { return tag == static_cast<std::uint8_t>(t); }
};

/// Sequential DER reader over a byte view. Construction without a
/// profile reads with the historical default tolerances; passing a
/// ParseProfile applies that profile's leniency knobs. The profile is
/// borrowed, not copied — it must outlive the reader (the presets in
/// parsdiff/profile.cpp are process-lifetime statics).
class DerReader {
 public:
  explicit DerReader(BytesView data,
                     const ParseProfile& profile = default_parse_profile())
      : data_(data), profile_(&profile) {}

  /// The leniency profile this reader decodes under; hand it to nested
  /// readers so a parse applies one profile throughout.
  const ParseProfile& profile() const { return *profile_; }

  bool at_end() const { return pos_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Peeks at the next element's tag byte without consuming.
  Result<std::uint8_t> peek_tag() const;

  /// Reads the next TLV of any tag.
  Result<DerElement> read_any();

  /// Reads the next TLV, requiring the given tag.
  Result<DerElement> read(Tag tag);
  Result<DerElement> read(std::uint8_t tag);

  /// Typed readers built on read().
  Result<bool> read_boolean();
  Result<crypto::BigInt> read_integer();
  Result<Bytes> read_bit_string();  ///< strips the unused-bits octet
  Result<Bytes> read_octet_string();
  Result<std::string> read_oid();   ///< returns dotted-decimal
  Result<std::string> read_string();  ///< UTF8/Printable/IA5
  Result<std::int64_t> read_generalized_time();

  /// Profile-aware validity-time reader: GeneralizedTime always, UTCTime
  /// when the profile accepts it, with the profile's missing-seconds /
  /// offset / fractional-second tolerances applied. Under the default
  /// profile this is read_generalized_time() exactly (same outcomes,
  /// same error codes).
  Result<std::int64_t> read_time();

 private:
  BytesView data_;
  std::size_t pos_ = 0;
  const ParseProfile* profile_;
};

/// Parses an OID body back to dotted-decimal.
Result<std::string> decode_oid_body(BytesView body);

/// Maximum TLV nesting depth any decoder in the stack accepts. X.509
/// structures stay below ~16 levels; the cap exists so pathological
/// inputs (a 10k-deep constructed tower) are rejected with a clean error
/// instead of driving recursive consumers into stack exhaustion.
inline constexpr std::size_t kMaxNestingDepth = 64;

/// Walks the TLV tree of `der` *iteratively* (bounded memory, no
/// recursion) and rejects nesting deeper than `max_depth` with
/// "der.too_deep". Framing defects (truncation, bad lengths) are not
/// this gate's business: they pass through so the reader proper can
/// report them with its usual codes. Every parse entry point that later
/// descends recursively (x509::parse_certificate, the lint DER scans)
/// calls this first.
Result<bool> check_nesting(BytesView der,
                           std::size_t max_depth = kMaxNestingDepth);

}  // namespace chainchaos::asn1
