// CorpusReader: memory-mapped random access over a packed corpus file.
//
// open() maps the file read-only and validates everything cheap enough
// to check without touching the data section: magic, version, header
// coherence, section bounds, and a full index scan (every record byte
// range must lie inside the data section, in ascending order, without
// overlaps). Per-record checksums are verified on decode; the whole-
// file checksum via verify() (an explicit full read — corpus_cat
// --verify and the round-trip tests call it, sweeps do not, keeping
// cold start near zero). Every failure is a typed Error
// ("corpusio.bad_magic", "corpusio.unsupported_version",
// "corpusio.truncated", "corpusio.bad_index", "corpusio.overlap",
// "corpusio.checksum_mismatch", "corpusio.empty", ...); no input can
// reach undefined behaviour.
//
// Streaming: decode_record() materializes one dataset::DomainRecord at
// a time from the mapped bytes (parsing its DER certificates afresh),
// and release_records() hands consumed page ranges back to the kernel
// (madvise MADV_DONTNEED), which is what keeps a multi-million-record
// sweep's resident set roughly constant instead of proportional to the
// file.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "corpusio/format.hpp"
#include "dataset/corpus.hpp"
#include "net/aia_repository.hpp"
#include "support/result.hpp"
#include "truststore/root_store.hpp"

namespace chainchaos::corpusio {

/// RAII read-only file mapping (POSIX mmap).
class MappedFile {
 public:
  static Result<MappedFile> map(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  BytesView view() const { return BytesView(data_, size_); }

  /// Advises the kernel that [offset, offset+length) will not be needed
  /// again; the range is widened/shrunk to page boundaries internally.
  /// Purely an RSS hint — later accesses refault transparently.
  void dont_need(std::size_t offset, std::size_t length) const;

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// The decoded environment block: everything a sweep needs besides the
/// records themselves.
struct EnvironmentBlock {
  std::vector<x509::CertPtr> core_roots;
  std::vector<std::pair<x509::CertPtr, unsigned>> exclusive_roots;
  std::vector<net::AiaEntrySnapshot> aia_entries;
};

class CorpusReader {
 public:
  /// Maps and validates `path` (see file comment for what open checks).
  static Result<std::unique_ptr<CorpusReader>> open(const std::string& path);

  const FileHeader& header() const { return header_; }
  std::size_t size() const {
    return static_cast<std::size_t>(header_.record_count);
  }
  std::size_t file_bytes() const { return file_.size(); }

  /// The validated index entry for record `i` (i < size()).
  IndexEntry index_entry(std::size_t i) const;

  /// Decodes record `i`: verifies the per-record checksum, rebuilds the
  /// label set and parses every DER certificate.
  Result<dataset::DomainRecord> decode_record(std::size_t i) const;

  /// Decodes the environment block (root-store material + AIA
  /// snapshot).
  Result<EnvironmentBlock> environment() const;

  /// Recomputes and compares the whole-file checksum plus every
  /// per-record checksum. Reads the entire file.
  Result<bool> verify() const;

  /// Total data-section bytes spanned by records [first, last).
  std::uint64_t record_bytes(std::size_t first, std::size_t last) const;

  /// Returns the pages holding records [first, last) to the kernel.
  void release_records(std::size_t first, std::size_t last) const;

 private:
  CorpusReader() = default;

  MappedFile file_;
  FileHeader header_;
};

/// A packed corpus opened for analysis: the reader plus the rebuilt
/// sweep environment (program root stores, replayed AIA repository).
/// This is what the --corpus CLI paths hold on to: `stores()` and
/// `aia()` slot into chain::CompletenessOptions exactly like a
/// generated dataset::Corpus's, so sweep summaries come out
/// byte-identical to the in-RAM run of the same config.
class PackedCorpus {
 public:
  static Result<std::unique_ptr<PackedCorpus>> open(const std::string& path);

  const CorpusReader& reader() const { return *reader_; }
  const truststore::ProgramStores& stores() const { return stores_; }
  net::AiaRepository& aia() { return aia_; }

 private:
  PackedCorpus() = default;

  std::unique_ptr<CorpusReader> reader_;
  truststore::ProgramStores stores_;
  net::AiaRepository aia_;
};

}  // namespace chainchaos::corpusio
