// CaHierarchy: a complete synthetic certification authority — root,
// intermediates, and an issuing identity — able to mint leaf
// certificates and publish its issuers under AIA URIs.
//
// Hierarchies are the raw material for both the CA issuance pipelines
// (Table 6) and the corpus generator's CA zoo (Tables 5, 7, 11).
#pragma once

#include <string>
#include <vector>

#include "net/aia_repository.hpp"
#include "x509/builder.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::ca {

class CaHierarchy {
 public:
  /// Builds a hierarchy named `name` with `intermediate_count` >= 1
  /// intermediates under the root. When `aia` is non-null, each issued
  /// tier's parent is published at a deterministic URI and certificates
  /// carry matching caIssuers pointers.
  static CaHierarchy create(const std::string& name, int intermediate_count,
                            net::AiaRepository* aia = nullptr);

  const std::string& name() const { return name_; }

  /// Self-signed trust anchor.
  const x509::CertPtr& root() const { return root_cert_; }

  /// Intermediates ordered from just-below-root down to the issuing CA.
  const std::vector<x509::CertPtr>& intermediates() const {
    return intermediate_certs_;
  }

  /// The identity that signs leaves (the last intermediate).
  const x509::SigningIdentity& issuing_identity() const {
    return intermediate_ids_.back();
  }

  /// Issues a server certificate for `domain` with the given validity.
  /// The leaf carries an AIA pointer at the issuing intermediate when the
  /// hierarchy was created with a repository.
  x509::CertPtr issue_leaf(const std::string& domain, std::int64_t not_before,
                           std::int64_t not_after) const;

  /// Convenience: leaf with the library's default wide validity.
  x509::CertPtr issue_leaf(const std::string& domain) const;

  /// The compliant server deployment: leaf, intermediates deepest-first
  /// (issuing CA right after the leaf), root omitted.
  std::vector<x509::CertPtr> compliant_chain(const x509::CertPtr& leaf) const;

  /// Intermediates in the order a ca-bundle file should list them
  /// (issuing CA first, ascending towards the root).
  std::vector<x509::CertPtr> bundle_ascending() const;

  /// AIA URI at which `tier`'s certificate is published (tier 0 = root).
  std::string aia_uri_for_tier(int tier) const;

 private:
  std::string name_;
  x509::SigningIdentity root_id_;
  x509::CertPtr root_cert_;
  std::vector<x509::SigningIdentity> intermediate_ids_;
  std::vector<x509::CertPtr> intermediate_certs_;
  bool aia_published_ = false;
};

}  // namespace chainchaos::ca
