// Regenerates Table 10: HTTP server software behind non-compliant
// chains, bucketed by non-compliance type (paper Appendix B). One engine
// sweep with per-server attribution tallies replaces the old hand-rolled
// map-of-maps loop: every cell below is a field of a ComplianceTally.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  const auto corpus = bench::make_corpus();

  chain::CompletenessOptions options;
  options.store = &corpus->stores().union_store;
  options.aia = &corpus->aia();
  const chain::ComplianceAnalyzer analyzer(options);

  engine::AnalysisRequest request;
  request.records = &corpus->records();
  request.analyzer = &analyzer;
  request.key_of = [](const dataset::DomainRecord& record) {
    return record.observation.server_software;
  };
  const engine::AnalysisResult result = engine::run(request);

  const std::vector<std::string>& servers =
      dataset::CorpusConfig::server_names();

  // Each Table 10 row is one tally field; compliant records contribute
  // zero to every one of them (an order issue or incompleteness is what
  // makes a record non-compliant in the first place).
  const auto field_of = [](const engine::ComplianceTally& tally,
                           const std::string& kind) -> std::uint64_t {
    if (kind == "Overview") return tally.noncompliant;
    if (kind == "Duplicate Certificates") return tally.duplicates;
    if (kind == "Duplicate Leaf") return tally.duplicate_leaf;
    if (kind == "Irrelevant Certificates") return tally.irrelevant;
    if (kind == "Multiple Paths") return tally.multiple_paths;
    if (kind == "Reversed Sequences") return tally.reversed;
    if (kind == "Incomplete Chain") return tally.incomplete;
    return 0;
  };
  const std::vector<std::string> kinds = {
      "Overview",     "Duplicate Certificates", "Duplicate Leaf",
      "Irrelevant Certificates", "Multiple Paths", "Reversed Sequences",
      "Incomplete Chain"};

  report::Table table("Table 10: HTTP servers behind non-compliant chains");
  std::vector<std::string> header = {"Non-compliant type"};
  header.insert(header.end(), servers.begin(), servers.end());
  header.push_back("Total");
  table.header(header);

  const engine::ComplianceTally empty;
  for (const std::string& kind : kinds) {
    const std::uint64_t kind_total = field_of(result.tally.compliance, kind);
    std::vector<std::string> row = {kind};
    for (const std::string& server : servers) {
      const auto it = result.tally.by_key.find(server);
      const engine::ComplianceTally& tally =
          it == result.tally.by_key.end() ? empty : it->second;
      row.push_back(report::count_pct(field_of(tally, kind), kind_total));
    }
    row.push_back(report::with_commas(kind_total));
    table.row(row);
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\n[paper] Table 10 reference rows (share of each type):\n"
      "  Overview:    Apache 39.7%%, Nginx 35.7%%, Azure 5.5%%, cloudflare "
      "3.3%%, IIS 3.0%%, AWS ELB 2.3%%, Other 10.5%%\n"
      "  Duplicates:  Apache-heavy (56.1%%), Azure nearly absent (0.2%%, no "
      "duplicate-leaf at all: its upload check)\n"
      "  Reversed:    Azure over-represented (14.2%%, custom-upload path)\n"
      "  Incomplete:  Apache/Nginx each ~40%%\n");
  return 0;
}
