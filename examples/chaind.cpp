// chaind: the chain-analysis service daemon.
//
// Binds a loopback TCP socket and serves the §4/§5 analyses as JSON over
// HTTP/1.1 (see DESIGN.md §5.9): POST /v1/analyze, POST /v1/lint,
// GET /v1/stats, GET /healthz. Requests are executed on a fixed worker
// pool behind a bounded queue (503 + Retry-After under overload) with a
// sharded fingerprint-keyed LRU result cache in front of the analyzers.
//
// Usage:  chaind [--port P] [--workers N] [--queue N] [--cache N]
//                [--cache-shards N] [--timeout-ms T] [--roots FILE]
//                [--now UNIX] [--port-file FILE] [--duration SEC]
//                [--trace] [--max-connections N] [--idle-timeout-ms T]
//                [--poll] [--events FILE] [--events-per-sec N]
//                [--flight FILE] [--slow-ms T]
//
// chainwatch (DESIGN.md §5.16): --events FILE streams the structured
// event log as JSONL to FILE (rate-limited to --events-per-sec lines);
// --flight FILE arms the crash flight recorder — on SIGSEGV/SIGABRT the
// newest events and spans are dumped to FILE before the process dies;
// --slow-ms T emits a slow_request event for any handler invocation
// exceeding T milliseconds. Any of the three enables event recording.
//
// --port 0 (the default) binds an ephemeral port; the bound port is
// printed on stdout and, with --port-file, written to a file so scripts
// can discover it. SIGINT/SIGTERM trigger a graceful shutdown that
// drains in-flight requests; --duration limits the daemon's lifetime for
// unattended smoke runs.
//
// Connection scaling (DESIGN.md §5.15): the event loop holds any number
// of idle keep-alive connections without occupying a worker, bounded by
// --max-connections (0 = fd-limited; over-budget connects get an
// immediate 503-and-close) and --idle-timeout-ms (0 = --timeout-ms). The
// process raises RLIMIT_NOFILE to its hard cap at startup so the fd
// budget, not a conservative soft limit, is the ceiling. --poll forces
// the portable poll(2) backend in place of epoll.
#include <sys/resource.h>

#include <csignal>
#include <cstdio>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "cli_common.hpp"
#include "obs/event_log.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"
#include "x509/certificate.hpp"

using namespace chainchaos;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  service::ServerConfig config;
  std::size_t queue = config.queue_capacity;
  std::size_t cache = config.cache_capacity;
  std::size_t cache_shards = config.cache_shards;
  int timeout_ms = config.read_timeout_ms;
  std::int64_t now = 0;
  std::size_t duration_sec = 0;
  const char* roots_path = nullptr;
  std::string port_file;
  bool trace = false;
  const char* events_path = nullptr;
  std::size_t events_per_sec = 1000;
  const char* flight_path = nullptr;
  int slow_ms = 0;

  cli::Flags flags;
  flags.add("--port", &config.port, "P");
  flags.add("--workers", &config.workers, "N");
  flags.add("--queue", &queue, "N");
  flags.add("--cache", &cache, "N");
  flags.add("--cache-shards", &cache_shards, "N");
  flags.add("--timeout-ms", &timeout_ms, "T");
  flags.add("--roots", &roots_path, "FILE");
  flags.add("--now", &now, "UNIX");
  flags.add("--port-file", &port_file, "FILE");
  flags.add("--duration", &duration_sec, "SEC");
  flags.add("--trace", &trace);
  flags.add("--max-connections", &config.max_connections, "N");
  flags.add("--idle-timeout-ms", &config.idle_timeout_ms, "T");
  flags.add("--poll", &config.force_poll);
  flags.add("--events", &events_path, "FILE");
  flags.add("--events-per-sec", &events_per_sec, "N");
  flags.add("--flight", &flight_path, "FILE");
  flags.add("--slow-ms", &slow_ms, "T");
  if (!flags.parse(argc, argv)) return 1;

  // Lift the soft fd limit to the hard cap: every connection costs one
  // fd, and the reserved-fd admission path (not the soft limit) is what
  // should decide behaviour at exhaustion.
  struct rlimit nofile {};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &nofile);
  }

  // --trace turns on span recording for the daemon's lifetime: spans
  // feed GET /v1/trace (chrome://tracing JSON) and the per-stage
  // histograms in GET /v1/metrics. Off by default — the relaxed-load
  // fast path keeps untraced operation at full speed.
  if (trace) obs::Tracer::instance().set_enabled(true);

  // chainwatch: the event ring backs the JSONL sink, the flight recorder
  // and the slow-request watch alike, so any of the three turns it on.
  if (events_path != nullptr || flight_path != nullptr || slow_ms > 0) {
    obs::EventLog::instance().set_enabled(true);
  }
  if (events_path != nullptr &&
      !obs::EventLog::instance().open_sink(events_path, events_per_sec)) {
    std::fprintf(stderr, "chaind: cannot open event sink %s\n", events_path);
    return 1;
  }
  if (flight_path != nullptr) {
    if (!obs::flight::set_dump_path(flight_path)) {
      std::fprintf(stderr, "chaind: bad flight path %s\n", flight_path);
      return 1;
    }
    obs::flight::install_signal_handlers();
  }

  config.queue_capacity = queue;
  config.cache_capacity = cache;
  config.cache_shards = cache_shards;
  config.read_timeout_ms = timeout_ms;
  config.write_timeout_ms = timeout_ms;
  config.slow_request_ms = slow_ms;
  config.handler.now = now;

  // Anchors: --roots FILE pins the trust store; without it each request
  // is anchored on the self-signed certificates its own chain carries.
  truststore::RootStore roots("chaind");
  if (roots_path != nullptr) {
    std::ifstream in(roots_path);
    if (!in) {
      std::fprintf(stderr, "chaind: cannot read %s\n", roots_path);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto bundle = x509::bundle_from_pem(text.str());
    if (!bundle.ok()) {
      std::fprintf(stderr, "chaind: bad roots bundle: %s\n",
                   bundle.error().to_string().c_str());
      return 1;
    }
    for (const x509::CertPtr& cert : bundle.value()) roots.add(cert);
    config.handler.roots = &roots;
  }

  service::Server server(config);
  auto started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "chaind: %s\n", started.error().to_string().c_str());
    return 1;
  }
  std::printf("chaind listening on 127.0.0.1:%u (workers=%u queue=%zu "
              "cache=%zu/%zu shards, backend=%s)\n",
              server.port(), config.workers, config.queue_capacity,
              config.cache_capacity, config.cache_shards,
              server.using_epoll() ? "epoll" : "poll");
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  const auto started_at = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    if (duration_sec != 0 &&
        std::chrono::steady_clock::now() - started_at >=
            std::chrono::seconds(duration_sec)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("chaind: draining and shutting down...\n");
  server.stop();
  const service::CacheStats stats = server.cache_stats();
  std::printf("chaind: served %llu requests (%llu rejected), cache "
              "%llu/%llu hits (%.1f%%)\n",
              static_cast<unsigned long long>(server.metrics().requests_total()),
              static_cast<unsigned long long>(server.metrics().rejected_total()),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.hits + stats.misses),
              100.0 * stats.hit_ratio());
  return 0;
}
