// measure_corpus: the paper's entire §3.1 server-side measurement
// pipeline as one command — generate (or load) a corpus, run every
// analyzer, and print the §4 summary ("2.9% of Top 1M domains deploy
// non-compliant chains"). With --export it also writes the corpus as a
// PEM bundle that external tools (or a later run) can consume.
//
// Usage:  measure_corpus [--domains N] [--seed S] [--export corpus.pem]
//         measure_corpus --import corpus.pem
#include <cstdio>
#include <cstring>
#include <fstream>

#include "chain/analyzer.hpp"
#include "dataset/serialize.hpp"
#include "report/table.hpp"

using namespace chainchaos;

namespace {

struct Tally {
  std::uint64_t total = 0;
  std::uint64_t order_noncompliant = 0;
  std::uint64_t incomplete = 0;
  std::uint64_t noncompliant = 0;
  std::uint64_t leaf_placed = 0;
};

void account(const chain::ComplianceReport& report, Tally& tally) {
  ++tally.total;
  tally.leaf_placed += report.leaf_placed_correctly();
  const bool order_issue = report.order.any_order_issue();
  const bool incomplete = !report.completeness.complete();
  tally.order_noncompliant += order_issue;
  tally.incomplete += incomplete;
  tally.noncompliant += order_issue || incomplete;
}

void print_summary(const Tally& tally) {
  report::Table table("Server-side evaluation summary (paper §4)");
  table.header({"Metric", "measured", "paper"});
  table.row({"domains analyzed", report::with_commas(tally.total), "906,336"});
  table.row({"leaf correctly placed first",
             report::count_pct(tally.leaf_placed, tally.total), "99.4%"});
  table.row({"issuance-order non-compliant",
             report::count_pct(tally.order_noncompliant, tally.total),
             "16,952 (1.9%)"});
  table.row({"missing intermediates",
             report::count_pct(tally.incomplete, tally.total),
             "12,087 (1.3%)"});
  table.row({"non-compliant overall",
             report::count_pct(tally.noncompliant, tally.total),
             "26,361 (2.9%)"});
  std::fputs(table.render().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t domains = 20000;
  std::uint64_t seed = 833;
  const char* export_path = nullptr;
  const char* import_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--domains") && i + 1 < argc) {
      domains = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--export") && i + 1 < argc) {
      export_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--import") && i + 1 < argc) {
      import_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--domains N] [--seed S] [--export FILE] "
                   "[--import FILE]\n",
                   argv[0]);
      return 1;
    }
  }

  if (import_path != nullptr) {
    // Re-analysis of an exported bundle: the trust anchors are whatever
    // self-signed certificates the bundle carries plus nothing else, so
    // completeness is evaluated in AIA-less mode.
    auto imported = dataset::import_corpus_from_file(import_path);
    if (!imported.ok()) {
      std::fprintf(stderr, "import failed: %s\n",
                   imported.error().to_string().c_str());
      return 1;
    }
    std::printf("imported %zu domains from %s\n", imported.value().size(),
                import_path);
    truststore::RootStore store("imported");
    for (const auto& record : imported.value()) {
      for (const auto& cert : record.certificates) {
        if (cert->is_self_signed()) store.add(cert);
      }
    }
    chain::CompletenessOptions options;
    options.store = &store;
    options.aia_enabled = false;
    const chain::ComplianceAnalyzer analyzer(options);
    Tally tally;
    for (const auto& record : imported.value()) {
      chain::ChainObservation obs;
      obs.domain = record.domain;
      obs.certificates = record.certificates;
      account(analyzer.analyze(obs), tally);
    }
    print_summary(tally);
    return 0;
  }

  dataset::CorpusConfig config;
  config.domain_count = domains;
  config.seed = seed;
  std::printf("generating %zu synthetic domains (seed %llu)...\n", domains,
              static_cast<unsigned long long>(seed));
  dataset::Corpus corpus(std::move(config));

  chain::CompletenessOptions options;
  options.store = &corpus.stores().union_store;
  options.aia = &corpus.aia();
  const chain::ComplianceAnalyzer analyzer(options);

  Tally tally;
  for (const dataset::DomainRecord& record : corpus.records()) {
    account(analyzer.analyze(record.observation), tally);
  }
  print_summary(tally);

  if (export_path != nullptr) {
    if (!dataset::export_corpus_to_file(corpus, export_path)) {
      std::fprintf(stderr, "export failed: %s\n", export_path);
      return 1;
    }
    std::printf("\nwrote corpus bundle to %s\n", export_path);
  }
  return 0;
}
