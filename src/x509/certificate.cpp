#include "x509/certificate.hpp"

#include "asn1/der.hpp"
#include "asn1/oids.hpp"
#include "crypto/sha256.hpp"
#include "obs/trace.hpp"
#include "support/str.hpp"

namespace chainchaos::x509 {

using asn1::DerElement;
using asn1::DerReader;
using asn1::DerWriter;
using asn1::Tag;
namespace oid = asn1::oid;

bool NameConstraints::allows(std::string_view dns_name) const {
  const auto within = [](std::string_view name, const std::string& base) {
    if (name == base) return true;
    if (name.size() > base.size() &&
        name.substr(name.size() - base.size()) == base &&
        name[name.size() - base.size() - 1] == '.') {
      return true;
    }
    return false;
  };
  for (const std::string& excluded : excluded_dns) {
    if (within(dns_name, excluded)) return false;
  }
  if (permitted_dns.empty()) return true;
  for (const std::string& permitted : permitted_dns) {
    if (within(dns_name, permitted)) return true;
  }
  return false;
}

bool Certificate::is_self_signed() const {
  return is_self_issued() && verify_signed_by(public_key);
}

bool Certificate::verify_signed_by(const crypto::PublicKey& issuer_key) const {
  return crypto::Verifier::current().verify(issuer_key, tbs_der, signature);
}

bool Certificate::matches_host(std::string_view host) const {
  if (subject_alt_name.has_value()) {
    for (const std::string& dns : subject_alt_name->dns_names) {
      if (wildcard_match(dns, host)) return true;
    }
    for (const std::string& ip : subject_alt_name->ip_addresses) {
      if (ip == host) return true;
    }
  }
  if (const auto cn = subject.common_name()) {
    if (wildcard_match(*cn, host)) return true;
  }
  return false;
}

std::vector<std::string> Certificate::identity_strings() const {
  std::vector<std::string> out;
  if (const auto cn = subject.common_name()) out.push_back(*cn);
  if (subject_alt_name.has_value()) {
    out.insert(out.end(), subject_alt_name->dns_names.begin(),
               subject_alt_name->dns_names.end());
    out.insert(out.end(), subject_alt_name->ip_addresses.begin(),
               subject_alt_name->ip_addresses.end());
  }
  return out;
}

std::string Certificate::display_name() const {
  std::string label = subject.common_name().value_or(subject.to_string());
  return label + " (#" + serial.to_hex() + ")";
}

namespace {

// ---- extension encoding helpers ----------------------------------------

Bytes encode_basic_constraints(const BasicConstraints& bc) {
  DerWriter body;
  if (bc.is_ca) body.add_boolean(true);  // DEFAULT FALSE omitted when false
  if (bc.path_len_constraint.has_value()) {
    body.add_integer(static_cast<std::uint64_t>(*bc.path_len_constraint));
  }
  return body.wrap_sequence();
}

Bytes encode_key_usage(const KeyUsage& ku) {
  std::uint8_t bits = 0;
  if (ku.digital_signature) bits |= 0x80;
  if (ku.key_encipherment) bits |= 0x20;
  if (ku.key_cert_sign) bits |= 0x04;
  if (ku.crl_sign) bits |= 0x02;
  DerWriter body;
  body.add_bit_string(BytesView(&bits, 1));
  return body.take();
}

Bytes encode_ext_key_usage(const ExtKeyUsage& eku) {
  DerWriter body;
  for (const std::string& purpose : eku.purposes) body.add_oid(purpose);
  return body.wrap_sequence();
}

Bytes encode_san(const SubjectAltName& san) {
  DerWriter body;
  for (const std::string& dns : san.dns_names) {
    body.add_tlv(asn1::context_primitive(2), to_bytes(dns));  // dNSName
  }
  for (const std::string& ip : san.ip_addresses) {
    // iPAddress [7]: carried as text for simplicity of round-tripping.
    body.add_tlv(asn1::context_primitive(7), to_bytes(ip));
  }
  return body.wrap_sequence();
}

Bytes encode_aia(const AuthorityInfoAccess& aia) {
  DerWriter body;
  const auto add_access = [&body](std::string_view method, std::string_view uri) {
    DerWriter access;
    access.add_oid(method);
    access.add_tlv(asn1::context_primitive(6), to_bytes(uri));  // URI
    body.add_raw(access.wrap_sequence());
  };
  if (aia.ocsp_uri.has_value()) add_access(oid::kOcsp, *aia.ocsp_uri);
  if (aia.ca_issuers_uri.has_value()) {
    add_access(oid::kCaIssuers, *aia.ca_issuers_uri);
  }
  return body.wrap_sequence();
}

Bytes encode_name_constraints(const NameConstraints& nc) {
  // NameConstraints ::= SEQUENCE {
  //   permittedSubtrees [0] GeneralSubtrees OPTIONAL,
  //   excludedSubtrees  [1] GeneralSubtrees OPTIONAL }
  // GeneralSubtree ::= SEQUENCE { base GeneralName } (min/max defaulted)
  const auto subtrees = [](const std::vector<std::string>& bases) {
    DerWriter list;
    for (const std::string& base : bases) {
      DerWriter subtree;
      subtree.add_tlv(asn1::context_primitive(2), to_bytes(base));  // dNSName
      list.add_raw(subtree.wrap_sequence());
    }
    return list.take();
  };
  DerWriter body;
  if (!nc.permitted_dns.empty()) {
    body.add_tlv(asn1::context_constructed(0), subtrees(nc.permitted_dns));
  }
  if (!nc.excluded_dns.empty()) {
    body.add_tlv(asn1::context_constructed(1), subtrees(nc.excluded_dns));
  }
  return body.wrap_sequence();
}

Bytes encode_akid(BytesView key_id) {
  DerWriter body;
  body.add_tlv(asn1::context_primitive(0), key_id);  // [0] keyIdentifier
  return body.wrap_sequence();
}

void add_extension(DerWriter& list, std::string_view ext_oid, bool critical,
                   BytesView value) {
  DerWriter ext;
  ext.add_oid(ext_oid);
  if (critical) ext.add_boolean(true);
  ext.add_octet_string(value);
  list.add_raw(ext.wrap_sequence());
}

Bytes encode_spki(const crypto::PublicKey& key) {
  // One encoder per algorithm family; RSA is the only member today
  // (a PQC key would branch on key.algorithm() to its own OID/layout).
  DerWriter alg;
  alg.add_oid(oid::kRsaEncryption);
  alg.add_null();

  DerWriter rsa_key;
  rsa_key.add_integer(key.rsa().n);
  rsa_key.add_integer(key.rsa().e);

  DerWriter spki;
  spki.add_tlv(Tag::kSequence, alg.wrap_sequence());
  spki.add_bit_string(rsa_key.wrap_sequence());
  return spki.wrap_sequence();
}

Bytes encode_signature_algorithm() {
  DerWriter alg;
  alg.add_oid(oid::kSha256WithRsa);
  alg.add_null();
  return alg.wrap_sequence();
}

}  // namespace

Bytes encode_tbs(const Certificate& cert) {
  DerWriter tbs;

  // version [0] EXPLICIT INTEGER — always v3 (value 2).
  DerWriter version;
  version.add_integer(std::uint64_t{2});
  tbs.add_tlv(asn1::context_constructed(0), version.bytes());

  tbs.add_integer(cert.serial);
  tbs.add_raw(encode_signature_algorithm());
  tbs.add_raw(cert.issuer.encode());

  {
    DerWriter validity;
    validity.add_generalized_time(cert.not_before);
    validity.add_generalized_time(cert.not_after);
    tbs.add_tlv(Tag::kSequence, validity.bytes());
  }

  tbs.add_raw(cert.subject.encode());
  tbs.add_raw(encode_spki(cert.public_key));

  DerWriter exts;
  if (cert.basic_constraints.has_value()) {
    add_extension(exts, oid::kBasicConstraints, /*critical=*/true,
                  encode_basic_constraints(*cert.basic_constraints));
  }
  if (cert.key_usage.has_value()) {
    add_extension(exts, oid::kKeyUsage, /*critical=*/true,
                  encode_key_usage(*cert.key_usage));
  }
  if (cert.ext_key_usage.has_value()) {
    add_extension(exts, oid::kExtKeyUsage, /*critical=*/false,
                  encode_ext_key_usage(*cert.ext_key_usage));
  }
  if (cert.subject_key_id.has_value()) {
    DerWriter skid;
    skid.add_octet_string(*cert.subject_key_id);
    add_extension(exts, oid::kSubjectKeyIdentifier, /*critical=*/false,
                  skid.bytes());
  }
  if (cert.authority_key_id.has_value()) {
    add_extension(exts, oid::kAuthorityKeyIdentifier, /*critical=*/false,
                  encode_akid(*cert.authority_key_id));
  }
  if (cert.subject_alt_name.has_value()) {
    add_extension(exts, oid::kSubjectAltName, /*critical=*/false,
                  encode_san(*cert.subject_alt_name));
  }
  if (cert.name_constraints.has_value()) {
    add_extension(exts, oid::kNameConstraints, /*critical=*/true,
                  encode_name_constraints(*cert.name_constraints));
  }
  if (cert.aia.has_value()) {
    add_extension(exts, oid::kAuthorityInfoAccess, /*critical=*/false,
                  encode_aia(*cert.aia));
  }
  if (!exts.bytes().empty()) {
    DerWriter wrapper;
    wrapper.add_tlv(Tag::kSequence, exts.bytes());
    tbs.add_tlv(asn1::context_constructed(3), wrapper.bytes());
  }

  return tbs.wrap_sequence();
}

Bytes encode_certificate(const Certificate& cert) {
  const Bytes tbs = cert.tbs_der.empty() ? encode_tbs(cert) : cert.tbs_der;
  DerWriter out;
  out.add_raw(tbs);
  out.add_raw(encode_signature_algorithm());
  out.add_bit_string(cert.signature);
  return out.wrap_sequence();
}

namespace {

// ---- parsing ------------------------------------------------------------

Result<BasicConstraints> parse_basic_constraints(
    BytesView value, const asn1::ParseProfile& profile) {
  DerReader outer(value, profile);
  auto seq = outer.read(Tag::kSequence);
  if (!seq.ok()) return seq.error();
  BasicConstraints bc;
  DerReader body(seq.value().body, profile);
  if (!body.at_end()) {
    auto tag = body.peek_tag();
    if (tag.ok() && tag.value() == static_cast<std::uint8_t>(Tag::kBoolean)) {
      auto flag = body.read_boolean();
      if (!flag.ok()) return flag.error();
      bc.is_ca = flag.value();
    }
  }
  if (!body.at_end()) {
    auto len = body.read_integer();
    if (!len.ok()) return len.error();
    bc.path_len_constraint = static_cast<int>(len.value().low_u64());
  }
  return bc;
}

Result<KeyUsage> parse_key_usage(BytesView value,
                                 const asn1::ParseProfile& profile) {
  DerReader reader(value, profile);
  auto bits = reader.read_bit_string();
  if (!bits.ok()) return bits.error();
  if (bits.value().empty()) return make_error("x509.bad_key_usage", "no bits");
  KeyUsage ku;
  const std::uint8_t b = bits.value()[0];
  ku.digital_signature = b & 0x80;
  ku.key_encipherment = b & 0x20;
  ku.key_cert_sign = b & 0x04;
  ku.crl_sign = b & 0x02;
  return ku;
}

Result<ExtKeyUsage> parse_ext_key_usage(BytesView value,
                                        const asn1::ParseProfile& profile) {
  DerReader outer(value, profile);
  auto seq = outer.read(Tag::kSequence);
  if (!seq.ok()) return seq.error();
  ExtKeyUsage eku;
  DerReader body(seq.value().body, profile);
  while (!body.at_end()) {
    auto purpose = body.read_oid();
    if (!purpose.ok()) return purpose.error();
    eku.purposes.push_back(std::move(purpose).value());
  }
  return eku;
}

Result<SubjectAltName> parse_san(BytesView value,
                                 const asn1::ParseProfile& profile) {
  DerReader outer(value, profile);
  auto seq = outer.read(Tag::kSequence);
  if (!seq.ok()) return seq.error();
  SubjectAltName san;
  DerReader body(seq.value().body, profile);
  while (!body.at_end()) {
    auto name = body.read_any();
    if (!name.ok()) return name.error();
    const DerElement& e = name.value();
    if (e.tag == asn1::context_primitive(2)) {
      san.dns_names.push_back(to_string(e.body));
    } else if (e.tag == asn1::context_primitive(7)) {
      san.ip_addresses.push_back(to_string(e.body));
    }
    // other GeneralName forms are skipped
  }
  return san;
}

Result<AuthorityInfoAccess> parse_aia(BytesView value,
                                      const asn1::ParseProfile& profile) {
  DerReader outer(value, profile);
  auto seq = outer.read(Tag::kSequence);
  if (!seq.ok()) return seq.error();
  AuthorityInfoAccess aia;
  DerReader body(seq.value().body, profile);
  while (!body.at_end()) {
    auto access = body.read(Tag::kSequence);
    if (!access.ok()) return access.error();
    DerReader ad(access.value().body, profile);
    auto method = ad.read_oid();
    if (!method.ok()) return method.error();
    auto location = ad.read_any();
    if (!location.ok()) return location.error();
    if (location.value().tag != asn1::context_primitive(6)) continue;
    const std::string uri = to_string(location.value().body);
    if (method.value() == oid::kCaIssuers) {
      aia.ca_issuers_uri = uri;
    } else if (method.value() == oid::kOcsp) {
      aia.ocsp_uri = uri;
    }
  }
  return aia;
}

Result<NameConstraints> parse_name_constraints(
    BytesView value, const asn1::ParseProfile& profile) {
  DerReader outer(value, profile);
  auto seq = outer.read(Tag::kSequence);
  if (!seq.ok()) return seq.error();
  NameConstraints nc;
  DerReader body(seq.value().body, profile);
  const auto read_subtrees =
      [&profile](BytesView subtree_der,
                 std::vector<std::string>* out) -> Result<bool> {
    DerReader subtrees(subtree_der, profile);
    while (!subtrees.at_end()) {
      auto subtree = subtrees.read(Tag::kSequence);
      if (!subtree.ok()) return subtree.error();
      DerReader inner(subtree.value().body, profile);
      auto base = inner.read_any();
      if (!base.ok()) return base.error();
      if (base.value().tag == asn1::context_primitive(2)) {
        out->push_back(to_string(base.value().body));
      }
      // Other GeneralName forms are ignored (dNSName-only profile).
    }
    return true;
  };
  while (!body.at_end()) {
    auto elem = body.read_any();
    if (!elem.ok()) return elem.error();
    if (elem.value().tag == asn1::context_constructed(0)) {
      auto parsed = read_subtrees(elem.value().body, &nc.permitted_dns);
      if (!parsed.ok()) return parsed.error();
    } else if (elem.value().tag == asn1::context_constructed(1)) {
      auto parsed = read_subtrees(elem.value().body, &nc.excluded_dns);
      if (!parsed.ok()) return parsed.error();
    }
  }
  return nc;
}

Result<Bytes> parse_skid(BytesView value,
                         const asn1::ParseProfile& profile) {
  DerReader reader(value, profile);
  return reader.read_octet_string();
}

Result<Bytes> parse_akid(BytesView value,
                         const asn1::ParseProfile& profile) {
  DerReader outer(value, profile);
  auto seq = outer.read(Tag::kSequence);
  if (!seq.ok()) return seq.error();
  DerReader body(seq.value().body, profile);
  while (!body.at_end()) {
    auto e = body.read_any();
    if (!e.ok()) return e.error();
    if (e.value().tag == asn1::context_primitive(0)) {
      return std::move(e.value().body);
    }
  }
  return make_error("x509.bad_akid", "no keyIdentifier field");
}

Result<crypto::RsaPublicKey> parse_spki(const DerElement& spki_seq,
                                        const asn1::ParseProfile& profile) {
  DerReader spki(spki_seq.body, profile);
  auto alg = spki.read(Tag::kSequence);
  if (!alg.ok()) return alg.error();
  auto key_bits = spki.read_bit_string();
  if (!key_bits.ok()) return key_bits.error();
  DerReader key_outer(key_bits.value(), profile);
  auto key_seq = key_outer.read(Tag::kSequence);
  if (!key_seq.ok()) return key_seq.error();
  DerReader key(key_seq.value().body, profile);
  auto n = key.read_integer();
  if (!n.ok()) return n.error();
  auto e = key.read_integer();
  if (!e.ok()) return e.error();
  return crypto::RsaPublicKey{std::move(n).value(), std::move(e).value()};
}

Result<bool> apply_extension(Certificate& cert, BytesView ext_der,
                             const asn1::ParseProfile& profile) {
  DerReader ext(ext_der, profile);
  auto ext_oid = ext.read_oid();
  if (!ext_oid.ok()) return ext_oid.error();
  // Optional critical flag.
  bool critical = false;
  if (!ext.at_end()) {
    auto tag = ext.peek_tag();
    if (tag.ok() && tag.value() == static_cast<std::uint8_t>(Tag::kBoolean)) {
      auto flag = ext.read_boolean();
      if (!flag.ok()) return flag.error();
      critical = flag.value();
    }
  }
  auto value = ext.read_octet_string();
  if (!value.ok()) return value.error();
  const Bytes& v = value.value();

  const std::string& o = ext_oid.value();
  if (o == oid::kBasicConstraints) {
    auto bc = parse_basic_constraints(v, profile);
    if (!bc.ok()) return bc.error();
    cert.basic_constraints = bc.value();
  } else if (o == oid::kKeyUsage) {
    auto ku = parse_key_usage(v, profile);
    if (!ku.ok()) return ku.error();
    cert.key_usage = ku.value();
  } else if (o == oid::kExtKeyUsage) {
    auto eku = parse_ext_key_usage(v, profile);
    if (!eku.ok()) return eku.error();
    cert.ext_key_usage = std::move(eku).value();
  } else if (o == oid::kSubjectKeyIdentifier) {
    auto skid = parse_skid(v, profile);
    if (!skid.ok()) return skid.error();
    cert.subject_key_id = std::move(skid).value();
  } else if (o == oid::kAuthorityKeyIdentifier) {
    auto akid = parse_akid(v, profile);
    if (!akid.ok()) return akid.error();
    cert.authority_key_id = std::move(akid).value();
  } else if (o == oid::kSubjectAltName) {
    auto san = parse_san(v, profile);
    if (!san.ok()) return san.error();
    cert.subject_alt_name = std::move(san).value();
  } else if (o == oid::kAuthorityInfoAccess) {
    auto aia_val = parse_aia(v, profile);
    if (!aia_val.ok()) return aia_val.error();
    cert.aia = std::move(aia_val).value();
  } else if (o == oid::kNameConstraints) {
    auto nc = parse_name_constraints(v, profile);
    if (!nc.ok()) return nc.error();
    cert.name_constraints = std::move(nc).value();
  } else {
    // Unknown extension. The historical parser ignores it; RFC 5280
    // §4.2 requires rejecting certificates with unprocessed *critical*
    // extensions, which the stricter profiles enforce.
    if (critical && profile.reject_unknown_critical) {
      return make_error("x509.unknown_critical_ext", o);
    }
  }
  return true;
}

}  // namespace

Result<CertPtr> parse_certificate(BytesView der) {
  return parse_certificate(der, asn1::default_parse_profile());
}

Result<CertPtr> parse_certificate(BytesView der,
                                  const asn1::ParseProfile& profile) {
  CHAINCHAOS_SPAN(obs::Stage::kX509Parse);
  // Depth gate before any recursive descent: a crafted deeply-nested TLV
  // tower must fail with a clean error, not exhaust the stack somewhere
  // inside extension parsing or the lint re-scans downstream.
  auto nesting = asn1::check_nesting(der);
  if (!nesting.ok()) return nesting.error();

  DerReader outer(der, profile);
  auto cert_seq = outer.read(Tag::kSequence);
  if (!cert_seq.ok()) return cert_seq.error();
  if (profile.reject_trailing_bytes && !outer.at_end()) {
    return make_error("x509.trailing_bytes",
                      std::to_string(outer.remaining()) +
                          " byte(s) after the Certificate SEQUENCE");
  }

  auto cert = std::make_shared<Certificate>();
  cert->der.assign(der.begin(), der.begin() + static_cast<std::ptrdiff_t>(
                                                  cert_seq.value().size));
  cert->fingerprint = crypto::Sha256::digest(cert->der);

  DerReader body(cert_seq.value().body, profile);

  // TBS: capture raw bytes for signature verification.
  const std::size_t tbs_start_in_body = 0;
  (void)tbs_start_in_body;
  auto tbs_elem = body.read(Tag::kSequence);
  if (!tbs_elem.ok()) return tbs_elem.error();
  {
    // Reconstruct the exact TBS TLV bytes (tag+len+body).
    DerWriter tbs_writer;
    tbs_writer.add_tlv(Tag::kSequence, tbs_elem.value().body);
    cert->tbs_der = tbs_writer.take();
  }

  auto sig_alg = body.read(Tag::kSequence);
  if (!sig_alg.ok()) return sig_alg.error();
  auto signature = body.read_bit_string();
  if (!signature.ok()) return signature.error();
  cert->signature = std::move(signature).value();

  // ---- decode the TBS fields ----
  DerReader tbs(tbs_elem.value().body, profile);

  auto version = tbs.read(asn1::context_constructed(0));
  if (!version.ok()) return version.error();

  auto serial = tbs.read_integer();
  if (!serial.ok()) return serial.error();
  cert->serial = std::move(serial).value();

  auto tbs_alg = tbs.read(Tag::kSequence);
  if (!tbs_alg.ok()) return tbs_alg.error();

  auto issuer_elem = tbs.read(Tag::kSequence);
  if (!issuer_elem.ok()) return issuer_elem.error();
  {
    DerWriter issuer_der;
    issuer_der.add_tlv(Tag::kSequence, issuer_elem.value().body);
    auto issuer = asn1::Name::decode(issuer_der.bytes(), profile);
    if (!issuer.ok()) return issuer.error();
    cert->issuer = std::move(issuer).value();
  }

  auto validity = tbs.read(Tag::kSequence);
  if (!validity.ok()) return validity.error();
  {
    DerReader v(validity.value().body, profile);
    auto nb = v.read_time();
    if (!nb.ok()) return nb.error();
    auto na = v.read_time();
    if (!na.ok()) return na.error();
    cert->not_before = nb.value();
    cert->not_after = na.value();
  }

  auto subject_elem = tbs.read(Tag::kSequence);
  if (!subject_elem.ok()) return subject_elem.error();
  {
    DerWriter subject_der;
    subject_der.add_tlv(Tag::kSequence, subject_elem.value().body);
    auto subject = asn1::Name::decode(subject_der.bytes(), profile);
    if (!subject.ok()) return subject.error();
    cert->subject = std::move(subject).value();
  }

  auto spki_elem = tbs.read(Tag::kSequence);
  if (!spki_elem.ok()) return spki_elem.error();
  auto key = parse_spki(spki_elem.value(), profile);
  if (!key.ok()) return key.error();
  cert->public_key = std::move(key).value();

  if (!tbs.at_end()) {
    auto exts_wrapper = tbs.read(asn1::context_constructed(3));
    if (!exts_wrapper.ok()) return exts_wrapper.error();
    DerReader wrapper(exts_wrapper.value().body, profile);
    auto exts_seq = wrapper.read(Tag::kSequence);
    if (!exts_seq.ok()) return exts_seq.error();
    DerReader exts(exts_seq.value().body, profile);
    while (!exts.at_end()) {
      auto ext = exts.read(Tag::kSequence);
      if (!ext.ok()) return ext.error();
      auto applied = apply_extension(*cert, ext.value().body, profile);
      if (!applied.ok()) return applied.error();
    }
  }

  return CertPtr(cert);
}

std::string to_pem(const Certificate& cert) {
  const std::string b64 = base64_encode(cert.der);
  std::string out = "-----BEGIN CERTIFICATE-----\n";
  for (std::size_t i = 0; i < b64.size(); i += 64) {
    out += b64.substr(i, 64);
    out += '\n';
  }
  out += "-----END CERTIFICATE-----\n";
  return out;
}

namespace {

constexpr std::string_view kPemBegin = "-----BEGIN CERTIFICATE-----";
constexpr std::string_view kPemEnd = "-----END CERTIFICATE-----";

}  // namespace

Result<CertPtr> from_pem(std::string_view pem) {
  auto bundle = bundle_from_pem(pem);
  if (!bundle.ok()) return bundle.error();
  if (bundle.value().size() != 1) {
    return make_error("pem.count", "expected exactly one certificate");
  }
  return bundle.value()[0];
}

Result<std::vector<CertPtr>> bundle_from_pem(std::string_view pem) {
  std::vector<CertPtr> out;
  std::size_t cursor = 0;
  while (true) {
    const std::size_t begin = pem.find(kPemBegin, cursor);
    if (begin == std::string_view::npos) break;
    const std::size_t body_start = begin + kPemBegin.size();
    const std::size_t end = pem.find(kPemEnd, body_start);
    if (end == std::string_view::npos) {
      return make_error("pem.unterminated", "missing END marker");
    }
    std::string b64;
    for (char c : pem.substr(body_start, end - body_start)) {
      if (c != '\n' && c != '\r' && c != ' ' && c != '\t') b64.push_back(c);
    }
    const auto der = base64_decode(b64);
    if (!der) return make_error("pem.bad_base64");
    auto cert = parse_certificate(*der);
    if (!cert.ok()) return cert.error();
    out.push_back(std::move(cert).value());
    cursor = end + kPemEnd.size();
  }
  return out;
}

}  // namespace chainchaos::x509
