// chainq: query CLI for the chaind analysis daemon.
//
// Speaks the service's HTTP/1.1 JSON API over one kept-alive loopback
// connection (so --repeat exercises the daemon's result cache the way a
// real repeat-heavy workload would).
//
// Usage:  chainq [--port P] [--domain D] [--repeat N] [--timeout-ms T]
//                <command> [file]
//
// Commands:
//   analyze FILE     POST the PEM/DER chain in FILE to /v1/analyze
//   lint FILE        POST it to /v1/lint
//   stats            GET /v1/stats
//   metrics          GET /v1/metrics (Prometheus text exposition)
//   trace            GET /v1/trace (chrome://tracing JSON; needs a
//                    daemon started with --trace to be non-empty)
//   timeseries       GET /v1/timeseries (the chainwatch counter ring)
//   flight           GET /v1/flight (newest events + spans, on demand)
//   watch            live top-style view: polls /v1/timeseries and
//                    prints one rate row (req/s, evict/s, p99, ...) per
//                    new sample; --samples N rows then exit (0 = until
//                    killed). Exits non-zero if any cumulative counter
//                    ever decreases between samples.
//   health           GET /healthz (exit 0 iff the daemon answers 200)
//   make-chain FILE  write a demo root+intermediate+leaf PEM chain to
//                    FILE (for smoke tests and quickstarts; the root is
//                    included so chaind can self-anchor the analysis)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "cli_common.hpp"
#include "obs/histogram.hpp"
#include "service/client.hpp"
#include "service/metrics.hpp"
#include "x509/builder.hpp"

using namespace chainchaos;

namespace {

int make_chain(const std::string& path, const std::string& domain) {
  using x509::CertificateBuilder;
  const x509::SigningIdentity root_id =
      x509::make_identity(asn1::Name::make("chainq Demo Root"));
  const x509::SigningIdentity inter_id =
      x509::make_identity(asn1::Name::make("chainq Demo Intermediate"));

  CertificateBuilder root_builder;
  root_builder.subject(root_id.name).as_ca().public_key(root_id.keys.pub);
  const x509::CertPtr root = root_builder.self_sign(root_id.keys);

  CertificateBuilder inter_builder;
  inter_builder.subject(inter_id.name).as_ca().public_key(inter_id.keys.pub);
  const x509::CertPtr inter = inter_builder.sign(root_id);

  CertificateBuilder leaf_builder;
  leaf_builder.as_leaf(domain);
  const x509::CertPtr leaf = leaf_builder.sign(inter_id);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "chainq: cannot write %s\n", path.c_str());
    return 1;
  }
  out << x509::to_pem(*leaf) << x509::to_pem(*inter) << x509::to_pem(*root);
  std::printf("wrote %s chain (leaf+intermediate+root) to %s\n",
              domain.c_str(), path.c_str());
  return 0;
}

int print_response(const Result<net::HttpResponse>& response) {
  if (!response.ok()) {
    std::fprintf(stderr, "chainq: %s\n",
                 response.error().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", chainchaos::to_string(response.value().body).c_str());
  if (response.value().status != 200) {
    std::fprintf(stderr, "chainq: HTTP %d %s\n", response.value().status,
                 response.value().reason.c_str());
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// chainq watch: the live view over /v1/timeseries.

using SampleMap = std::map<std::string, std::uint64_t>;

std::uint64_t sample_value(const SampleMap& sample, const char* key) {
  const auto it = sample.find(key);
  return it != sample.end() ? it->second : 0;
}

/// Extracts the flat per-second sample objects from a /v1/timeseries
/// body. The endpoint emits each sample as one flat object of integer
/// fields precisely so this loop needs no JSON library: every "key":N
/// pair inside {...} is one column.
std::vector<SampleMap> parse_samples(const std::string& body) {
  std::vector<SampleMap> out;
  std::size_t pos = body.find("\"samples\":[");
  if (pos == std::string::npos) return out;
  while ((pos = body.find('{', pos)) != std::string::npos) {
    const std::size_t end = body.find('}', pos);
    if (end == std::string::npos) break;
    SampleMap sample;
    std::size_t p = pos;
    for (;;) {
      const std::size_t k0 = body.find('"', p);
      if (k0 == std::string::npos || k0 > end) break;
      const std::size_t k1 = body.find('"', k0 + 1);
      if (k1 == std::string::npos || k1 > end) break;
      const std::size_t colon = body.find(':', k1);
      if (colon == std::string::npos || colon > end) break;
      char* num_end = nullptr;
      const unsigned long long v =
          std::strtoull(body.c_str() + colon + 1, &num_end, 10);
      sample[body.substr(k0 + 1, k1 - k0 - 1)] = v;
      p = static_cast<std::size_t>(num_end - body.c_str());
    }
    out.push_back(std::move(sample));
    pos = end + 1;
  }
  return out;
}

/// Columns that are cumulative counters: a decrease between consecutive
/// samples means the exporter tore a snapshot, which watch treats as a
/// hard failure (that is the regression /v1/stats had before
/// MetricsSnapshot).
const char* const kCumulativeColumns[] = {
    "requests_total", "responses_2xx",     "responses_4xx",
    "responses_5xx",  "rejected_busy",     "connections_accepted",
    "evictions_total", "cache_hits",       "cache_misses",
    "cache_evictions", "aia_attempts",     "verify_verifications",
    "latency_total_us", "loop_ticks",      "pump_stalls",
    "events_emitted"};

int watch(service::Client& client, std::size_t max_rows, int interval_ms) {
  SampleMap prev;
  bool have_prev = false;
  std::uint64_t last_seq = 0;
  std::size_t printed = 0;
  bool tearing = false;
  std::printf("%8s %9s %9s %9s %9s %8s %6s %6s\n", "uptime_s", "req/s",
              "2xx/s", "evict/s", "hit%", "p99_ms", "conns", "wheel");
  while (max_rows == 0 || printed < max_rows) {
    const auto response = client.timeseries();
    if (!response.ok()) {
      std::fprintf(stderr, "chainq: %s\n",
                   response.error().to_string().c_str());
      return 1;
    }
    if (response.value().status != 200) {
      std::fprintf(stderr, "chainq: HTTP %d from /v1/timeseries\n",
                   response.value().status);
      return 1;
    }
    for (const SampleMap& sample :
         parse_samples(chainchaos::to_string(response.value().body))) {
      const std::uint64_t seq = sample_value(sample, "seq");
      if (have_prev && seq <= last_seq) continue;
      if (have_prev) {
        const std::uint64_t dt_ms = sample_value(sample, "uptime_ms") -
                                    sample_value(prev, "uptime_ms");
        const double dt = dt_ms > 0 ? static_cast<double>(dt_ms) / 1000.0
                                    : 1.0;
        for (const char* column : kCumulativeColumns) {
          if (sample_value(sample, column) < sample_value(prev, column)) {
            std::fprintf(stderr,
                         "chainq: counter %s went backwards (%llu -> %llu)\n",
                         column,
                         static_cast<unsigned long long>(
                             sample_value(prev, column)),
                         static_cast<unsigned long long>(
                             sample_value(sample, column)));
            tearing = true;
          }
        }
        std::uint64_t buckets[service::kLatencyBucketCount];
        for (std::size_t b = 0; b < service::kLatencyBucketCount; ++b) {
          const std::string key = "latency_bucket_" + std::to_string(b);
          const std::uint64_t cur = sample_value(sample, key.c_str());
          const std::uint64_t old = sample_value(prev, key.c_str());
          if (cur < old) tearing = true;
          buckets[b] = cur >= old ? cur - old : 0;
        }
        const double p99_us = obs::quantile_from_buckets(
            buckets, service::kLatencyBucketCount,
            service::kLatencyBucketUpperUs.data(), 0.99);
        const auto rate = [&](const char* column) {
          return static_cast<double>(sample_value(sample, column) -
                                     sample_value(prev, column)) /
                 dt;
        };
        const double hits = rate("cache_hits");
        const double misses = rate("cache_misses");
        const double lookups = hits + misses;
        std::printf("%8.1f %9.1f %9.1f %9.1f %9.1f %8.2f %6llu %6llu\n",
                    static_cast<double>(sample_value(sample, "uptime_ms")) /
                        1000.0,
                    rate("requests_total"), rate("responses_2xx"),
                    rate("evictions_total"),
                    lookups > 0.0 ? 100.0 * hits / lookups : 0.0,
                    p99_us / 1000.0,
                    static_cast<unsigned long long>(
                        sample_value(sample, "connections_open")),
                    static_cast<unsigned long long>(
                        sample_value(sample, "wheel_pending")));
        std::fflush(stdout);
        ++printed;
      }
      prev = sample;
      last_seq = seq;
      have_prev = true;
      if (max_rows != 0 && printed >= max_rows) break;
    }
    if (max_rows != 0 && printed >= max_rows) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return tearing ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string domain = "chainq.example";
  std::size_t repeat = 1;
  int timeout_ms = 5000;
  std::size_t samples = 5;
  int interval_ms = 1000;

  cli::Flags flags("<command> [file]");
  flags.add("--port", &port, "P");
  flags.add("--domain", &domain, "D");
  flags.add("--repeat", &repeat, "N");
  flags.add("--timeout-ms", &timeout_ms, "T");
  flags.add("--samples", &samples, "N");
  flags.add("--interval-ms", &interval_ms, "MS");
  if (!flags.parse(argc, argv)) return 1;

  const auto& args = flags.positionals();
  if (args.empty()) {
    std::fprintf(stderr, "%s", flags.usage(argv[0]).c_str());
    return 1;
  }
  const std::string& command = args[0];

  if (command == "make-chain") {
    if (args.size() != 2) {
      std::fprintf(stderr, "chainq: make-chain needs an output file\n");
      return 1;
    }
    return make_chain(args[1], domain);
  }

  if (port == 0) {
    std::fprintf(stderr, "chainq: --port is required (chaind prints it)\n");
    return 1;
  }
  service::Client client(port, timeout_ms);

  if (command == "stats") return print_response(client.stats());
  if (command == "metrics") return print_response(client.metrics());
  if (command == "trace") return print_response(client.trace());
  if (command == "timeseries") return print_response(client.timeseries());
  if (command == "flight") return print_response(client.flight());
  if (command == "watch") return watch(client, samples, interval_ms);
  if (command == "health") return print_response(client.healthz());

  if (command == "analyze" || command == "lint") {
    if (args.size() != 2) {
      std::fprintf(stderr, "chainq: %s needs a chain file\n",
                   command.c_str());
      return 1;
    }
    std::ifstream in(args[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "chainq: cannot read %s\n", args[1].c_str());
      return 1;
    }
    std::ostringstream body;
    body << in.rdbuf();

    if (repeat == 0) repeat = 1;
    int rc = 0;
    for (std::size_t i = 0; i + 1 < repeat; ++i) {
      // Warm-up repeats: same connection, same chain — cache hits.
      const auto response = command == "analyze"
                                ? client.analyze(body.str(), domain)
                                : client.lint(body.str(), domain);
      if (!response.ok() || response.value().status != 200) {
        std::fprintf(stderr, "chainq: repeat %zu failed\n", i + 1);
        return 1;
      }
    }
    rc = print_response(command == "analyze" ? client.analyze(body.str(), domain)
                                             : client.lint(body.str(), domain));
    return rc;
  }

  std::fprintf(stderr, "chainq: unknown command '%s'\n%s", command.c_str(),
               flags.usage(argv[0]).c_str());
  return 1;
}
