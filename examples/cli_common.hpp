// Shared command-line parsing for the example CLIs.
//
// Every example used to hand-roll the same strcmp/strtoull ladder for
// its --domains/--threads/--json-style flags; this header factors that
// into one declarative helper. Register each flag with its destination,
// call parse(), and the usage line is derived from the registrations —
// so it can never drift from what the program actually accepts.
//
//   chainchaos::cli::Flags flags;
//   flags.add("--domains", &domains, "N");
//   flags.add("--json", &json);
//   if (!flags.parse(argc, argv)) return 1;
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

namespace chainchaos::cli {

class Flags {
 public:
  /// `positional_usage` documents non-flag arguments in the usage line,
  /// e.g. "<command> [file]". Empty = positionals are rejected.
  explicit Flags(std::string positional_usage = {})
      : positional_usage_(std::move(positional_usage)) {}

  /// Boolean switch (no value).
  void add(const char* name, bool* target) {
    specs_.push_back({name, "", [target](const char*) {
                        *target = true;
                        return true;
                      }});
  }

  /// Integer-valued flag. One template (rather than per-type overloads)
  /// because size_t/uint64_t alias on LP64 and would collide.
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  void add(const char* name, T* target, const char* metavar) {
    specs_.push_back({name, metavar, [target](const char* value) {
                        char* end = nullptr;
                        if constexpr (std::is_signed_v<T>) {
                          const long long v = std::strtoll(value, &end, 10);
                          if (end == value || *end != '\0') return false;
                          *target = static_cast<T>(v);
                        } else {
                          const unsigned long long v =
                              std::strtoull(value, &end, 10);
                          if (end == value || *end != '\0') return false;
                          *target = static_cast<T>(v);
                        }
                        return true;
                      }});
  }

  void add(const char* name, std::string* target, const char* metavar) {
    specs_.push_back({name, metavar, [target](const char* value) {
                        *target = value;
                        return true;
                      }});
  }

  /// Optional path-style flag: stays nullptr when absent.
  void add(const char* name, const char** target, const char* metavar) {
    specs_.push_back({name, metavar, [target](const char* value) {
                        *target = value;
                        return true;
                      }});
  }

  /// Parses argv. On any error prints the derived usage line to stderr
  /// and returns false. Non-flag arguments are collected as positionals
  /// (rejected unless the constructor declared them).
  bool parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      const Spec* spec = find(arg);
      if (spec == nullptr) {
        if (std::strncmp(arg, "--", 2) == 0) {
          std::fprintf(stderr, "unknown flag: %s\n%s", arg,
                       usage(argv[0]).c_str());
          return false;
        }
        if (positional_usage_.empty()) {
          std::fprintf(stderr, "unexpected argument: %s\n%s", arg,
                       usage(argv[0]).c_str());
          return false;
        }
        positionals_.push_back(arg);
        continue;
      }
      const char* value = nullptr;
      if (spec->takes_value()) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s requires a value\n%s", arg,
                       usage(argv[0]).c_str());
          return false;
        }
        value = argv[++i];
      }
      if (!spec->apply(value)) {
        std::fprintf(stderr, "bad value for %s: %s\n%s", arg, value,
                     usage(argv[0]).c_str());
        return false;
      }
    }
    return true;
  }

  const std::vector<std::string>& positionals() const { return positionals_; }

  std::string usage(const char* argv0) const {
    std::string out = "usage: ";
    out += argv0;
    for (const Spec& spec : specs_) {
      out += " [" + spec.name;
      if (spec.takes_value()) {
        out += ' ';
        out += spec.metavar;
      }
      out += ']';
    }
    if (!positional_usage_.empty()) {
      out += ' ';
      out += positional_usage_;
    }
    out += '\n';
    return out;
  }

 private:
  struct Spec {
    std::string name;
    std::string metavar;
    std::function<bool(const char*)> apply;

    bool takes_value() const { return !metavar.empty(); }
  };

  const Spec* find(const char* arg) const {
    for (const Spec& spec : specs_) {
      if (spec.name == arg) return &spec;
    }
    return nullptr;
  }

  std::string positional_usage_;
  std::vector<Spec> specs_;
  std::vector<std::string> positionals_;
};

}  // namespace chainchaos::cli
