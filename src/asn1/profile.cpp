#include "asn1/profile.hpp"

namespace chainchaos::asn1 {

const ParseProfile& default_parse_profile() {
  // Every knob at its default: the historical reader, bit for bit.
  static const ParseProfile profile;
  return profile;
}

}  // namespace chainchaos::asn1
