#include "service/metrics.hpp"

#include "obs/event_log.hpp"
#include "obs/histogram.hpp"
#include "obs/prometheus.hpp"
#include "report/json.hpp"

namespace chainchaos::service {

namespace {

/// Quantiles over one µs-bucketed histogram snapshot, shared by the JSON
/// renderer.
struct Quantiles {
  double p50 = 0, p90 = 0, p99 = 0;
};

Quantiles quantiles_of(const std::array<std::uint64_t, kLatencyBucketCount>&
                           counts) {
  Quantiles q;
  q.p50 = obs::quantile_from_buckets(counts.data(), kLatencyBucketCount,
                                     kLatencyBucketUpperUs.data(), 0.50);
  q.p90 = obs::quantile_from_buckets(counts.data(), kLatencyBucketCount,
                                     kLatencyBucketUpperUs.data(), 0.90);
  q.p99 = obs::quantile_from_buckets(counts.data(), kLatencyBucketCount,
                                     kLatencyBucketUpperUs.data(), 0.99);
  return q;
}

void write_histogram_json(
    report::JsonWriter& w,
    const std::array<std::uint64_t, kLatencyBucketCount>& counts,
    std::uint64_t total_us) {
  const Quantiles q = quantiles_of(counts);
  w.key("buckets").begin_array();
  for (std::size_t i = 0; i < kLatencyBucketCount; ++i) {
    w.begin_object();
    if (i < kLatencyBucketUpperUs.size()) {
      w.key("le").value(kLatencyBucketUpperUs[i]);
    } else {
      w.key("le").value("inf");
    }
    w.key("count").value(counts[i]);
    w.end_object();
  }
  w.end_array();
  w.key("total_us").value(total_us);
  w.key("p50_us").value(q.p50);
  w.key("p90_us").value(q.p90);
  w.key("p99_us").value(q.p99);
}

std::size_t latency_bucket_of(std::uint64_t micros) {
  for (std::size_t i = 0; i < kLatencyBucketUpperUs.size(); ++i) {
    if (micros <= kLatencyBucketUpperUs[i]) return i;
  }
  return kLatencyBucketUpperUs.size();
}

}  // namespace

const char* to_string(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kAnalyze: return "analyze";
    case Endpoint::kLint: return "lint";
    case Endpoint::kStats: return "stats";
    case Endpoint::kHealth: return "health";
    case Endpoint::kMetrics: return "metrics";
    case Endpoint::kTrace: return "trace";
    case Endpoint::kParsdiff: return "parsdiff";
    case Endpoint::kTimeseries: return "timeseries";
    case Endpoint::kFlight: return "flight";
    case Endpoint::kOther: return "other";
  }
  return "other";
}

const char* to_string(Eviction kind) {
  switch (kind) {
    case Eviction::kSlowRead: return "slow_read";
    case Eviction::kSlowWrite: return "slow_write";
    case Eviction::kIdle: return "idle";
  }
  return "idle";
}

void Metrics::record_request(Endpoint endpoint) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  by_endpoint_[static_cast<std::size_t>(endpoint)].fetch_add(
      1, std::memory_order_relaxed);
}

void Metrics::record_response(int status, std::uint64_t micros) {
  if (status >= 500) {
    responses_5xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (status >= 400) {
    responses_4xx_.fetch_add(1, std::memory_order_relaxed);
  } else {
    responses_2xx_.fetch_add(1, std::memory_order_relaxed);
  }
  latency_[latency_bucket_of(micros)].fetch_add(1, std::memory_order_relaxed);
  latency_total_us_.fetch_add(micros, std::memory_order_relaxed);
}

void Metrics::record_queue_wait(std::uint64_t micros) {
  queue_wait_[latency_bucket_of(micros)].fetch_add(1,
                                                   std::memory_order_relaxed);
  queue_wait_total_us_.fetch_add(micros, std::memory_order_relaxed);
}

void Metrics::record_rejected() {
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_client_disconnect() {
  client_disconnects_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_write_failure() {
  write_failures_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_worker_recovery() {
  worker_recoveries_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::note_queue_depth(std::size_t depth) {
  std::uint64_t seen = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > seen && !queue_high_water_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

void Metrics::record_accept_error() {
  accept_errors_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_fd_exhausted() {
  fd_exhausted_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_connection_open() {
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t open =
      connections_open_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t seen = connections_peak_.load(std::memory_order_relaxed);
  while (open > seen && !connections_peak_.compare_exchange_weak(
                            seen, open, std::memory_order_relaxed)) {
  }
}

void Metrics::record_connection_close() {
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
}

void Metrics::record_eviction(Eviction kind) {
  evictions_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
}

void Metrics::record_loop_tick(std::uint64_t micros) {
  // Single writer (the loop thread); relaxed load+store skips the
  // lock-prefixed RMW, same idiom as the tracer's stage cells.
  loop_ticks_.store(loop_ticks_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  auto& bucket = loop_tick_[latency_bucket_of(micros)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  loop_tick_total_us_.store(
      loop_tick_total_us_.load(std::memory_order_relaxed) + micros,
      std::memory_order_relaxed);
}

void Metrics::record_poll_batch(std::size_t events) {
  std::size_t bucket = kBatchBucketUpper.size();
  for (std::size_t i = 0; i < kBatchBucketUpper.size(); ++i) {
    if (events <= kBatchBucketUpper[i]) {
      bucket = i;
      break;
    }
  }
  auto& cell = poll_batch_[bucket];
  cell.store(cell.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  poll_waits_.store(poll_waits_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  poll_events_total_.store(
      poll_events_total_.load(std::memory_order_relaxed) + events,
      std::memory_order_relaxed);
}

void Metrics::note_wheel_pending(std::size_t pending) {
  wheel_pending_.store(pending, std::memory_order_relaxed);
}

void Metrics::record_pump_stall() {
  pump_stalls_.store(pump_stalls_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
}

double Metrics::uptime_seconds() const {
  return std::chrono::duration<double>(Clock::now() - started_at_).count();
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot s;
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    s.by_endpoint[i] = by_endpoint_[i].load(std::memory_order_relaxed);
  }
  s.responses_2xx = responses_2xx_.load(std::memory_order_relaxed);
  s.responses_4xx = responses_4xx_.load(std::memory_order_relaxed);
  s.responses_5xx = responses_5xx_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.client_disconnects = client_disconnects_.load(std::memory_order_relaxed);
  s.write_failures = write_failures_.load(std::memory_order_relaxed);
  s.worker_recoveries = worker_recoveries_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kLatencyBucketCount; ++i) {
    s.latency[i] = latency_[i].load(std::memory_order_relaxed);
    s.queue_wait[i] = queue_wait_[i].load(std::memory_order_relaxed);
    s.loop_tick[i] = loop_tick_[i].load(std::memory_order_relaxed);
  }
  s.latency_total_us = latency_total_us_.load(std::memory_order_relaxed);
  s.queue_wait_total_us = queue_wait_total_us_.load(std::memory_order_relaxed);
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  s.accept_errors = accept_errors_.load(std::memory_order_relaxed);
  s.fd_exhausted = fd_exhausted_.load(std::memory_order_relaxed);
  s.connections_open = connections_open_.load(std::memory_order_relaxed);
  s.connections_peak = connections_peak_.load(std::memory_order_relaxed);
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kEvictionKindCount; ++i) {
    s.evictions[i] = evictions_[i].load(std::memory_order_relaxed);
  }
  s.loop_ticks = loop_ticks_.load(std::memory_order_relaxed);
  s.loop_tick_total_us = loop_tick_total_us_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBatchBucketCount; ++i) {
    s.poll_batch[i] = poll_batch_[i].load(std::memory_order_relaxed);
  }
  s.poll_waits = poll_waits_.load(std::memory_order_relaxed);
  s.poll_events_total = poll_events_total_.load(std::memory_order_relaxed);
  s.wheel_pending = wheel_pending_.load(std::memory_order_relaxed);
  s.pump_stalls = pump_stalls_.load(std::memory_order_relaxed);
  s.uptime_seconds = uptime_seconds();
  return s;
}

std::string Metrics::to_json(const CacheStats& cache,
                             const net::FetchStats& aia,
                             const crypto::VerifySnapshot& verify) const {
  const MetricsSnapshot s = snapshot();
  report::JsonWriter w;
  w.begin_object();

  w.key("uptime_seconds").value(s.uptime_seconds);

  w.key("requests").begin_object();
  w.key("total").value(s.requests_total);
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    w.key(to_string(static_cast<Endpoint>(i))).value(s.by_endpoint[i]);
  }
  w.end_object();

  w.key("responses").begin_object();
  w.key("2xx").value(s.responses_2xx);
  w.key("4xx").value(s.responses_4xx);
  w.key("5xx").value(s.responses_5xx);
  w.key("rejected_busy").value(s.rejected);
  w.end_object();

  w.key("latency_us").begin_object();
  write_histogram_json(w, s.latency, s.latency_total_us);
  w.end_object();

  w.key("queue_wait_us").begin_object();
  write_histogram_json(w, s.queue_wait, s.queue_wait_total_us);
  w.end_object();

  w.key("queue").begin_object();
  w.key("high_water_mark").value(s.queue_high_water);
  w.end_object();

  w.key("connections").begin_object();
  w.key("disconnects_midrequest").value(s.client_disconnects);
  w.key("write_failures").value(s.write_failures);
  w.key("worker_recoveries").value(s.worker_recoveries);
  w.key("open").value(s.connections_open);
  w.key("peak").value(s.connections_peak);
  w.key("accepted").value(s.connections_accepted);
  w.key("accept_errors").value(s.accept_errors);
  w.key("fd_exhausted").value(s.fd_exhausted);
  w.key("evicted_slow_read")
      .value(s.evictions[static_cast<std::size_t>(Eviction::kSlowRead)]);
  w.key("evicted_slow_write")
      .value(s.evictions[static_cast<std::size_t>(Eviction::kSlowWrite)]);
  w.key("evicted_idle")
      .value(s.evictions[static_cast<std::size_t>(Eviction::kIdle)]);
  w.end_object();

  w.key("loop").begin_object();
  w.key("ticks").value(s.loop_ticks);
  w.key("tick_us").begin_object();
  write_histogram_json(w, s.loop_tick, s.loop_tick_total_us);
  w.end_object();
  w.key("poll_waits").value(s.poll_waits);
  w.key("poll_events_total").value(s.poll_events_total);
  w.key("wheel_pending").value(s.wheel_pending);
  w.key("pump_stalls").value(s.pump_stalls);
  w.end_object();

  w.key("events").begin_object();
  w.key("emitted").value(obs::EventLog::instance().emitted());
  w.key("sink_written").value(obs::EventLog::instance().sink_written());
  w.key("sink_suppressed").value(obs::EventLog::instance().sink_suppressed());
  w.end_object();

  w.key("aia").begin_object();
  w.key("attempts").value(aia.attempts);
  w.key("hits").value(aia.hits);
  w.key("misses").value(aia.misses);
  w.key("unreachable").value(aia.unreachable);
  w.key("retries").value(aia.retries);
  w.key("transient_failures").value(aia.transient_failures);
  w.key("deadline_exceeded").value(aia.deadline_exceeded);
  w.key("corrupt_responses").value(aia.corrupt_responses);
  w.key("bytes_served").value(aia.bytes_served);
  w.key("simulated_latency_ms").value(aia.simulated_latency_ms);
  w.end_object();

  w.key("cache").begin_object();
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("evictions").value(cache.evictions);
  w.key("insertions").value(cache.insertions);
  w.key("entries").value(cache.entries);
  w.key("hit_ratio").value(cache.hit_ratio());
  w.end_object();

  w.key("verify").begin_object();
  w.key("memo_lookups").value(verify.memo.lookups);
  w.key("memo_hits").value(verify.memo.hits);
  w.key("memo_misses").value(verify.memo.misses);
  w.key("memo_insertions").value(verify.memo.insertions);
  w.key("memo_evictions").value(verify.memo.evictions);
  w.key("memo_entries").value(verify.memo.entries);
  w.key("memo_hit_ratio").value(verify.memo.hit_ratio());
  w.key("verifications").value(verify.computation.verifications);
  w.key("montgomery").value(verify.computation.montgomery);
  w.key("classic").value(verify.computation.classic);
  w.end_object();

  w.end_object();
  return w.take();
}

std::string Metrics::to_prometheus(const CacheStats& cache,
                                   const net::FetchStats& aia,
                                   const crypto::VerifySnapshot& verify) const {
  const MetricsSnapshot s = snapshot();
  obs::PromWriter w;

  w.family("chainchaos_uptime_seconds",
           "Seconds since the server started", "gauge");
  w.sample("chainchaos_uptime_seconds", {}, s.uptime_seconds);

  w.family("chainchaos_requests_total", "Requests received by endpoint",
           "counter");
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    w.sample("chainchaos_requests_total",
             {{"endpoint", to_string(static_cast<Endpoint>(i))}},
             s.by_endpoint[i]);
  }

  w.family("chainchaos_responses_total", "Responses sent by status class",
           "counter");
  w.sample("chainchaos_responses_total", {{"class", "2xx"}}, s.responses_2xx);
  w.sample("chainchaos_responses_total", {{"class", "4xx"}}, s.responses_4xx);
  w.sample("chainchaos_responses_total", {{"class", "5xx"}}, s.responses_5xx);

  w.family("chainchaos_rejected_total",
           "Connections answered 503 because the queue was full", "counter");
  w.sample("chainchaos_rejected_total", {}, s.rejected);

  w.family("chainchaos_client_disconnects_total",
           "Mid-request client disconnects", "counter");
  w.sample("chainchaos_client_disconnects_total", {}, s.client_disconnects);

  w.family("chainchaos_write_failures_total",
           "Responses lost to write errors or deadlines", "counter");
  w.sample("chainchaos_write_failures_total", {}, s.write_failures);

  w.family("chainchaos_worker_recoveries_total",
           "Worker threads that absorbed an unexpected handler error",
           "counter");
  w.sample("chainchaos_worker_recoveries_total", {}, s.worker_recoveries);

  w.family("chainchaos_queue_high_water", "Request queue depth high-water mark",
           "gauge");
  w.sample("chainchaos_queue_high_water", {}, s.queue_high_water);

  w.family("chainchaos_connections_open", "Connections currently admitted",
           "gauge");
  w.sample("chainchaos_connections_open", {}, s.connections_open);

  w.family("chainchaos_connections_peak",
           "High-water mark of concurrently open connections", "gauge");
  w.sample("chainchaos_connections_peak", {}, s.connections_peak);

  w.family("chainchaos_connections_accepted_total",
           "Connections admitted into the event loop", "counter");
  w.sample("chainchaos_connections_accepted_total", {},
           s.connections_accepted);

  w.family("chainchaos_accept_errors_total",
           "accept() failures other than EAGAIN/EINTR", "counter");
  w.sample("chainchaos_accept_errors_total", {}, s.accept_errors);

  w.family("chainchaos_fd_exhausted_total",
           "accept() EMFILE/ENFILE events absorbed by the reserved fd",
           "counter");
  w.sample("chainchaos_fd_exhausted_total", {}, s.fd_exhausted);

  w.family("chainchaos_evictions_total",
           "Connections closed by the event loop for missing a deadline",
           "counter");
  w.sample("chainchaos_evictions_total", {{"kind", "slow_read"}},
           s.evictions[static_cast<std::size_t>(Eviction::kSlowRead)]);
  w.sample("chainchaos_evictions_total", {{"kind", "slow_write"}},
           s.evictions[static_cast<std::size_t>(Eviction::kSlowWrite)]);
  w.sample("chainchaos_evictions_total", {{"kind", "idle"}},
           s.evictions[static_cast<std::size_t>(Eviction::kIdle)]);

  w.histogram("chainchaos_request_duration_seconds",
              "Handler time per response (parse to send)", {},
              s.latency.data(), kLatencyBucketCount,
              kLatencyBucketUpperUs.data(), 1e6, s.latency_total_us);

  w.histogram("chainchaos_queue_wait_seconds",
              "Time connections sat in the accept queue", {},
              s.queue_wait.data(), kLatencyBucketCount,
              kLatencyBucketUpperUs.data(), 1e6, s.queue_wait_total_us);

  w.histogram("chainchaos_loop_tick_duration_seconds",
              "Event-loop busy time per iteration (wait excluded)", {},
              s.loop_tick.data(), kLatencyBucketCount,
              kLatencyBucketUpperUs.data(), 1e6, s.loop_tick_total_us);

  w.histogram("chainchaos_poll_batch_size",
              "Ready events returned per epoll_wait wakeup", {},
              s.poll_batch.data(), kBatchBucketCount, kBatchBucketUpper.data(),
              1.0, s.poll_events_total);

  w.family("chainchaos_timeout_wheel_pending",
           "Connections parked in the timeout wheel", "gauge");
  w.sample("chainchaos_timeout_wheel_pending", {}, s.wheel_pending);

  w.family("chainchaos_pump_stalls_total",
           "Loop iterations whose busy time exceeded the poll interval",
           "counter");
  w.sample("chainchaos_pump_stalls_total", {}, s.pump_stalls);

  w.family("chainchaos_cache_operations_total",
           "Result cache lookups and mutations", "counter");
  w.sample("chainchaos_cache_operations_total", {{"op", "hit"}}, cache.hits);
  w.sample("chainchaos_cache_operations_total", {{"op", "miss"}},
           cache.misses);
  w.sample("chainchaos_cache_operations_total", {{"op", "eviction"}},
           cache.evictions);
  w.sample("chainchaos_cache_operations_total", {{"op", "insertion"}},
           cache.insertions);

  w.family("chainchaos_cache_entries", "Result cache resident entries",
           "gauge");
  w.sample("chainchaos_cache_entries", {}, cache.entries);

  w.family("chainchaos_aia_fetches_total", "AIA fetch outcomes", "counter");
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "hit"}}, aia.hits);
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "miss"}}, aia.misses);
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "unreachable"}},
           aia.unreachable);
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "transient"}},
           aia.transient_failures);
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "deadline"}},
           aia.deadline_exceeded);
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "corrupt"}},
           aia.corrupt_responses);

  w.family("chainchaos_aia_retries_total", "AIA fetch retry attempts",
           "counter");
  w.sample("chainchaos_aia_retries_total", {}, aia.retries);

  w.family("chainchaos_verify_memo_total",
           "Signature verification memo lookups by result", "counter");
  w.sample("chainchaos_verify_memo_total", {{"result", "hit"}},
           verify.memo.hits);
  w.sample("chainchaos_verify_memo_total", {{"result", "miss"}},
           verify.memo.misses);

  w.family("chainchaos_verify_memo_entries",
           "Signature verification memo resident entries", "gauge");
  w.sample("chainchaos_verify_memo_entries", {}, verify.memo.entries);

  w.family("chainchaos_verify_memo_evictions_total",
           "Memo shard clears forced by the residency bound", "counter");
  w.sample("chainchaos_verify_memo_evictions_total", {},
           verify.memo.evictions);

  w.family("chainchaos_signature_verifications_total",
           "Signature verifications actually computed, by modexp path",
           "counter");
  w.sample("chainchaos_signature_verifications_total",
           {{"path", "montgomery"}}, verify.computation.montgomery);
  w.sample("chainchaos_signature_verifications_total", {{"path", "classic"}},
           verify.computation.classic);

  return w.take();
}

std::vector<std::string> timeseries_columns() {
  std::vector<std::string> columns = {
      "requests_total", "responses_2xx",        "responses_4xx",
      "responses_5xx",  "rejected_busy",        "connections_open",
      "connections_accepted", "evictions_total", "queue_high_water",
      "cache_hits",     "cache_misses",         "cache_evictions",
      "cache_entries",  "aia_attempts",         "verify_verifications",
      "latency_total_us", "loop_ticks",         "pump_stalls",
      "wheel_pending",  "events_emitted",
  };
  for (std::size_t i = 0; i < kLatencyBucketCount; ++i) {
    columns.push_back("latency_bucket_" + std::to_string(i));
  }
  return columns;
}

std::vector<std::uint64_t> timeseries_row(
    const MetricsSnapshot& m, const CacheStats& cache,
    const net::FetchStats& aia, const crypto::VerifySnapshot& verify) {
  std::vector<std::uint64_t> row = {
      m.requests_total,
      m.responses_2xx,
      m.responses_4xx,
      m.responses_5xx,
      m.rejected,
      m.connections_open,
      m.connections_accepted,
      m.evictions_total(),
      m.queue_high_water,
      cache.hits,
      cache.misses,
      cache.evictions,
      cache.entries,
      aia.attempts,
      verify.computation.verifications,
      m.latency_total_us,
      m.loop_ticks,
      m.pump_stalls,
      m.wheel_pending,
      obs::EventLog::instance().emitted(),
  };
  for (std::size_t i = 0; i < kLatencyBucketCount; ++i) {
    row.push_back(m.latency[i]);
  }
  return row;
}

}  // namespace chainchaos::service
