// service::Client: in-process client for the chaind daemon.
//
// Rides the same net:: HTTP/1.1 codec as the server, over a real
// loopback TCP connection with keep-alive — so repeated queries (the
// cache-hit workload) reuse one socket. Each instance owns one
// connection and is NOT thread-safe; concurrent callers each create
// their own Client (that is the service's concurrency model: one
// connection per in-flight request stream).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/http.hpp"
#include "support/result.hpp"

namespace chainchaos::service {

class Client {
 public:
  /// Does not connect yet; the first request dials 127.0.0.1:`port`.
  explicit Client(std::uint16_t port, int timeout_ms = 5000);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// POST /v1/analyze. `body` is a PEM bundle or concatenated DER;
  /// `domain` (optional) is the hostname the chain was served for.
  Result<net::HttpResponse> analyze(const std::string& body,
                                    const std::string& domain = {});

  /// POST /v1/lint.
  Result<net::HttpResponse> lint(const std::string& body,
                                 const std::string& domain = {});

  /// GET /v1/stats.
  Result<net::HttpResponse> stats();

  /// GET /v1/metrics (Prometheus text exposition).
  Result<net::HttpResponse> metrics();

  /// GET /v1/trace (chrome://tracing JSON of the daemon's spans).
  Result<net::HttpResponse> trace();

  /// GET /v1/timeseries (chainwatch per-second counter ring).
  Result<net::HttpResponse> timeseries();

  /// GET /v1/flight (newest structured events + spans, on demand).
  Result<net::HttpResponse> flight();

  /// GET /healthz.
  Result<net::HttpResponse> healthz();

  /// Sends an arbitrary request (host/content-length are filled in) and
  /// reads the response. Every request carries an x-trace-id header — a
  /// deterministic per-client sequence unless the caller set one — which
  /// the daemon tags its spans with and echoes on the response.
  /// Reconnects once if the kept-alive connection turned out to be
  /// stale.
  Result<net::HttpResponse> request(net::HttpRequest req);

  /// HTTP/1.1 pipelining: encodes all requests (host/x-trace-id filled
  /// in as for request()), sends them in one burst on one connection,
  /// then reads the responses back in order. A "connection: close"
  /// response ends the stream early — the returned vector is then
  /// shorter than `requests`, which the caller can detect; an EOF before
  /// the final response without a close header is an error. No
  /// stale-connection retry: a pipelined burst is not idempotent to
  /// replay, so the caller decides.
  Result<std::vector<net::HttpResponse>> pipeline(
      std::vector<net::HttpRequest> requests);

 private:
  Result<bool> connect_once();
  void disconnect();
  Result<net::HttpResponse> round_trip(const std::string& wire);

  std::uint16_t port_;
  int timeout_ms_;
  int fd_ = -1;
  std::uint64_t trace_seq_ = 0;
};

}  // namespace chainchaos::service
