#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "chain/issuance.hpp"
#include "crypto/verifier.hpp"
#include "difftest/harness.hpp"
#include "engine/engine.hpp"

namespace chainchaos::engine {
namespace {

// --- Shard plumbing -------------------------------------------------------

TEST(ShardingTest, ResolveThreadsHonorsRequestAndNeverReturnsZero) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_GE(resolve_threads(0), 1u);  // hardware_concurrency fallback
}

TEST(ShardingTest, ResolveShardSizeHonorsRequestAndClamps) {
  EXPECT_EQ(resolve_shard_size(1000, 4, 64), 64u);  // explicit wins
  EXPECT_GE(resolve_shard_size(10, 8, 0), 1u);      // never zero
  EXPECT_LE(resolve_shard_size(1u << 24, 1, 0), 4096u);
  // Several shards per worker so stealing can balance uneven costs.
  const std::size_t size = resolve_shard_size(100000, 4, 0);
  EXPECT_GE(100000 / size, 4u * 8);
}

TEST(ShardingTest, ForEachShardCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 10007;  // prime: exercises the tail shard
  std::unique_ptr<std::atomic<int>[]> seen(new std::atomic<int>[kCount]);
  for (std::size_t i = 0; i < kCount; ++i) seen[i] = 0;

  ShardOptions options;
  options.threads = 8;
  options.shard_size = 64;
  for_each_shard(kCount, options,
                 [&](std::size_t first, std::size_t last, unsigned worker) {
                   EXPECT_LT(worker, 8u);
                   for (std::size_t i = first; i < last; ++i) {
                     seen[i].fetch_add(1, std::memory_order_relaxed);
                   }
                 });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ShardingTest, ForEachShardHandlesEmptyAndTinyInputs) {
  int calls = 0;
  for_each_shard(0, ShardOptions{8, 16},
                 [&](std::size_t, std::size_t, unsigned) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::size_t covered = 0;
  for_each_shard(3, ShardOptions{8, 1000},
                 [&](std::size_t first, std::size_t last, unsigned) {
                   covered += last - first;
                 });
  EXPECT_EQ(covered, 3u);
}

// --- Corpus-backed fixture ------------------------------------------------

class EngineFixture : public ::testing::Test {
 protected:
  static dataset::Corpus& corpus() {
    static dataset::Corpus* instance = [] {
      dataset::CorpusConfig config;
      config.domain_count = 2000;
      return new dataset::Corpus(std::move(config));
    }();
    return *instance;
  }

  static const chain::ComplianceAnalyzer& analyzer() {
    static chain::ComplianceAnalyzer* instance = [] {
      chain::CompletenessOptions options;
      options.store = &corpus().stores().union_store;
      options.aia = &corpus().aia();
      return new chain::ComplianceAnalyzer(options);
    }();
    return *instance;
  }

  static AnalysisResult sweep(unsigned threads) {
    AnalysisRequest request;
    request.records = &corpus().records();
    request.shards.threads = threads;
    request.analyzer = &analyzer();
    request.key_of = [](const dataset::DomainRecord& record) {
      return record.observation.ca_name;
    };
    return run(request);
  }
};

// The headline property the sharded engine promises: thread count is
// invisible in the results — the 8-thread sweep is byte-identical to the
// 1-thread sweep, down to the rendered summary table.
TEST_F(EngineFixture, EightThreadSweepIsByteIdenticalToSingleThread) {
  const AnalysisResult one = sweep(1);
  const AnalysisResult eight = sweep(8);

  EXPECT_EQ(one.records_processed, corpus().records().size());
  EXPECT_EQ(eight.records_processed, one.records_processed);
  EXPECT_EQ(eight.tally, one.tally);  // compliance + every by_key tally
  EXPECT_EQ(summary_table(eight.tally.compliance).render(),
            summary_table(one.tally.compliance).render());
  EXPECT_EQ(one.threads_used, 1u);
  EXPECT_EQ(eight.threads_used, 8u);
  EXPECT_GT(eight.shard_count, 1u);
}

// The parallel sweep must equal a plain hand-written sequential loop —
// sharding is an implementation detail, not a semantic change.
TEST_F(EngineFixture, SweepMatchesSequentialReferenceLoop) {
  ShardTally reference;
  for (const dataset::DomainRecord& record : corpus().records()) {
    const chain::ComplianceReport report = analyzer().analyze(record.observation);
    reference.compliance.account(report);
    reference.by_key[record.observation.ca_name].account(report);
  }
  const AnalysisResult result = sweep(4);
  EXPECT_EQ(result.tally, reference);
}

TEST_F(EngineFixture, FilterSkipsRecordsAndCountsThem) {
  std::size_t exemplars = 0;
  for (const dataset::DomainRecord& record : corpus().records()) {
    exemplars += record.exemplar;
  }
  ASSERT_GT(exemplars, 0u);

  AnalysisRequest request;
  request.records = &corpus().records();
  request.shards.threads = 4;
  request.analyzer = &analyzer();
  request.filter = [](const dataset::DomainRecord& record) {
    return !record.exemplar;
  };
  const AnalysisResult result = run(request);
  EXPECT_EQ(result.records_skipped, exemplars);
  EXPECT_EQ(result.records_processed, corpus().records().size() - exemplars);
  EXPECT_EQ(result.tally.compliance.total, result.records_processed);
}

TEST_F(EngineFixture, PerRecordCallbackRunsWithoutAnalyzer) {
  AnalysisRequest request;
  request.records = &corpus().records();
  request.shards.threads = 4;
  request.per_record = [](const dataset::DomainRecord&, std::size_t,
                          const chain::ComplianceReport* report,
                          ShardTally& tally) {
    EXPECT_EQ(report, nullptr);  // no analyzer attached
    ++tally.compliance.total;
  };
  const AnalysisResult result = run(request);
  EXPECT_EQ(result.tally.compliance.total, corpus().records().size());
}

// --- Merge algebra --------------------------------------------------------

// Determinism rests on merge() being associative with {} as identity:
// however the shards land on workers, the fold is the same sum.
TEST_F(EngineFixture, TallyMergeIsAssociativeWithIdentity) {
  const std::vector<dataset::DomainRecord>& records = corpus().records();
  ASSERT_GE(records.size(), 300u);

  // Three uneven slices with real (non-trivial) reports in each.
  ShardTally a, b, c;
  const auto fold = [&](ShardTally& into, std::size_t first,
                        std::size_t last) {
    for (std::size_t i = first; i < last; ++i) {
      const chain::ComplianceReport report =
          analyzer().analyze(records[i].observation);
      into.compliance.account(report);
      into.by_key[records[i].observation.ca_name].account(report);
    }
  };
  fold(a, 0, 37);
  fold(b, 37, 141);
  fold(c, 141, 300);

  ShardTally left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  ShardTally bc = b;     // a + (b + c)
  bc.merge(c);
  ShardTally right = a;
  right.merge(bc);
  EXPECT_EQ(left, right);

  ShardTally with_identity = left;
  with_identity.merge(ShardTally{});
  EXPECT_EQ(with_identity, left);

  ShardTally from_identity;
  from_identity.merge(left);
  EXPECT_EQ(from_identity, left);
}

TEST(TallyTest, MergeSumsCountersAndMaxesDuplicateOccurrences) {
  ComplianceTally a, b;
  a.total = 3;
  a.noncompliant = 1;
  a.max_duplicate_occurrences = 5;
  b.total = 4;
  b.noncompliant = 2;
  b.max_duplicate_occurrences = 2;
  a.merge(b);
  EXPECT_EQ(a.total, 7u);
  EXPECT_EQ(a.noncompliant, 3u);
  EXPECT_EQ(a.max_duplicate_occurrences, 5);
}

TEST(TallyTest, ShardMergeSumsNamedCountersPerKey) {
  ShardTally a, b;
  a.counters["lint.findings/cert.expired"] = 3;
  a.counters["only.in.a"] = 1;
  b.counters["lint.findings/cert.expired"] = 4;
  b.counters["only.in.b"] = 7;
  a.merge(b);
  EXPECT_EQ(a.counters.at("lint.findings/cert.expired"), 7u);
  EXPECT_EQ(a.counters.at("only.in.a"), 1u);
  EXPECT_EQ(a.counters.at("only.in.b"), 7u);
  EXPECT_EQ(a.counters.size(), 3u);
}

// --- Verification memo determinism (DESIGN.md §5.12) ----------------------

// The memo's contract inside the engine: it only short-circuits repeat
// (TBS, key, signature) triples, so tallies are byte-identical with the
// memo disabled, with a private memo at 1 thread, and with the same
// kind of memo shared by 8 workers. The issuance cache is reset before
// each arm so the fingerprint-pair memo above the verifier doesn't
// absorb the repeats and mask what this test is checking.
TEST_F(EngineFixture, VerifyMemoKeepsTalliesByteIdentical) {
  const auto memo_sweep = [this](bool memo_on, unsigned threads,
                                 crypto::VerifyMemo* memo) {
    chain::reset_issuance_cache();
    AnalysisRequest request;
    request.records = &corpus().records();
    request.shards.threads = threads;
    request.analyzer = &analyzer();
    request.verify_memo = memo;
    request.verify_memo_enabled = memo_on;
    return run(request);
  };

  const AnalysisResult off = memo_sweep(false, 1, nullptr);
  crypto::VerifyMemo memo_one;
  const AnalysisResult one = memo_sweep(true, 1, &memo_one);
  crypto::VerifyMemo memo_eight;
  const AnalysisResult eight = memo_sweep(true, 8, &memo_eight);

  EXPECT_EQ(one.tally, off.tally);
  EXPECT_EQ(eight.tally, off.tally);
  EXPECT_EQ(summary_table(one.tally.compliance).render(),
            summary_table(off.tally.compliance).render());
  EXPECT_EQ(summary_table(eight.tally.compliance).render(),
            summary_table(off.tally.compliance).render());

  // The memo-off arm reports no activity; the memo-on arms actually
  // exercised the memo, and their counters are internally consistent.
  EXPECT_EQ(off.verify_memo.lookups, 0u);
  EXPECT_GT(one.verify_memo.lookups, 0u);
  EXPECT_EQ(one.verify_memo.hits + one.verify_memo.misses,
            one.verify_memo.lookups);
  EXPECT_EQ(eight.verify_memo.hits + eight.verify_memo.misses,
            eight.verify_memo.lookups);
  // The 8-thread arm does at least the single-thread arm's lookups
  // (exactly equal up to benign compute-twice races in the issuance
  // memo above the verifier, so >= is the stable bound).
  EXPECT_GE(eight.verify_memo.lookups, one.verify_memo.lookups);
}

// --- Differential harness on the engine -----------------------------------

TEST_F(EngineFixture, DifferentialSweepIsIdenticalAcrossThreadCounts) {
  difftest::DifferentialHarness harness(corpus());
  harness.seed_intermediate_caches();

  const std::vector<difftest::DomainDiff> one = harness.run(ShardOptions{1});
  const std::vector<difftest::DomainDiff> eight = harness.run(ShardOptions{8});

  ASSERT_EQ(one.size(), corpus().records().size());
  ASSERT_EQ(eight.size(), one.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(eight[i].record_index, one[i].record_index);
    EXPECT_EQ(eight[i].statuses, one[i].statuses) << "record " << i;
    EXPECT_EQ(eight[i].finding, one[i].finding) << "record " << i;
    EXPECT_EQ(eight[i].all_browsers_ok, one[i].all_browsers_ok);
    EXPECT_EQ(eight[i].all_libraries_ok, one[i].all_libraries_ok);
  }
}

}  // namespace
}  // namespace chainchaos::engine
