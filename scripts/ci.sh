#!/usr/bin/env bash
# Full local CI pipeline: what the tree must pass before a merge.
#
#   scripts/ci.sh
#
#   1. tier-1: configure + build + full ctest suite (RelWithDebInfo)
#   2. sanitizers: the same suite under ASan/UBSan
#      (-DCHAINCHAOS_SANITIZE="address;undefined")
#   3. service smoke: chaind on an ephemeral port, repeated chainq
#      queries, non-zero cache hit ratio, graceful SIGTERM shutdown
#      (also registered as the `service_smoke` ctest, so stages 1 and 2
#      already ran it in-suite; this stage exercises the shipped script
#      against the tier-1 binaries directly)
#   4. chaos campaign under sanitizers: 5000 mutated inputs (all 13
#      classes, seeded) through the ASan/UBSan build of the full
#      pipeline, at 1 and 8 threads — zero crashes/hangs/findings and
#      byte-identical summaries (the §5.10 crash-free contract)
#   5. observability: the obs smoke (chainprof sweep coverage >= 90%,
#      live /v1/metrics through the exposition checker, the §5.16
#      chainwatch legs — event sink, /v1/timeseries + chainq watch,
#      SIGSEGV flight dump, --progress determinism) plus the
#      bench/trace_overhead gate (§5.11 budget: tracing and event
#      emission each cost the sweep < 3% when on)
#   6. crypto hot path: the bench/crypto_verify gate (§5.12 budget:
#      Montgomery modexp >= 3x the schoolbook ladder and bit-exact with
#      it, the full sweep faster than the schoolbook baseline, tallies
#      byte-identical across classic/memo-off/memo-on/4-thread arms)
#   7. parser-differential smoke under ASan/UBSan: the §5.13 sweep
#      (2000-domain corpus + 5000 chaos inputs) against the sanitizer
#      build, 1 thread vs 8, byte-identical matrices, discrepancies found
#   8. packed corpus smoke under ASan/UBSan: the §5.14 store against the
#      sanitizer build — pack, verify, extract, mmap sweep byte-identical
#      to the regenerated in-RAM sweep and across thread counts,
#      corrupted files rejected with typed errors (hostile-byte decoding
#      under ASan/UBSan is the point)
#   9. tidy gate: scripts/tidy_gate.sh — clang-tidy with
#      warnings-as-errors when available, the portable fallback scanner
#      otherwise; gating either way, self-test proves it can fail
#  10. header hygiene: scripts/lint.sh
#  11. connection-scale smoke + socket-fault campaign: the §5.15 event
#      core at scale (10k idle soak with bounded RSS, slow-loris
#      immunity/eviction, connection storm, admission shedding) against
#      the tier-1 binaries, then the four transport fault classes over a
#      live daemon under ASan/UBSan
#
# Build trees live in build/ and build-asan/ and are reused across runs.
set -eu
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== [1/11] tier-1 build + tests ==="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/11] ASan/UBSan build + tests ==="
cmake -B build-asan -S . -DCHAINCHAOS_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "=== [3/11] service smoke ==="
scripts/service_smoke.sh build/examples/chaind build/examples/chainq

echo "=== [4/11] chaos campaign under ASan/UBSan ==="
# The acceptance gate of DESIGN.md §5.10: a 5000-input campaign over
# every mutation class must classify everything — no crash, no hang, no
# sanitizer finding — and the summary must not depend on thread count.
CHAOS_T1=$(mktemp)
CHAOS_T8=$(mktemp)
trap 'rm -f "$CHAOS_T1" "$CHAOS_T8"' EXIT
build-asan/examples/chaos_run --seed 833 --count 5000 --threads 1 \
    | tail -n +2 >"$CHAOS_T1"
build-asan/examples/chaos_run --seed 833 --count 5000 --threads 8 \
    | tail -n +2 >"$CHAOS_T8"
diff -u "$CHAOS_T1" "$CHAOS_T8"
grep -q "contract=ok" "$CHAOS_T1"
# AIA degradation sweeps: flaky (retry-curable) and hard-down webs.
build-asan/examples/chaos_run --seed 833 --count 1300 --aia-transient 2 \
    | grep -q "contract=ok"
build-asan/examples/chaos_run --seed 833 --count 1300 --aia-permanent \
    | grep -q "contract=ok"

echo "=== [5/11] observability smoke + overhead gate ==="
# The smoke covers §5.11 (sweep coverage, live exposition) and §5.16
# (event sink, /v1/timeseries + chainq watch, SIGSEGV flight dump,
# --progress determinism); the trailing trace_overhead argument runs
# the §5.11/§5.16 budget gate — tracing AND event emission must each
# cost the sweep < 3% when enabled (non-zero exit over budget).
scripts/obs_smoke.sh build/examples/chainprof build/examples/chaind \
    build/examples/chainq build/examples/measure_corpus \
    build/bench/trace_overhead

echo "=== [6/11] crypto hot-path gate ==="
# The §5.12 budget: Montgomery must carry the verification sweeps —
# >= 3x the classic ladder on the micro, a faster full-corpus sweep
# than the forced-schoolbook baseline, byte-identical tallies across
# every verifier configuration (crypto_verify exits non-zero otherwise).
build/bench/crypto_verify

echo "=== [7/11] parser-differential smoke under ASan/UBSan ==="
# The §5.13 determinism contract against the sanitizer build: the sweep
# must be byte-identical across thread counts and must surface
# discrepancies on the chaos-mutated inputs, with zero ASan/UBSan
# findings along the way.
scripts/parsdiff_smoke.sh build-asan/examples/parsdiff_corpus

echo "=== [8/11] packed corpus smoke under ASan/UBSan ==="
# The §5.14 store against the sanitizer build: packing, checksum
# verification, record extraction, the mmap streaming sweep's
# byte-identity contract, and — the part sanitizers exist for —
# corrupted files decoded to typed errors without UB.
scripts/corpusio_smoke.sh build-asan/examples/corpus_pack \
    build-asan/examples/corpus_cat build-asan/examples/measure_corpus

echo "=== [9/11] tidy gate ==="
scripts/tidy_gate.sh --self-test
scripts/tidy_gate.sh build

echo "=== [10/11] header hygiene ==="
scripts/lint.sh

echo "=== [11/11] connection-scale smoke + socket faults under ASan/UBSan ==="
# The §5.15 gates: the event-driven core must hold 10k idle keep-alive
# connections with bounded memory, shrug off slow-loris clients, and
# shed cleanly at the admission/fd budget...
scripts/epoll_smoke.sh build/examples/chaind build/examples/chainq \
    build/examples/chainflood
# ...and survive socket-level hostility with the sanitizers watching.
build-asan/examples/chaos_run --seed 833 --count 260 --through-daemon \
    --socket-faults | grep -q "contract=ok"

echo "CI: all gates passed"
