#include "crypto/sha256.hpp"

#include <cassert>
#include <cstring>

namespace chainchaos::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

Sha256::Sha256() : state_(kInitialState), buffer_{} {}

void Sha256::update(BytesView data) {
  assert(!finished_);
  if (data.empty()) return;  // empty spans may carry a null data()
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::finish() {
  assert(!finished_);
  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t rem = buffered_;
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  std::uint8_t length_be[8];
  for (int i = 0; i < 8; ++i) {
    length_be[i] = static_cast<std::uint8_t>(total_bits_ >> (56 - 8 * i));
  }
  // Feed padding without re-counting its bits.
  const std::uint64_t saved_bits = total_bits_;
  update(BytesView(pad, pad_len));
  update(BytesView(length_be, 8));
  total_bits_ = saved_bits;
  finished_ = true;

  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 8; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Bytes Sha256::digest(BytesView data) {
  Sha256 ctx;
  ctx.update(data);
  const auto d = ctx.finish();
  return Bytes(d.begin(), d.end());
}

void Sha256::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Bytes hmac_sha256(BytesView key, BytesView message) {
  constexpr std::size_t kBlock = 64;
  Bytes k(key.begin(), key.end());
  if (k.size() > kBlock) k = Sha256::digest(k);
  k.resize(kBlock, 0);

  Bytes inner_pad(kBlock), outer_pad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    inner_pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    outer_pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.update(inner_pad);
  inner.update(message);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(outer_pad);
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  const auto d = outer.finish();
  return Bytes(d.begin(), d.end());
}

}  // namespace chainchaos::crypto
