#include "chain/issuance.hpp"

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>

namespace chainchaos::chain {

KidMatch kid_match(const x509::Certificate& issuer,
                   const x509::Certificate& subject) {
  if (!issuer.subject_key_id.has_value() ||
      !subject.authority_key_id.has_value()) {
    return KidMatch::kAbsent;
  }
  return equal(*issuer.subject_key_id, *subject.authority_key_id)
             ? KidMatch::kMatch
             : KidMatch::kMismatch;
}

bool dn_links(const x509::Certificate& issuer,
              const x509::Certificate& subject) {
  return issuer.subject == subject.issuer;
}

bool plausibly_issued_by(const x509::Certificate& subject,
                         const x509::Certificate& issuer) {
  const KidMatch kid = kid_match(issuer, subject);
  if (kid == KidMatch::kMatch) return true;
  if (dn_links(issuer, subject)) return true;
  return false;
}

namespace {

// The memo is shared by every thread of the sharded analysis engine, so
// it is striped: each (subject, issuer) pair maps to one of 64 shards by
// fingerprint hash, and only that shard's mutex is taken. Contention is
// negligible (64 stripes vs. a handful of workers) and a hit costs one
// uncontended lock plus a hash lookup. Stats are plain atomics.
constexpr std::size_t kShardCount = 64;

struct CacheShard {
  std::mutex mutex;
  std::unordered_map<std::string, bool> results;
};

struct Cache {
  CacheShard shards[kShardCount];
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> signature_checks{0};
};

Cache& cache() {
  static Cache instance;
  return instance;
}

std::string pair_key(const x509::Certificate& subject,
                     const x509::Certificate& issuer) {
  std::string key;
  key.reserve(subject.fingerprint.size() + issuer.fingerprint.size());
  key.append(subject.fingerprint.begin(), subject.fingerprint.end());
  key.append(issuer.fingerprint.begin(), issuer.fingerprint.end());
  return key;
}

}  // namespace

bool issued_by(const x509::Certificate& subject,
               const x509::Certificate& issuer) {
  // Cheap field checks first: if neither the DN nor the KID links the
  // two, no signature check is needed (and no cache entry either).
  if (!plausibly_issued_by(subject, issuer)) return false;

  Cache& c = cache();
  c.lookups.fetch_add(1, std::memory_order_relaxed);
  const std::string key = pair_key(subject, issuer);
  CacheShard& shard =
      c.shards[std::hash<std::string>{}(key) % kShardCount];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.results.find(key);
    if (it != shard.results.end()) {
      c.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Verify outside the lock: signature checks dominate the cost and must
  // not serialize the worker pool. Concurrent verifiers of the same pair
  // do redundant work once, then agree on the (deterministic) result.
  c.signature_checks.fetch_add(1, std::memory_order_relaxed);
  const bool verified = subject.verify_signed_by(issuer.public_key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.results.emplace(key, verified);
  }
  return verified;
}

IssuanceCacheStats issuance_cache_stats() {
  const Cache& c = cache();
  IssuanceCacheStats stats;
  stats.lookups = c.lookups.load(std::memory_order_relaxed);
  stats.hits = c.hits.load(std::memory_order_relaxed);
  stats.signature_checks = c.signature_checks.load(std::memory_order_relaxed);
  return stats;
}

void reset_issuance_cache() {
  Cache& c = cache();
  for (CacheShard& shard : c.shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.results.clear();
  }
  c.lookups.store(0, std::memory_order_relaxed);
  c.hits.store(0, std::memory_order_relaxed);
  c.signature_checks.store(0, std::memory_order_relaxed);
}

}  // namespace chainchaos::chain
