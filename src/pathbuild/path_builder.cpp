#include "pathbuild/path_builder.hpp"

#include <algorithm>
#include <tuple>

#include "chain/issuance.hpp"
#include "obs/trace.hpp"
#include "support/str.hpp"

namespace chainchaos::pathbuild {

using chain::issued_by;
using chain::KidMatch;

const char* to_string(BuildStatus status) {
  switch (status) {
    case BuildStatus::kOk: return "OK";
    case BuildStatus::kEmptyInput: return "empty input";
    case BuildStatus::kInputListTooLong: return "input list too long";
    case BuildStatus::kSelfSignedLeaf: return "self-signed leaf rejected";
    case BuildStatus::kNoIssuerFound: return "unknown issuer";
    case BuildStatus::kUntrustedRoot: return "untrusted root";
    case BuildStatus::kDepthExceeded: return "depth limit exceeded";
    case BuildStatus::kWorkBudgetExceeded: return "work budget exceeded";
    case BuildStatus::kExpired: return "certificate expired";
    case BuildStatus::kHostnameMismatch: return "hostname mismatch";
    case BuildStatus::kNotACa: return "intermediate is not a CA";
    case BuildStatus::kPathLenViolated: return "path length constraint violated";
    case BuildStatus::kNameConstraintViolation:
      return "name constraint violated";
    case BuildStatus::kBadEku: return "extended key usage forbids serverAuth";
  }
  return "?";
}

bool is_construction_failure(BuildStatus status) {
  switch (status) {
    case BuildStatus::kEmptyInput:
    case BuildStatus::kInputListTooLong:
    case BuildStatus::kSelfSignedLeaf:
    case BuildStatus::kNoIssuerFound:
    case BuildStatus::kUntrustedRoot:
    case BuildStatus::kDepthExceeded:
    case BuildStatus::kWorkBudgetExceeded:
      return true;
    default:
      return false;
  }
}

PathBuilder::PathBuilder(BuildPolicy policy, const truststore::RootStore* store,
                         net::AiaRepository* aia, IntermediateCache* cache)
    : policy_(policy), store_(store), aia_(aia), cache_(cache) {}

namespace {

bool in_path(const std::vector<x509::CertPtr>& path,
             const x509::Certificate& cert) {
  for (const x509::CertPtr& entry : path) {
    if (equal(entry->fingerprint, cert.fingerprint)) return true;
  }
  return false;
}

}  // namespace

std::vector<PathBuilder::Candidate> PathBuilder::gather_candidates(
    const x509::Certificate& child, int child_list_pos,
    const std::vector<x509::CertPtr>& pool,
    const std::vector<x509::CertPtr>& path, BuildStats& stats) const {
  std::vector<Candidate> out;

  // Source 0: the server-provided list. Without reordering capability,
  // only certificates at later positions than the child are reachable
  // (models MbedTLS's forward scan over the linked list).
  for (int pos = 0; pos < static_cast<int>(pool.size()); ++pos) {
    const x509::CertPtr& cand = pool[static_cast<std::size_t>(pos)];
    if (!policy_.reorder && pos <= child_list_pos) continue;
    if (in_path(path, *cand)) continue;
    if (!chain::plausibly_issued_by(child, *cand)) continue;
    out.push_back(Candidate{cand, 0, pos});
  }

  // Source 1: the intermediate cache (Firefox-style).
  if (policy_.intermediate_cache && cache_ != nullptr) {
    for (const x509::CertPtr& cand : cache_->find_by_subject(child.issuer)) {
      if (in_path(path, *cand)) continue;
      ++stats.cache_hits;
      out.push_back(Candidate{cand, 1, static_cast<int>(pool.size())});
    }
  }

  // Source 2: the root store (by subject DN, then by AKID->SKID).
  if (store_ != nullptr) {
    std::vector<x509::CertPtr> roots = store_->find_by_subject(child.issuer);
    if (child.authority_key_id.has_value()) {
      for (x509::CertPtr& root :
           store_->find_by_key_id(*child.authority_key_id)) {
        roots.push_back(std::move(root));
      }
    }
    for (const x509::CertPtr& cand : roots) {
      if (in_path(path, *cand)) continue;
      bool already = false;
      for (const Candidate& existing : out) {
        if (equal(existing.cert->fingerprint, cand->fingerprint)) {
          already = true;
          break;
        }
      }
      if (already) continue;
      if (!chain::plausibly_issued_by(child, *cand)) continue;
      out.push_back(Candidate{cand, 2, static_cast<int>(pool.size())});
    }
  }

  if (static_cast<int>(out.size()) > policy_.max_candidates_per_step) {
    out.resize(static_cast<std::size_t>(policy_.max_candidates_per_step));
  }
  return out;
}

namespace {

int kid_rank(KidPriority priority, KidMatch match) {
  switch (priority) {
    case KidPriority::kNone:
      return 0;
    case KidPriority::kMatchOrAbsentFirst:  // KP1
      return match == KidMatch::kMismatch ? 1 : 0;
    case KidPriority::kMatchFirst:  // KP2
      switch (match) {
        case KidMatch::kMatch: return 0;
        case KidMatch::kAbsent: return 1;
        case KidMatch::kMismatch: return 2;
      }
  }
  return 0;
}

int key_usage_rank(KeyUsagePriority priority, const x509::Certificate& cand) {
  if (priority == KeyUsagePriority::kNone) return 0;
  // Correct (keyCertSign set) or missing KeyUsage rank ahead of a present
  // but incapable KeyUsage.
  if (!cand.key_usage.has_value()) return 0;
  return cand.key_usage->allows_cert_signing() ? 0 : 1;
}

int basic_constraints_rank(BasicConstraintsPriority priority,
                           const x509::Certificate& cand,
                           std::size_t path_len) {
  if (priority == BasicConstraintsPriority::kNone) return 0;
  if (!cand.basic_constraints.has_value() || !cand.basic_constraints->is_ca) {
    return 1;
  }
  if (cand.basic_constraints->path_len_constraint.has_value()) {
    // Placing the candidate at index path_len puts (path_len - 1)
    // intermediates below it (the leaf does not count).
    const int below = static_cast<int>(path_len) - 1;
    if (*cand.basic_constraints->path_len_constraint < below) return 1;
  }
  return 0;
}

}  // namespace

void PathBuilder::rank_candidates(std::vector<Candidate>& candidates,
                                  const x509::Certificate& child,
                                  std::size_t path_len) const {
  const std::int64_t now = policy_.validation_time;

  const auto sort_key = [&](const Candidate& c) {
    const int kid =
        kid_rank(policy_.kid_priority, chain::kid_match(*c.cert, child));
    const int ku = key_usage_rank(policy_.key_usage_priority, *c.cert);
    const int bc = basic_constraints_rank(policy_.basic_constraints_priority,
                                          *c.cert, path_len);
    int trusted = 0;
    if (policy_.prefer_trusted_root) {
      trusted = (store_ != nullptr && c.cert->is_self_signed() &&
                 store_->contains(*c.cert))
                    ? 0
                    : 1;
    }
    int validity = 0;
    std::int64_t recency = 0;
    std::int64_t span = 0;
    switch (policy_.validity_priority) {
      case ValidityPriority::kFirstListed:
        break;
      case ValidityPriority::kFirstValid:  // VP1
        validity = c.cert->valid_at(now) ? 0 : 1;
        break;
      case ValidityPriority::kMostRecentThenLongest:  // VP2
        validity = c.cert->valid_at(now) ? 0 : 1;
        recency = -c.cert->not_before;
        span = -(c.cert->not_after - c.cert->not_before);
        break;
    }
    return std::make_tuple(kid, ku, bc, trusted, validity, recency, span,
                           c.source_rank, c.list_position);
  };

  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const Candidate& a, const Candidate& b) {
                     return sort_key(a) < sort_key(b);
                   });
}

bool PathBuilder::extend(std::vector<x509::CertPtr>& path,
                         const std::vector<x509::CertPtr>& pool,
                         int child_list_pos, BuildStats& stats,
                         BuildStatus& failure) const {
  // One span per construction step: backtracking shows up as sibling
  // step spans under the same pathbuild.build parent.
  CHAINCHAOS_SPAN(obs::Stage::kPathStep);
  if (++stats.steps > policy_.max_build_steps) {
    failure = BuildStatus::kWorkBudgetExceeded;
    return false;
  }

  const x509::Certificate& current = *path.back();

  // Terminal: a self-signed certificate ends the path, successfully only
  // when it is a trust anchor.
  if (current.is_self_signed()) {
    if (store_ != nullptr && store_->contains(current)) return true;
    failure = BuildStatus::kUntrustedRoot;
    return false;
  }

  if (policy_.max_constructed_depth > 0 &&
      static_cast<int>(path.size()) >= policy_.max_constructed_depth) {
    failure = BuildStatus::kDepthExceeded;
    return false;
  }

  std::vector<Candidate> candidates =
      gather_candidates(current, child_list_pos, pool, path, stats);
  rank_candidates(candidates, current, path.size());
  // Every gathered candidate costs work (filtering, ranking) even when
  // the first one succeeds — this is the resource-consumption effect of
  // duplicate-keeping clients the paper notes for MbedTLS.
  stats.candidates_considered += static_cast<int>(candidates.size());

  bool committed = false;
  for (const Candidate& candidate : candidates) {
    // Signature check is part of selection in every studied client.
    if (!issued_by(current, *candidate.cert)) continue;
    if (policy_.partial_validation &&
        !candidate.cert->valid_at(policy_.validation_time)) {
      continue;  // MbedTLS-style: invalid certs never enter the path
    }
    path.push_back(candidate.cert);
    committed = true;
    if (extend(path, pool, candidate.list_position, stats, failure)) {
      return true;
    }
    path.pop_back();
    ++stats.backtracks;
    if (!policy_.backtracking) return false;  // committed to first choice
  }

  // Last resort: AIA fetch of the missing issuer. The policy's retry
  // knobs turn injected transient faults into bounded extra attempts;
  // anything that still fails falls through to kNoIssuerFound below.
  if (policy_.aia_completion && aia_ != nullptr && current.aia.has_value() &&
      current.aia->ca_issuers_uri.has_value()) {
    ++stats.aia_fetches;
    net::FetchPolicy fetch_policy;
    fetch_policy.max_retries = policy_.aia_max_retries;
    fetch_policy.base_backoff_ms =
        static_cast<std::uint64_t>(policy_.aia_backoff_ms);
    fetch_policy.deadline_ms =
        static_cast<std::uint64_t>(policy_.aia_deadline_ms);
    auto fetched = aia_->fetch(*current.aia->ca_issuers_uri, fetch_policy);
    if (fetched.ok() && !in_path(path, *fetched.value()) &&
        issued_by(current, *fetched.value())) {
      path.push_back(fetched.value());
      if (extend(path, pool, static_cast<int>(pool.size()), stats, failure)) {
        return true;
      }
      path.pop_back();
      ++stats.backtracks;
      if (!policy_.backtracking) return false;
    }
  }

  if (!committed && failure != BuildStatus::kUntrustedRoot &&
      failure != BuildStatus::kDepthExceeded &&
      failure != BuildStatus::kWorkBudgetExceeded) {
    failure = BuildStatus::kNoIssuerFound;
  }
  return false;
}

BuildStatus PathBuilder::validate(const std::vector<x509::CertPtr>& path,
                                  const std::string& hostname) const {
  const std::int64_t now = policy_.validation_time;
  for (const x509::CertPtr& cert : path) {
    if (!cert->valid_at(now)) return BuildStatus::kExpired;
  }
  if (!hostname.empty() && !path.front()->matches_host(hostname)) {
    return BuildStatus::kHostnameMismatch;
  }
  // Leaf EKU must permit server authentication when present.
  if (policy_.check_extended_key_usage &&
      path.front()->ext_key_usage.has_value() &&
      !path.front()->ext_key_usage->allows("1.3.6.1.5.5.7.3.1")) {
    return BuildStatus::kBadEku;
  }
  // Issuing certificates must be CAs with satisfiable path lengths, and
  // any NameConstraints they carry must admit the leaf's identities.
  for (std::size_t i = 1; i < path.size(); ++i) {
    const x509::Certificate& issuer = *path[i];
    if (!issuer.is_ca()) return BuildStatus::kNotACa;
    if (issuer.basic_constraints->path_len_constraint.has_value()) {
      const int below = static_cast<int>(i) - 1;
      if (*issuer.basic_constraints->path_len_constraint < below) {
        return BuildStatus::kPathLenViolated;
      }
    }
    if (policy_.check_name_constraints &&
        issuer.name_constraints.has_value()) {
      for (const std::string& identity : path.front()->identity_strings()) {
        if (!looks_like_dns_name(identity)) continue;
        if (!issuer.name_constraints->allows(identity)) {
          return BuildStatus::kNameConstraintViolation;
        }
      }
    }
  }
  return BuildStatus::kOk;
}

BuildResult PathBuilder::build(const std::vector<x509::CertPtr>& server_list,
                               const std::string& hostname) const {
  CHAINCHAOS_SPAN(obs::Stage::kPathBuild);
  BuildResult result;
  if (server_list.empty()) {
    result.status = BuildStatus::kEmptyInput;
    return result;
  }
  if (policy_.max_input_list > 0 &&
      static_cast<int>(server_list.size()) > policy_.max_input_list) {
    // GnuTLS semantics (finding I-2): the cap applies to the certificate
    // *list* as received, before any deduplication or construction.
    result.status = BuildStatus::kInputListTooLong;
    result.detail = "list has " + std::to_string(server_list.size()) +
                    " certificates, cap is " +
                    std::to_string(policy_.max_input_list);
    return result;
  }

  // Redundancy elimination: drop exact duplicates (first occurrence wins).
  std::vector<x509::CertPtr> pool;
  if (policy_.eliminate_redundancy) {
    for (const x509::CertPtr& cert : server_list) {
      bool seen = false;
      for (const x509::CertPtr& kept : pool) {
        if (equal(kept->fingerprint, cert->fingerprint)) {
          seen = true;
          break;
        }
      }
      if (!seen) pool.push_back(cert);
    }
  } else {
    pool = server_list;
  }

  const x509::CertPtr& leaf = pool.front();
  if (leaf->is_self_signed() && !policy_.allow_self_signed_leaf) {
    result.status = BuildStatus::kSelfSignedLeaf;
    return result;
  }

  result.path.push_back(leaf);
  BuildStatus failure = BuildStatus::kNoIssuerFound;
  if (!extend(result.path, pool, 0, result.stats, failure)) {
    result.status = failure;
    return result;
  }

  result.status = validate(result.path, hostname);

  // Successful validation feeds the intermediate cache (how Firefox's
  // cache gets populated in the first place) — unless learning is off
  // and the cache is being treated as a read-only snapshot.
  if (result.status == BuildStatus::kOk && cache_ != nullptr &&
      policy_.intermediate_cache && cache_learning_) {
    cache_->remember_chain(result.path);
  }
  return result;
}

}  // namespace chainchaos::pathbuild
