#include <gtest/gtest.h>

#include "difftest/harness.hpp"

namespace chainchaos::difftest {
namespace {

using clients::ClientKind;
using pathbuild::BuildStatus;

class DiffFixture : public ::testing::Test {
 protected:
  static dataset::Corpus& corpus() {
    static dataset::Corpus* instance = [] {
      dataset::CorpusConfig config;
      config.domain_count = 1200;
      return new dataset::Corpus(std::move(config));
    }();
    return *instance;
  }

  static const std::vector<DomainDiff>& diffs() {
    static std::vector<DomainDiff>* result = [] {
      static DifferentialHarness harness(corpus());
      harness_ = &harness;
      harness.seed_intermediate_caches();
      return new std::vector<DomainDiff>(harness.run());
    }();
    return *result;
  }

  static DifferentialHarness& harness() {
    diffs();  // force initialization
    return *harness_;
  }

  /// Status of `kind` for the record holding exemplar `name`.
  static BuildStatus status_for(const std::string& name, ClientKind kind) {
    const auto& all = diffs();
    for (const DomainDiff& diff : all) {
      const dataset::DomainRecord& record =
          corpus().records()[diff.record_index];
      if (record.exemplar && record.exemplar_name == name) {
        for (std::size_t p = 0; p < harness().profiles().size(); ++p) {
          if (harness().profiles()[p].kind == kind) return diff.statuses[p];
        }
      }
    }
    ADD_FAILURE() << "exemplar not found: " << name;
    return BuildStatus::kOk;
  }

  static DifferentialHarness* harness_;
};

DifferentialHarness* DiffFixture::harness_ = nullptr;

TEST_F(DiffFixture, CompliantChainsPassEverywhere) {
  std::size_t checked = 0;
  for (const DomainDiff& diff : diffs()) {
    const dataset::DomainRecord& record =
        corpus().records()[diff.record_index];
    if (record.exemplar || record.primary_defect != dataset::DefectType::kNone ||
        record.leaf_defect != dataset::DefectType::kNone) {
      continue;
    }
    ++checked;
    for (std::size_t p = 0; p < diff.statuses.size(); ++p) {
      EXPECT_EQ(diff.statuses[p], BuildStatus::kOk)
          << record.observation.domain << " @ "
          << harness().profiles()[p].name;
    }
  }
  EXPECT_GT(checked, 1000u);
}

TEST_F(DiffFixture, MismatchedLeavesFailHostnameEverywhere) {
  for (const DomainDiff& diff : diffs()) {
    const dataset::DomainRecord& record =
        corpus().records()[diff.record_index];
    if (record.leaf_defect != dataset::DefectType::kLeafMismatched) continue;
    if (record.primary_defect != dataset::DefectType::kNone) continue;
    for (const BuildStatus status : diff.statuses) {
      EXPECT_EQ(status, BuildStatus::kHostnameMismatch)
          << record.observation.domain;
    }
  }
}

TEST_F(DiffFixture, SummaryShapeMatchesPaperDirection) {
  const DiffSummary summary = harness().summarize(diffs());
  ASSERT_GT(summary.noncompliant_domains, 0u);

  // Libraries disagree more than browsers (paper: 10,804 vs 3,295).
  EXPECT_GT(summary.library_discrepancies, summary.browser_discrepancies);

  // Non-compliant chains pass browsers more often than libraries
  // (paper: 61.1% vs 47.4%).
  EXPECT_GT(summary.noncompliant_all_browsers_ok,
            summary.noncompliant_all_libraries_ok);

  // Availability impact is worse for libraries (paper: 40.9% vs 12.5%).
  EXPECT_GT(summary.noncompliant_any_library_failure,
            summary.noncompliant_any_browser_failure);
}

TEST_F(DiffFixture, AllFourFindingClassesObserved) {
  const DiffSummary summary = harness().summarize(diffs());
  EXPECT_GT(summary.findings.at(Finding::kI1_OrderReorganization), 0u);
  EXPECT_GT(summary.findings.at(Finding::kI2_LongChain), 0u);
  EXPECT_GT(summary.findings.at(Finding::kI3_Backtracking), 0u);
  EXPECT_GT(summary.findings.at(Finding::kI4_AiaCompletion), 0u);
}

TEST_F(DiffFixture, CryptoApiIsTheStrongestLibrary) {
  const DiffSummary summary = harness().summarize(diffs());
  std::size_t cryptoapi_failures = 0;
  for (std::size_t p = 0; p < harness().profiles().size(); ++p) {
    if (harness().profiles()[p].kind == ClientKind::kCryptoApi) {
      cryptoapi_failures = summary.failures_per_client[p];
    }
  }
  for (std::size_t p = 0; p < harness().profiles().size(); ++p) {
    if (harness().profiles()[p].is_browser) continue;
    EXPECT_GE(summary.failures_per_client[p], cryptoapi_failures)
        << harness().profiles()[p].name;
  }
}

// --- The paper's I-findings, pinned to their exemplars --------------------

TEST_F(DiffFixture, I2_GnuTlsRejectsSerproList) {
  EXPECT_EQ(status_for("assiste6.serpro.gov.br", ClientKind::kGnuTls),
            BuildStatus::kInputListTooLong);
  EXPECT_EQ(status_for("assiste6.serpro.gov.br", ClientKind::kOpenSsl),
            BuildStatus::kOk);
  EXPECT_EQ(status_for("assiste6.serpro.gov.br", ClientKind::kChrome),
            BuildStatus::kOk);
}

TEST_F(DiffFixture, I2_GnuTlsRejectsNs3DuplicatePile) {
  EXPECT_EQ(status_for("ns3.link", ClientKind::kGnuTls),
            BuildStatus::kInputListTooLong);
  EXPECT_EQ(status_for("ns3.link", ClientKind::kOpenSsl), BuildStatus::kOk);
}

TEST_F(DiffFixture, I3_MoexSplitsTheClients) {
  // Non-backtracking clients commit to the untrusted legacy root.
  EXPECT_EQ(status_for("moex.gov.tw", ClientKind::kOpenSsl),
            BuildStatus::kUntrustedRoot);
  EXPECT_EQ(status_for("moex.gov.tw", ClientKind::kGnuTls),
            BuildStatus::kUntrustedRoot);
  // CryptoAPI backtracks to the trusted path.
  EXPECT_EQ(status_for("moex.gov.tw", ClientKind::kCryptoApi),
            BuildStatus::kOk);
  // MbedTLS finds the trusted path only thanks to its forward scan.
  EXPECT_EQ(status_for("moex.gov.tw", ClientKind::kMbedTls),
            BuildStatus::kOk);
  // Browsers backtrack too.
  EXPECT_EQ(status_for("moex.gov.tw", ClientKind::kChrome), BuildStatus::kOk);
}

TEST_F(DiffFixture, I3_MoexSwappedOrderBreaksMbedTls) {
  // Swapping nodes 1 and 2 (the paper's experiment) makes MbedTLS walk
  // into the untrusted root.
  const dataset::DomainRecord* record = corpus().exemplar("moex.gov.tw");
  ASSERT_NE(record, nullptr);
  std::vector<x509::CertPtr> swapped = record->observation.certificates;
  std::swap(swapped[1], swapped[2]);

  const clients::ClientProfile mbedtls =
      clients::make_profile(ClientKind::kMbedTls);
  pathbuild::PathBuilder builder(mbedtls.policy,
                                 &corpus().stores().union_store);
  const pathbuild::BuildResult result =
      builder.build(swapped, record->observation.domain);
  EXPECT_EQ(result.status, BuildStatus::kUntrustedRoot);
}

TEST_F(DiffFixture, I4_CacertWrongIssuerFailsEverywhere) {
  for (ClientKind kind : {ClientKind::kOpenSsl, ClientKind::kCryptoApi,
                          ClientKind::kChrome, ClientKind::kFirefox}) {
    EXPECT_NE(status_for("community.cacert-like.example", kind),
              BuildStatus::kOk);
  }
}

TEST_F(DiffFixture, I4_AiaClientsBeatAialessOnIncompleteChains) {
  std::size_t aia_rescued = 0;
  for (const DomainDiff& diff : diffs()) {
    const dataset::DomainRecord& record =
        corpus().records()[diff.record_index];
    if (record.exemplar ||
        record.primary_defect != dataset::DefectType::kMissingIntermediate ||
        record.leaf_defect != dataset::DefectType::kNone) {
      continue;
    }
    BuildStatus cryptoapi = BuildStatus::kOk, openssl = BuildStatus::kOk;
    for (std::size_t p = 0; p < harness().profiles().size(); ++p) {
      if (harness().profiles()[p].kind == ClientKind::kCryptoApi) {
        cryptoapi = diff.statuses[p];
      }
      if (harness().profiles()[p].kind == ClientKind::kOpenSsl) {
        openssl = diff.statuses[p];
      }
    }
    EXPECT_EQ(cryptoapi, BuildStatus::kOk) << record.observation.domain;
    EXPECT_EQ(openssl, BuildStatus::kNoIssuerFound)
        << record.observation.domain;
    ++aia_rescued;
  }
  EXPECT_GT(aia_rescued, 0u);
}

TEST_F(DiffFixture, I4_FirefoxCacheMissesOnlyRareHierarchies) {
  for (const DomainDiff& diff : diffs()) {
    const dataset::DomainRecord& record =
        corpus().records()[diff.record_index];
    if (record.exemplar ||
        record.primary_defect != dataset::DefectType::kMissingIntermediate ||
        record.leaf_defect != dataset::DefectType::kNone) {
      continue;
    }
    BuildStatus firefox = BuildStatus::kOk;
    for (std::size_t p = 0; p < harness().profiles().size(); ++p) {
      if (harness().profiles()[p].kind == ClientKind::kFirefox) {
        firefox = diff.statuses[p];
      }
    }
    if (record.rare_hierarchy) {
      EXPECT_EQ(firefox, BuildStatus::kNoIssuerFound)
          << record.observation.domain;
    } else {
      EXPECT_EQ(firefox, BuildStatus::kOk) << record.observation.domain;
    }
  }
}

TEST_F(DiffFixture, AblationDisablingAiaBreaksCryptoApi) {
  // The paper's confirmation experiment: with AIA disabled, almost all
  // CryptoAPI-rescued chains fail to construct.
  clients::ClientProfile nerfed =
      clients::make_profile(ClientKind::kCryptoApi);
  nerfed.policy.aia_completion = false;
  pathbuild::PathBuilder builder(nerfed.policy, &corpus().stores().union_store,
                                 &corpus().aia());

  std::size_t total = 0, broken = 0;
  for (const dataset::DomainRecord& record : corpus().records()) {
    if (record.primary_defect != dataset::DefectType::kMissingIntermediate) {
      continue;
    }
    ++total;
    const auto result = builder.build(record.observation.certificates,
                                      record.observation.domain);
    broken += !result.ok();
  }
  ASSERT_GT(total, 0u);
  EXPECT_EQ(broken, total);  // no OS intermediate store in this ablation
}

TEST(FindingTest, Strings) {
  EXPECT_STREQ(to_string(Finding::kI2_LongChain), "I-2 input list too long");
  EXPECT_STREQ(to_string(Finding::kNone), "none");
}

}  // namespace
}  // namespace chainchaos::difftest
