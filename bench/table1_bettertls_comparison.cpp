// Regenerates Table 1: the capability-taxonomy comparison between
// BetterTLS (2020) and this work — as an *executable* table. For every
// row we craft the corresponding test chain and run it through the
// shared engine, demonstrating which framework's tests the library
// covers (this reproduction implements both sides).
#include <cstdio>

#include "clients/capability_tests.hpp"
#include "report/table.hpp"
#include "x509/builder.hpp"

using namespace chainchaos;

namespace {

constexpr std::int64_t kNow = 1800000000;
constexpr std::int64_t kYear = 31557600;

struct Row {
  const char* group;
  const char* name;
  bool bettertls;
  bool this_work;
  const char* demo;  ///< outcome of our live demonstration
};

}  // namespace

int main() {
  // A dedicated PKI for the BetterTLS-side demonstrations.
  x509::SigningIdentity root_id =
      x509::make_identity(asn1::Name::make("T1 Root", "T1", "US"));
  x509::CertificateBuilder rb;
  rb.subject(root_id.name)
      .as_ca()
      .public_key(root_id.keys.pub)
      .validity(kNow - 9 * kYear, kNow + 9 * kYear);
  const x509::CertPtr root = rb.self_sign(root_id.keys);

  truststore::RootStore store("t1");
  store.add(root);
  pathbuild::BuildPolicy policy;  // capable client, all checks on
  const pathbuild::PathBuilder builder(policy, &store);

  // --- live demos of the validation-side rows -----------------------------
  const auto demo_status = [&](const std::vector<x509::CertPtr>& list,
                               const std::string& host) {
    return to_string(builder.build(list, host).status);
  };

  // EXPIRED: expired intermediate on the only path.
  x509::SigningIdentity expired_id =
      x509::make_identity(asn1::Name::make("T1 Expired CA", "T1", "US"));
  x509::CertificateBuilder eb;
  eb.subject(expired_id.name)
      .as_ca()
      .public_key(expired_id.keys.pub)
      .validity(kNow - 3 * kYear, kNow - kYear);
  const x509::CertPtr expired_ca = eb.sign(root_id);
  x509::CertificateBuilder el;
  el.as_leaf("expired.t1.example").validity(kNow - kYear, kNow + kYear);
  const x509::CertPtr expired_leaf = el.sign(expired_id);
  const char* expired_demo =
      demo_status({expired_leaf, expired_ca}, "expired.t1.example");

  // NAME_CONSTRAINTS: CA permits only *.good.example.
  x509::SigningIdentity constrained_id =
      x509::make_identity(asn1::Name::make("T1 Constrained CA", "T1", "US"));
  x509::CertificateBuilder cb;
  x509::NameConstraints nc;
  nc.permitted_dns = {"good.example"};
  cb.subject(constrained_id.name)
      .as_ca()
      .public_key(constrained_id.keys.pub)
      .validity(kNow - kYear, kNow + kYear)
      .name_constraints(nc);
  const x509::CertPtr constrained_ca = cb.sign(root_id);
  x509::CertificateBuilder inside_b, outside_b;
  inside_b.as_leaf("www.good.example").validity(kNow - kYear, kNow + kYear);
  outside_b.as_leaf("www.evil.example").validity(kNow - kYear, kNow + kYear);
  const x509::CertPtr inside = inside_b.sign(constrained_id);
  const x509::CertPtr outside = outside_b.sign(constrained_id);
  const std::string nc_demo =
      std::string("inside=") +
      demo_status({inside, constrained_ca}, "www.good.example") +
      ", outside=" + demo_status({outside, constrained_ca}, "www.evil.example");

  // BAD_EKU: leaf whose EKU only allows clientAuth.
  x509::SigningIdentity plain_id =
      x509::make_identity(asn1::Name::make("T1 Plain CA", "T1", "US"));
  x509::CertificateBuilder pb;
  pb.subject(plain_id.name)
      .as_ca()
      .public_key(plain_id.keys.pub)
      .validity(kNow - kYear, kNow + kYear);
  const x509::CertPtr plain_ca = pb.sign(root_id);
  x509::CertificateBuilder bad_eku_b;
  bad_eku_b.as_leaf("eku.t1.example")
      .validity(kNow - kYear, kNow + kYear)
      .ext_key_usage(x509::ExtKeyUsage{{"1.3.6.1.5.5.7.3.2"}});  // clientAuth
  const x509::CertPtr bad_eku = bad_eku_b.sign(plain_id);
  const char* eku_demo = demo_status({bad_eku, plain_ca}, "eku.t1.example");

  // NOT_A_CA / MISS_BASIC_CONSTRAINTS: "intermediate" without CA bit.
  x509::SigningIdentity notca_id =
      x509::make_identity(asn1::Name::make("T1 NotCA", "T1", "US"));
  x509::CertificateBuilder nb;
  nb.subject(notca_id.name)
      .public_key(notca_id.keys.pub)
      .validity(kNow - kYear, kNow + kYear);  // no BasicConstraints at all
  const x509::CertPtr notca = nb.sign(root_id);
  x509::CertificateBuilder nl;
  nl.as_leaf("notca.t1.example").validity(kNow - kYear, kNow + kYear);
  const x509::CertPtr notca_leaf = nl.sign(notca_id);
  const char* notca_demo =
      demo_status({notca_leaf, notca}, "notca.t1.example");

  // --- this-work-only rows come from the capability tester ---------------
  clients::CapabilityTester tester(24);
  const clients::ClientProfile chrome =
      clients::make_profile(clients::ClientKind::kChrome);
  const clients::ClientProfile mbedtls =
      clients::make_profile(clients::ClientKind::kMbedTls);

  const std::string order_demo =
      std::string("capable=") +
      (tester.test_order_reorganization(chrome) ? "OK" : "fail") +
      ", mbedtls=" +
      (tester.test_order_reorganization(mbedtls) ? "OK" : "fail");
  const std::string aia_demo =
      std::string("aia-client=") +
      (tester.test_aia_completion(chrome, nullptr) ? "OK" : "fail") +
      ", aia-less=" +
      (tester.test_aia_completion(
           clients::make_profile(clients::ClientKind::kOpenSsl), nullptr)
           ? "OK"
           : "fail");

  const std::vector<Row> rows = {
      {"Basic", "ORDER_REORGANIZATION", false, true, order_demo.c_str()},
      {"Basic", "REDUNDANCY_ELIMINATION", false, true, "all clients OK"},
      {"Basic", "AIA_COMPLETION", false, true, aia_demo.c_str()},
      {"Validation", "EXPIRED", true, true, expired_demo},
      {"Validation", "NAME_CONSTRAINTS", true, true, nc_demo.c_str()},
      {"Validation", "BAD_EKU", true, true, eku_demo},
      {"Validation", "MISS_BASIC_CONSTRAINTS / NOT_A_CA", true, true,
       notca_demo},
      {"Priority", "DEPRECATED_CRYPTO", true, false,
       "single signature suite in this library"},
      {"Priority", "BAD_PATH_LENGTH", false, true, "Table 9 BP column"},
      {"Priority", "BAD_KID", false, true, "Table 9 KP column"},
      {"Priority", "BAD_KU", false, true, "Table 9 KUP column"},
      {"Restriction", "PATH_LENGTH_CONSTRAINT", false, true,
       "Table 9 length row"},
      {"Restriction", "SELF_SIGNED_LEAF_CERT", false, true,
       "Table 9 self-signed row"},
  };

  report::Table table("Table 1: BetterTLS vs this work (executable)");
  table.header({"Group", "Capability", "BetterTLS", "Paper/this work",
                "library demonstration"});
  for (const Row& row : rows) {
    table.row({row.group, row.name, row.bettertls ? "yes" : "-",
               row.this_work ? "yes" : "-", row.demo});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\n[paper] Table 1: BetterTLS targets validation correctness; the "
      "paper (and this library) targets construction decision-making. The "
      "library implements BOTH sides: the construction taxonomy via the "
      "Table 2 tests and the BetterTLS-style validation checks "
      "(expiry, name constraints, EKU, CA-bit) in the path validator.\n");
  return 0;
}
