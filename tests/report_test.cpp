#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "report/json.hpp"
#include "report/table.hpp"

namespace chainchaos::report {
namespace {

TEST(TableTest, RendersHeaderRuleAndRows) {
  Table table("Demo");
  table.header({"Type", "Count"});
  table.row({"alpha", "1"});
  table.row({"beta-longer", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("Type"), std::string::npos);
  EXPECT_NE(out.find("beta-longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Columns align: "Count" and "22" start at the same offset.
  const auto line_with = [&out](const std::string& needle) {
    const std::size_t pos = out.find(needle);
    const std::size_t line_start = out.rfind('\n', pos);
    return pos - (line_start == std::string::npos ? 0 : line_start + 1);
  };
  EXPECT_EQ(line_with("Count"), line_with("22"));
}

TEST(TableTest, ToleratesRaggedRows) {
  Table table("Ragged");
  table.header({"A", "B", "C"});
  table.row({"only-one"});
  EXPECT_NE(table.render().find("only-one"), std::string::npos);
}

TEST(FormattingTest, Percentages) {
  EXPECT_EQ(pct(1, 4), "25.0%");
  EXPECT_EQ(pct(1, 3), "33.3%");
  EXPECT_EQ(pct(0, 100), "0.0%");
  // An empty population has no rate: never fabricate "0.0%".
  EXPECT_EQ(pct(5, 0), "n/a");
  EXPECT_EQ(pct(0, 0), "n/a");
}

TEST(FormattingTest, ThousandsSeparators) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(906336), "906,336");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(JsonWriterTest, EscapesControlQuotesAndBackslash) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
}

TEST(JsonWriterTest, EscapesEveryControlByte) {
  // RFC 8259: all of 0x00–0x1f must be escaped. The service renders
  // attacker-supplied certificate fields (subjects, SANs) into JSON, so
  // a missed control byte would corrupt the response document.
  for (unsigned byte = 0; byte < 0x20; ++byte) {
    const std::string in(1, static_cast<char>(byte));
    const std::string out = json_escape(in);
    EXPECT_GE(out.size(), 2u) << "byte 0x" << std::hex << byte;
    EXPECT_EQ(out.front(), '\\') << "byte 0x" << std::hex << byte;
    switch (byte) {
      case '\b': EXPECT_EQ(out, "\\b"); break;
      case '\f': EXPECT_EQ(out, "\\f"); break;
      case '\n': EXPECT_EQ(out, "\\n"); break;
      case '\r': EXPECT_EQ(out, "\\r"); break;
      case '\t': EXPECT_EQ(out, "\\t"); break;
      default: {
        char expected[8];
        std::snprintf(expected, sizeof expected, "\\u%04x", byte);
        EXPECT_EQ(out, expected);
      }
    }
  }
  // 0x7f (DEL) and beyond are not JSON control characters: passed through.
  EXPECT_EQ(json_escape("\x7f"), "\x7f");
}

TEST(JsonWriterTest, NonAsciiBytesPassThroughVerbatim) {
  // UTF-8 multi-byte sequences (an IDN subject, say) must survive
  // unmangled — escaping is for control bytes, not for non-ASCII.
  const std::string utf8 = "m\xc3\xbcnchen-\xe4\xb8\xad\xe6\x96\x87";
  EXPECT_EQ(json_escape(utf8), utf8);

  // Even bare high bytes (latin-1 junk from a malformed certificate)
  // pass through without truncation or sign-extension artifacts.
  const std::string high("\x80\xff\xfe", 3);
  EXPECT_EQ(json_escape(high), high);
}

TEST(JsonWriterTest, EscapedStringsSurviveInsideDocuments) {
  JsonWriter w;
  w.begin_object();
  w.key("detail").value("line1\nline2\x01\"quoted\"");
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"detail\":\"line1\\nline2\\u0001\\\"quoted\\\"\"}");
}

TEST(JsonWriterTest, NestedContainersGetCommasRight) {
  JsonWriter w;
  w.begin_object();
  w.key("n").value(std::uint64_t{42});
  w.key("list").begin_array();
  w.value("a").value("b");
  w.begin_object().key("x").value(true).end_object();
  w.end_array();
  w.key("none").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"n":42,"list":["a","b",{"x":true}],"none":null})");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(1.5);
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[1.5,null,null]");
}

TEST(FormattingTest, CountPctMatchesPaperStyle) {
  EXPECT_EQ(count_pct(16952, 906336), "16,952 (1.9%)");
  EXPECT_EQ(count_pct(0, 10), "0 (0.0%)");
  EXPECT_EQ(count_pct(0, 0), "0 (n/a)");
}

}  // namespace
}  // namespace chainchaos::report
