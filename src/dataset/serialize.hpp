// Corpus serialization: export a generated corpus to a portable on-disk
// bundle and read it back.
//
// Format: a single text file. Each domain starts with a tab-separated
// metadata line —
//   #domain <name>\t<ca>\t<server>\t<primary-defect>\t<leaf-defect>
// — followed by the served chain as standard PEM blocks. The format is
// greppable, versionable, and consumable by external tooling (any PEM
// parser skips the metadata lines as comments).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dataset/corpus.hpp"
#include "support/result.hpp"

namespace chainchaos::dataset {

/// A domain entry read back from an exported bundle. Certificates are
/// reparsed; defect labels survive as strings.
struct ExportedRecord {
  std::string domain;
  std::string ca_name;
  std::string server_software;
  std::string primary_defect;
  std::string leaf_defect;
  std::vector<x509::CertPtr> certificates;
};

/// Writes every corpus record to `out` in the bundle format.
void export_corpus(const Corpus& corpus, std::ostream& out);

/// Convenience: export to a file path. Returns false on I/O failure.
bool export_corpus_to_file(const Corpus& corpus, const std::string& path);

/// Parses a bundle produced by export_corpus.
Result<std::vector<ExportedRecord>> import_corpus(std::istream& in);

Result<std::vector<ExportedRecord>> import_corpus_from_file(
    const std::string& path);

}  // namespace chainchaos::dataset
