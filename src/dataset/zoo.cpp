#include "dataset/zoo.hpp"

#include <cassert>

namespace chainchaos::dataset {

namespace {

/// Hierarchy depth per named issuer: deeper chains give the reversal and
/// completeness injectors room to work (Sectigo and TAIWAN-CA really do
/// run deeper hierarchies; the rest issue straight from one tier).
int depth_for(const std::string& name) {
  if (name == "Sectigo Limited") return 2;
  if (name == "TAIWAN-CA") return 2;
  if (name == "GoGetSSL") return 2;
  return 1;
}

}  // namespace

CaZoo::CaZoo(net::AiaRepository* aia) {
  names_ = {"Let's Encrypt",    "Digicert", "Sectigo Limited",
            "ZeroSSL",          "GoGetSSL", "TAIWAN-CA",
            "cyber_Folks S.A.", "Trustico"};
  for (const std::string& name : names_) {
    by_name_.emplace(name, std::make_unique<ca::CaHierarchy>(
                               ca::CaHierarchy::create(name, depth_for(name),
                                                       aia)));
  }

  // Anonymous issuer pool behind the "Other CAs" bucket.
  for (int i = 0; i < 6; ++i) {
    other_pool_.push_back(std::make_unique<ca::CaHierarchy>(
        ca::CaHierarchy::create("Anon CA " + std::to_string(i), 1 + (i % 3),
                                aia)));
  }

  // Rare hierarchies: intermediates that never appear in compliant
  // chains, so no client cache can know them.
  for (int i = 0; i < 3; ++i) {
    rare_pool_.push_back(std::make_unique<ca::CaHierarchy>(
        ca::CaHierarchy::create("Rare CA " + std::to_string(i), 1, aia)));
  }

  // Independent trusted root used for cross-signing (the AAA/AddTrust
  // analogue of Figure 2c).
  aaa_id_ = x509::make_identity(
      asn1::Name::make("AAA Certificate Services", "Comodo-like", "GB"));
  {
    x509::CertificateBuilder builder;
    builder.subject(aaa_id_.name)
        .as_ca()
        .public_key(aaa_id_.keys.pub)
        .validity(1400000000, 2000000000);
    aaa_root_ = builder.self_sign(aaa_id_.keys);
  }

  // Untrusted government root (Figure 4's node 1): self-signed, valid,
  // deliberately excluded from every program store, and deliberately
  // *recent* so VP2 clients try it first and must backtrack.
  untrusted_gov_id_ = x509::make_identity(
      asn1::Name::make("Legacy Government Root CA", "MOEX-like", "TW"));
  {
    x509::CertificateBuilder builder;
    builder.subject(untrusted_gov_id_.name)
        .as_ca()
        .public_key(untrusted_gov_id_.keys.pub)
        .validity(1760000000, 1990000000);
    untrusted_root_ = builder.self_sign(untrusted_gov_id_.keys);
  }

  // Program-exclusive hierarchies (Table 8's store deltas): no AIA
  // publication, so when the root is absent from a client's store the
  // chain cannot be completed at all.
  exclusive_ms_apple_ = std::make_unique<ca::CaHierarchy>(
      ca::CaHierarchy::create("Exclusive MsApple CA", 1, nullptr));
  exclusive_moz_chrome_ = std::make_unique<ca::CaHierarchy>(
      ca::CaHierarchy::create("Exclusive MozChrome CA", 1, nullptr));
}

const ca::CaHierarchy& CaZoo::hierarchy_for(const std::string& ca_name,
                                            std::uint64_t discriminator) const {
  const auto it = by_name_.find(ca_name);
  if (it != by_name_.end()) return *it->second;
  assert(!other_pool_.empty());
  return *other_pool_[discriminator % other_pool_.size()];
}

const ca::CaHierarchy& CaZoo::rare_hierarchy(
    std::uint64_t discriminator) const {
  assert(!rare_pool_.empty());
  return *rare_pool_[discriminator % rare_pool_.size()];
}

const x509::CertPtr& CaZoo::cross_root_cert(const ca::CaHierarchy& hierarchy) {
  auto it = cross_cache_.find(hierarchy.name());
  if (it != cross_cache_.end()) return it->second;

  const x509::CertPtr& root = hierarchy.root();
  x509::CertificateBuilder cross;
  cross.subject(root->subject)
      .as_ca()
      .public_key(root->public_key)
      .validity(1650000000, 1880000000);
  return cross_cache_.emplace(hierarchy.name(), cross.sign(aaa_id_))
      .first->second;
}

const x509::CertPtr& CaZoo::twin_intermediate(const ca::CaHierarchy& hierarchy) {
  auto it = twin_cache_.find(hierarchy.name());
  if (it != twin_cache_.end()) return it->second;

  const x509::CertPtr& original = hierarchy.intermediates().back();
  x509::CertificateBuilder twin;
  twin.subject(original->subject)
      .as_ca(original->basic_constraints->path_len_constraint)
      .public_key(original->public_key)
      .validity(original->not_before - 20000000,
                original->not_after - 20000000);  // older sibling
  // Signed by the same identity that signed the original (key material
  // resolves identically through the KeyPool by name).
  x509::CertPtr cert = twin.sign(x509::make_identity(original->issuer));
  return twin_cache_.emplace(hierarchy.name(), std::move(cert)).first->second;
}

const x509::CertPtr& CaZoo::akidless_top_intermediate(
    const ca::CaHierarchy& hierarchy) {
  auto it = akidless_cache_.find(hierarchy.name());
  if (it != akidless_cache_.end()) return it->second;

  const x509::CertPtr& original = hierarchy.intermediates().front();
  x509::CertificateBuilder variant;
  variant.subject(original->subject)
      .as_ca(original->basic_constraints->path_len_constraint)
      .public_key(original->public_key)
      .validity(original->not_before, original->not_after)
      .omit_authority_key_id();
  if (original->aia.has_value() && original->aia->ca_issuers_uri.has_value()) {
    variant.aia_ca_issuers(*original->aia->ca_issuers_uri);
  }
  x509::CertPtr cert = variant.sign(x509::make_identity(original->issuer));
  return akidless_cache_.emplace(hierarchy.name(), std::move(cert))
      .first->second;
}

std::vector<x509::CertPtr> CaZoo::core_roots() const {
  std::vector<x509::CertPtr> roots;
  for (const auto& [name, hierarchy] : by_name_) {
    roots.push_back(hierarchy->root());
  }
  for (const auto& hierarchy : other_pool_) roots.push_back(hierarchy->root());
  for (const auto& hierarchy : rare_pool_) roots.push_back(hierarchy->root());
  roots.push_back(aaa_root_);
  return roots;
}

std::vector<std::pair<x509::CertPtr, unsigned>> CaZoo::exclusive_roots() const {
  // Masks: 1=mozilla, 2=chrome, 4=microsoft, 8=apple. Mozilla and Chrome
  // share their deltas (they behaved near-identically in Table 8).
  std::vector<std::pair<x509::CertPtr, unsigned>> out;
  out.emplace_back(exclusive_ms_apple_->root(), 4u | 8u);
  out.emplace_back(exclusive_moz_chrome_->root(), 1u | 2u);
  return out;
}

}  // namespace chainchaos::dataset
