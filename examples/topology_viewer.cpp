// topology_viewer: renders the paper's Figure 2 chain topologies (a-d)
// and the Figure 3/4 case studies as issuance graphs, exactly as the
// server-side analysis sees them.
#include <cstdio>

#include "chain/order_analysis.hpp"
#include "chain/topology.hpp"
#include "dataset/corpus.hpp"

using namespace chainchaos;

namespace {

void show(const char* title, const std::vector<x509::CertPtr>& list) {
  const chain::Topology topo = chain::Topology::build(list);
  const chain::OrderAnalysis analysis = chain::analyze_order(list, topo);
  std::printf("--- %s ---\n%s", title, topo.to_ascii().c_str());
  std::printf("paths from leaf: %zu | duplicates:%s irrelevant:%s "
              "multipath:%s reversed:%s\n\n",
              topo.paths_from_leaf().size(),
              analysis.has_duplicates ? "yes" : "no",
              analysis.has_irrelevant ? "yes" : "no",
              analysis.multiple_paths ? "yes" : "no",
              analysis.reversed_sequence ? "yes" : "no");
}

}  // namespace

int main() {
  dataset::CorpusConfig config;
  config.domain_count = 0;  // exemplars only
  dataset::Corpus corpus(config);
  dataset::CaZoo& zoo = corpus.zoo();

  const ca::CaHierarchy& sectigo = zoo.hierarchy_for("Sectigo Limited", 0);

  // Figure 2a: compliant chain.
  {
    const x509::CertPtr leaf = sectigo.issue_leaf("fig2a.example.com");
    auto chain = sectigo.compliant_chain(leaf);
    chain.push_back(sectigo.root());
    show("Figure 2(a): compliant chain", chain);
  }

  // Figure 2b: irrelevant certificates (webcanny-style stale leaves).
  if (const auto* record = corpus.exemplar("webcanny.com")) {
    show("Figure 2(b): irrelevant certificates (webcanny.com)",
         record->observation.certificates);
  }

  // Figure 2c: cross-signing, multiple paths, reversed insertion.
  {
    const auto chain = dataset::inject_cross_sign_multipath(
        "fig2c.example.com", zoo, sectigo);
    show("Figure 2(c): cross-signed multi-path with misplaced cross", chain);
  }

  // Figure 2d: another-operator chain + duplicates (archives.gov.tw).
  if (const auto* record = corpus.exemplar("archives.gov.tw")) {
    show("Figure 2(d): foreign chain fragment (archives.gov.tw)",
         record->observation.certificates);
  }

  // Figure 3: the 17-certificate serpro list.
  if (const auto* record = corpus.exemplar("assiste6.serpro.gov.br")) {
    show("Figure 3: assiste6.serpro.gov.br (GnuTLS cap exceeded)",
         record->observation.certificates);
  }

  // Figure 4: moex.gov.tw's three candidate paths.
  if (const auto* record = corpus.exemplar("moex.gov.tw")) {
    show("Figure 4: moex.gov.tw (untrusted node 1)",
         record->observation.certificates);
  }
  return 0;
}
