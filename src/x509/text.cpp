#include "x509/text.hpp"

#include <cstdio>

#include "support/str.hpp"

namespace chainchaos::x509 {

namespace {

// Civil-time conversion (mirrors asn1/der.cpp; kept local to avoid a
// public time utility that only two call sites need).
void civil_from_days(std::int64_t z, int& y, unsigned& m, unsigned& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = doy - (153 * mp + 2) / 5 + 1;
  m = mp < 10 ? mp + 3 : mp - 9;
  y = static_cast<int>(yy + (m <= 2));
}

std::string hex_colon(BytesView bytes) {
  std::string out;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    char buf[4];
    std::snprintf(buf, sizeof buf, "%02x", bytes[i]);
    if (i) out += ":";
    out += buf;
  }
  return out;
}

}  // namespace

std::string format_time(std::int64_t unix_seconds) {
  const std::int64_t days = unix_seconds >= 0
                                ? unix_seconds / 86400
                                : (unix_seconds - 86399) / 86400;
  const std::int64_t secs = unix_seconds - days * 86400;
  int y;
  unsigned m, d;
  civil_from_days(days, y, m, d);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u %02lld:%02lld:%02lld UTC", y,
                m, d, static_cast<long long>(secs / 3600),
                static_cast<long long>((secs % 3600) / 60),
                static_cast<long long>(secs % 60));
  return buf;
}

std::string to_summary_line(const Certificate& cert) {
  std::string role = cert.is_self_signed() ? "root"
                     : cert.is_ca()        ? "intermediate"
                                           : "leaf";
  return cert.subject.to_string() + "  <-  " + cert.issuer.to_string() +
         "  [" + role + ", " + format_time(cert.not_before) + " .. " +
         format_time(cert.not_after) + "]";
}

std::string to_text(const Certificate& cert) {
  std::string out;
  out += "Certificate:\n";
  out += "    Serial Number: " + cert.serial.to_hex() + "\n";
  out += "    Signature Algorithm: sha256WithRSAEncryption (library suite)\n";
  out += "    Issuer: " + cert.issuer.to_string() + "\n";
  out += "    Validity:\n";
  out += "        Not Before: " + format_time(cert.not_before) + "\n";
  out += "        Not After : " + format_time(cert.not_after) + "\n";
  out += "    Subject: " + cert.subject.to_string() + "\n";
  out += "    Subject Public Key Info:\n";
  const crypto::RsaPublicKey& rsa = cert.public_key.rsa();
  out += "        RSA Public-Key: (" + std::to_string(rsa.n.bit_length()) +
         " bit)\n";
  out += "        Modulus: " + rsa.n.to_hex() + "\n";
  out += "        Exponent: " + rsa.e.to_hex() + "\n";

  out += "    X509v3 extensions:\n";
  if (cert.basic_constraints.has_value()) {
    out += "        X509v3 Basic Constraints: critical\n            CA:";
    out += cert.basic_constraints->is_ca ? "TRUE" : "FALSE";
    if (cert.basic_constraints->path_len_constraint.has_value()) {
      out += ", pathlen:" +
             std::to_string(*cert.basic_constraints->path_len_constraint);
    }
    out += "\n";
  }
  if (cert.key_usage.has_value()) {
    out += "        X509v3 Key Usage: critical\n            ";
    std::vector<std::string> usages;
    if (cert.key_usage->digital_signature) usages.push_back("Digital Signature");
    if (cert.key_usage->key_encipherment) usages.push_back("Key Encipherment");
    if (cert.key_usage->key_cert_sign) usages.push_back("Certificate Sign");
    if (cert.key_usage->crl_sign) usages.push_back("CRL Sign");
    out += join(usages, ", ") + "\n";
  }
  if (cert.ext_key_usage.has_value()) {
    out += "        X509v3 Extended Key Usage:\n            ";
    out += join(cert.ext_key_usage->purposes, ", ") + "\n";
  }
  if (cert.subject_key_id.has_value()) {
    out += "        X509v3 Subject Key Identifier:\n            " +
           hex_colon(*cert.subject_key_id) + "\n";
  }
  if (cert.authority_key_id.has_value()) {
    out += "        X509v3 Authority Key Identifier:\n            keyid:" +
           hex_colon(*cert.authority_key_id) + "\n";
  }
  if (cert.subject_alt_name.has_value()) {
    out += "        X509v3 Subject Alternative Name:\n            ";
    std::vector<std::string> names;
    for (const std::string& dns : cert.subject_alt_name->dns_names) {
      names.push_back("DNS:" + dns);
    }
    for (const std::string& ip : cert.subject_alt_name->ip_addresses) {
      names.push_back("IP Address:" + ip);
    }
    out += join(names, ", ") + "\n";
  }
  if (cert.name_constraints.has_value()) {
    out += "        X509v3 Name Constraints: critical\n";
    if (!cert.name_constraints->permitted_dns.empty()) {
      out += "            Permitted: DNS:" +
             join(cert.name_constraints->permitted_dns, ", DNS:") + "\n";
    }
    if (!cert.name_constraints->excluded_dns.empty()) {
      out += "            Excluded: DNS:" +
             join(cert.name_constraints->excluded_dns, ", DNS:") + "\n";
    }
  }
  if (cert.aia.has_value()) {
    out += "        Authority Information Access:\n";
    if (cert.aia->ocsp_uri.has_value()) {
      out += "            OCSP - URI:" + *cert.aia->ocsp_uri + "\n";
    }
    if (cert.aia->ca_issuers_uri.has_value()) {
      out += "            CA Issuers - URI:" + *cert.aia->ca_issuers_uri + "\n";
    }
  }
  out += "    Signature: " + hex_encode(cert.signature).substr(0, 32) +
         "... (" + std::to_string(cert.signature.size()) + " bytes)\n";
  out += "    SHA-256 Fingerprint: " + hex_colon(cert.fingerprint) + "\n";
  return out;
}

}  // namespace chainchaos::x509
