// CertificateBuilder: fluent construction + signing of synthetic
// certificates.
//
// The builder is the single issuance point of the simulator. It defaults
// to a fully RFC-conformant profile (SKID derived from the key, AKID
// copied from the signer, sane KeyUsage per role) and exposes override
// hooks so test-case generators can produce the *deliberately defective*
// certificates the paper's capability tests need — mismatched KIDs,
// wrong KeyUsage, bad path-length constraints, expired validity, etc.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/rsa.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::x509 {

/// The signing identity handed to CertificateBuilder::sign().
struct SigningIdentity {
  asn1::Name name;               ///< becomes the issuer DN
  crypto::RsaKeyPair keys;       ///< private half signs; public half derives SKID
};

/// Creates a stable signing identity whose keypair comes from the
/// process-wide KeyPool (cheap and deterministic).
SigningIdentity make_identity(const asn1::Name& name);

/// SKID derivation used library-wide: first 20 bytes of SHA-256 over the
/// public key material (RFC 5280 §4.2.1.2 style). The tagged-key
/// overload serves certificates, whose keys carry an algorithm tag.
Bytes derive_key_id(const crypto::RsaPublicKey& key);
Bytes derive_key_id(const crypto::PublicKey& key);

class CertificateBuilder {
 public:
  CertificateBuilder();

  // --- identity ---------------------------------------------------------
  CertificateBuilder& subject(asn1::Name name);
  CertificateBuilder& subject_cn(std::string common_name);
  CertificateBuilder& serial(std::uint64_t value);
  /// Arbitrary-width serial (zero and >20-octet values are encodable —
  /// lint test material; the default profile never produces them).
  CertificateBuilder& serial(crypto::BigInt value);

  // --- validity (unix seconds) -------------------------------------------
  CertificateBuilder& validity(std::int64_t not_before, std::int64_t not_after);

  // --- key material -------------------------------------------------------
  /// Subject key; defaults to a pooled key derived from the subject CN.
  /// Accepts a bare RsaPublicKey (implicit conversion) or an
  /// already-tagged key copied from another certificate.
  CertificateBuilder& public_key(crypto::PublicKey key);

  // --- role presets --------------------------------------------------------
  /// CA certificate: BasicConstraints CA=true (+ optional path length),
  /// KeyUsage keyCertSign|cRLSign.
  CertificateBuilder& as_ca(std::optional<int> path_len = std::nullopt);

  /// Leaf: BasicConstraints absent, KeyUsage digitalSignature|
  /// keyEncipherment, EKU serverAuth, SAN = {host, *.host? no}.
  CertificateBuilder& as_leaf(const std::string& host);

  // --- extension overrides (for crafting defective certs) -----------------
  CertificateBuilder& basic_constraints(std::optional<BasicConstraints> bc);
  CertificateBuilder& key_usage(std::optional<KeyUsage> ku);
  CertificateBuilder& ext_key_usage(std::optional<ExtKeyUsage> eku);
  CertificateBuilder& subject_key_id(std::optional<Bytes> skid);
  CertificateBuilder& authority_key_id(std::optional<Bytes> akid);
  CertificateBuilder& subject_alt_name(std::optional<SubjectAltName> san);
  CertificateBuilder& name_constraints(std::optional<NameConstraints> nc);
  CertificateBuilder& aia_ca_issuers(std::string uri);
  CertificateBuilder& no_aia();

  /// Suppress the automatic SKID/AKID population.
  CertificateBuilder& omit_subject_key_id();
  CertificateBuilder& omit_authority_key_id();

  /// Force a *wrong* AKID value (KID-mismatch test cases).
  CertificateBuilder& corrupt_authority_key_id();

  /// Sign with `issuer`. The issuer DN and (unless overridden) the AKID
  /// come from the identity. Returns an immutable certificate with DER
  /// and fingerprint caches populated.
  CertPtr sign(const SigningIdentity& issuer);

  /// Self-sign: issuer == subject, signed with `self_keys`.
  CertPtr self_sign(const crypto::RsaKeyPair& self_keys);

 private:
  CertPtr finish(const asn1::Name& issuer_name,
                 const crypto::RsaKeyPair& signer_keys,
                 const crypto::RsaPublicKey& akid_source_key);

  Certificate cert_;
  bool skid_overridden_ = false;
  bool akid_overridden_ = false;
  bool omit_skid_ = false;
  bool omit_akid_ = false;
  bool corrupt_akid_ = false;
  bool key_set_ = false;
};

}  // namespace chainchaos::x509
