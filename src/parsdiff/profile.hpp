// Named parser leniency profiles for the differential sweep.
//
// Each profile is a complete asn1::ParseProfile knob assignment modeled
// on a family of real-world X.509 parsers (see src/clients/profiles.hpp
// for the corresponding client validation profiles, and DESIGN.md §5.13
// for the knob-by-knob table). The set is small and fixed: parser
// differentials are only meaningful against a stable panel, so the
// profile list is a compile-time registry with a stable order — matrix
// columns, JSON keys and campaign divergence tallies all iterate it in
// registry order.
#pragma once

#include <string_view>
#include <vector>

#include "asn1/profile.hpp"

namespace chainchaos::parsdiff {

/// One panel member: a named, documented knob assignment.
struct ProfileSpec {
  std::string_view name;         ///< stable short name ("strict-der")
  std::string_view models;       ///< which real parser family it mimics
  std::string_view description;  ///< one-line knob summary
  asn1::ParseProfile profile;
};

/// The fixed panel, in stable registry order. Index 0 is always the
/// library default profile (historical chainchaos behaviour), so
/// outcome vectors can compare "everyone else" against it.
const std::vector<ProfileSpec>& profiles();

/// Lookup by name; nullptr when unknown.
const ProfileSpec* find_profile(std::string_view name);

}  // namespace chainchaos::parsdiff
