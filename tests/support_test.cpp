#include <gtest/gtest.h>

#include "support/bytes.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace chainchaos {
namespace {

// ---------------------------------------------------------------------------
// bytes
// ---------------------------------------------------------------------------

TEST(BytesTest, HexEncodeKnownValues) {
  EXPECT_EQ(hex_encode(Bytes{}), "");
  EXPECT_EQ(hex_encode(Bytes{0x00}), "00");
  EXPECT_EQ(hex_encode(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  EXPECT_FALSE(hex_decode("abc").has_value());   // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());    // bad digit
  EXPECT_FALSE(hex_decode("0g").has_value());
  EXPECT_TRUE(hex_decode("").has_value());
  EXPECT_TRUE(hex_decode("AbCd").has_value());   // mixed case ok
}

TEST(BytesTest, HexRoundTrip) {
  Rng rng(7);
  for (int len = 0; len < 64; ++len) {
    Bytes data;
    for (int i = 0; i < len; ++i) {
      data.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    const auto back = hex_decode(hex_encode(data));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(equal(*back, data)) << "len=" << len;
  }
}

TEST(BytesTest, Base64KnownVectors) {
  // RFC 4648 test vectors.
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(BytesTest, Base64RoundTrip) {
  Rng rng(11);
  for (int len = 0; len < 80; ++len) {
    Bytes data;
    for (int i = 0; i < len; ++i) {
      data.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    const auto back = base64_decode(base64_encode(data));
    ASSERT_TRUE(back.has_value()) << "len=" << len;
    EXPECT_TRUE(equal(*back, data));
  }
}

TEST(BytesTest, Base64RejectsMalformed) {
  EXPECT_FALSE(base64_decode("Zg").has_value());      // bad length
  EXPECT_FALSE(base64_decode("Zg=?").has_value());    // bad char
  EXPECT_FALSE(base64_decode("=Zg=").has_value());    // padding first
  EXPECT_FALSE(base64_decode("Zm9v====").has_value());
  EXPECT_FALSE(base64_decode("Zg==Zg==").has_value()); // data after padding
}

TEST(BytesTest, AppendAndEqual) {
  Bytes head = {1, 2};
  append(head, Bytes{3, 4});
  EXPECT_TRUE(equal(head, Bytes{1, 2, 3, 4}));
  EXPECT_FALSE(equal(head, Bytes{1, 2, 3}));
  EXPECT_TRUE(equal(Bytes{}, Bytes{}));
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(3);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted(weights), 1u);
  }
}

TEST(RngTest, WeightedApproximatesDistribution) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted(weights)];
  // Expect roughly 25/75 with generous tolerance.
  EXPECT_NEAR(counts[1] / 10000.0, 0.75, 0.05);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(99);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(1);  // parent state advanced: different child
  EXPECT_NE(child_a.next(), child_b.next());

  // Same parent state + same salt = same child.
  Rng p1(7), p2(7);
  EXPECT_EQ(p1.fork(5).next(), p2.fork(5).next());
}

TEST(RngTest, HashStableAndDiscriminating) {
  EXPECT_EQ(Rng::hash("example.com"), Rng::hash("example.com"));
  EXPECT_NE(Rng::hash("example.com"), Rng::hash("example.org"));
  EXPECT_NE(Rng::hash(""), Rng::hash("a"));
}

// ---------------------------------------------------------------------------
// str
// ---------------------------------------------------------------------------

TEST(StrTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split(".a.", '.'), (std::vector<std::string>{"", "a", ""}));
}

TEST(StrTest, JoinInvertsSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"x"}, "."), "x");
}

struct DnsCase {
  const char* input;
  bool expect_dns;
};

class DnsNameTest : public ::testing::TestWithParam<DnsCase> {};

TEST_P(DnsNameTest, Classification) {
  EXPECT_EQ(looks_like_dns_name(GetParam().input), GetParam().expect_dns)
      << GetParam().input;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DnsNameTest,
    ::testing::Values(
        DnsCase{"example.com", true}, DnsCase{"www.example.com", true},
        DnsCase{"*.example.com", true}, DnsCase{"a-b.example.io", true},
        DnsCase{"xn--bcher-kva.example", true},
        DnsCase{"localhost", false},       // single label
        DnsCase{"", false}, DnsCase{"Plesk", false},
        DnsCase{"-bad.example.com", false}, DnsCase{"bad-.example.com", false},
        DnsCase{"exa mple.com", false}, DnsCase{"ex_ample.com", false},
        DnsCase{"example.123", false},     // numeric TLD
        DnsCase{"a.*.example.com", false}  // wildcard not leftmost
        ));

struct Ipv4Case {
  const char* input;
  bool expect_ip;
};

class Ipv4Test : public ::testing::TestWithParam<Ipv4Case> {};

TEST_P(Ipv4Test, Classification) {
  EXPECT_EQ(looks_like_ipv4(GetParam().input), GetParam().expect_ip)
      << GetParam().input;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Ipv4Test,
    ::testing::Values(Ipv4Case{"1.2.3.4", true}, Ipv4Case{"255.255.255.255", true},
                      Ipv4Case{"0.0.0.0", true}, Ipv4Case{"256.1.1.1", false},
                      Ipv4Case{"1.2.3", false}, Ipv4Case{"1.2.3.4.5", false},
                      Ipv4Case{"01.2.3.4", false},  // leading zero
                      Ipv4Case{"1.2.3.a", false}, Ipv4Case{"", false}));

TEST(WildcardTest, ExactAndWildcardMatching) {
  EXPECT_TRUE(wildcard_match("example.com", "example.com"));
  EXPECT_TRUE(wildcard_match("EXAMPLE.com", "example.COM"));
  EXPECT_TRUE(wildcard_match("*.example.com", "www.example.com"));
  EXPECT_FALSE(wildcard_match("*.example.com", "example.com"));
  EXPECT_FALSE(wildcard_match("*.example.com", "a.b.example.com"));
  EXPECT_FALSE(wildcard_match("www.example.com", "example.com"));
  EXPECT_FALSE(wildcard_match("*.com", "example.org"));
}

}  // namespace
}  // namespace chainchaos
