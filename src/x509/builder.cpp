#include "x509/builder.hpp"

#include "asn1/oids.hpp"
#include "crypto/sha256.hpp"

namespace chainchaos::x509 {

namespace oid = asn1::oid;

SigningIdentity make_identity(const asn1::Name& name) {
  SigningIdentity identity;
  identity.name = name;
  identity.keys = crypto::KeyPool::instance().for_name(name.to_string());
  return identity;
}

Bytes derive_key_id(const crypto::RsaPublicKey& key) {
  Bytes digest = crypto::Sha256::digest(key.fingerprint_material());
  digest.resize(20);
  return digest;
}

Bytes derive_key_id(const crypto::PublicKey& key) {
  Bytes digest = crypto::Sha256::digest(key.fingerprint_material());
  digest.resize(20);
  return digest;
}

namespace {

// Serial numbers only need to be unique-ish per test corpus; a counter
// keeps builds deterministic while remaining distinct.
std::uint64_t next_serial() {
  static std::uint64_t counter = 1000;
  return ++counter;
}

}  // namespace

CertificateBuilder::CertificateBuilder() {
  cert_.serial = crypto::BigInt(next_serial());
  // A wide default validity keeps unrelated tests from tripping expiry.
  cert_.not_before = 1700000000;  // 2023-11-14
  cert_.not_after = 1900000000;   // 2030-03-17
}

CertificateBuilder& CertificateBuilder::subject(asn1::Name name) {
  cert_.subject = std::move(name);
  return *this;
}

CertificateBuilder& CertificateBuilder::subject_cn(std::string common_name) {
  return subject(asn1::Name::make(std::move(common_name)));
}

CertificateBuilder& CertificateBuilder::serial(std::uint64_t value) {
  cert_.serial = crypto::BigInt(value);
  return *this;
}

CertificateBuilder& CertificateBuilder::serial(crypto::BigInt value) {
  cert_.serial = std::move(value);
  return *this;
}

CertificateBuilder& CertificateBuilder::validity(std::int64_t not_before,
                                                 std::int64_t not_after) {
  cert_.not_before = not_before;
  cert_.not_after = not_after;
  return *this;
}

CertificateBuilder& CertificateBuilder::public_key(crypto::PublicKey key) {
  cert_.public_key = std::move(key);
  key_set_ = true;
  return *this;
}

CertificateBuilder& CertificateBuilder::as_ca(std::optional<int> path_len) {
  cert_.basic_constraints = BasicConstraints{true, path_len};
  KeyUsage ku;
  ku.key_cert_sign = true;
  ku.crl_sign = true;
  cert_.key_usage = ku;
  return *this;
}

CertificateBuilder& CertificateBuilder::as_leaf(const std::string& host) {
  KeyUsage ku;
  ku.digital_signature = true;
  ku.key_encipherment = true;
  cert_.key_usage = ku;
  cert_.ext_key_usage = ExtKeyUsage{{std::string(oid::kServerAuth)}};
  SubjectAltName san;
  san.dns_names.push_back(host);
  cert_.subject_alt_name = std::move(san);
  if (cert_.subject.empty()) subject_cn(host);
  return *this;
}

CertificateBuilder& CertificateBuilder::basic_constraints(
    std::optional<BasicConstraints> bc) {
  cert_.basic_constraints = std::move(bc);
  return *this;
}

CertificateBuilder& CertificateBuilder::key_usage(std::optional<KeyUsage> ku) {
  cert_.key_usage = std::move(ku);
  return *this;
}

CertificateBuilder& CertificateBuilder::ext_key_usage(
    std::optional<ExtKeyUsage> eku) {
  cert_.ext_key_usage = std::move(eku);
  return *this;
}

CertificateBuilder& CertificateBuilder::subject_key_id(
    std::optional<Bytes> skid) {
  cert_.subject_key_id = std::move(skid);
  skid_overridden_ = true;
  return *this;
}

CertificateBuilder& CertificateBuilder::authority_key_id(
    std::optional<Bytes> akid) {
  cert_.authority_key_id = std::move(akid);
  akid_overridden_ = true;
  return *this;
}

CertificateBuilder& CertificateBuilder::subject_alt_name(
    std::optional<SubjectAltName> san) {
  cert_.subject_alt_name = std::move(san);
  return *this;
}

CertificateBuilder& CertificateBuilder::name_constraints(
    std::optional<NameConstraints> nc) {
  cert_.name_constraints = std::move(nc);
  return *this;
}

CertificateBuilder& CertificateBuilder::aia_ca_issuers(std::string uri) {
  if (!cert_.aia.has_value()) cert_.aia = AuthorityInfoAccess{};
  cert_.aia->ca_issuers_uri = std::move(uri);
  return *this;
}

CertificateBuilder& CertificateBuilder::no_aia() {
  cert_.aia.reset();
  return *this;
}

CertificateBuilder& CertificateBuilder::omit_subject_key_id() {
  omit_skid_ = true;
  return *this;
}

CertificateBuilder& CertificateBuilder::omit_authority_key_id() {
  omit_akid_ = true;
  return *this;
}

CertificateBuilder& CertificateBuilder::corrupt_authority_key_id() {
  corrupt_akid_ = true;
  return *this;
}

CertPtr CertificateBuilder::sign(const SigningIdentity& issuer) {
  return finish(issuer.name, issuer.keys, issuer.keys.pub);
}

CertPtr CertificateBuilder::self_sign(const crypto::RsaKeyPair& self_keys) {
  if (!key_set_) public_key(self_keys.pub);
  return finish(cert_.subject, self_keys, self_keys.pub);
}

CertPtr CertificateBuilder::finish(const asn1::Name& issuer_name,
                                   const crypto::RsaKeyPair& signer_keys,
                                   const crypto::RsaPublicKey& akid_source_key) {
  auto cert = std::make_shared<Certificate>(cert_);
  cert->issuer = issuer_name;

  if (!key_set_) {
    // Default subject key: a pooled leaf slot derived from the subject
    // name (leaves never sign anything except themselves, and self_sign
    // callers supply their key explicitly).
    cert->public_key =
        crypto::KeyPool::instance().leaf_slot(cert->subject.to_string()).pub;
  }

  if (!skid_overridden_ && !omit_skid_) {
    cert->subject_key_id = derive_key_id(cert->public_key);
  }
  if (omit_skid_) cert->subject_key_id.reset();

  if (!akid_overridden_ && !omit_akid_) {
    cert->authority_key_id = derive_key_id(akid_source_key);
  }
  if (omit_akid_) cert->authority_key_id.reset();
  if (corrupt_akid_ && cert->authority_key_id.has_value()) {
    // Flip bytes so the AKID no longer matches any real SKID.
    for (auto& b : *cert->authority_key_id) b = static_cast<std::uint8_t>(~b);
  }

  cert->tbs_der = encode_tbs(*cert);
  cert->signature = crypto::rsa_sign(signer_keys.priv, cert->tbs_der);
  cert->der = encode_certificate(*cert);
  cert->fingerprint = crypto::Sha256::digest(cert->der);
  return cert;
}

}  // namespace chainchaos::x509
