#include <gtest/gtest.h>

#include <set>

#include "chain/analyzer.hpp"
#include "chain/issuance.hpp"
#include "dataset/corpus.hpp"
#include "dataset/defects.hpp"
#include "support/str.hpp"

namespace chainchaos::dataset {
namespace {

/// One shared small corpus: generation is the expensive part, the
/// assertions are cheap. 1,500 domains is enough for every rate check
/// below at generous tolerances.
class CorpusFixture : public ::testing::Test {
 protected:
  static Corpus& corpus() {
    static Corpus* instance = [] {
      CorpusConfig config;
      config.domain_count = 1500;
      return new Corpus(std::move(config));
    }();
    return *instance;
  }

  static chain::ComplianceAnalyzer analyzer() {
    chain::CompletenessOptions options;
    options.store = &corpus().stores().union_store;
    options.aia = &corpus().aia();
    return chain::ComplianceAnalyzer(options);
  }
};

TEST_F(CorpusFixture, DeterministicAcrossInstances) {
  CorpusConfig config;
  config.domain_count = 60;
  Corpus a(config), b(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].observation.domain,
              b.records()[i].observation.domain);
    EXPECT_EQ(a.records()[i].primary_defect, b.records()[i].primary_defect);
    ASSERT_EQ(a.records()[i].observation.certificates.size(),
              b.records()[i].observation.certificates.size());
    // Serial numbers come from a process-global counter, so bit-identity
    // holds across *processes*, not across instances within one process;
    // compare the structural identity instead.
    for (std::size_t c = 0; c < a.records()[i].observation.certificates.size();
         ++c) {
      EXPECT_EQ(a.records()[i].observation.certificates[c]->subject,
                b.records()[i].observation.certificates[c]->subject);
      EXPECT_EQ(a.records()[i].observation.certificates[c]->issuer,
                b.records()[i].observation.certificates[c]->issuer);
    }
  }
}

TEST_F(CorpusFixture, SeedChangesCorpus) {
  CorpusConfig config;
  config.domain_count = 40;
  config.include_exemplars = false;
  Corpus a(config);
  config.seed = 999;
  Corpus b(config);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differing += a.records()[i].observation.domain !=
                 b.records()[i].observation.domain;
  }
  EXPECT_GT(differing, 30);
}

TEST_F(CorpusFixture, DomainsAreUniqueAndWellFormed) {
  std::set<std::string> seen;
  for (const DomainRecord& record : corpus().records()) {
    EXPECT_FALSE(record.observation.domain.empty());
    EXPECT_TRUE(seen.insert(record.observation.domain).second)
        << record.observation.domain;
  }
}

TEST_F(CorpusFixture, GroundTruthOrderDefectsAreRecovered) {
  const auto analyze = analyzer();
  for (const DomainRecord& record : corpus().records()) {
    if (record.exemplar) continue;
    const chain::ComplianceReport report = analyze.analyze(record.observation);
    EXPECT_EQ(report.order.any_order_issue(),
              is_order_defect(record.primary_defect))
        << record.observation.domain << " defect="
        << to_string(record.primary_defect);
  }
}

TEST_F(CorpusFixture, GroundTruthCompletenessIsRecovered) {
  const auto analyze = analyzer();
  for (const DomainRecord& record : corpus().records()) {
    if (record.exemplar) continue;
    const chain::ComplianceReport report = analyze.analyze(record.observation);
    EXPECT_EQ(!report.completeness.complete(),
              is_completeness_defect(record.primary_defect))
        << record.observation.domain;
  }
}

TEST_F(CorpusFixture, DefectSubtypesBehaveAsLabelled) {
  const auto analyze = analyzer();
  for (const DomainRecord& record : corpus().records()) {
    if (record.exemplar) continue;
    const chain::ComplianceReport report = analyze.analyze(record.observation);
    switch (record.primary_defect) {
      case DefectType::kDuplicateLeaf:
        EXPECT_TRUE(report.order.duplicate_leaf) << record.observation.domain;
        break;
      case DefectType::kDuplicateIntermediate:
        EXPECT_TRUE(report.order.duplicate_intermediate)
            << record.observation.domain;
        break;
      case DefectType::kDuplicateRoot:
        EXPECT_TRUE(report.order.duplicate_root) << record.observation.domain;
        break;
      case DefectType::kReversedSequence:
        EXPECT_TRUE(report.order.reversed_sequence)
            << record.observation.domain;
        break;
      case DefectType::kMultiplePathsCrossSign:
      case DefectType::kMultiplePathsTwinValidity:
        EXPECT_TRUE(report.order.multiple_paths) << record.observation.domain;
        break;
      case DefectType::kIrrelevantRoot:
      case DefectType::kStaleLeaves:
      case DefectType::kIrrelevantOtherChain:
      case DefectType::kIrrelevantIntermediate:
        EXPECT_TRUE(report.order.has_irrelevant) << record.observation.domain;
        break;
      case DefectType::kMissingIntermediateNoAia:
        EXPECT_EQ(report.completeness.aia_outcome,
                  chain::AiaOutcome::kNoAiaField)
            << record.observation.domain;
        break;
      case DefectType::kMissingIntermediateDeadAia:
        EXPECT_EQ(report.completeness.aia_outcome,
                  chain::AiaOutcome::kUnreachable)
            << record.observation.domain;
        break;
      case DefectType::kMissingIntermediate:
        EXPECT_EQ(report.completeness.aia_outcome,
                  chain::AiaOutcome::kCompleted)
            << record.observation.domain;
        EXPECT_EQ(report.completeness.missing_certificates,
                  record.missing_count)
            << record.observation.domain;
        break;
      default:
        break;
    }
  }
}

TEST_F(CorpusFixture, LeafDefectsClassifyPerTable3) {
  const auto analyze = analyzer();
  for (const DomainRecord& record : corpus().records()) {
    if (record.exemplar) continue;
    const chain::ComplianceReport report = analyze.analyze(record.observation);
    switch (record.leaf_defect) {
      case DefectType::kLeafMismatched:
        EXPECT_EQ(report.leaf_placement,
                  chain::LeafPlacement::kCorrectMismatched)
            << record.observation.domain;
        break;
      case DefectType::kLeafOther:
        EXPECT_EQ(report.leaf_placement, chain::LeafPlacement::kOther)
            << record.observation.domain;
        break;
      default:
        EXPECT_EQ(report.leaf_placement, chain::LeafPlacement::kCorrectMatched)
            << record.observation.domain;
        break;
    }
  }
}

TEST_F(CorpusFixture, AggregateRatesNearCalibration) {
  std::size_t order = 0, incomplete = 0, mismatched = 0;
  std::size_t statistical = 0;
  for (const DomainRecord& record : corpus().records()) {
    if (record.exemplar) continue;
    ++statistical;
    order += is_order_defect(record.primary_defect);
    incomplete += is_completeness_defect(record.primary_defect);
    mismatched += record.leaf_defect == DefectType::kLeafMismatched;
  }
  const double n = static_cast<double>(statistical);
  EXPECT_NEAR(order / n, 0.0187, 0.012);
  EXPECT_NEAR(incomplete / n, 0.0133, 0.010);
  EXPECT_NEAR(mismatched / n, 0.069, 0.025);
}

TEST_F(CorpusFixture, TaiwanCaDomainsLookTaiwanese) {
  for (const DomainRecord& record : corpus().records()) {
    if (record.exemplar || record.observation.ca_name != "TAIWAN-CA") continue;
    EXPECT_TRUE(ends_with(record.observation.domain, ".gov.tw"))
        << record.observation.domain;
  }
}

// ---------------------------------------------------------------------------
// Exemplars (named case studies)
// ---------------------------------------------------------------------------

TEST_F(CorpusFixture, AllExemplarsPresent) {
  for (const char* name :
       {"mot.gov.ps", "ns3.link", "ns3.com", "ns3.cx", "n0.eu",
        "webcanny.com", "archives.gov.tw", "assiste6.serpro.gov.br",
        "moex.gov.tw", "community.cacert-like.example"}) {
    EXPECT_NE(corpus().exemplar(name), nullptr) << name;
  }
  EXPECT_EQ(corpus().exemplar("not-a-case-study.example"), nullptr);
}

TEST_F(CorpusFixture, MotGovPsIsTheIncorrectMismatchedSingleton) {
  const DomainRecord* record = corpus().exemplar("mot.gov.ps");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(chain::classify_leaf_placement(record->observation.certificates,
                                           "mot.gov.ps"),
            chain::LeafPlacement::kIncorrectMismatched);
}

TEST_F(CorpusFixture, Ns3ChainsHave29Certificates) {
  const DomainRecord* record = corpus().exemplar("ns3.link");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->observation.certificates.size(), 29u);
  const auto analyze = analyzer();
  const chain::ComplianceReport report = analyze.analyze(record->observation);
  EXPECT_TRUE(report.order.has_duplicates);
  EXPECT_GE(report.order.max_duplicate_occurrences, 14);
  // Despite the noise, the chain is structurally completable.
  EXPECT_TRUE(report.completeness.complete());
}

TEST_F(CorpusFixture, WebcannyHasFiveLeavesNewestFirst) {
  const DomainRecord* record = corpus().exemplar("webcanny.com");
  ASSERT_NE(record, nullptr);
  int leaves = 0;
  for (const auto& cert : record->observation.certificates) {
    if (!cert->is_ca() && cert->matches_host("webcanny.com")) ++leaves;
  }
  EXPECT_EQ(leaves, 5);
  // Newest first: the first certificate has the latest notBefore.
  const auto& certs = record->observation.certificates;
  EXPECT_GT(certs[0]->not_before, certs[1]->not_before);
}

TEST_F(CorpusFixture, SerproExemplarShape) {
  const DomainRecord* record = corpus().exemplar("assiste6.serpro.gov.br");
  ASSERT_NE(record, nullptr);
  const auto& certs = record->observation.certificates;
  ASSERT_EQ(certs.size(), 17u);  // one past GnuTLS's cap of 16
  // The Figure 3 path: 8 -> 1 -> 16 -> 0.
  EXPECT_TRUE(chain::issued_by(*certs[0], *certs[16]));
  EXPECT_TRUE(chain::issued_by(*certs[16], *certs[1]));
  EXPECT_TRUE(chain::issued_by(*certs[1], *certs[8]));
  EXPECT_TRUE(certs[8]->is_self_signed());
}

TEST_F(CorpusFixture, MoexExemplarHasThreePathsAndUntrustedNode1) {
  const DomainRecord* record = corpus().exemplar("moex.gov.tw");
  ASSERT_NE(record, nullptr);
  const auto& certs = record->observation.certificates;
  ASSERT_EQ(certs.size(), 5u);
  const chain::Topology topo = chain::Topology::build(certs);
  // Two maximal simple paths (the paper's figure counts the untrusted
  // dead-end prefix as its own candidate path, giving three).
  EXPECT_GE(topo.paths_from_leaf().size(), 2u);
  EXPECT_TRUE(certs[1]->is_self_signed());
  EXPECT_FALSE(corpus().stores().union_store.contains(*certs[1]));
  EXPECT_TRUE(certs[4]->is_self_signed());
  EXPECT_TRUE(corpus().stores().union_store.contains(*certs[4]));
}

// ---------------------------------------------------------------------------
// Defect injector unit checks
// ---------------------------------------------------------------------------

class InjectorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    aia_ = new net::AiaRepository();
    zoo_ = new CaZoo(aia_);
  }
  static net::AiaRepository* aia_;
  static CaZoo* zoo_;
};

net::AiaRepository* InjectorFixture::aia_ = nullptr;
CaZoo* InjectorFixture::zoo_ = nullptr;

TEST_F(InjectorFixture, ReversedInjectorAddsRootForShortChains) {
  const ca::CaHierarchy& le = zoo_->hierarchy_for("Let's Encrypt", 0);
  Chain chain = le.compliant_chain(le.issue_leaf("short.example"));
  ASSERT_EQ(chain.size(), 2u);
  const Chain reversed = inject_reversed(chain, le);
  ASSERT_EQ(reversed.size(), 3u);
  EXPECT_TRUE(reversed[1]->is_self_signed());  // root moved before issuing
  const chain::Topology topo = chain::Topology::build(reversed);
  EXPECT_TRUE(topo.any_path_reversed());
}

TEST_F(InjectorFixture, CrossSignInjectorMatchesFigure2c) {
  const ca::CaHierarchy& sectigo = zoo_->hierarchy_for("Sectigo Limited", 0);
  const Chain chain =
      inject_cross_sign_multipath("cross.example", *zoo_, sectigo);
  const chain::Topology topo = chain::Topology::build(chain);
  EXPECT_EQ(topo.paths_from_leaf().size(), 2u);
  EXPECT_TRUE(topo.any_path_reversed());
}

TEST_F(InjectorFixture, TwinValidityInjectorMakesTwoPaths) {
  const ca::CaHierarchy& digicert = zoo_->hierarchy_for("Digicert", 0);
  const Chain chain =
      inject_twin_validity_multipath("twin.example", *zoo_, digicert);
  const chain::Topology topo = chain::Topology::build(chain);
  EXPECT_EQ(topo.paths_from_leaf().size(), 2u);
  // Twins share subject and issuer, differ in validity.
  EXPECT_EQ(chain[1]->subject, chain[2]->subject);
  EXPECT_EQ(chain[1]->issuer, chain[2]->issuer);
  EXPECT_NE(chain[1]->not_before, chain[2]->not_before);
}

TEST_F(InjectorFixture, AkidlessTopIntermediateKeepsLinkage) {
  const ca::CaHierarchy& le = zoo_->hierarchy_for("Let's Encrypt", 0);
  const x509::CertPtr& variant = zoo_->akidless_top_intermediate(le);
  EXPECT_FALSE(variant->authority_key_id.has_value());
  EXPECT_TRUE(chain::issued_by(*variant, *le.root()));
  // Memoized: same object on the second call.
  EXPECT_EQ(&zoo_->akidless_top_intermediate(le), &variant);
}

TEST_F(InjectorFixture, StaleLeavesAreExpiredCopies) {
  const ca::CaHierarchy& sectigo = zoo_->hierarchy_for("Sectigo Limited", 0);
  Chain chain = sectigo.compliant_chain(sectigo.issue_leaf("stale.example"));
  const Chain with_stale =
      inject_stale_leaves(chain, sectigo, "stale.example", 3);
  EXPECT_EQ(with_stale.size(), chain.size() + 3);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(with_stale[static_cast<std::size_t>(i)]->matches_host(
        "stale.example"));
    EXPECT_LT(with_stale[static_cast<std::size_t>(i)]->not_after,
              with_stale[0]->not_before);
  }
}

TEST_F(InjectorFixture, MissingIntermediateDropsFromTheTop) {
  const ca::CaHierarchy& sectigo = zoo_->hierarchy_for("Sectigo Limited", 0);
  Chain chain = sectigo.compliant_chain(sectigo.issue_leaf("drop.example"));
  ASSERT_EQ(chain.size(), 3u);  // leaf + 2 intermediates
  const Chain dropped = inject_missing_intermediate(chain, 1);
  ASSERT_EQ(dropped.size(), 2u);
  // The issuing intermediate (adjacent to the leaf) must survive.
  EXPECT_TRUE(chain::issued_by(*dropped[0], *dropped[1]));
}

}  // namespace
}  // namespace chainchaos::dataset
