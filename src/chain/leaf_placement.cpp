#include "chain/leaf_placement.hpp"

#include "support/str.hpp"

namespace chainchaos::chain {

const char* to_string(LeafPlacement placement) {
  switch (placement) {
    case LeafPlacement::kCorrectMatched: return "correct+matched";
    case LeafPlacement::kCorrectMismatched: return "correct+mismatched";
    case LeafPlacement::kIncorrectMatched: return "incorrect+matched";
    case LeafPlacement::kIncorrectMismatched: return "incorrect+mismatched";
    case LeafPlacement::kOther: return "other";
  }
  return "?";
}

namespace {

bool cert_matches_domain(const x509::Certificate& cert,
                         const std::string& domain) {
  return cert.matches_host(domain);
}

bool cert_identity_domain_shaped(const x509::Certificate& cert) {
  for (const std::string& id : cert.identity_strings()) {
    // Wildcard identities are domain-shaped as deployed.
    if (starts_with(id, "*.")) {
      if (looks_like_dns_name(id)) return true;
      continue;
    }
    if (looks_like_domain_or_ip(id)) return true;
  }
  return false;
}

}  // namespace

LeafPlacement classify_leaf_placement(const std::vector<x509::CertPtr>& list,
                                      const std::string& domain) {
  if (list.empty()) return LeafPlacement::kOther;

  const x509::Certificate& first = *list.front();
  if (cert_matches_domain(first, domain)) {
    return LeafPlacement::kCorrectMatched;
  }
  if (cert_identity_domain_shaped(first)) {
    return LeafPlacement::kCorrectMismatched;
  }

  // First certificate is not domain-shaped at all; look deeper.
  for (std::size_t i = 1; i < list.size(); ++i) {
    if (cert_matches_domain(*list[i], domain)) {
      return LeafPlacement::kIncorrectMatched;
    }
  }
  for (std::size_t i = 1; i < list.size(); ++i) {
    if (cert_identity_domain_shaped(*list[i])) {
      return LeafPlacement::kIncorrectMismatched;
    }
  }
  return LeafPlacement::kOther;
}

}  // namespace chainchaos::chain
