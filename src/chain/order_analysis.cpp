#include "chain/order_analysis.hpp"

#include "chain/issuance.hpp"

namespace chainchaos::chain {

CertRole classify_role(const x509::Certificate& cert) {
  if (cert.is_self_signed()) return CertRole::kRoot;
  if (cert.is_ca()) return CertRole::kIntermediate;
  return CertRole::kLeaf;
}

bool order_compliant(const std::vector<x509::CertPtr>& list) {
  for (std::size_t i = 0; i + 1 < list.size(); ++i) {
    if (!issued_by(*list[i], *list[i + 1])) return false;
  }
  return true;
}

OrderAnalysis analyze_order(const std::vector<x509::CertPtr>& list,
                            const Topology& topology) {
  OrderAnalysis out;
  out.compliant = order_compliant(list);

  // Duplicates (bit-for-bit identical certificates).
  for (const Topology::Node& node : topology.nodes()) {
    if (!node.duplicated()) continue;
    out.has_duplicates = true;
    out.max_duplicate_occurrences =
        std::max(out.max_duplicate_occurrences,
                 static_cast<int>(node.occurrences.size()));
    switch (classify_role(*node.cert)) {
      case CertRole::kLeaf: out.duplicate_leaf = true; break;
      case CertRole::kIntermediate: out.duplicate_intermediate = true; break;
      case CertRole::kRoot: out.duplicate_root = true; break;
    }
  }

  // Irrelevant certificates (duplicates already folded by the topology,
  // matching the paper's "duplicate certificates are not counted").
  const std::vector<int> irrelevant = topology.irrelevant_nodes();
  out.irrelevant_count = static_cast<int>(irrelevant.size());
  out.has_irrelevant = !irrelevant.empty();

  // Multiple paths / reversed sequences over the leaf-path set.
  const auto paths = topology.paths_from_leaf();
  out.path_count = static_cast<int>(paths.size());
  out.multiple_paths = paths.size() > 1;
  out.reversed_sequence = topology.any_path_reversed();
  out.all_paths_reversed = topology.all_paths_reversed();

  return out;
}

}  // namespace chainchaos::chain
