// Regenerates Table 8: additional incomplete chains per individual root
// store, with and without AIA support, relative to the union-store+AIA
// baseline (paper: with AIA 66/66/5/4; without AIA ~225,000 for every
// store — AIA capability, not store membership, is the critical factor).
//
// Methodology note: the store probe here matches AKID against root SKIDs
// only (match_store_by_dn = false), replicating the paper's §3.1 method;
// that is exactly what makes AKID-less terminal intermediates
// unresolvable without AIA.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "chain/completeness.hpp"
#include "report/table.hpp"

using namespace chainchaos;

namespace {

std::uint64_t count_incomplete(const dataset::Corpus& corpus,
                               const truststore::RootStore& store,
                               net::AiaRepository* aia, bool aia_enabled) {
  chain::CompletenessOptions options;
  options.store = &store;
  options.aia = aia;
  options.aia_enabled = aia_enabled;
  options.match_store_by_dn = false;  // the paper's AKID-only probe

  std::uint64_t incomplete = 0;
  for (const dataset::DomainRecord& record : corpus.records()) {
    const chain::Topology topo =
        chain::Topology::build(record.observation.certificates);
    incomplete +=
        !chain::analyze_completeness(topo, options).complete();
  }
  return incomplete;
}

}  // namespace

int main() {
  const auto corpus = bench::make_corpus();
  const auto& stores = corpus->stores();

  const std::uint64_t baseline =
      count_incomplete(*corpus, stores.union_store, &corpus->aia(), true);
  std::printf("baseline (union store + AIA): %s incomplete chains\n\n",
              report::with_commas(baseline).c_str());

  struct Row {
    const char* name;
    const truststore::RootStore* store;
    const char* paper_with_aia;
    const char* paper_without_aia;
  };
  const std::vector<Row> rows = {
      {"Mozilla", &stores.mozilla, "66", "225,608"},
      {"Chrome", &stores.chrome, "66", "225,608"},
      {"Microsoft", &stores.microsoft, "5", "225,538"},
      {"Apple", &stores.apple, "4", "225,360"},
  };

  report::Table table(
      "Table 8: Additional incomplete chains by root store and AIA support");
  table.header({"Root Store", "AIA on (measured)", "paper", "AIA off (measured)",
                "paper", "AIA off (% of corpus)"});
  for (const Row& row : rows) {
    const std::uint64_t with_aia =
        count_incomplete(*corpus, *row.store, &corpus->aia(), true) - baseline;
    const std::uint64_t without_aia =
        count_incomplete(*corpus, *row.store, &corpus->aia(), false) - baseline;
    table.row({row.name, report::with_commas(with_aia), row.paper_with_aia,
               report::with_commas(without_aia), row.paper_without_aia,
               report::pct(static_cast<double>(without_aia),
                           static_cast<double>(corpus->records().size()))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("(paper scale: 225,608 of 906,336 = 24.9%% of the corpus)\n");

  bench::print_paper_note(
      "Table 8",
      "root-store differences barely matter when AIA is available; "
      "without AIA roughly a quarter of all chains become unresolvable "
      "under the AKID-only store probe");
  return 0;
}
