// Regenerates Figure 4 / finding I-3: the moex.gov.tw case — three
// candidate paths, two ending at an untrusted legacy government root.
// Non-backtracking clients (OpenSSL, GnuTLS) commit to the untrusted
// root and fail; CryptoAPI and the browsers detect the untrusted
// terminus and backtrack to the cross-signed trusted path; MbedTLS finds
// the good path only because of its forward scan — swapping nodes 1 and
// 2 sends it into the untrusted root too.
#include <cstdio>

#include "bench_common.hpp"
#include "chain/topology.hpp"
#include "clients/profiles.hpp"
#include "pathbuild/path_builder.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  dataset::CorpusConfig config;
  config.domain_count = 0;  // exemplars only
  dataset::Corpus corpus(config);

  const dataset::DomainRecord* moex = corpus.exemplar("moex.gov.tw");
  if (moex == nullptr) {
    std::fprintf(stderr, "exemplar missing\n");
    return 1;
  }
  const auto& list = moex->observation.certificates;

  const chain::Topology topo = chain::Topology::build(list);
  std::printf("Certificate list of moex.gov.tw:\n\n%s\n", topo.to_ascii().c_str());
  std::printf("candidate paths from the leaf: %zu maximal paths "
              "(paper counts 3, including the untrusted dead-end prefix "
              "as its own candidate)\n",
              topo.paths_from_leaf().size());
  std::printf("node 1 trusted: %s; node 4 trusted: %s\n\n",
              corpus.stores().union_store.contains(*list[1]) ? "yes" : "NO",
              corpus.stores().union_store.contains(*list[4]) ? "yes" : "NO");

  report::Table table("Figure 4 / I-3: client verdicts (original order)");
  table.header({"Client", "status", "backtracks", "paper"});
  std::vector<x509::CertPtr> swapped = list;
  std::swap(swapped[1], swapped[2]);

  report::Table swapped_table(
      "Figure 4 / I-3: client verdicts (nodes 1 and 2 swapped)");
  swapped_table.header({"Client", "status", "paper"});

  for (const clients::ClientProfile& profile : clients::all_profiles()) {
    pathbuild::PathBuilder builder(profile.policy,
                                   &corpus.stores().union_store,
                                   &corpus.aia());
    const pathbuild::BuildResult result =
        builder.build(list, moex->observation.domain);
    const char* paper = "";
    switch (profile.kind) {
      case clients::ClientKind::kOpenSsl:
      case clients::ClientKind::kGnuTls:
        paper = "incorrectly includes node 1 (no backtracking)";
        break;
      case clients::ClientKind::kCryptoApi:
        paper = "backtracks after detecting node 1 untrusted";
        break;
      case clients::ClientKind::kMbedTls:
        paper = "path 3, but only via its forward scan";
        break;
      default:
        paper = "handles it (backtracking)";
    }
    table.row({profile.name, to_string(result.status),
               std::to_string(result.stats.backtracks), paper});

    const pathbuild::BuildResult swapped_result =
        builder.build(swapped, moex->observation.domain);
    swapped_table.row(
        {profile.name, to_string(swapped_result.status),
         profile.kind == clients::ClientKind::kMbedTls
             ? "now also includes node 1 -> fails (paper's swap experiment)"
             : "-"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%s", swapped_table.render().c_str());

  bench::print_paper_note(
      "Figure 4",
      "backtracking is what separates CryptoAPI/browsers from "
      "OpenSSL/GnuTLS on multi-path chains with untrusted branches; "
      "MbedTLS's success is positional luck");
  return 0;
}
