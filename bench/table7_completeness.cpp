// Regenerates Table 7 (+§4.3 details): completeness of certificate
// chains (paper: 8.7% complete w/ root, 89.9% complete w/o root, 1.3%
// incomplete; of the incomplete, 72.2% miss one cert and 94.5% are
// AIA-repairable).
#include <cstdio>

#include "bench_common.hpp"
#include "chain/completeness.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  const auto corpus = bench::make_corpus();

  chain::CompletenessOptions options;
  options.store = &corpus->stores().union_store;
  options.aia = &corpus->aia();

  std::uint64_t with_root = 0, without_root = 0, incomplete = 0;
  std::uint64_t missing_one = 0, repairable = 0, no_aia = 0, unreachable = 0,
                wrong_issuer = 0;

  for (const dataset::DomainRecord& record : corpus->records()) {
    const chain::Topology topo =
        chain::Topology::build(record.observation.certificates);
    const chain::CompletenessResult r =
        chain::analyze_completeness(topo, options);
    switch (r.category) {
      case chain::Completeness::kCompleteWithRoot: ++with_root; break;
      case chain::Completeness::kCompleteWithoutRoot: ++without_root; break;
      case chain::Completeness::kIncomplete:
        ++incomplete;
        missing_one += r.missing_certificates == 1;
        switch (r.aia_outcome) {
          case chain::AiaOutcome::kCompleted: ++repairable; break;
          case chain::AiaOutcome::kNoAiaField: ++no_aia; break;
          case chain::AiaOutcome::kUnreachable: ++unreachable; break;
          case chain::AiaOutcome::kWrongIssuer: ++wrong_issuer; break;
          default: break;
        }
        break;
    }
  }
  const std::uint64_t total = corpus->records().size();

  report::Table table("Table 7: Completeness of certificate chain");
  table.header({"Type", "measured", "paper"});
  table.row({"Complete Chain w/ Root", report::count_pct(with_root, total),
             "79,144 (8.7%)"});
  table.row({"Complete Chain w/o Root", report::count_pct(without_root, total),
             "815,105 (89.9%)"});
  table.row({"Incomplete Chain", report::count_pct(incomplete, total),
             "12,087 (1.3%)"});
  std::fputs(table.render().c_str(), stdout);

  report::Table detail("Incomplete-chain breakdown (§4.3)");
  detail.header({"Property", "measured", "paper"});
  detail.row({"missing exactly one certificate",
              report::count_pct(missing_one, incomplete), "8,729 (72.2%)"});
  detail.row({"repairable via recursive AIA",
              report::count_pct(repairable, incomplete), "11,419 (94.5%)"});
  detail.row({"AIA field missing", report::count_pct(no_aia, incomplete),
              "579 (4.8%)"});
  detail.row({"AIA URI unreachable",
              report::count_pct(unreachable, incomplete), "88 (0.7%)"});
  detail.row({"AIA serves wrong issuer",
              report::count_pct(wrong_issuer, incomplete), "1"});
  std::printf("\n%s", detail.render().c_str());

  const net::FetchStats& stats = corpus->aia().stats();
  std::printf("\nAIA traffic during analysis: %llu fetches, %llu failed, "
              "%llu KiB served, %.1f simulated seconds of HTTP latency\n",
              static_cast<unsigned long long>(stats.attempts),
              static_cast<unsigned long long>(stats.misses + stats.unreachable),
              static_cast<unsigned long long>(stats.bytes_served / 1024),
              static_cast<double>(stats.simulated_latency_ms) / 1000.0);

  bench::print_paper_note(
      "Table 7",
      "omitting the root is the norm; missing intermediates affect ~1.3% "
      "and are mostly repairable via AIA");
  return 0;
}
