// Per-input differential parsing and the PD-* discrepancy taxonomy.
//
// diff_chain() parses every certificate blob of one input under every
// panel profile (parsdiff/profile.hpp) and reduces the outcome vector to
// a verdict: agreement (all accept, or all reject) or a discrepancy,
// classified into one of the stable PD-* classes below. Classes are
// lint::Rule descriptors — same ID/severity/citation shape as chainlint
// rules, registered with lint::register_rule_family() so
// lint::find_rule("PD-03") resolves — but they are NOT part of
// lint::all_rules(): a parser differential is a property of an input
// across parsers, not a finding of one parser, so it reports through the
// parsdiff sweep rather than the lint sweep.
//
//   PD-01 length-leniency     profiles disagree on BER/DER length forms
//   PD-02 boolean-encoding    non-canonical BOOLEAN accepted by some
//   PD-03 time-syntax         UTCTime/offset/fraction tolerance differs
//   PD-04 string-leniency     legacy string tags / charset checks differ
//   PD-05 trailing-bytes      garbage after the Certificate SEQUENCE
//   PD-06 critical-extension  unknown-critical rejection differs
//   PD-07 other-divergence    accept/reject split with any other cause
//
// Everything here is a pure function of the input bytes — safe to call
// concurrently from engine workers, deterministic by construction.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/rule.hpp"
#include "support/bytes.hpp"

namespace chainchaos::parsdiff {

/// The PD-* class descriptors, sorted by ID. First use registers the
/// family with lint::register_rule_family().
const std::vector<lint::Rule>& pd_rules();

/// Descriptor lookup within the PD family; nullptr when unknown.
const lint::Rule* find_pd_rule(std::string_view id);

/// One profile's verdict on one input.
struct ProfileOutcome {
  bool accepted = false;
  /// First failing certificate index and its error, when rejected.
  std::size_t cert_index = 0;
  std::string error_code;
  std::string error_detail;
};

/// The differential verdict for one input (a sequence of certificate
/// blobs — a served chain, or a chaos-mutated wire image).
struct ChainDiff {
  /// One outcome per profiles() entry, in registry order.
  std::vector<ProfileOutcome> outcomes;

  /// True when at least one profile accepts and at least one rejects.
  bool discrepancy = false;

  /// PD-* class ID when `discrepancy`; empty otherwise. Derived from the
  /// error code of the first rejecting profile (registry order), which
  /// makes the classification deterministic.
  std::string_view pd_class;

  std::size_t accept_count = 0;
  std::size_t reject_count = 0;
};

/// Parses every blob under every panel profile and classifies.
ChainDiff diff_chain(const std::vector<BytesView>& certs);
ChainDiff diff_chain(const std::vector<Bytes>& certs);

/// Maps a parse error to its PD class ID ("PD-07" for anything the
/// named classes don't cover). The detail disambiguates generic codes:
/// a der.unexpected_tag naming the time tags (0x17/0x18) is time
/// leniency, one expecting "a string type" is string leniency. Exposed
/// for the campaign wiring.
std::string_view classify_error(std::string_view error_code,
                                std::string_view error_detail);

/// Lenient top-level TLV splitter: walks `wire` as a sequence of
/// tag/length/value blobs and returns the raw byte span of each, without
/// requiring any blob to parse as a certificate. Length forms up to BER
/// leading-zero tolerance are honoured; when a length field is damaged
/// or overruns, the remainder of the buffer becomes the final blob, so
/// every input byte is attributed to exactly one blob and chaos-mutated
/// wire images still split into parseable units.
std::vector<Bytes> split_der_blobs(BytesView wire);

}  // namespace chainchaos::parsdiff
