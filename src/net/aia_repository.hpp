// AiaRepository: the simulated HTTP side of Authority Information Access.
//
// Real clients resolve a missing issuer by fetching the URI in the
// certificate's AIA caIssuers field over plain HTTP. The repository
// stands in for that web: CA pipelines publish issuer certificates under
// their URIs, and clients/analyzers fetch from it. Failure modes observed
// by the paper are injectable per-URI:
//   * URI unreachable (88 chains in the paper's corpus),
//   * URI serving the wrong certificate — e.g. CAcert Class 3 serving
//     itself instead of its issuer (1 chain),
// and "no AIA extension at all" is simply a certificate without the
// field (579 chains).
//
// Fetches are counted and charged a simulated latency so benches can
// report the construction-time cost of AIA completion.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/result.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::net {

/// Statistics accumulated across all fetches on a repository.
struct FetchStats {
  std::uint64_t attempts = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;        ///< URI unknown to the repository
  std::uint64_t unreachable = 0;   ///< URI marked as failing
  std::uint64_t bytes_served = 0;
  std::uint64_t simulated_latency_ms = 0;

  // --- robustness counters (fault injection & FetchPolicy) --------------
  std::uint64_t retries = 0;             ///< re-attempts after a failure
  std::uint64_t transient_failures = 0;  ///< injected transient faults hit
  std::uint64_t deadline_exceeded = 0;   ///< fetches abandoned on budget
  std::uint64_t corrupt_responses = 0;   ///< garbage/truncated bodies served

  void reset() { *this = FetchStats{}; }
};

/// Retry discipline for one logical fetch. The default (no retries, no
/// deadline) reproduces the historical single-attempt behaviour, so
/// existing sweeps and benches are bit-identical unless a caller opts
/// in. Backoff and deadline are *simulated* milliseconds: they are
/// charged to FetchStats::simulated_latency_ms and checked against the
/// budget without ever sleeping, keeping campaigns deterministic.
struct FetchPolicy {
  int max_retries = 0;                 ///< extra attempts after the first
  std::uint64_t base_backoff_ms = 50;  ///< backoff before retry k: base<<k
  std::uint64_t max_backoff_ms = 2000; ///< cap on a single backoff step
  std::uint64_t deadline_ms = 0;       ///< per-fetch budget; 0 = unlimited
};

/// Per-URI fault schedule, the paper's §4 failure modes made injectable
/// plus the chaos harness's transport-level extensions. Transient
/// failures are counted per fetch() *call* (the first N attempts of
/// every call fail), so outcomes do not depend on how concurrent
/// builders interleave — campaigns stay thread-count-deterministic.
struct FaultSpec {
  int transient_failures = 0;      ///< first N attempts of each call fail
  bool permanent = false;          ///< every attempt fails (conn refused)
  bool garbage_response = false;   ///< 200 OK but the body is not DER
  bool truncated_response = false; ///< body cut off mid-TLV
  std::uint64_t extra_latency_ms = 0;  ///< added per attempt (slow link)
};

/// One published URI's durable state, as captured by snapshot_entries().
/// Fault schedules are deliberately absent: they are runtime chaos
/// configuration, not corpus content.
struct AiaEntrySnapshot {
  std::string uri;
  x509::CertPtr cert;        ///< may be null (bare unreachable marker)
  bool unreachable = false;
};

class AiaRepository {
 public:
  /// Per-fetch simulated round-trip cost (a plain-HTTP fetch of a small
  /// object; the default mirrors a typical cross-continent RTT).
  explicit AiaRepository(std::uint64_t latency_ms_per_fetch = 120)
      : latency_ms_(latency_ms_per_fetch) {}

  /// Serves `cert` at `uri` (later publishes overwrite earlier ones).
  void publish(const std::string& uri, x509::CertPtr cert);

  /// Makes `uri` fail every fetch (connection refused / timeout).
  void mark_unreachable(const std::string& uri);

  /// Installs (or replaces) a fault schedule for `uri`. The URI keeps
  /// whatever certificate it serves; the fault applies on top.
  void inject_fault(const std::string& uri, FaultSpec fault);

  /// Installs the same fault schedule on every published URI — the chaos
  /// campaign's "the whole AIA web is degraded" mode.
  void inject_fault_all(FaultSpec fault);

  /// Removes every injected fault (published material is untouched).
  void clear_faults();

  /// Fetches the certificate at `uri`, updating statistics. Safe to call
  /// concurrently from any number of analysis threads (the repository is
  /// internally synchronized; the parallel engine shares one repository
  /// across its whole worker pool). The policy overload retries injected
  /// transient failures with capped exponential backoff until the retry
  /// cap or the (simulated) deadline is exhausted; the no-argument form
  /// is the historical single attempt.
  Result<x509::CertPtr> fetch(const std::string& uri);
  Result<x509::CertPtr> fetch(const std::string& uri,
                              const FetchPolicy& policy);

  /// True if the URI has a live (reachable) certificate.
  bool reachable(const std::string& uri) const;

  /// Snapshot of the fetch counters (consistent even mid-sweep).
  FetchStats stats() const;
  void reset_stats();

  std::size_t published_count() const;

  /// Every entry's durable state in deterministic (map) order — what the
  /// packed-corpus writer persists so a later mmap sweep can rebuild an
  /// identically-behaving repository via replay_snapshot().
  std::vector<AiaEntrySnapshot> snapshot_entries() const;

  /// Re-applies a snapshot: publishes each certificate and re-marks
  /// unreachable URIs. Entries merge over whatever is already present
  /// (later publishes overwrite, matching publish() semantics).
  void replay_snapshot(const std::vector<AiaEntrySnapshot>& entries);

 private:
  struct Entry {
    x509::CertPtr cert;
    bool unreachable = false;
    FaultSpec fault;
  };

  /// One attempt under the lock; `attempt` indexes the attempts of the
  /// enclosing fetch() call (drives the transient-failure schedule).
  Result<x509::CertPtr> attempt_locked(const std::string& uri, int attempt);

  /// True for failure codes a retry can plausibly cure.
  static bool is_transient(const Error& error);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  FetchStats stats_;
  std::uint64_t latency_ms_;
};

}  // namespace chainchaos::net
