#include "support/bytes.hpp"

#include <array>
#include <cstring>

namespace chainchaos {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

std::string hex_encode(BytesView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

namespace {

int hex_digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<Bytes> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_digit_value(hex[i]);
    const int lo = hex_digit_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

namespace {

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int, 256> build_b64_reverse() {
  std::array<int, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kB64Alphabet[i])] = i;
  }
  return rev;
}

}  // namespace

std::string base64_encode(BytesView b) {
  std::string out;
  out.reserve((b.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= b.size()) {
    const std::uint32_t n = (static_cast<std::uint32_t>(b[i]) << 16) |
                            (static_cast<std::uint32_t>(b[i + 1]) << 8) |
                            b[i + 2];
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back(kB64Alphabet[n & 63]);
    i += 3;
  }
  const std::size_t rem = b.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(b[i]) << 16;
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(b[i]) << 16) |
                            (static_cast<std::uint32_t>(b[i + 1]) << 8);
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::optional<Bytes> base64_decode(std::string_view text) {
  static const std::array<int, 256> kRev = build_b64_reverse();
  if (text.size() % 4 != 0) return std::nullopt;
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last group's final two positions.
        if (i + 4 != text.size() || j < 2) return std::nullopt;
        vals[j] = 0;
        ++pad;
      } else {
        if (pad > 0) return std::nullopt;  // data after padding
        vals[j] = kRev[static_cast<unsigned char>(c)];
        if (vals[j] < 0) return std::nullopt;
      }
    }
    const std::uint32_t n = (static_cast<std::uint32_t>(vals[0]) << 18) |
                            (static_cast<std::uint32_t>(vals[1]) << 12) |
                            (static_cast<std::uint32_t>(vals[2]) << 6) |
                            static_cast<std::uint32_t>(vals[3]);
    out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n & 0xff));
  }
  return out;
}

void append(Bytes& head, BytesView tail) {
  head.insert(head.end(), tail.begin(), tail.end());
}

bool equal(BytesView a, BytesView b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

}  // namespace chainchaos
