// ClientProfile: the 8 TLS implementations studied by the paper, each
// expressed as a BuildPolicy over the shared PathBuilder engine.
//
// Knob values are set directly from the paper's findings:
//   Table 9 rows  — capabilities, priorities, length limits;
//   §5.1 text     — Firefox's intermediate cache, GnuTLS's input-list
//                   (rather than constructed-depth) limit;
//   §5.2 findings — backtracking present in CryptoAPI and the browsers,
//                   absent in OpenSSL/GnuTLS/MbedTLS (finding I-3).
//
// Versions pinned by the study: OpenSSL 3.0.2, GnuTLS 3.7.3,
// MbedTLS 3.5.2, CryptoAPI 10.0.19041, Chrome 128, Edge 128, Safari 17.4,
// Firefox 126.
#pragma once

#include <string>
#include <vector>

#include "pathbuild/policy.hpp"

namespace chainchaos::clients {

enum class ClientKind {
  kOpenSsl,
  kGnuTls,
  kMbedTls,
  kCryptoApi,
  kChrome,
  kEdge,
  kSafari,
  kFirefox,
};

struct ClientProfile {
  ClientKind kind;
  std::string name;
  bool is_browser;
  pathbuild::BuildPolicy policy;
};

/// The profile for one client.
ClientProfile make_profile(ClientKind kind);

/// All 8 profiles in Table 9 column order (libraries then browsers).
std::vector<ClientProfile> all_profiles();

/// The 4 libraries / the 4 browsers.
std::vector<ClientProfile> library_profiles();
std::vector<ClientProfile> browser_profiles();

}  // namespace chainchaos::clients
