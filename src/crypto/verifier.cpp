#include "crypto/verifier.hpp"

#include <atomic>
#include <cstring>

#include "crypto/sha256.hpp"
#include "obs/trace.hpp"

namespace chainchaos::crypto {

const char* to_string(SignatureAlgorithm algorithm) {
  switch (algorithm) {
    case SignatureAlgorithm::kRsaSha256: return "rsa-sha256";
  }
  return "?";
}

// ---- memo ----------------------------------------------------------------

VerifyMemo::VerifyMemo(std::size_t max_entries_per_shard)
    : max_entries_per_shard_(max_entries_per_shard > 0 ? max_entries_per_shard
                                                       : 1) {}

std::size_t VerifyMemo::KeyHash::operator()(const Bytes& key) const {
  std::uint64_t h = 0;
  std::memcpy(&h, key.data(), std::min<std::size_t>(sizeof h, key.size()));
  return static_cast<std::size_t>(h);
}

std::optional<bool> VerifyMemo::lookup(const Bytes& key) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shards_[key.back() % kShardCount];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void VerifyMemo::insert(const Bytes& key, bool verified) {
  Shard& shard = shards_[key.back() % kShardCount];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.entries.size() >= max_entries_per_shard_) {
    // Wholesale shard clear: correctness never depends on retention,
    // and clearing beats per-entry LRU bookkeeping on the hot path.
    evictions_.fetch_add(shard.entries.size(), std::memory_order_relaxed);
    shard.entries.clear();
  }
  if (shard.entries.emplace(key, verified).second) {
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }
}

VerifyMemoStats VerifyMemo::stats() const {
  VerifyMemoStats out;
  out.lookups = lookups_.load(std::memory_order_relaxed);
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = out.lookups - out.hits;
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.entries += shard.entries.size();
  }
  return out;
}

void VerifyMemo::reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
  }
  lookups_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

VerifyMemo& process_verify_memo() {
  static VerifyMemo memo;
  return memo;
}

// ---- memo scoping --------------------------------------------------------

namespace {

// The active scope, per thread. `active` distinguishes "no scope, use
// the process memo" from "scope over nullptr, memoization off".
thread_local VerifyMemo* t_scope_memo = nullptr;
thread_local bool t_scope_active = false;

// Computation counters (process-wide; relaxed sums, mergeable by
// construction like every other stats block in the tree).
std::atomic<std::uint64_t> g_verifications{0};
std::atomic<std::uint64_t> g_montgomery{0};
std::atomic<std::uint64_t> g_classic{0};

// Bench/CI hook; see Verifier::set_force_classic.
std::atomic<bool> g_force_classic{false};

}  // namespace

VerifyMemoScope::VerifyMemoScope(VerifyMemo* memo)
    : previous_memo_(t_scope_memo), previous_active_(t_scope_active) {
  t_scope_memo = memo;
  t_scope_active = true;
}

VerifyMemoScope::~VerifyMemoScope() {
  t_scope_memo = previous_memo_;
  t_scope_active = previous_active_;
}

// ---- verifier ------------------------------------------------------------

Verifier Verifier::current() {
  return Verifier(t_scope_active ? t_scope_memo : &process_verify_memo());
}

namespace {

// The actual RSA check, memo-blind, over the precomputed SHA-256 of
// the message (the caller shares that digest with the memo key, so the
// message is hashed exactly once per verify). Hostile parsed SPKIs can
// carry any (n, e) — including n of 0, 1 or even — so every branch
// degrades to "signature does not verify" rather than throwing into
// the sweep.
bool verify_rsa(const RsaPublicKey& key, const Bytes& digest,
                BytesView signature) {
  g_verifications.fetch_add(1, std::memory_order_relaxed);
  const std::size_t width = key.modulus_bytes();
  if (signature.size() != width) return false;
  if (width < Sha256::kDigestSize + 11) return false;  // modulus too small
  const BigInt s = BigInt::from_bytes(signature);
  if (s >= key.n) return false;

  const detail::RsaKeyAccel& accel = key.accel();
  BigInt m;
  if (accel.mont.has_value() &&
      !g_force_classic.load(std::memory_order_relaxed)) {
    g_montgomery.fetch_add(1, std::memory_order_relaxed);
    m = accel.mont->pow(s, key.e);
  } else {
    g_classic.fetch_add(1, std::memory_order_relaxed);
    m = BigInt::mod_pow_classic(s, key.e, key.n);
  }
  const Bytes expected = rsa_pad_digest(digest, width);
  return equal(m.to_bytes_padded(width), expected);
}

// Memo key: SHA-256(TBS) || key fingerprint || signature — a plain
// concatenation, not another hash pass. The first two parts are
// fixed-width digests and the signature is the remainder, so the key
// is injective over the triple, and skipping a second SHA-256 keeps
// the lookup far cheaper than the modexp it may save. The signature
// bytes are part of the key on purpose — see the VerifyMemo class
// comment for why a signature-blind key would break determinism.
Bytes memo_key(const PublicKey& key, const Bytes& digest,
               BytesView signature) {
  const Bytes& fingerprint = key.fingerprint();
  Bytes out;
  out.reserve(digest.size() + fingerprint.size() + signature.size());
  append(out, digest);
  append(out, fingerprint);
  append(out, signature);
  return out;
}

}  // namespace

bool Verifier::verify(const PublicKey& key, BytesView message,
                      BytesView signature) const {
  CHAINCHAOS_SPAN(obs::Stage::kCryptoVerify);
  switch (key.algorithm()) {
    case SignatureAlgorithm::kRsaSha256:
      break;  // handled below; future families branch here
  }
  const Bytes digest = Sha256::digest(message);
  if (memo_ == nullptr) return verify_rsa(key.rsa(), digest, signature);

  const Bytes cache_key = memo_key(key, digest, signature);
  if (const std::optional<bool> hit = memo_->lookup(cache_key)) return *hit;
  const bool verified = verify_rsa(key.rsa(), digest, signature);
  memo_->insert(cache_key, verified);
  return verified;
}

VerifierStats Verifier::computation_stats() {
  VerifierStats out;
  out.verifications = g_verifications.load(std::memory_order_relaxed);
  out.montgomery = g_montgomery.load(std::memory_order_relaxed);
  out.classic = g_classic.load(std::memory_order_relaxed);
  return out;
}

void Verifier::reset_computation_stats() {
  g_verifications.store(0, std::memory_order_relaxed);
  g_montgomery.store(0, std::memory_order_relaxed);
  g_classic.store(0, std::memory_order_relaxed);
}

void Verifier::set_force_classic(bool force) {
  g_force_classic.store(force, std::memory_order_relaxed);
}

VerifySnapshot verify_snapshot() {
  VerifySnapshot out;
  out.memo = process_verify_memo().stats();
  out.computation = Verifier::computation_stats();
  return out;
}

// The legacy free function, now a shim over the Verifier front door so
// existing callers (tests, benches) share the fast path and the memo.
bool rsa_verify(const RsaPublicKey& key, BytesView message,
                BytesView signature) {
  return Verifier::current().verify(PublicKey(key), message, signature);
}

}  // namespace chainchaos::crypto
