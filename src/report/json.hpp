// Minimal streaming JSON writer for the machine-readable reporters
// (chainlint's --json output). Emits compact, RFC 8259-conformant JSON;
// the caller is responsible for well-formed nesting (begin/end pairs and
// key-before-value inside objects), which debug builds assert.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace chainchaos::report {

/// Escapes `s` for use inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next call must write its value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(std::uint64_t n);
  JsonWriter& value(std::int64_t n);
  JsonWriter& value(int n) { return value(static_cast<std::int64_t>(n)); }
  JsonWriter& value(double d);  ///< non-finite values emit null
  JsonWriter& value(bool b);
  JsonWriter& null();

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void before_value();

  std::string out_;
  /// One entry per open container: true after the first element (a comma
  /// is due before the next one).
  std::vector<bool> comma_due_;
  bool after_key_ = false;
};

}  // namespace chainchaos::report
