#include "chain/analyzer.hpp"

namespace chainchaos::chain {

ComplianceReport ComplianceAnalyzer::analyze(const ChainObservation& obs) const {
  const Topology topology = Topology::build(obs.certificates);
  return analyze(obs, topology);
}

ComplianceReport ComplianceAnalyzer::analyze(const ChainObservation& obs,
                                             const Topology& topology) const {
  ComplianceReport report;
  report.leaf_placement = classify_leaf_placement(obs.certificates, obs.domain);
  report.order = analyze_order(obs.certificates, topology);
  report.completeness = analyze_completeness(topology, options_);
  return report;
}

}  // namespace chainchaos::chain
