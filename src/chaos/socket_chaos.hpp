// chaos::run_socket_faults: transport-level hostility against a live
// chaind daemon.
//
// The mutation campaign (campaign.hpp) attacks the daemon with bytes it
// will happily read; this module attacks the way the bytes arrive. Four
// fault classes, each modelled on a real operational failure:
//
//   F1 slow-loris    — clients drip header bytes forever and never
//                      complete a frame,
//   F2 mid-frame     — a frame starts (headers + partial body), then the
//                      client goes silent,
//   F3 never-reading — clients pipeline a burst of requests and never
//                      read a byte of the responses (tiny SO_RCVBUF
//                      closes the flow-control window),
//   F4 storm         — a connection storm cycling clean close, RST
//                      (SO_LINGER 0) and garbage-then-close.
//
// The contract mirrors the event loop's robustness headline: every
// hostile connection must be evicted by the server's own deadlines
// within `eviction_budget_ms` — no cooperation from the peer — and a
// well-behaved probe client must get a 200 both while the faults are
// live and after they end.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace chainchaos::chaos {

struct SocketFaultOptions {
  std::uint16_t port = 0;  ///< daemon to attack (required)
  std::size_t clients = 8;             ///< hostile clients per class
  std::size_t storm_connections = 128; ///< F4 connect/abuse/close cycles
  int drip_interval_ms = 20;           ///< F1 inter-byte delay
  /// How long a hostile connection may survive before the class counts
  /// as a failure. Must exceed the daemon's read/write timeouts.
  int eviction_budget_ms = 8000;
};

struct SocketFaultReport {
  /// class name ("F1-slowloris"…) → outcome string, e.g.
  /// "evicted=8/8 healthy=ok". Deterministic when the daemon's deadlines
  /// fit inside the eviction budget.
  std::map<std::string, std::string> outcomes;
  std::size_t failures = 0;  ///< classes whose contract did not hold

  bool ok() const { return failures == 0; }
  std::string to_string() const;
};

/// Runs all four fault classes, in order, against 127.0.0.1:`port`.
/// Never throws; failures are reported in the result.
SocketFaultReport run_socket_faults(const SocketFaultOptions& options);

}  // namespace chainchaos::chaos
