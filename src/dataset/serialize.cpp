#include "dataset/serialize.hpp"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/str.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::dataset {

void export_corpus(const Corpus& corpus, std::ostream& out) {
  out << "#chainchaos-corpus v1 domains=" << corpus.records().size()
      << " seed=" << corpus.config().seed << "\n";
  for (const DomainRecord& record : corpus.records()) {
    out << "#domain " << record.observation.domain << "\t"
        << record.observation.ca_name << "\t"
        << record.observation.server_software << "\t"
        << to_string(record.primary_defect) << "\t"
        << to_string(record.leaf_defect) << "\t"
        << (record.root_included ? 1 : 0) << "\t"
        << (record.rare_hierarchy ? 1 : 0) << "\t"
        << (record.akidless_terminal ? 1 : 0) << "\t"
        << (record.exclusive_store_domain ? 1 : 0) << "\t"
        << record.missing_count << "\n";
    for (const x509::CertPtr& cert : record.observation.certificates) {
      out << x509::to_pem(*cert);
    }
  }
}

bool export_corpus_to_file(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  export_corpus(corpus, out);
  return static_cast<bool>(out);
}

Result<std::vector<ExportedRecord>> import_corpus(std::istream& in) {
  std::vector<ExportedRecord> records;
  ExportedRecord* current = nullptr;
  std::string line;
  std::string pem_accumulator;
  bool in_pem = false;

  const auto flush_pem = [&]() -> Result<bool> {
    if (pem_accumulator.empty()) return true;
    auto cert = x509::from_pem(pem_accumulator);
    if (!cert.ok()) return cert.error();
    if (current == nullptr) {
      return make_error("corpus.orphan_certificate",
                        "PEM block before any #domain line");
    }
    current->certificates.push_back(std::move(cert).value());
    pem_accumulator.clear();
    return true;
  };

  while (std::getline(in, line)) {
    if (starts_with(line, "#chainchaos-corpus")) continue;
    if (starts_with(line, "#domain ")) {
      if (in_pem) return make_error("corpus.truncated_pem", line);
      const std::vector<std::string> fields =
          split(line.substr(8), '\t');
      // 5 fields: historical bundles (labels default). 10: current.
      if (fields.size() != 5 && fields.size() != 10) {
        return make_error("corpus.bad_domain_line", line);
      }
      ExportedRecord record;
      record.domain = fields[0];
      record.ca_name = fields[1];
      record.server_software = fields[2];
      record.primary_defect = fields[3];
      record.leaf_defect = fields[4];
      if (fields.size() == 10) {
        const auto parse_bool = [](const std::string& s, bool& out) {
          if (s != "0" && s != "1") return false;
          out = s == "1";
          return true;
        };
        char* end = nullptr;
        const long missing = std::strtol(fields[9].c_str(), &end, 10);
        if (!parse_bool(fields[5], record.root_included) ||
            !parse_bool(fields[6], record.rare_hierarchy) ||
            !parse_bool(fields[7], record.akidless_terminal) ||
            !parse_bool(fields[8], record.exclusive_store_domain) ||
            end == fields[9].c_str() || *end != '\0' || missing < 0 ||
            missing > std::numeric_limits<int>::max()) {
          return make_error("corpus.bad_domain_line", line);
        }
        record.missing_count = static_cast<int>(missing);
      }
      records.push_back(std::move(record));
      current = &records.back();
      continue;
    }
    if (starts_with(line, "-----BEGIN CERTIFICATE-----")) {
      in_pem = true;
      pem_accumulator = line + "\n";
      continue;
    }
    if (in_pem) {
      pem_accumulator += line + "\n";
      if (starts_with(line, "-----END CERTIFICATE-----")) {
        in_pem = false;
        auto flushed = flush_pem();
        if (!flushed.ok()) return flushed.error();
      }
      continue;
    }
    if (!line.empty()) {
      return make_error("corpus.unexpected_line", line);
    }
  }
  if (in_pem) return make_error("corpus.truncated_pem", "EOF inside PEM");
  return records;
}

Result<std::vector<ExportedRecord>> import_corpus_from_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return make_error("corpus.io", "cannot open " + path);
  return import_corpus(in);
}

}  // namespace chainchaos::dataset
