#include "asn1/der.hpp"

#include <cassert>
#include <cstdio>

#include "support/str.hpp"

namespace chainchaos::asn1 {

Bytes encode_length(std::size_t length) {
  Bytes out;
  if (length < 0x80) {
    out.push_back(static_cast<std::uint8_t>(length));
    return out;
  }
  Bytes be;
  for (std::size_t v = length; v != 0; v >>= 8) {
    be.insert(be.begin(), static_cast<std::uint8_t>(v & 0xff));
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | be.size()));
  append(out, be);
  return out;
}

void DerWriter::add_tlv(std::uint8_t tag, BytesView body) {
  out_.push_back(tag);
  append(out_, encode_length(body.size()));
  append(out_, body);
}

void DerWriter::add_boolean(bool value) {
  const std::uint8_t body = value ? 0xff : 0x00;
  add_tlv(Tag::kBoolean, BytesView(&body, 1));
}

void DerWriter::add_integer(const crypto::BigInt& value) {
  Bytes body = value.to_bytes();
  // DER: positive integers need a leading zero if the high bit is set.
  if (body[0] & 0x80) body.insert(body.begin(), 0x00);
  add_tlv(Tag::kInteger, body);
}

void DerWriter::add_integer(std::uint64_t value) {
  add_integer(crypto::BigInt(value));
}

void DerWriter::add_bit_string(BytesView bits) {
  Bytes body;
  body.reserve(bits.size() + 1);
  body.push_back(0x00);  // zero unused bits
  append(body, bits);
  add_tlv(Tag::kBitString, body);
}

void DerWriter::add_octet_string(BytesView body) {
  add_tlv(Tag::kOctetString, body);
}

void DerWriter::add_null() {
  add_tlv(Tag::kNull, BytesView());
}

Bytes encode_oid_body(std::string_view dotted) {
  const std::vector<std::string> parts = split(dotted, '.');
  assert(parts.size() >= 2);
  Bytes body;
  const unsigned long first = std::stoul(parts[0]);
  const unsigned long second = std::stoul(parts[1]);
  assert(first <= 2 && second < 40 + (first == 2 ? 88 : 0));
  body.push_back(static_cast<std::uint8_t>(first * 40 + second));
  for (std::size_t i = 2; i < parts.size(); ++i) {
    unsigned long arc = std::stoul(parts[i]);
    Bytes enc;
    enc.push_back(static_cast<std::uint8_t>(arc & 0x7f));
    arc >>= 7;
    while (arc != 0) {
      enc.insert(enc.begin(), static_cast<std::uint8_t>(0x80 | (arc & 0x7f)));
      arc >>= 7;
    }
    append(body, enc);
  }
  return body;
}

void DerWriter::add_oid(std::string_view dotted) {
  add_tlv(Tag::kOid, encode_oid_body(dotted));
}

void DerWriter::add_utf8_string(std::string_view s) {
  add_tlv(Tag::kUtf8String, to_bytes(s));
}

void DerWriter::add_printable_string(std::string_view s) {
  add_tlv(Tag::kPrintableString, to_bytes(s));
}

namespace {

// Civil-time conversion (days since epoch -> y/m/d), Howard Hinnant's
// algorithm; avoids timezone-dependent libc calls.
void civil_from_days(std::int64_t z, int& y, unsigned& m, unsigned& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = doy - (153 * mp + 2) / 5 + 1;
  m = mp < 10 ? mp + 3 : mp - 9;
  y = static_cast<int>(yy + (m <= 2));
}

std::int64_t days_from_civil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

}  // namespace

void DerWriter::add_generalized_time(std::int64_t unix_seconds) {
  const std::int64_t days =
      unix_seconds >= 0 ? unix_seconds / 86400
                        : (unix_seconds - 86399) / 86400;
  std::int64_t secs = unix_seconds - days * 86400;
  int y;
  unsigned m, d;
  civil_from_days(days, y, m, d);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d%02u%02u%02lld%02lld%02lldZ", y, m, d,
                static_cast<long long>(secs / 3600),
                static_cast<long long>((secs % 3600) / 60),
                static_cast<long long>(secs % 60));
  add_tlv(Tag::kGeneralizedTime, to_bytes(buf));
}

void DerWriter::add_raw(BytesView tlv) {
  append(out_, tlv);
}

Bytes DerWriter::wrap_sequence() const {
  DerWriter outer;
  outer.add_tlv(Tag::kSequence, out_);
  return outer.take();
}

Result<std::uint8_t> DerReader::peek_tag() const {
  if (at_end()) return make_error("der.truncated", "no tag byte");
  return data_[pos_];
}

Result<DerElement> DerReader::read_any() {
  if (at_end()) return make_error("der.truncated", "no tag byte");
  const std::size_t start = pos_;
  DerElement elem;
  elem.tag = data_[pos_++];
  if (pos_ >= data_.size()) return make_error("der.truncated", "no length byte");
  std::size_t length = data_[pos_++];
  if (length & 0x80) {
    const std::size_t num_octets = length & 0x7f;
    if (num_octets == 0) {
      return make_error("der.bad_length", "indefinite length");
    }
    // No certificate structure approaches 4 GiB; rejecting >4-octet
    // lengths outright also keeps the accumulation below free of
    // overflow on every platform.
    if (num_octets > 4) {
      return make_error("der.bad_length", "length field exceeds 4 octets");
    }
    if (num_octets > data_.size() - pos_) {
      return make_error("der.truncated", "length octets");
    }
    // Leading-zero length octets (e.g. 82 00 85) are BER, not DER. The
    // default profile tolerates them when the resulting length still
    // needs long form (they round-trip safely; chainlint reports them as
    // cert.der_nonminimal_length); strict DER rejects them outright; the
    // BER profile additionally accepts long form below 0x80.
    if (profile_->length_rule == LengthRule::kStrictDer &&
        data_[pos_] == 0x00) {
      return make_error("der.bad_length", "leading-zero length octet");
    }
    length = 0;
    for (std::size_t i = 0; i < num_octets; ++i) {
      length = (length << 8) | data_[pos_++];
    }
    if (length < 0x80 && profile_->length_rule != LengthRule::kBer) {
      return make_error("der.bad_length", "non-minimal long-form length");
    }
  }
  if (length > data_.size() - pos_) {
    return make_error("der.truncated", "value octets");
  }
  elem.body.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                   data_.begin() + static_cast<std::ptrdiff_t>(pos_ + length));
  pos_ += length;
  elem.size = pos_ - start;
  return elem;
}

Result<DerElement> DerReader::read(std::uint8_t tag) {
  const std::size_t saved = pos_;
  Result<DerElement> elem = read_any();
  if (!elem.ok()) return elem;
  if (elem.value().tag != tag) {
    pos_ = saved;
    char msg[64];
    std::snprintf(msg, sizeof msg, "expected tag 0x%02x, found 0x%02x", tag,
                  elem.value().tag);
    return make_error("der.unexpected_tag", msg);
  }
  return elem;
}

Result<DerElement> DerReader::read(Tag tag) {
  return read(static_cast<std::uint8_t>(tag));
}

Result<bool> DerReader::read_boolean() {
  Result<DerElement> elem = read(Tag::kBoolean);
  if (!elem.ok()) return elem.error();
  if (elem.value().body.size() != 1) {
    return make_error("der.bad_boolean", "body must be one octet");
  }
  // X.690 §11.1: DER requires TRUE to be exactly 0xff. BER (and the
  // default profile, matching the historical reader) accepts any
  // non-zero octet.
  if (profile_->strict_boolean && elem.value().body[0] != 0x00 &&
      elem.value().body[0] != 0xff) {
    return make_error("der.bad_boolean", "DER TRUE must be 0xff");
  }
  return elem.value().body[0] != 0;
}

Result<crypto::BigInt> DerReader::read_integer() {
  Result<DerElement> elem = read(Tag::kInteger);
  if (!elem.ok()) return elem.error();
  const Bytes& body = elem.value().body;
  if (body.empty()) return make_error("der.bad_integer", "empty body");
  if (body[0] & 0x80) {
    return make_error("der.bad_integer", "negative integers unsupported");
  }
  return crypto::BigInt::from_bytes(body);
}

Result<Bytes> DerReader::read_bit_string() {
  Result<DerElement> elem = read(Tag::kBitString);
  if (!elem.ok()) return elem.error();
  const Bytes& body = elem.value().body;
  if (body.empty()) return make_error("der.bad_bit_string", "missing unused-bits");
  if (body[0] != 0) {
    return make_error("der.bad_bit_string", "partial bytes unsupported");
  }
  return Bytes(body.begin() + 1, body.end());
}

Result<Bytes> DerReader::read_octet_string() {
  Result<DerElement> elem = read(Tag::kOctetString);
  if (!elem.ok()) return elem.error();
  return std::move(elem.value().body);
}

Result<std::string> decode_oid_body(BytesView body) {
  if (body.empty()) return make_error("der.bad_oid", "empty body");
  std::string out;
  const unsigned first_two = body[0];
  const unsigned first = first_two < 80 ? first_two / 40 : 2;
  const unsigned second = first_two - first * 40;
  out = std::to_string(first) + "." + std::to_string(second);
  std::uint64_t arc = 0;
  for (std::size_t i = 1; i < body.size(); ++i) {
    arc = (arc << 7) | (body[i] & 0x7f);
    if (!(body[i] & 0x80)) {
      out += "." + std::to_string(arc);
      arc = 0;
    } else if (i + 1 == body.size()) {
      return make_error("der.bad_oid", "truncated arc");
    }
  }
  return out;
}

Result<bool> check_nesting(BytesView der, std::size_t max_depth) {
  // Explicit stack of "end offsets" of the constructed values the cursor
  // is currently inside; its size is the nesting depth. Lengths are read
  // with the same tolerances as read_any() so the two walkers agree on
  // framing; anything read_any() would reject is simply skipped here.
  std::vector<std::size_t> ends;
  std::size_t pos = 0;
  while (pos < der.size() || !ends.empty()) {
    while (!ends.empty() && pos >= ends.back()) ends.pop_back();
    if (pos >= der.size()) break;
    const std::uint8_t tag = der[pos++];
    if ((tag & 0x1f) == 0x1f) {  // multi-byte tag number
      while (pos < der.size() && (der[pos] & 0x80)) ++pos;
      if (pos++ >= der.size()) return true;
    }
    if (pos >= der.size()) return true;
    std::size_t length = der[pos++];
    if (length & 0x80) {
      const std::size_t num_octets = length & 0x7f;
      if (num_octets == 0 || num_octets > 4 ||
          num_octets > der.size() - pos) {
        return true;  // indefinite/oversized/truncated: the reader's call
      }
      length = 0;
      for (std::size_t i = 0; i < num_octets; ++i) {
        length = (length << 8) | der[pos++];
      }
    }
    if (length > der.size() - pos) return true;  // truncated value
    if (tag & 0x20) {  // constructed: descend
      if (ends.size() + 1 > max_depth) {
        return make_error("der.too_deep",
                          "TLV nesting exceeds depth cap of " +
                              std::to_string(max_depth));
      }
      ends.push_back(pos + length);
    } else {
      pos += length;
    }
  }
  return true;
}

Result<std::string> DerReader::read_oid() {
  Result<DerElement> elem = read(Tag::kOid);
  if (!elem.ok()) return elem.error();
  return decode_oid_body(elem.value().body);
}

namespace {

/// X.680 §41.4: the PrintableString alphabet.
bool is_printable_char(std::uint8_t c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == ' ' || c == '\'' || c == '(' ||
         c == ')' || c == '+' || c == ',' || c == '-' || c == '.' ||
         c == '/' || c == ':' || c == '=' || c == '?';
}

/// Structural UTF-8 well-formedness (RFC 3629): sequence lengths,
/// continuation bytes, no overlongs, no surrogates, <= U+10FFFF.
bool is_valid_utf8(BytesView body) {
  std::size_t i = 0;
  while (i < body.size()) {
    const std::uint8_t b = body[i];
    std::size_t len;
    std::uint32_t cp;
    if (b < 0x80) { ++i; continue; }
    if ((b & 0xe0) == 0xc0) { len = 2; cp = b & 0x1f; }
    else if ((b & 0xf0) == 0xe0) { len = 3; cp = b & 0x0f; }
    else if ((b & 0xf8) == 0xf0) { len = 4; cp = b & 0x07; }
    else return false;
    if (i + len > body.size()) return false;
    for (std::size_t k = 1; k < len; ++k) {
      if ((body[i + k] & 0xc0) != 0x80) return false;
      cp = (cp << 6) | (body[i + k] & 0x3f);
    }
    if (len == 2 && cp < 0x80) return false;
    if (len == 3 && cp < 0x800) return false;
    if (len == 4 && cp < 0x10000) return false;
    if (cp > 0x10ffff || (cp >= 0xd800 && cp <= 0xdfff)) return false;
    i += len;
  }
  return true;
}

/// Legacy directory-string tags some parsers map through verbatim
/// (TeletexString, VideotexString, UniversalString, BMPString).
bool is_legacy_string_tag(std::uint8_t tag) {
  return tag == 0x14 || tag == 0x15 || tag == 0x1c || tag == 0x1e;
}

}  // namespace

Result<std::string> DerReader::read_string() {
  Result<DerElement> elem = read_any();
  if (!elem.ok()) return elem.error();
  const DerElement& e = elem.value();
  const bool standard = e.is(Tag::kUtf8String) ||
                        e.is(Tag::kPrintableString) || e.is(Tag::kIa5String);
  if (!standard &&
      !(profile_->extra_string_tags && is_legacy_string_tag(e.tag))) {
    return make_error("der.unexpected_tag", "expected a string type");
  }
  if (profile_->validate_printable_charset && e.is(Tag::kPrintableString)) {
    for (std::uint8_t c : e.body) {
      if (!is_printable_char(c)) {
        return make_error("der.bad_string",
                          "byte outside the PrintableString alphabet");
      }
    }
  }
  if (profile_->validate_utf8 && e.is(Tag::kUtf8String) &&
      !is_valid_utf8(e.body)) {
    return make_error("der.bad_string", "malformed UTF-8");
  }
  return to_string(e.body);
}

Result<std::int64_t> DerReader::read_generalized_time() {
  Result<DerElement> elem = read(Tag::kGeneralizedTime);
  if (!elem.ok()) return elem.error();
  const std::string text = to_string(elem.value().body);
  if (text.size() != 15 || text.back() != 'Z') {
    return make_error("der.bad_time", "expected YYYYMMDDHHMMSSZ");
  }
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') {
      return make_error("der.bad_time", "non-digit in time");
    }
  }
  const int y = std::stoi(text.substr(0, 4));
  const unsigned mo = static_cast<unsigned>(std::stoi(text.substr(4, 2)));
  const unsigned d = static_cast<unsigned>(std::stoi(text.substr(6, 2)));
  const int h = std::stoi(text.substr(8, 2));
  const int mi = std::stoi(text.substr(10, 2));
  const int s = std::stoi(text.substr(12, 2));
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h > 23 || mi > 59 || s > 60) {
    return make_error("der.bad_time", "field out of range");
  }
  return days_from_civil(y, mo, d) * 86400 + h * 3600 + mi * 60 + s;
}

namespace {

/// Time-text parser behind read_time() for the lax syntaxes the strict
/// GeneralizedTime reader rejects: UTCTime two-digit years (pivoted),
/// omitted seconds, fractional seconds (floored), explicit ±HHMM
/// offsets. Only consulted when a profile enables at least one of them.
Result<std::int64_t> parse_time_text(const std::string& text,
                                     const ParseProfile& p, bool utc) {
  std::size_t i = 0;
  const auto digits = [&](std::size_t n, int* out) -> bool {
    if (i + n > text.size()) return false;
    int v = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const char c = text[i + k];
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
    }
    i += n;
    *out = v;
    return true;
  };
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  if (utc) {
    int yy = 0;
    if (!digits(2, &yy)) return make_error("der.bad_time", "bad UTCTime year");
    y = yy < p.utc_pivot_year ? 2000 + yy : 1900 + yy;
  } else if (!digits(4, &y)) {
    return make_error("der.bad_time", "bad year");
  }
  if (!digits(2, &mo) || !digits(2, &d) || !digits(2, &h) || !digits(2, &mi)) {
    return make_error("der.bad_time", "bad date/time digits");
  }
  if (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    if (!digits(2, &s)) return make_error("der.bad_time", "bad seconds");
  } else if (!p.allow_missing_seconds) {
    return make_error("der.bad_time", "seconds field required");
  }
  if (i < text.size() && text[i] == '.') {
    if (utc || !p.allow_fractional_seconds) {
      return make_error("der.bad_time", "fractional seconds not accepted");
    }
    ++i;
    std::size_t frac_digits = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      ++i;
      ++frac_digits;
    }
    if (frac_digits == 0) return make_error("der.bad_time", "empty fraction");
    // The fraction itself is floored away: validity is whole seconds.
  }
  std::int64_t offset_seconds = 0;
  if (i < text.size() && text[i] == 'Z') {
    ++i;
  } else if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
    if (!p.allow_time_offsets) {
      return make_error("der.bad_time", "explicit offset not accepted");
    }
    const bool negative = text[i] == '-';
    ++i;
    int oh = 0, om = 0;
    if (!digits(2, &oh) || !digits(2, &om) || oh > 23 || om > 59) {
      return make_error("der.bad_time", "bad offset");
    }
    offset_seconds =
        static_cast<std::int64_t>(negative ? -1 : 1) * (oh * 3600 + om * 60);
  } else {
    return make_error("der.bad_time", "missing Z or offset");
  }
  if (i != text.size()) {
    return make_error("der.bad_time", "trailing characters");
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h > 23 || mi > 59 || s > 60) {
    return make_error("der.bad_time", "field out of range");
  }
  return days_from_civil(y, static_cast<unsigned>(mo),
                         static_cast<unsigned>(d)) *
             86400 +
         h * 3600 + mi * 60 + s - offset_seconds;
}

}  // namespace

Result<std::int64_t> DerReader::read_time() {
  const ParseProfile& p = *profile_;
  const Result<std::uint8_t> tag = peek_tag();
  if (tag.ok() && tag.value() == static_cast<std::uint8_t>(Tag::kUtcTime) &&
      p.accept_utc_time) {
    Result<DerElement> elem = read(Tag::kUtcTime);
    if (!elem.ok()) return elem.error();
    return parse_time_text(to_string(elem.value().body), p, /*utc=*/true);
  }
  if (!p.allow_missing_seconds && !p.allow_time_offsets &&
      !p.allow_fractional_seconds) {
    // No laxness in play: exactly the historical strict reader (same
    // outcomes, same error codes and messages — an unexpected UTCTime
    // still reports der.unexpected_tag here).
    return read_generalized_time();
  }
  Result<DerElement> elem = read(Tag::kGeneralizedTime);
  if (!elem.ok()) return elem.error();
  return parse_time_text(to_string(elem.value().body), p, /*utc=*/false);
}

}  // namespace chainchaos::asn1
