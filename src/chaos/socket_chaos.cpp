#include "chaos/socket_chaos.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"

namespace chainchaos::chaos {

namespace {

using Clock = std::chrono::steady_clock;

int dial(std::uint16_t port, int rcvbuf = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (rcvbuf > 0) {
    // Before connect, so the tiny buffer caps the advertised window.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads (and discards) until the peer closes or the budget runs out.
/// True = the server terminated the connection within the budget.
bool drain_until_closed(int fd, Clock::time_point deadline) {
  char scrap[4096];
  while (Clock::now() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return true;  // fd itself broke: the connection is gone
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, scrap, sizeof scrap, 0);
    if (n == 0) return true;  // FIN
    if (n < 0 && errno != EINTR && errno != EAGAIN) return true;  // RST
  }
  return false;
}

/// A 200 from /healthz on a fresh, well-behaved connection.
bool probe_healthy(std::uint16_t port) {
  service::Client client(port, /*timeout_ms=*/3000);
  const auto health = client.healthz();
  return health.ok() && health.value().status == 200;
}

std::string outcome_line(std::size_t evicted, std::size_t total,
                         bool healthy) {
  return "evicted=" + std::to_string(evicted) + "/" + std::to_string(total) +
         (healthy ? " healthy=ok" : " healthy=FAILED");
}

// --- F1: slow-loris --------------------------------------------------------
//
// Every client opens a request line, then drips one header byte per
// interval, forever. The frame never completes, so the server's read
// deadline (anchored at the frame's first byte, immune to the drip) must
// evict each one. A probe runs mid-drip: the event loop must keep serving
// well-behaved clients while the loris connections are live.
std::string run_slowloris(const SocketFaultOptions& options,
                          std::size_t& failures) {
  struct Loris {
    int fd = -1;
    std::size_t pos = 0;
    bool dead = false;
  };
  const std::string opener = "POST /v1/analyze HTTP/1.1\r\n";
  const std::string drip = "x-chaos-pad: aaaaaaaa\r\n";

  std::vector<Loris> clients(options.clients);
  for (Loris& loris : clients) {
    loris.fd = dial(options.port);
    if (loris.fd < 0 || !send_all(loris.fd, opener)) {
      if (loris.fd >= 0) ::close(loris.fd);
      loris.fd = -1;
      loris.dead = true;  // could not even start; counts as not evicted
    }
  }

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options.eviction_budget_ms);
  const auto probe_at =
      Clock::now() + std::chrono::milliseconds(options.eviction_budget_ms / 4);
  bool probed = false;
  bool healthy_during = true;
  std::size_t evicted = 0;

  while (Clock::now() < deadline && evicted < options.clients) {
    for (Loris& loris : clients) {
      if (loris.dead) continue;
      // Detect the server-side close first…
      pollfd pfd{loris.fd, POLLIN, 0};
      if (::poll(&pfd, 1, 0) > 0) {
        char scrap[64];
        const ssize_t n = ::recv(loris.fd, scrap, sizeof scrap, 0);
        if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
          ::close(loris.fd);
          loris.dead = true;
          ++evicted;
          continue;
        }
      }
      // …then drip the next byte. EPIPE/ECONNRESET also means evicted.
      const char byte = drip[loris.pos % drip.size()];
      // Never complete "\r\n\r\n": skip the final byte of the pad line's
      // CRLF so the header block stays open. (The pad line alone cannot
      // terminate the frame — a lone "\r\n" would — so dripping the full
      // cycle is safe; this is belt and braces.)
      const ssize_t n = ::send(loris.fd, &byte, 1, MSG_NOSIGNAL);
      if (n < 0 && errno != EINTR && errno != EAGAIN) {
        ::close(loris.fd);
        loris.dead = true;
        ++evicted;
        continue;
      }
      loris.pos++;
    }
    if (!probed && Clock::now() >= probe_at) {
      probed = true;
      healthy_during = probe_healthy(options.port);
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.drip_interval_ms));
  }
  for (Loris& loris : clients) {
    if (!loris.dead && loris.fd >= 0) ::close(loris.fd);
  }
  if (!probed) healthy_during = probe_healthy(options.port);

  const bool healthy = healthy_during && probe_healthy(options.port);
  if (evicted < options.clients || !healthy) ++failures;
  return outcome_line(evicted, options.clients, healthy);
}

// --- F2: mid-frame stall ---------------------------------------------------
//
// The frame starts honestly — request line, headers, a Content-Length of
// 4096 — and 100 body bytes arrive. Then nothing. The read deadline must
// fire even though the connection "looked" productive.
std::string run_midframe_stall(const SocketFaultOptions& options,
                               std::size_t& failures) {
  const std::string stalled =
      "POST /v1/analyze HTTP/1.1\r\nhost: chaos\r\n"
      "content-length: 4096\r\n\r\n" +
      std::string(100, 'b');

  std::vector<int> fds;
  for (std::size_t i = 0; i < options.clients; ++i) {
    const int fd = dial(options.port);
    if (fd < 0) continue;
    send_all(fd, stalled);
    fds.push_back(fd);
  }

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options.eviction_budget_ms);
  std::size_t evicted = 0;
  for (const int fd : fds) {
    // The evictions run concurrently server-side (all frames anchored at
    // roughly the same instant), so one shared deadline covers them all.
    if (drain_until_closed(fd, deadline)) ++evicted;
    ::close(fd);
  }

  const bool healthy = probe_healthy(options.port);
  if (evicted < fds.size() || fds.size() < options.clients || !healthy) {
    ++failures;
  }
  return outcome_line(evicted, options.clients, healthy);
}

// --- F3: never-reading client ---------------------------------------------
//
// Pipelines a burst of /v1/metrics requests through a window capped by a
// tiny SO_RCVBUF and never reads. The server must cut the connection on
// its own — by the write deadline once its send buffer jams, or by the
// idle deadline if the kernel absorbed everything — without ever
// blocking the event loop.
std::string run_never_reading(const SocketFaultOptions& options,
                              std::size_t& failures) {
  std::string burst;
  for (int i = 0; i < 256; ++i) {
    burst += "GET /v1/metrics HTTP/1.1\r\nhost: chaos\r\n\r\n";
  }

  std::vector<int> fds;
  for (std::size_t i = 0; i < options.clients; ++i) {
    const int fd = dial(options.port, /*rcvbuf=*/1024);
    if (fd < 0) continue;
    send_all(fd, burst);
    fds.push_back(fd);
  }

  // Stay deaf while the server's deadlines do their work, then drain to
  // observe the close. (Draining earlier would reopen the flow-control
  // window and defeat the fault.)
  std::this_thread::sleep_for(
      std::chrono::milliseconds(options.eviction_budget_ms / 4));
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options.eviction_budget_ms);
  std::size_t evicted = 0;
  for (const int fd : fds) {
    if (drain_until_closed(fd, deadline)) ++evicted;
    ::close(fd);
  }

  const bool healthy = probe_healthy(options.port);
  if (evicted < fds.size() || fds.size() < options.clients || !healthy) {
    ++failures;
  }
  return outcome_line(evicted, options.clients, healthy);
}

// --- F4: connection storm --------------------------------------------------
//
// Rapid connect/abuse/close cycles: a third close cleanly, a third turn
// close() into RST (SO_LINGER 0), a third send TLS-looking garbage
// first. The daemon must absorb all of it and keep serving.
std::string run_storm(const SocketFaultOptions& options,
                      std::size_t& failures) {
  std::size_t stormed = 0;
  for (std::size_t i = 0; i < options.storm_connections; ++i) {
    const int fd = dial(options.port);
    if (fd < 0) continue;
    switch (i % 3) {
      case 0:
        break;  // connect + immediate clean close
      case 1: {
        struct linger hard_reset = {1, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset,
                     sizeof hard_reset);
        break;
      }
      case 2:
        send_all(fd, std::string("\x16\x03\x01garbage-not-http\r\n", 21));
        break;
    }
    ::close(fd);
    ++stormed;
  }

  const bool healthy = probe_healthy(options.port);
  if (stormed < options.storm_connections || !healthy) ++failures;
  return "stormed=" + std::to_string(stormed) + "/" +
         std::to_string(options.storm_connections) +
         (healthy ? " healthy=ok" : " healthy=FAILED");
}

}  // namespace

SocketFaultReport run_socket_faults(const SocketFaultOptions& options) {
  SocketFaultReport report;
  if (options.port == 0) {
    report.failures = 1;
    report.outcomes["error"] = "no daemon port";
    return report;
  }
  report.outcomes["F1-slowloris"] = run_slowloris(options, report.failures);
  report.outcomes["F2-midframe-stall"] =
      run_midframe_stall(options, report.failures);
  report.outcomes["F3-never-reading"] =
      run_never_reading(options, report.failures);
  report.outcomes["F4-storm"] = run_storm(options, report.failures);
  return report;
}

std::string SocketFaultReport::to_string() const {
  std::string out;
  for (const auto& [name, outcome] : outcomes) {
    out += name + ": " + outcome + "\n";
  }
  out += failures == 0 ? "socket_faults=ok\n" : "socket_faults=VIOLATED\n";
  return out;
}

}  // namespace chainchaos::chaos
