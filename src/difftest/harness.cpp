#include "difftest/harness.hpp"

namespace chainchaos::difftest {

using clients::ClientKind;
using pathbuild::BuildResult;
using pathbuild::BuildStatus;
using pathbuild::PathBuilder;

const char* to_string(Finding finding) {
  switch (finding) {
    case Finding::kNone: return "none";
    case Finding::kI1_OrderReorganization:
      return "I-1 order reorganization missing";
    case Finding::kI2_LongChain: return "I-2 input list too long";
    case Finding::kI3_Backtracking: return "I-3 backtracking missing";
    case Finding::kI4_AiaCompletion: return "I-4 AIA completion missing";
    case Finding::kOther: return "other";
  }
  return "?";
}

DifferentialHarness::DifferentialHarness(
    dataset::Corpus& corpus, std::vector<clients::ClientProfile> profiles)
    : corpus_(corpus), profiles_(std::move(profiles)) {
  caches_.resize(profiles_.size());
}

void DifferentialHarness::seed_intermediate_caches() {
  for (std::size_t p = 0; p < profiles_.size(); ++p) {
    if (!profiles_[p].policy.intermediate_cache) continue;
    pathbuild::IntermediateCache& cache = caches_[p];
    for (const dataset::DomainRecord& record : corpus_.records()) {
      if (record.primary_defect != dataset::DefectType::kNone) continue;
      cache.remember_chain(record.observation.certificates);
    }
  }
}

DomainDiff DifferentialHarness::diff_one(
    const dataset::DomainRecord& record, std::size_t index,
    const std::vector<PathBuilder>& builders) const {
  DomainDiff diff;
  diff.record_index = index;
  diff.statuses.reserve(profiles_.size());

  std::vector<BuildResult> results;
  results.reserve(profiles_.size());
  for (std::size_t p = 0; p < profiles_.size(); ++p) {
    results.push_back(builders[p].build(record.observation.certificates,
                                        record.observation.domain));
    diff.statuses.push_back(results.back().status);
  }

  bool browsers_ok = true, browsers_fail = true;
  bool libraries_ok = true, libraries_fail = true;
  for (std::size_t p = 0; p < profiles_.size(); ++p) {
    const bool ok = results[p].ok();
    if (profiles_[p].is_browser) {
      browsers_ok &= ok;
      browsers_fail &= !ok;
    } else {
      libraries_ok &= ok;
      libraries_fail &= !ok;
    }
  }
  diff.all_browsers_ok = browsers_ok;
  diff.all_libraries_ok = libraries_ok;
  diff.browsers_disagree = !browsers_ok && !browsers_fail;
  diff.libraries_disagree = !libraries_ok && !libraries_fail;
  if (diff.browsers_disagree || diff.libraries_disagree) {
    diff.finding = classify(record, results);
  }
  return diff;
}

std::vector<DomainDiff> DifferentialHarness::run(
    const engine::ShardOptions& shards) {
  const std::vector<dataset::DomainRecord>& records = corpus_.records();
  std::vector<DomainDiff> out(records.size());

  // One set of builders serves every worker. The per-client caches that
  // persist across domains (the Firefox model) are whatever
  // seed_intermediate_caches() put there; during the sweep they are
  // frozen — cache learning is off — so each domain's verdicts depend
  // only on that seeded state, never on traversal order.
  std::vector<PathBuilder> builders;
  builders.reserve(profiles_.size());
  for (std::size_t p = 0; p < profiles_.size(); ++p) {
    builders.emplace_back(profiles_[p].policy, &corpus_.stores().union_store,
                          &corpus_.aia(), &caches_[p]);
    builders.back().set_cache_learning(false);
  }

  engine::for_each_shard(
      records.size(), shards,
      [&](std::size_t first, std::size_t last, unsigned /*worker*/) {
        for (std::size_t i = first; i < last; ++i) {
          out[i] = diff_one(records[i], i, builders);
        }
      });
  return out;
}

Finding DifferentialHarness::classify(
    const dataset::DomainRecord& record,
    const std::vector<BuildResult>& results) const {
  // Status per named client kind (absent kinds map to kOk so subset
  // harnesses still classify sensibly).
  const auto status_of = [&](ClientKind kind) {
    for (std::size_t p = 0; p < profiles_.size(); ++p) {
      if (profiles_[p].kind == kind) return results[p].status;
    }
    return BuildStatus::kOk;
  };

  const BuildStatus openssl = status_of(ClientKind::kOpenSsl);
  const BuildStatus gnutls = status_of(ClientKind::kGnuTls);
  const BuildStatus mbedtls = status_of(ClientKind::kMbedTls);
  const BuildStatus cryptoapi = status_of(ClientKind::kCryptoApi);
  const BuildStatus firefox = status_of(ClientKind::kFirefox);
  const BuildStatus chrome = status_of(ClientKind::kChrome);

  // I-2: GnuTLS's input-list cap is its own status code.
  if (gnutls == BuildStatus::kInputListTooLong) return Finding::kI2_LongChain;

  // I-4: the AIA-capable clients succeed where the AIA-less fail with an
  // unknown issuer (libraries), or Firefox misses its cache (browsers).
  const bool aia_side_ok = cryptoapi == BuildStatus::kOk ||
                           chrome == BuildStatus::kOk;
  const bool aia_less_fail = openssl == BuildStatus::kNoIssuerFound ||
                             gnutls == BuildStatus::kNoIssuerFound ||
                             mbedtls == BuildStatus::kNoIssuerFound ||
                             firefox == BuildStatus::kNoIssuerFound;
  if (aia_side_ok && aia_less_fail &&
      dataset::is_completeness_defect(record.primary_defect)) {
    return Finding::kI4_AiaCompletion;
  }

  // I-3: non-backtracking clients stranded on an untrusted root while a
  // backtracking client succeeded.
  const bool stranded = openssl == BuildStatus::kUntrustedRoot ||
                        gnutls == BuildStatus::kUntrustedRoot;
  if (stranded && cryptoapi == BuildStatus::kOk) {
    return Finding::kI3_Backtracking;
  }

  // I-1: only MbedTLS (the no-reorder client) failed construction.
  const bool mbed_failed = pathbuild::is_construction_failure(mbedtls);
  const bool others_ok = openssl == BuildStatus::kOk &&
                         gnutls == BuildStatus::kOk &&
                         cryptoapi == BuildStatus::kOk;
  if (mbed_failed && others_ok) return Finding::kI1_OrderReorganization;

  return Finding::kOther;
}

DiffSummary DifferentialHarness::summarize(
    const std::vector<DomainDiff>& diffs) const {
  DiffSummary summary;
  summary.total_domains = diffs.size();
  summary.failures_per_client.assign(profiles_.size(), 0);

  for (const DomainDiff& diff : diffs) {
    const dataset::DomainRecord& record =
        corpus_.records()[diff.record_index];
    const bool noncompliant =
        dataset::is_order_defect(record.primary_defect) ||
        dataset::is_completeness_defect(record.primary_defect);

    for (std::size_t p = 0; p < profiles_.size(); ++p) {
      if (diff.statuses[p] != BuildStatus::kOk) {
        ++summary.failures_per_client[p];
      }
    }

    if (diff.browsers_disagree) ++summary.browser_discrepancies;
    if (diff.libraries_disagree) ++summary.library_discrepancies;
    if (diff.finding != Finding::kNone) ++summary.findings[diff.finding];

    if (!noncompliant) continue;
    ++summary.noncompliant_domains;
    if (diff.all_browsers_ok) ++summary.noncompliant_all_browsers_ok;
    if (diff.all_libraries_ok) ++summary.noncompliant_all_libraries_ok;

    bool any_library_fail = false, any_browser_fail = false;
    for (std::size_t p = 0; p < profiles_.size(); ++p) {
      if (diff.statuses[p] == BuildStatus::kOk) continue;
      if (profiles_[p].is_browser) {
        any_browser_fail = true;
      } else {
        any_library_fail = true;
      }
    }
    if (any_library_fail) ++summary.noncompliant_any_library_failure;
    if (any_browser_fail) ++summary.noncompliant_any_browser_failure;
  }
  return summary;
}

}  // namespace chainchaos::difftest
