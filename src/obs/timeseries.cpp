#include "obs/timeseries.hpp"

#include "report/json.hpp"

namespace chainchaos::obs {

TimeSeriesRing::TimeSeriesRing(std::vector<std::string> columns,
                               std::size_t window)
    : columns_(std::move(columns)), window_(window == 0 ? 1 : window) {
  ring_.resize(window_);
}

void TimeSeriesRing::push(std::uint64_t uptime_ms,
                          std::vector<std::uint64_t> values) {
  values.resize(columns_.size(), 0);
  std::lock_guard<std::mutex> lock(mutex_);
  Sample& slot = ring_[pushed_ % window_];
  slot.seq = pushed_;
  slot.uptime_ms = uptime_ms;
  slot.values = std::move(values);
  ++pushed_;
}

std::uint64_t TimeSeriesRing::pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pushed_;
}

std::vector<TimeSeriesRing::Sample> TimeSeriesRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  const std::uint64_t count = pushed_ < window_ ? pushed_ : window_;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = pushed_ - count; i < pushed_; ++i) {
    out.push_back(ring_[i % window_]);
  }
  return out;
}

std::string TimeSeriesRing::to_json() const {
  const std::vector<Sample> samples = snapshot();
  report::JsonWriter w;
  w.begin_object();
  w.key("window");
  w.value(static_cast<std::uint64_t>(window_));
  w.key("pushed");
  w.value(pushed());
  w.key("columns");
  w.begin_array();
  for (const std::string& name : columns_) w.value(name);
  w.end_array();
  w.key("samples");
  w.begin_array();
  for (const Sample& sample : samples) {
    w.begin_object();
    w.key("seq");
    w.value(sample.seq);
    w.key("uptime_ms");
    w.value(sample.uptime_ms);
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      w.key(columns_[i]);
      w.value(i < sample.values.size() ? sample.values[i] : 0);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace chainchaos::obs
