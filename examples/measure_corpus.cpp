// measure_corpus: the paper's entire §3.1 server-side measurement
// pipeline as one command — generate (or load) a corpus, run every
// analyzer on the sharded engine, and print the §4 summary ("2.9% of
// Top 1M domains deploy non-compliant chains"). With --export it also
// writes the corpus as a PEM bundle that external tools (or a later
// run) can consume.
//
// Usage:  measure_corpus [--domains N] [--seed S] [--threads T]
//                        [--export corpus.pem]
//         measure_corpus --import corpus.pem [--threads T]
//         measure_corpus --corpus corpus.chc [--threads T]
//
// --corpus streams a packed binary corpus (corpus_pack) through the
// engine via mmap — records are decoded lazily per shard, so resident
// memory stays bounded no matter how large the file is, and the summary
// is byte-identical to analysing the generated corpus in RAM.
#include <cstdio>
#include <fstream>
#include <mutex>

#include "chain/analyzer.hpp"
#include "cli_common.hpp"
#include "corpusio/source.hpp"
#include "dataset/serialize.hpp"
#include "engine/engine.hpp"
#include "report/table.hpp"

using namespace chainchaos;

namespace {

/// --progress sink: interval reports from the engine, rendered as one
/// stderr line each. Reports may arrive out of order across workers, so
/// the sink only prints when records_done advances — the printed lines
/// are monotonically increasing by construction. stdout is untouched:
/// the summary stays byte-identical with the flag on or off.
class StderrProgress final : public engine::ProgressSink {
 public:
  void on_progress(const engine::SweepProgress& p) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!p.final_report && p.records_done <= last_printed_) return;
    last_printed_ = p.records_done;
    std::fprintf(stderr,
                 "[progress] %zu/%zu records (%.1f%%) %.0f records/sec "
                 "ETA %.0fs%s\n",
                 p.records_done, p.records_total,
                 p.records_total > 0
                     ? 100.0 * static_cast<double>(p.records_done) /
                           static_cast<double>(p.records_total)
                     : 100.0,
                 p.records_per_second, p.eta_seconds,
                 p.final_report ? " (done)" : "");
  }

 private:
  std::mutex mutex_;
  std::size_t last_printed_ = 0;
};

void print_result(const engine::AnalysisResult& result) {
  std::fputs(engine::summary_table(result.tally.compliance).render().c_str(),
             stdout);
  std::printf("\nengine: %zu records over %zu shards on %u threads in "
              "%.2fs (%.0f records/sec)\n",
              result.records_processed, result.shard_count,
              result.threads_used, result.elapsed_seconds,
              result.records_per_second());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t domains = 20000;
  std::uint64_t seed = 833;
  unsigned threads = 0;  // engine default: hardware_concurrency
  const char* export_path = nullptr;
  const char* import_path = nullptr;
  const char* corpus_path = nullptr;
  bool progress = false;
  int progress_interval_ms = 500;
  cli::Flags flags;
  flags.add("--domains", &domains, "N");
  flags.add("--seed", &seed, "S");
  flags.add("--threads", &threads, "T");
  flags.add("--export", &export_path, "FILE");
  flags.add("--import", &import_path, "FILE");
  flags.add("--corpus", &corpus_path, "FILE");
  flags.add("--progress", &progress);
  flags.add("--progress-interval-ms", &progress_interval_ms, "MS");
  if (!flags.parse(argc, argv)) return 1;

  StderrProgress progress_sink;

  if (corpus_path != nullptr) {
    auto packed = corpusio::PackedCorpus::open(corpus_path);
    if (!packed.ok()) {
      std::fprintf(stderr, "cannot open packed corpus: %s\n",
                   packed.error().to_string().c_str());
      return 1;
    }
    std::printf("streaming %zu records from %s\n",
                packed.value()->reader().size(), corpus_path);
    chain::CompletenessOptions options;
    options.store = &packed.value()->stores().union_store;
    options.aia = &packed.value()->aia();
    const chain::ComplianceAnalyzer analyzer(options);

    const corpusio::PackedRecordSource source(&packed.value()->reader());
    engine::AnalysisRequest request;
    request.source = &source;
    request.shards.threads = threads;
    request.analyzer = &analyzer;
    if (progress) request.progress = &progress_sink;
    request.progress_interval_ms = progress_interval_ms;
    print_result(engine::run(request));
    if (source.decode_errors() != 0) {
      std::fprintf(stderr, "%llu records failed to decode\n",
                   static_cast<unsigned long long>(source.decode_errors()));
      return 1;
    }
    return 0;
  }

  if (import_path != nullptr) {
    // Re-analysis of an exported bundle: the trust anchors are whatever
    // self-signed certificates the bundle carries plus nothing else, so
    // completeness is evaluated in AIA-less mode.
    auto imported = dataset::import_corpus_from_file(import_path);
    if (!imported.ok()) {
      std::fprintf(stderr, "import failed: %s\n",
                   imported.error().to_string().c_str());
      return 1;
    }
    std::printf("imported %zu domains from %s\n", imported.value().size(),
                import_path);
    truststore::RootStore store("imported");
    for (const auto& record : imported.value()) {
      for (const auto& cert : record.certificates) {
        if (cert->is_self_signed()) store.add(cert);
      }
    }
    chain::CompletenessOptions options;
    options.store = &store;
    options.aia_enabled = false;
    const chain::ComplianceAnalyzer analyzer(options);

    // The importer yields bare observations; wrap them as records so the
    // engine can traverse them like any corpus.
    std::vector<dataset::DomainRecord> records;
    records.reserve(imported.value().size());
    for (auto& record : imported.value()) {
      dataset::DomainRecord wrapped;
      wrapped.observation.domain = record.domain;
      wrapped.observation.certificates = record.certificates;
      wrapped.observation.server_software = record.server_software;
      wrapped.observation.ca_name = record.ca_name;
      wrapped.root_included = record.root_included;
      wrapped.rare_hierarchy = record.rare_hierarchy;
      wrapped.akidless_terminal = record.akidless_terminal;
      wrapped.exclusive_store_domain = record.exclusive_store_domain;
      wrapped.missing_count = record.missing_count;
      records.push_back(std::move(wrapped));
    }

    engine::AnalysisRequest request;
    request.records = &records;
    request.shards.threads = threads;
    request.analyzer = &analyzer;
    if (progress) request.progress = &progress_sink;
    request.progress_interval_ms = progress_interval_ms;
    print_result(engine::run(request));
    return 0;
  }

  dataset::CorpusConfig config;
  config.domain_count = domains;
  config.seed = seed;
  std::printf("generating %zu synthetic domains (seed %llu)...\n", domains,
              static_cast<unsigned long long>(seed));
  dataset::Corpus corpus(std::move(config));

  chain::CompletenessOptions options;
  options.store = &corpus.stores().union_store;
  options.aia = &corpus.aia();
  const chain::ComplianceAnalyzer analyzer(options);

  engine::AnalysisRequest request;
  request.records = &corpus.records();
  request.shards.threads = threads;
  request.analyzer = &analyzer;
  if (progress) request.progress = &progress_sink;
  request.progress_interval_ms = progress_interval_ms;
  print_result(engine::run(request));

  if (export_path != nullptr) {
    if (!dataset::export_corpus_to_file(corpus, export_path)) {
      std::fprintf(stderr, "export failed: %s\n", export_path);
      return 1;
    }
    std::printf("\nwrote corpus bundle to %s\n", export_path);
  }
  return 0;
}
