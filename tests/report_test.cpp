#include <gtest/gtest.h>

#include "report/table.hpp"

namespace chainchaos::report {
namespace {

TEST(TableTest, RendersHeaderRuleAndRows) {
  Table table("Demo");
  table.header({"Type", "Count"});
  table.row({"alpha", "1"});
  table.row({"beta-longer", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("Type"), std::string::npos);
  EXPECT_NE(out.find("beta-longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Columns align: "Count" and "22" start at the same offset.
  const auto line_with = [&out](const std::string& needle) {
    const std::size_t pos = out.find(needle);
    const std::size_t line_start = out.rfind('\n', pos);
    return pos - (line_start == std::string::npos ? 0 : line_start + 1);
  };
  EXPECT_EQ(line_with("Count"), line_with("22"));
}

TEST(TableTest, ToleratesRaggedRows) {
  Table table("Ragged");
  table.header({"A", "B", "C"});
  table.row({"only-one"});
  EXPECT_NE(table.render().find("only-one"), std::string::npos);
}

TEST(FormattingTest, Percentages) {
  EXPECT_EQ(pct(1, 4), "25.0%");
  EXPECT_EQ(pct(1, 3), "33.3%");
  EXPECT_EQ(pct(0, 100), "0.0%");
  // An empty population has no rate: never fabricate "0.0%".
  EXPECT_EQ(pct(5, 0), "n/a");
  EXPECT_EQ(pct(0, 0), "n/a");
}

TEST(FormattingTest, ThousandsSeparators) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(906336), "906,336");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(FormattingTest, CountPctMatchesPaperStyle) {
  EXPECT_EQ(count_pct(16952, 906336), "16,952 (1.9%)");
  EXPECT_EQ(count_pct(0, 10), "0 (0.0%)");
  EXPECT_EQ(count_pct(0, 0), "0 (n/a)");
}

}  // namespace
}  // namespace chainchaos::report
