#include "support/str.hpp"

#include <cctype>

namespace chainchaos {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

namespace {

bool valid_label(std::string_view label, bool allow_wildcard) {
  if (label.empty() || label.size() > 63) return false;
  if (allow_wildcard && label == "*") return true;
  if (label.front() == '-' || label.back() == '-') return false;
  for (char c : label) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '-') return false;
  }
  return true;
}

}  // namespace

bool looks_like_dns_name(std::string_view s) {
  if (s.empty() || s.size() > 253) return false;
  const std::vector<std::string> labels = split(s, '.');
  if (labels.size() < 2) return false;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!valid_label(labels[i], /*allow_wildcard=*/i == 0)) return false;
  }
  // TLD must not be all-numeric (that would be an IP fragment).
  const std::string& tld = labels.back();
  bool all_digits = true;
  for (char c : tld) {
    if (!std::isdigit(static_cast<unsigned char>(c))) all_digits = false;
  }
  return !all_digits;
}

bool looks_like_ipv4(std::string_view s) {
  const std::vector<std::string> octets = split(s, '.');
  if (octets.size() != 4) return false;
  for (const std::string& o : octets) {
    if (o.empty() || o.size() > 3) return false;
    int value = 0;
    for (char c : o) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
      value = value * 10 + (c - '0');
    }
    if (value > 255) return false;
    if (o.size() > 1 && o[0] == '0') return false;  // no leading zeros
  }
  return true;
}

bool looks_like_domain_or_ip(std::string_view s) {
  return looks_like_ipv4(s) || looks_like_dns_name(s);
}

bool wildcard_match(std::string_view pattern, std::string_view host) {
  const std::string p = to_lower(pattern);
  const std::string h = to_lower(host);
  if (p == h) return true;
  if (!starts_with(p, "*.")) return false;
  // The wildcard covers exactly one label.
  const std::string_view rest = std::string_view(p).substr(2);
  const std::size_t dot = h.find('.');
  if (dot == std::string::npos) return false;
  return std::string_view(h).substr(dot + 1) == rest;
}

}  // namespace chainchaos
