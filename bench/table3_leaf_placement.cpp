// Regenerates Table 3: leaf certificate deployment classification over
// the corpus (paper: 92.5% / 6.9% / ~0 / ~0 / 0.6% of 906,336 domains),
// measured on the sharded engine.
#include <cstdio>

#include "bench_common.hpp"
#include "chain/leaf_placement.hpp"
#include "engine/engine.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  const auto corpus = bench::make_corpus();

  chain::CompletenessOptions options;
  options.store = &corpus->stores().union_store;
  options.aia = &corpus->aia();
  const chain::ComplianceAnalyzer analyzer(options);

  engine::AnalysisRequest request;
  request.records = &corpus->records();
  request.analyzer = &analyzer;
  const engine::AnalysisResult result = engine::run(request);
  const engine::ComplianceTally& tally = result.tally.compliance;
  const std::uint64_t total = tally.total;

  report::Table table("Table 3: Leaf certificate deployment");
  table.header({"Place", "Match", "#domains (measured)", "paper"});
  table.row({"ok", "ok",
             report::count_pct(tally.count(chain::LeafPlacement::kCorrectMatched),
                               total),
             "838,354 (92.5%)"});
  table.row({"ok", "x",
             report::count_pct(
                 tally.count(chain::LeafPlacement::kCorrectMismatched), total),
             "62,536 (6.9%)"});
  table.row({"x", "ok",
             report::count_pct(
                 tally.count(chain::LeafPlacement::kIncorrectMatched), total),
             "0 (~0%)"});
  table.row({"x", "x",
             report::count_pct(
                 tally.count(chain::LeafPlacement::kIncorrectMismatched), total),
             "1 (~0%)"});
  table.row({"Other", "",
             report::count_pct(tally.count(chain::LeafPlacement::kOther), total),
             "5,445 (0.6%)"});
  std::fputs(table.render().c_str(), stdout);

  // The singleton: mot.gov.ps (paper §4.1).
  if (const dataset::DomainRecord* mot = corpus->exemplar("mot.gov.ps")) {
    const auto placement = chain::classify_leaf_placement(
        mot->observation.certificates, mot->observation.domain);
    std::printf("\nexemplar mot.gov.ps -> %s (paper: the single "
                "incorrectly-placed-and-mismatched domain)\n",
                chain::to_string(placement));
  }

  bench::print_paper_note(
      "Table 3",
      "leaf placement overwhelmingly compliant; mismatches are hosting "
      "certs; 'Other' are test/appliance certificates");
  return 0;
}
