// Object identifiers used across the library's X.509 profile.
#pragma once

#include <string_view>

namespace chainchaos::asn1::oid {

// Distinguished-name attribute types (X.520).
inline constexpr std::string_view kCommonName = "2.5.4.3";
inline constexpr std::string_view kCountryName = "2.5.4.6";
inline constexpr std::string_view kOrganizationName = "2.5.4.10";
inline constexpr std::string_view kOrganizationalUnitName = "2.5.4.11";

// Certificate extensions (RFC 5280 §4.2).
inline constexpr std::string_view kSubjectKeyIdentifier = "2.5.29.14";
inline constexpr std::string_view kKeyUsage = "2.5.29.15";
inline constexpr std::string_view kSubjectAltName = "2.5.29.17";
inline constexpr std::string_view kBasicConstraints = "2.5.29.19";
inline constexpr std::string_view kAuthorityKeyIdentifier = "2.5.29.35";
inline constexpr std::string_view kNameConstraints = "2.5.29.30";
inline constexpr std::string_view kExtKeyUsage = "2.5.29.37";
inline constexpr std::string_view kAuthorityInfoAccess =
    "1.3.6.1.5.5.7.1.1";

// Access method inside AIA (RFC 5280 §4.2.2.1).
inline constexpr std::string_view kCaIssuers = "1.3.6.1.5.5.7.48.2";
inline constexpr std::string_view kOcsp = "1.3.6.1.5.5.7.48.1";

// Extended key usage purposes.
inline constexpr std::string_view kServerAuth = "1.3.6.1.5.5.7.3.1";
inline constexpr std::string_view kClientAuth = "1.3.6.1.5.5.7.3.2";

// Signature/public-key algorithms. The library's only signature suite is
// "RSA over SHA-256 with library padding"; we reuse the standard arcs so
// encodings look familiar in dumps.
inline constexpr std::string_view kRsaEncryption = "1.2.840.113549.1.1.1";
inline constexpr std::string_view kSha256WithRsa = "1.2.840.113549.1.1.11";

}  // namespace chainchaos::asn1::oid
