// Regenerates Table 11: CAs/resellers behind non-compliant chains
// (paper Appendix C), re-measured with the real analyzers over the
// generated corpus — one engine sweep attributed by CA name.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  const auto corpus = bench::make_corpus();

  chain::CompletenessOptions options;
  options.store = &corpus->stores().union_store;
  options.aia = &corpus->aia();
  const chain::ComplianceAnalyzer analyzer(options);

  engine::AnalysisRequest request;
  request.records = &corpus->records();
  request.analyzer = &analyzer;
  request.filter = [](const dataset::DomainRecord& record) {
    return !record.exemplar;  // case studies skew per-CA rates
  };
  request.key_of = [](const dataset::DomainRecord& record) {
    return record.observation.ca_name;
  };
  const engine::AnalysisResult result = engine::run(request);

  report::Table table("Table 11: CAs/resellers behind non-compliant chains "
                      "(measured, % of that CA's domains)");
  table.header({"CA / reseller", "Domains", "Non-compliant", "Duplicates",
                "Irrelevant", "Multi-path", "Reversed", "Incomplete"});

  const std::vector<std::string> order = {
      "Let's Encrypt", "Digicert",  "Sectigo Limited", "ZeroSSL",
      "GoGetSSL",      "TAIWAN-CA", "cyber_Folks S.A.", "Trustico",
      "Other CAs"};
  for (const std::string& name : order) {
    const auto it = result.tally.by_key.find(name);
    if (it == result.tally.by_key.end()) continue;
    const engine::ComplianceTally& ca = it->second;
    table.row({name, report::with_commas(ca.total),
               report::count_pct(ca.noncompliant, ca.total),
               report::count_pct(ca.duplicates, ca.total),
               report::count_pct(ca.irrelevant, ca.total),
               report::count_pct(ca.multiple_paths, ca.total),
               report::count_pct(ca.reversed, ca.total),
               report::count_pct(ca.incomplete, ca.total)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\n[paper] Table 11 reference non-compliance rates: Let's Encrypt "
      "1.2%% (lowest — fully automated), Digicert 7.9%%, Sectigo 10.7%%, "
      "ZeroSSL 2.5%%, GoGetSSL 16.7%%, TAIWAN-CA 50.4%% (41.9%% incomplete: "
      "omitted intermediate), cyber_Folks 66.2%% and Trustico 65.7%% (both "
      "dominated by reversed sequences from reversed ca-bundles).\n");
  return 0;
}
