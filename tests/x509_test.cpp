#include <gtest/gtest.h>

#include "x509/builder.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::x509 {
namespace {

constexpr std::int64_t kNb = 1700000000;
constexpr std::int64_t kNa = 1900000000;

class X509Fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_id_ = make_identity(asn1::Name::make("X509T Root", "X509T", "US"));
    CertificateBuilder rb;
    rb.subject(root_id_.name).as_ca().public_key(root_id_.keys.pub);
    root_ = rb.self_sign(root_id_.keys);

    inter_id_ = make_identity(asn1::Name::make("X509T Inter", "X509T", "US"));
    CertificateBuilder ib;
    ib.subject(inter_id_.name).as_ca(0).public_key(inter_id_.keys.pub);
    inter_ = ib.sign(root_id_);

    CertificateBuilder lb;
    lb.as_leaf("www.x509t.example").aia_ca_issuers("http://x509t/i.crt");
    leaf_ = lb.sign(inter_id_);
  }

  SigningIdentity root_id_, inter_id_;
  CertPtr root_, inter_, leaf_;
};

TEST_F(X509Fixture, RoleClassification) {
  EXPECT_TRUE(root_->is_self_signed());
  EXPECT_TRUE(root_->is_self_issued());
  EXPECT_TRUE(root_->is_ca());

  EXPECT_FALSE(inter_->is_self_signed());
  EXPECT_TRUE(inter_->is_ca());

  EXPECT_FALSE(leaf_->is_ca());
  EXPECT_FALSE(leaf_->is_self_signed());
}

TEST_F(X509Fixture, SignatureChainVerifies) {
  EXPECT_TRUE(inter_->verify_signed_by(root_->public_key));
  EXPECT_TRUE(leaf_->verify_signed_by(inter_->public_key));
  EXPECT_FALSE(leaf_->verify_signed_by(root_->public_key));
  EXPECT_FALSE(inter_->verify_signed_by(leaf_->public_key));
}

TEST_F(X509Fixture, KeyIdentifierLinkage) {
  ASSERT_TRUE(inter_->subject_key_id.has_value());
  ASSERT_TRUE(leaf_->authority_key_id.has_value());
  EXPECT_TRUE(equal(*inter_->subject_key_id, *leaf_->authority_key_id));
  EXPECT_TRUE(equal(*root_->subject_key_id, *inter_->authority_key_id));
  // Root's AKID (if present) references itself.
  ASSERT_TRUE(root_->authority_key_id.has_value());
  EXPECT_TRUE(equal(*root_->authority_key_id, *root_->subject_key_id));
}

TEST_F(X509Fixture, DerRoundTripPreservesEverything) {
  auto parsed = parse_certificate(leaf_->der);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const Certificate& p = *parsed.value();

  EXPECT_EQ(p.subject, leaf_->subject);
  EXPECT_EQ(p.issuer, leaf_->issuer);
  EXPECT_EQ(p.serial, leaf_->serial);
  EXPECT_EQ(p.not_before, leaf_->not_before);
  EXPECT_EQ(p.not_after, leaf_->not_after);
  EXPECT_TRUE(p.public_key == leaf_->public_key);
  EXPECT_EQ(p.basic_constraints, leaf_->basic_constraints);
  EXPECT_EQ(p.key_usage, leaf_->key_usage);
  EXPECT_EQ(p.ext_key_usage, leaf_->ext_key_usage);
  EXPECT_EQ(p.subject_alt_name, leaf_->subject_alt_name);
  EXPECT_EQ(p.aia, leaf_->aia);
  EXPECT_TRUE(equal(*p.subject_key_id, *leaf_->subject_key_id));
  EXPECT_TRUE(equal(*p.authority_key_id, *leaf_->authority_key_id));
  EXPECT_TRUE(equal(p.der, leaf_->der));
  EXPECT_TRUE(equal(p.fingerprint, leaf_->fingerprint));
  EXPECT_TRUE(p.verify_signed_by(inter_->public_key));
}

TEST_F(X509Fixture, CaCertRoundTripKeepsPathLen) {
  auto parsed = parse_certificate(inter_->der);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.value()->basic_constraints.has_value());
  EXPECT_TRUE(parsed.value()->basic_constraints->is_ca);
  EXPECT_EQ(parsed.value()->basic_constraints->path_len_constraint, 0);
  EXPECT_TRUE(parsed.value()->key_usage->key_cert_sign);
}

TEST_F(X509Fixture, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_certificate(Bytes{}).ok());
  EXPECT_FALSE(parse_certificate(Bytes{0x30, 0x03, 1, 2, 3}).ok());
  Bytes truncated(leaf_->der.begin(), leaf_->der.begin() + 40);
  EXPECT_FALSE(parse_certificate(truncated).ok());
}

TEST_F(X509Fixture, TamperedTbsBreaksSignature) {
  Bytes der = leaf_->der;
  // Flip a byte near the middle of the TBS (inside the subject name).
  der[der.size() / 3] ^= 0x01;
  auto parsed = parse_certificate(der);
  if (parsed.ok()) {
    EXPECT_FALSE(parsed.value()->verify_signed_by(inter_->public_key));
  }
}

TEST_F(X509Fixture, HostnameMatching) {
  EXPECT_TRUE(leaf_->matches_host("www.x509t.example"));
  EXPECT_FALSE(leaf_->matches_host("x509t.example"));
  EXPECT_FALSE(leaf_->matches_host("evil.example"));

  CertificateBuilder wb;
  wb.as_leaf("*.wild.example");
  const CertPtr wildcard = wb.sign(inter_id_);
  EXPECT_TRUE(wildcard->matches_host("a.wild.example"));
  EXPECT_FALSE(wildcard->matches_host("wild.example"));
  EXPECT_FALSE(wildcard->matches_host("a.b.wild.example"));
}

TEST_F(X509Fixture, MatchesHostViaSanIp) {
  SubjectAltName san;
  san.dns_names.push_back("dual.example");
  san.ip_addresses.push_back("192.0.2.7");
  CertificateBuilder builder;
  builder.subject_cn("dual.example").subject_alt_name(san);
  const CertPtr cert = builder.sign(inter_id_);
  EXPECT_TRUE(cert->matches_host("192.0.2.7"));
  EXPECT_TRUE(cert->matches_host("dual.example"));
  EXPECT_FALSE(cert->matches_host("192.0.2.8"));
}

TEST_F(X509Fixture, IdentityStringsCollectCnAndSan) {
  const auto ids = leaf_->identity_strings();
  // CN and the SAN dNSName (both "www.x509t.example").
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "www.x509t.example");
}

TEST_F(X509Fixture, ValidityWindow) {
  EXPECT_TRUE(leaf_->valid_at(kNb));
  EXPECT_TRUE(leaf_->valid_at(kNa));
  EXPECT_FALSE(leaf_->valid_at(kNb - 1));
  EXPECT_FALSE(leaf_->valid_at(kNa + 1));
}

TEST_F(X509Fixture, PemRoundTripSingle) {
  const std::string pem = to_pem(*leaf_);
  EXPECT_NE(pem.find("-----BEGIN CERTIFICATE-----"), std::string::npos);
  EXPECT_NE(pem.find("-----END CERTIFICATE-----"), std::string::npos);
  auto back = from_pem(pem);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_TRUE(equal(back.value()->der, leaf_->der));
}

TEST_F(X509Fixture, PemBundlePreservesOrder) {
  const std::string bundle = to_pem(*leaf_) + to_pem(*inter_) + to_pem(*root_);
  auto certs = bundle_from_pem(bundle);
  ASSERT_TRUE(certs.ok());
  ASSERT_EQ(certs.value().size(), 3u);
  EXPECT_TRUE(equal(certs.value()[0]->der, leaf_->der));
  EXPECT_TRUE(equal(certs.value()[1]->der, inter_->der));
  EXPECT_TRUE(equal(certs.value()[2]->der, root_->der));
}

TEST_F(X509Fixture, PemRejectsMalformed) {
  EXPECT_FALSE(from_pem("no pem here").ok());
  EXPECT_FALSE(from_pem("-----BEGIN CERTIFICATE-----\nZZZZ!\n"
                        "-----END CERTIFICATE-----\n").ok());
  EXPECT_FALSE(from_pem("-----BEGIN CERTIFICATE-----\nunterminated").ok());
  // Two certs where one was requested.
  EXPECT_FALSE(from_pem(to_pem(*leaf_) + to_pem(*inter_)).ok());
}

// ---------------------------------------------------------------------------
// Builder override hooks (defective certificate crafting)
// ---------------------------------------------------------------------------

TEST_F(X509Fixture, BuilderOmitsKeyIds) {
  CertificateBuilder builder;
  builder.subject_cn("no-kids.example")
      .omit_subject_key_id()
      .omit_authority_key_id();
  const CertPtr cert = builder.sign(inter_id_);
  EXPECT_FALSE(cert->subject_key_id.has_value());
  EXPECT_FALSE(cert->authority_key_id.has_value());
  // Round-trip keeps them absent.
  auto parsed = parse_certificate(cert->der);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value()->subject_key_id.has_value());
  EXPECT_FALSE(parsed.value()->authority_key_id.has_value());
}

TEST_F(X509Fixture, BuilderCorruptsAkid) {
  CertificateBuilder builder;
  builder.subject_cn("bad-akid.example").corrupt_authority_key_id();
  const CertPtr cert = builder.sign(inter_id_);
  ASSERT_TRUE(cert->authority_key_id.has_value());
  EXPECT_FALSE(equal(*cert->authority_key_id, *inter_->subject_key_id));
  // Signature still verifies: the AKID is wrong, not the crypto.
  EXPECT_TRUE(cert->verify_signed_by(inter_->public_key));
}

TEST_F(X509Fixture, BuilderCustomExtensionsSurviveRoundTrip) {
  KeyUsage ku;
  ku.digital_signature = true;
  ku.crl_sign = true;
  CertificateBuilder builder;
  builder.subject_cn("custom.example")
      .key_usage(ku)
      .ext_key_usage(ExtKeyUsage{{"1.3.6.1.5.5.7.3.2"}})
      .basic_constraints(BasicConstraints{false, std::nullopt});
  const CertPtr cert = builder.sign(inter_id_);
  auto parsed = parse_certificate(cert->der);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()->key_usage, ku);
  EXPECT_TRUE(parsed.value()->ext_key_usage->allows("1.3.6.1.5.5.7.3.2"));
  EXPECT_FALSE(parsed.value()->basic_constraints->is_ca);
}

TEST_F(X509Fixture, NameConstraintsRoundTrip) {
  NameConstraints nc;
  nc.permitted_dns = {"good.example", "alt.example"};
  nc.excluded_dns = {"bad.good.example"};
  CertificateBuilder builder;
  builder.subject_cn("Constrained CA").name_constraints(nc);
  const CertPtr cert = builder.sign(inter_id_);
  auto parsed = parse_certificate(cert->der);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_TRUE(parsed.value()->name_constraints.has_value());
  EXPECT_EQ(*parsed.value()->name_constraints, nc);
}

TEST_F(X509Fixture, NameConstraintsSemantics) {
  NameConstraints nc;
  nc.permitted_dns = {"good.example"};
  nc.excluded_dns = {"bad.good.example"};
  EXPECT_TRUE(nc.allows("good.example"));
  EXPECT_TRUE(nc.allows("www.good.example"));
  EXPECT_TRUE(nc.allows("a.b.good.example"));
  EXPECT_FALSE(nc.allows("evil.example"));
  EXPECT_FALSE(nc.allows("notgood.example"));       // no substring match
  EXPECT_FALSE(nc.allows("bad.good.example"));      // excluded wins
  EXPECT_FALSE(nc.allows("x.bad.good.example"));

  // Exclusion-only constraints permit everything else.
  NameConstraints exclude_only;
  exclude_only.excluded_dns = {"blocked.example"};
  EXPECT_TRUE(exclude_only.allows("anything.example"));
  EXPECT_FALSE(exclude_only.allows("sub.blocked.example"));
}

TEST_F(X509Fixture, SelfSignWithExplicitKeys) {
  const crypto::RsaKeyPair& keys =
      crypto::KeyPool::instance().for_name("x509t-self");
  CertificateBuilder builder;
  builder.as_leaf("self.example").public_key(keys.pub);
  const CertPtr cert = builder.self_sign(keys);
  EXPECT_TRUE(cert->is_self_signed());
  EXPECT_FALSE(cert->is_ca());
}

TEST_F(X509Fixture, DistinctSerialsPerBuild) {
  CertificateBuilder b1, b2;
  b1.subject_cn("serial-a.example");
  b2.subject_cn("serial-a.example");
  const CertPtr c1 = b1.sign(inter_id_);
  const CertPtr c2 = b2.sign(inter_id_);
  EXPECT_NE(c1->serial, c2->serial);
  EXPECT_FALSE(equal(c1->fingerprint, c2->fingerprint));
}

TEST_F(X509Fixture, DeriveKeyIdIsStablePerKey) {
  EXPECT_TRUE(equal(derive_key_id(root_id_.keys.pub),
                    derive_key_id(root_id_.keys.pub)));
  EXPECT_FALSE(equal(derive_key_id(root_id_.keys.pub),
                     derive_key_id(inter_id_.keys.pub)));
  EXPECT_EQ(derive_key_id(root_id_.keys.pub).size(), 20u);
}

}  // namespace
}  // namespace chainchaos::x509
