// X.501 distinguished names (the subject/issuer fields of certificates).
//
// A Name is an ordered list of (attribute-OID, value) pairs; each pair is
// its own single-attribute RDN when encoded (the overwhelmingly common
// profile in Web PKI). Comparison is exact byte comparison of values
// after encoding — matching how implementations compare subject/issuer
// DNs during chain building.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asn1/profile.hpp"
#include "support/bytes.hpp"
#include "support/result.hpp"

namespace chainchaos::asn1 {

struct NameAttribute {
  std::string oid;    ///< dotted-decimal attribute type
  std::string value;  ///< UTF-8 value

  bool operator==(const NameAttribute&) const = default;
  auto operator<=>(const NameAttribute&) const = default;
};

/// Ordered distinguished name.
class Name {
 public:
  Name() = default;

  /// Convenience factory: CN plus optional O/C.
  static Name make(std::string common_name, std::string organization = {},
                   std::string country = {});

  Name& add(std::string oid, std::string value);

  const std::vector<NameAttribute>& attributes() const { return attrs_; }
  bool empty() const { return attrs_.empty(); }

  /// First CN value, if any.
  std::optional<std::string> common_name() const;
  std::optional<std::string> organization() const;

  /// RFC 4514-ish one-line rendering ("CN=example.com, O=Example").
  std::string to_string() const;

  /// DER encoding (RDNSequence).
  Bytes encode() const;

  /// Decodes an RDNSequence; attribute values are read under `profile`'s
  /// string-type/charset knobs (default = historical behaviour).
  static Result<Name> decode(
      BytesView der, const ParseProfile& profile = default_parse_profile());

  bool operator==(const Name&) const = default;
  auto operator<=>(const Name&) const = default;

 private:
  std::vector<NameAttribute> attrs_;
};

}  // namespace chainchaos::asn1
