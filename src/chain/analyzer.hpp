// ComplianceAnalyzer: one-stop server-side evaluation of a collected
// certificate chain, aggregating the leaf-placement, issuance-order and
// completeness analyses into the per-domain verdict the paper reports
// ("2.9% of Tranco Top 1M domains deploy non-compliant chains").
#pragma once

#include <string>
#include <vector>

#include "chain/completeness.hpp"
#include "chain/leaf_placement.hpp"
#include "chain/order_analysis.hpp"
#include "chain/topology.hpp"

namespace chainchaos::chain {

/// A single scan observation: what one VPS saw for one domain.
struct ChainObservation {
  std::string domain;
  std::vector<x509::CertPtr> certificates;  ///< as sent by the server

  // Attribution metadata carried from collection (Tables 10 & 11).
  std::string server_software;  ///< e.g. "apache", "nginx" (may be empty)
  std::string ca_name;          ///< issuing CA or reseller (may be empty)
};

struct ComplianceReport {
  LeafPlacement leaf_placement = LeafPlacement::kOther;
  OrderAnalysis order;
  CompletenessResult completeness;

  /// Leaf placed first (matched or mismatched both count as placed).
  bool leaf_placed_correctly() const {
    return leaf_placement == LeafPlacement::kCorrectMatched ||
           leaf_placement == LeafPlacement::kCorrectMismatched;
  }

  /// The paper's overall verdict: a chain is non-compliant when it has
  /// an issuance-order issue or is missing intermediates. (Leaf-placement
  /// "Other"/mismatched cases are reported separately, not counted into
  /// the 2.9% headline, matching Section 4's summary.)
  bool compliant() const {
    return !order.any_order_issue() && completeness.complete();
  }
};

/// Thread safety: analyze() is const and safe to call concurrently from
/// any number of threads on one shared analyzer — this is what the
/// sharded engine (src/engine/) relies on. The audit trail:
///   * CompletenessOptions is copied at construction and never mutated;
///   * options_.store (RootStore) is only read through const lookups —
///     it must not be mutated during a sweep (corpus stores never are);
///   * options_.aia (AiaRepository) is mutated by fetches but internally
///     synchronized (net/aia_repository.hpp);
///   * the process-wide issuance memo behind Topology/completeness is
///     mutex-striped (chain/issuance.cpp).
class ComplianceAnalyzer {
 public:
  explicit ComplianceAnalyzer(CompletenessOptions options)
      : options_(options) {}

  ComplianceReport analyze(const ChainObservation& obs) const;

  /// Analyze with a caller-provided topology (lets callers reuse the
  /// graph for rendering or further analyses).
  ComplianceReport analyze(const ChainObservation& obs,
                           const Topology& topology) const;

 private:
  CompletenessOptions options_;
};

}  // namespace chainchaos::chain
