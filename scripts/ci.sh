#!/usr/bin/env bash
# Full local CI pipeline: what the tree must pass before a merge.
#
#   scripts/ci.sh
#
#   1. tier-1: configure + build + full ctest suite (RelWithDebInfo)
#   2. sanitizers: the same suite under ASan/UBSan
#      (-DCHAINCHAOS_SANITIZE="address;undefined")
#   3. static analysis: scripts/lint.sh
#
# Build trees live in build/ and build-asan/ and are reused across runs.
set -eu
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== [1/3] tier-1 build + tests ==="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/3] ASan/UBSan build + tests ==="
cmake -B build-asan -S . -DCHAINCHAOS_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "=== [3/3] static analysis ==="
scripts/lint.sh build

echo "CI: all gates passed"
