#!/usr/bin/env bash
# Full local CI pipeline: what the tree must pass before a merge.
#
#   scripts/ci.sh
#
#   1. tier-1: configure + build + full ctest suite (RelWithDebInfo)
#   2. sanitizers: the same suite under ASan/UBSan
#      (-DCHAINCHAOS_SANITIZE="address;undefined")
#   3. service smoke: chaind on an ephemeral port, repeated chainq
#      queries, non-zero cache hit ratio, graceful SIGTERM shutdown
#      (also registered as the `service_smoke` ctest, so stages 1 and 2
#      already ran it in-suite; this stage exercises the shipped script
#      against the tier-1 binaries directly)
#   4. static analysis: scripts/lint.sh
#
# Build trees live in build/ and build-asan/ and are reused across runs.
set -eu
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== [1/4] tier-1 build + tests ==="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/4] ASan/UBSan build + tests ==="
cmake -B build-asan -S . -DCHAINCHAOS_SANITIZE="address;undefined"
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "=== [3/4] service smoke ==="
scripts/service_smoke.sh build/examples/chaind build/examples/chainq

echo "=== [4/4] static analysis ==="
scripts/lint.sh build

echo "CI: all gates passed"
