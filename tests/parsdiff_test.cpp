// Parser-differential tests: the asn1::ParseProfile leniency knobs, the
// PD-* discrepancy taxonomy, and the sharded sweep's determinism.
//
// The crafted inputs here are the executable form of DESIGN.md §5.13's
// knob table: for every knob there is an input the default profile
// handles exactly as the historical parser did (pinning byte-identity)
// and an input where the panel splits, classified into its PD class.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "asn1/der.hpp"
#include "asn1/oids.hpp"
#include "dataset/corpus.hpp"
#include "lint/registry.hpp"
#include "parsdiff/diff.hpp"
#include "parsdiff/profile.hpp"
#include "parsdiff/sweep.hpp"
#include "x509/builder.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::parsdiff {
namespace {

using asn1::DerReader;
using asn1::DerWriter;
using asn1::ParseProfile;
using asn1::Tag;

const ParseProfile& profile_named(std::string_view name) {
  const ProfileSpec* spec = find_profile(name);
  EXPECT_NE(spec, nullptr) << name;
  return spec->profile;
}

// --- DER crafting helpers -------------------------------------------------

/// A single TLV with raw text content.
Bytes text_tlv(std::uint8_t tag, std::string_view text) {
  DerWriter w;
  w.add_tlv(tag, to_bytes(text));
  return w.take();
}

/// A freshly issued self-signed CA certificate (the surgery donor: its
/// TBS layout is version, serial, sigalg, issuer, validity, subject,
/// SPKI, extensions).
Bytes donor_cert_der() {
  static const Bytes der = [] {
    const x509::SigningIdentity id =
        x509::make_identity(asn1::Name::make("Parsdiff CA", "Parsdiff", "US"));
    x509::CertificateBuilder b;
    b.subject(id.name).as_ca().public_key(id.keys.pub);
    b.validity(1700000000, 1900000000);
    return b.self_sign(id.keys)->der;
  }();
  return der;
}

/// Rebuilds a certificate DER after letting `edit` mutate the decoded
/// TBS field list (signature becomes stale — parse never checks it).
Bytes rebuild_cert(const Bytes& der,
                   const std::function<void(
                       std::vector<asn1::DerElement>&)>& edit) {
  DerReader outer(der);
  auto cert_seq = outer.read(Tag::kSequence);
  EXPECT_TRUE(cert_seq.ok());
  DerReader body(cert_seq.value().body);
  auto tbs = body.read_any();
  auto sigalg = body.read_any();
  auto sig = body.read_any();
  EXPECT_TRUE(tbs.ok() && sigalg.ok() && sig.ok());

  std::vector<asn1::DerElement> fields;
  DerReader tbs_reader(tbs.value().body);
  while (!tbs_reader.at_end()) {
    auto field = tbs_reader.read_any();
    EXPECT_TRUE(field.ok());
    fields.push_back(std::move(field).value());
  }
  edit(fields);

  DerWriter tbs_writer;
  for (const asn1::DerElement& field : fields) {
    tbs_writer.add_tlv(field.tag, field.body);
  }
  DerWriter cert_writer;
  cert_writer.add_tlv(tbs.value().tag, tbs_writer.bytes());
  cert_writer.add_tlv(sigalg.value().tag, sigalg.value().body);
  cert_writer.add_tlv(sig.value().tag, sig.value().body);
  return cert_writer.wrap_sequence();
}

constexpr std::size_t kValidityIndex = 4;
constexpr std::size_t kSubjectIndex = 5;

/// Donor cert with its Validity SEQUENCE body swapped for two time TLVs.
Bytes cert_with_validity(const Bytes& not_before_tlv,
                         const Bytes& not_after_tlv) {
  return rebuild_cert(donor_cert_der(), [&](auto& fields) {
    ASSERT_GE(fields.size(), std::size_t{7});
    ASSERT_EQ(fields[kValidityIndex].tag, 0x30);
    Bytes body = not_before_tlv;
    append(body, not_after_tlv);
    fields[kValidityIndex].body = std::move(body);
  });
}

/// Donor cert whose subject CN value uses the given string tag.
Bytes cert_with_subject_string_tag(std::uint8_t tag) {
  return rebuild_cert(donor_cert_der(), [&](auto& fields) {
    ASSERT_GE(fields.size(), std::size_t{7});
    DerWriter atv;
    atv.add_oid(asn1::oid::kCommonName);
    atv.add_tlv(tag, to_bytes("Legacy Name"));
    DerWriter set;
    set.add_tlv(Tag::kSet, atv.wrap_sequence());
    fields[kSubjectIndex].body = set.take();
  });
}

/// Donor cert with one extra extension appended to the extension list.
Bytes cert_with_extra_extension(std::string_view oid, bool critical) {
  return rebuild_cert(donor_cert_der(), [&](auto& fields) {
    ASSERT_FALSE(fields.empty());
    asn1::DerElement& wrapper = fields.back();
    ASSERT_EQ(wrapper.tag, asn1::context_constructed(3));
    DerReader wrapper_reader(wrapper.body);
    auto list = wrapper_reader.read(Tag::kSequence);
    ASSERT_TRUE(list.ok());
    DerWriter ext;
    ext.add_oid(oid);
    if (critical) ext.add_boolean(true);
    const Bytes null_value = {0x05, 0x00};
    ext.add_octet_string(null_value);
    DerWriter new_list;
    new_list.add_raw(list.value().body);
    new_list.add_raw(ext.wrap_sequence());
    wrapper.body = new_list.wrap_sequence();
  });
}

/// Donor cert with the BasicConstraints critical flag re-encoded as the
/// BER-legal, DER-illegal TRUE value 0x01 (the bytes `06 03 55 1d 13 01
/// 01 ff` → `... 01 01 01`; same length, so no enclosing fixups).
Bytes cert_with_ber_boolean() {
  Bytes der = donor_cert_der();
  const Bytes pattern = {0x06, 0x03, 0x55, 0x1d, 0x13, 0x01, 0x01, 0xff};
  auto it = std::search(der.begin(), der.end(), pattern.begin(), pattern.end());
  EXPECT_NE(it, der.end());
  *(it + static_cast<std::ptrdiff_t>(pattern.size()) - 1) = 0x01;
  return der;
}

/// Donor cert rewrapped with a leading-zero long-form outer length
/// (BER): 30 83 00 hh ll instead of 30 82 hh ll.
Bytes cert_with_leading_zero_length() {
  const Bytes der = donor_cert_der();
  DerReader reader(der);
  auto seq = reader.read(Tag::kSequence);
  EXPECT_TRUE(seq.ok());
  const Bytes& body = seq.value().body;
  EXPECT_LT(body.size(), std::size_t{0x10000});
  Bytes out = {0x30, 0x83, 0x00,
               static_cast<std::uint8_t>(body.size() >> 8),
               static_cast<std::uint8_t>(body.size() & 0xff)};
  append(out, body);
  return out;
}

std::vector<Bytes> one(Bytes der) {
  std::vector<Bytes> certs;
  certs.push_back(std::move(der));
  return certs;
}

bool profile_accepts(const ChainDiff& diff, std::string_view name) {
  const auto& panel = profiles();
  for (std::size_t p = 0; p < panel.size(); ++p) {
    if (panel[p].name == name) return diff.outcomes[p].accepted;
  }
  ADD_FAILURE() << "unknown profile " << name;
  return false;
}

// --- profile registry -----------------------------------------------------

TEST(ParsdiffProfiles, PanelIsStableAndLedByDefault) {
  const auto& panel = profiles();
  ASSERT_GE(panel.size(), std::size_t{5});
  EXPECT_EQ(panel.front().name, "default");
  EXPECT_EQ(panel.front().profile, asn1::default_parse_profile());
  // The default profile must be the all-defaults knob assignment: that
  // is what "byte-identical to historical behaviour" pins.
  EXPECT_EQ(asn1::default_parse_profile(), ParseProfile{});
  EXPECT_NE(find_profile("strict-der"), nullptr);
  EXPECT_EQ(find_profile("no-such-profile"), nullptr);
}

TEST(ParsdiffRules, PdFamilyResolvesViaLintButStaysOutOfAllRules) {
  ASSERT_EQ(pd_rules().size(), std::size_t{7});
  EXPECT_NE(find_pd_rule("PD-03"), nullptr);
  EXPECT_EQ(find_pd_rule("PD-99"), nullptr);
  // Registered as an auxiliary family: find_rule resolves the IDs...
  const lint::Rule* rule = lint::find_rule("PD-05");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->citation, "X.690 §8.1");
  // ...but all_rules() — the chainlint JSON rule listing — is unchanged.
  for (const lint::Rule* r : lint::all_rules()) {
    EXPECT_NE(r->id.substr(0, 3), "PD-");
  }
}

TEST(ParsdiffRules, ClassifierMapsCodesAndFallsBackToPd07) {
  EXPECT_EQ(classify_error("der.bad_length", ""), "PD-01");
  EXPECT_EQ(classify_error("der.bad_boolean", ""), "PD-02");
  EXPECT_EQ(classify_error("der.bad_time", ""), "PD-03");
  EXPECT_EQ(classify_error("der.bad_string", ""), "PD-04");
  EXPECT_EQ(classify_error("x509.trailing_bytes", ""), "PD-05");
  EXPECT_EQ(classify_error("x509.unknown_critical_ext", ""), "PD-06");
  EXPECT_EQ(classify_error("der.unexpected_tag",
                           "expected tag 0x18, found 0x17"),
            "PD-03");
  EXPECT_EQ(classify_error("der.unexpected_tag", "expected a string type"),
            "PD-04");
  // Anything else is the catch-all class.
  EXPECT_EQ(classify_error("der.truncated", "no tag byte"), "PD-07");
  EXPECT_EQ(classify_error("der.unexpected_tag", "expected tag 0x30"),
            "PD-07");
}

// --- length knob (satellite: the leading-zero tolerance is a knob now) ---

TEST(ParsdiffLengthKnob, LeadingZeroLengthDefaultAcceptsStrictRejects) {
  // 02 82 00 81 <129 bytes>: leading-zero long-form length. The default
  // profile tolerates it (pinned historical behaviour); strict DER
  // rejects the leading zero.
  Bytes der = {0x02, 0x82, 0x00, 0x81};
  der.resize(der.size() + 0x81, 0x05);

  DerReader lax(der);
  EXPECT_TRUE(lax.read_integer().ok());

  DerReader strict(der, profile_named("strict-der"));
  auto rejected = strict.read_integer();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, "der.bad_length");
  EXPECT_EQ(rejected.error().message, "leading-zero length octet");
}

TEST(ParsdiffLengthKnob, NonMinimalLongFormNeedsBer) {
  // 02 81 01 05: long form for a length below 0x80 — BER, not DER.
  const Bytes der = {0x02, 0x81, 0x01, 0x05};

  DerReader lax(der);  // default: rejected, exactly as before the knob
  auto rejected = lax.read_integer();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, "der.bad_length");
  EXPECT_EQ(rejected.error().message, "non-minimal long-form length");

  DerReader ber(der, profile_named("openssl-ber"));
  auto accepted = ber.read_integer();
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted.value().low_u64(), std::uint64_t{5});
}

// --- boolean knob ---------------------------------------------------------

TEST(ParsdiffBooleanKnob, NonCanonicalTrueRejectedOnlyUnderStrict) {
  const Bytes ber_true = {0x01, 0x01, 0x01};
  DerReader lax(ber_true);
  auto value = lax.read_boolean();
  ASSERT_TRUE(value.ok());  // historical: any non-zero octet is TRUE
  EXPECT_TRUE(value.value());

  DerReader strict(ber_true, profile_named("strict-der"));
  auto rejected = strict.read_boolean();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, "der.bad_boolean");

  const Bytes der_true = {0x01, 0x01, 0xff};
  DerReader strict_ok(der_true, profile_named("strict-der"));
  ASSERT_TRUE(strict_ok.read_boolean().ok());
}

// --- time knobs (satellite: edge-case coverage across profiles) ----------

std::int64_t read_time_or_die(const Bytes& tlv, const ParseProfile& profile) {
  DerReader reader(tlv, profile);
  auto value = reader.read_time();
  EXPECT_TRUE(value.ok()) << (value.ok() ? "" : value.error().to_string());
  return value.ok() ? value.value() : 0;
}

Error read_time_error(const Bytes& tlv, const ParseProfile& profile) {
  DerReader reader(tlv, profile);
  auto value = reader.read_time();
  EXPECT_FALSE(value.ok());
  return value.ok() ? Error{} : value.error();
}

constexpr std::uint8_t kUtc = 0x17;
constexpr std::uint8_t kGen = 0x18;

TEST(ParsdiffTimeKnob, UtcTimePivotSplitsTheCentury) {
  const ParseProfile& utc_ok = profile_named("openssl-ber");
  // 49 pivots to 2049, 50 to 1950 (RFC 5280 §4.1.2.5.1).
  EXPECT_EQ(read_time_or_die(text_tlv(kUtc, "491231235959Z"), utc_ok),
            read_time_or_die(text_tlv(kGen, "20491231235959Z"), utc_ok));
  EXPECT_EQ(read_time_or_die(text_tlv(kUtc, "500101000000Z"), utc_ok),
            read_time_or_die(text_tlv(kGen, "19500101000000Z"), utc_ok));
  // Default profile: UTCTime is still an unexpected tag, same error as
  // the historical reader.
  const Error err =
      read_time_error(text_tlv(kUtc, "491231235959Z"), ParseProfile{});
  EXPECT_EQ(err.code, "der.unexpected_tag");
  EXPECT_EQ(err.message, "expected tag 0x18, found 0x17");
}

TEST(ParsdiffTimeKnob, MissingSecondsNeedTheirKnob) {
  // UTCTime without seconds: accepted by openssl-ber, rejected by
  // gnutls-string (UTCTime yes, missing seconds no).
  EXPECT_EQ(read_time_or_die(text_tlv(kUtc, "9901012359Z"),
                             profile_named("openssl-ber")),
            read_time_or_die(text_tlv(kGen, "19990101235900Z"),
                             profile_named("openssl-ber")));
  EXPECT_EQ(read_time_error(text_tlv(kUtc, "9901012359Z"),
                            profile_named("gnutls-string"))
                .message,
            "seconds field required");
  // GeneralizedTime without seconds under browser-time.
  EXPECT_EQ(read_time_or_die(text_tlv(kGen, "199912312359Z"),
                             profile_named("browser-time")),
            read_time_or_die(text_tlv(kGen, "19991231235900Z"),
                             profile_named("browser-time")));
  EXPECT_EQ(read_time_error(text_tlv(kGen, "199912312359Z"), ParseProfile{})
                .code,
            "der.bad_time");
}

TEST(ParsdiffTimeKnob, ExplicitOffsetsShiftToUtc) {
  const ParseProfile& browser = profile_named("browser-time");
  EXPECT_EQ(read_time_or_die(text_tlv(kGen, "20300101120000+0230"), browser),
            read_time_or_die(text_tlv(kGen, "20300101093000Z"), browser));
  EXPECT_EQ(read_time_or_die(text_tlv(kGen, "20300101120000-0100"), browser),
            read_time_or_die(text_tlv(kGen, "20300101130000Z"), browser));
  // openssl-ber leaves offsets off.
  EXPECT_EQ(read_time_error(text_tlv(kGen, "20300101120000+0230"),
                            profile_named("openssl-ber"))
                .message,
            "explicit offset not accepted");
}

TEST(ParsdiffTimeKnob, FractionalSecondsFloorAndStayGeneralizedOnly) {
  const ParseProfile& browser = profile_named("browser-time");
  EXPECT_EQ(read_time_or_die(text_tlv(kGen, "20300101120000.75Z"), browser),
            read_time_or_die(text_tlv(kGen, "20300101120000Z"), browser));
  // UTCTime never grows fractions, even under the laxest profile.
  EXPECT_EQ(read_time_error(text_tlv(kUtc, "990101235959.5Z"), browser).code,
            "der.bad_time");
  EXPECT_EQ(
      read_time_error(text_tlv(kGen, "20300101120000.75Z"), ParseProfile{})
          .code,
      "der.bad_time");
}

// --- string knobs ---------------------------------------------------------

TEST(ParsdiffStringKnob, LegacyTagsAndCharsets) {
  const Bytes teletex = text_tlv(0x14, "legacy");
  DerReader lax(teletex);
  EXPECT_FALSE(lax.read_string().ok());  // historical: rejected
  DerReader gnutls(teletex, profile_named("gnutls-string"));
  auto value = gnutls.read_string();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), "legacy");

  // '@' is outside the PrintableString alphabet: only the strict
  // profile checks.
  const Bytes bad_printable = text_tlv(0x13, "user@host");
  DerReader lax2(bad_printable);
  EXPECT_TRUE(lax2.read_string().ok());
  DerReader strict(bad_printable, profile_named("strict-der"));
  auto rejected = strict.read_string();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, "der.bad_string");

  // Malformed UTF-8 in a UTF8String: strict-only as well.
  Bytes bad_utf8 = {0x0c, 0x02, 0xff, 0xfe};
  DerReader lax3(bad_utf8);
  EXPECT_TRUE(lax3.read_string().ok());
  DerReader strict2(bad_utf8, profile_named("strict-der"));
  auto rejected2 = strict2.read_string();
  ASSERT_FALSE(rejected2.ok());
  EXPECT_EQ(rejected2.error().message, "malformed UTF-8");
}

// --- certificate-level defaults stay byte-identical ----------------------

TEST(ParsdiffDefaults, ExplicitDefaultProfileMatchesImplicitParse) {
  const std::vector<Bytes> inputs = {
      donor_cert_der(),
      cert_with_leading_zero_length(),
      cert_with_ber_boolean(),
      cert_with_validity(text_tlv(kUtc, "491231235959Z"),
                         text_tlv(kGen, "20491231235959Z")),
      cert_with_extra_extension("1.2.3.4", /*critical=*/true),
      {0x30, 0x01},  // truncated
  };
  for (const Bytes& der : inputs) {
    auto implicit = x509::parse_certificate(der);
    auto explicit_default =
        x509::parse_certificate(der, asn1::default_parse_profile());
    ASSERT_EQ(implicit.ok(), explicit_default.ok());
    if (implicit.ok()) {
      EXPECT_EQ(implicit.value()->fingerprint,
                explicit_default.value()->fingerprint);
    } else {
      EXPECT_EQ(implicit.error().code, explicit_default.error().code);
      EXPECT_EQ(implicit.error().message, explicit_default.error().message);
    }
  }
}

// --- PD classes: positive + negative per class ---------------------------

TEST(ParsdiffClasses, Pd01LengthLeniency) {
  const ChainDiff split = diff_chain(one(cert_with_leading_zero_length()));
  ASSERT_TRUE(split.discrepancy);
  EXPECT_EQ(split.pd_class, "PD-01");
  EXPECT_TRUE(profile_accepts(split, "default"));
  EXPECT_TRUE(profile_accepts(split, "openssl-ber"));
  EXPECT_FALSE(profile_accepts(split, "strict-der"));

  const ChainDiff clean = diff_chain(one(donor_cert_der()));
  EXPECT_FALSE(clean.discrepancy);
  EXPECT_EQ(clean.accept_count, profiles().size());
}

TEST(ParsdiffClasses, Pd02BooleanEncoding) {
  const ChainDiff split = diff_chain(one(cert_with_ber_boolean()));
  ASSERT_TRUE(split.discrepancy);
  EXPECT_EQ(split.pd_class, "PD-02");
  EXPECT_TRUE(profile_accepts(split, "default"));
  EXPECT_FALSE(profile_accepts(split, "strict-der"));
  // The canonical encoding splits nobody.
  EXPECT_FALSE(diff_chain(one(donor_cert_der())).discrepancy);
}

TEST(ParsdiffClasses, Pd03TimeSyntax) {
  // UTCTime validity: the lax-time profiles accept, default and strict
  // reject with the tag mismatch the classifier maps to PD-03.
  const ChainDiff utc =
      diff_chain(one(cert_with_validity(text_tlv(kUtc, "250101000000Z"),
                                        text_tlv(kUtc, "491231235959Z"))));
  ASSERT_TRUE(utc.discrepancy);
  EXPECT_EQ(utc.pd_class, "PD-03");
  EXPECT_FALSE(profile_accepts(utc, "default"));
  EXPECT_TRUE(profile_accepts(utc, "openssl-ber"));
  EXPECT_TRUE(profile_accepts(utc, "browser-time"));

  // Offset syntax: browser-time only.
  const ChainDiff offset = diff_chain(
      one(cert_with_validity(text_tlv(kGen, "20250101000000+0100"),
                             text_tlv(kGen, "20490101000000Z"))));
  ASSERT_TRUE(offset.discrepancy);
  EXPECT_EQ(offset.pd_class, "PD-03");
  EXPECT_TRUE(profile_accepts(offset, "browser-time"));
  EXPECT_FALSE(profile_accepts(offset, "openssl-ber"));

  // Proper GeneralizedTime: no split.
  const ChainDiff clean = diff_chain(
      one(cert_with_validity(text_tlv(kGen, "20250101000000Z"),
                             text_tlv(kGen, "20490101000000Z"))));
  EXPECT_FALSE(clean.discrepancy);
}

TEST(ParsdiffClasses, Pd04StringLeniency) {
  const ChainDiff split = diff_chain(one(cert_with_subject_string_tag(0x14)));
  ASSERT_TRUE(split.discrepancy);
  EXPECT_EQ(split.pd_class, "PD-04");
  EXPECT_TRUE(profile_accepts(split, "gnutls-string"));
  EXPECT_FALSE(profile_accepts(split, "default"));
  // The same subject as a PrintableString is fine everywhere.
  EXPECT_FALSE(
      diff_chain(one(cert_with_subject_string_tag(0x13))).discrepancy);
}

TEST(ParsdiffClasses, Pd05TrailingBytes) {
  Bytes der = donor_cert_der();
  der.push_back(0xde);
  der.push_back(0xad);
  const ChainDiff split = diff_chain(one(der));
  ASSERT_TRUE(split.discrepancy);
  EXPECT_EQ(split.pd_class, "PD-05");
  EXPECT_TRUE(profile_accepts(split, "default"));  // historical: ignored
  EXPECT_FALSE(profile_accepts(split, "strict-der"));
  EXPECT_FALSE(diff_chain(one(donor_cert_der())).discrepancy);
}

TEST(ParsdiffClasses, Pd06UnknownCriticalExtension) {
  const ChainDiff split =
      diff_chain(one(cert_with_extra_extension("1.2.3.4", true)));
  ASSERT_TRUE(split.discrepancy);
  EXPECT_EQ(split.pd_class, "PD-06");
  EXPECT_TRUE(profile_accepts(split, "default"));  // historical: ignored
  EXPECT_FALSE(profile_accepts(split, "strict-der"));
  EXPECT_FALSE(profile_accepts(split, "browser-time"));
  // Unknown but non-critical: nobody objects (RFC 5280 §4.2 only
  // requires rejecting *critical* unknowns).
  EXPECT_FALSE(
      diff_chain(one(cert_with_extra_extension("1.2.3.4", false)))
          .discrepancy);
}

TEST(ParsdiffClasses, AllRejectIsAgreementNotDiscrepancy) {
  const Bytes garbage = {0x30, 0x03, 0xff, 0xff, 0xff};
  const ChainDiff diff = diff_chain(one(garbage));
  EXPECT_FALSE(diff.discrepancy);
  EXPECT_EQ(diff.reject_count, profiles().size());
  EXPECT_TRUE(diff.pd_class.empty());
}

// --- lenient splitter -----------------------------------------------------

TEST(ParsdiffSplitter, SplitsConcatenatedTlvsAndDamagedTails) {
  Bytes wire = donor_cert_der();
  const std::size_t first_size = wire.size();
  append(wire, donor_cert_der());
  const std::vector<Bytes> blobs = split_der_blobs(wire);
  ASSERT_EQ(blobs.size(), std::size_t{2});
  EXPECT_EQ(blobs[0].size(), first_size);
  EXPECT_EQ(blobs[0], blobs[1]);

  // Overrunning length: the remainder becomes one final blob.
  const Bytes damaged = {0x30, 0x7f, 0x01, 0x02};
  const std::vector<Bytes> tail = split_der_blobs(damaged);
  ASSERT_EQ(tail.size(), std::size_t{1});
  EXPECT_EQ(tail[0], damaged);

  EXPECT_TRUE(split_der_blobs({}).empty());
}

// --- the sweep ------------------------------------------------------------

TEST(ParsdiffSweep, DeterministicAcrossThreadCountsAndCountsAddUp) {
  dataset::CorpusConfig config;
  config.domain_count = 150;
  config.seed = 833;
  const dataset::Corpus corpus(std::move(config));

  std::vector<LabeledInput> extra;
  extra.push_back({"T-utc", one(cert_with_validity(
                                text_tlv(kUtc, "250101000000Z"),
                                text_tlv(kUtc, "491231235959Z")))});
  extra.push_back({"T-crit", one(cert_with_extra_extension("1.2.3.4", true))});
  Bytes trailing = donor_cert_der();
  trailing.push_back(0x00);
  extra.push_back({"T-trail", one(trailing)});

  SweepRequest request;
  request.records = &corpus.records();
  request.extra = &extra;

  request.shards.threads = 1;
  const SweepSummary single = run_sweep(request);
  request.shards.threads = 4;
  const SweepSummary parallel = run_sweep(request);

  EXPECT_EQ(summary_json(single), summary_json(parallel));

  EXPECT_EQ(single.extra_inputs, extra.size());
  EXPECT_EQ(single.inputs, single.corpus_chains + single.extra_inputs);
  for (const auto& [name, totals] : single.matrix) {
    EXPECT_EQ(totals.accepted + totals.rejected, single.inputs) << name;
  }
  // The three crafted inputs split the panel and land in their classes.
  EXPECT_GE(single.discrepancies, std::uint64_t{3});
  EXPECT_EQ(single.by_label_class.at("T-utc/PD-03"), std::uint64_t{1});
  EXPECT_EQ(single.by_label_class.at("T-crit/PD-06"), std::uint64_t{1});
  EXPECT_EQ(single.by_label_class.at("T-trail/PD-05"), std::uint64_t{1});
  // Corpus chains are builder output: strictly DER, accepted by every
  // profile — the matrix's corpus rows are all-accept.
  const auto strict = single.matrix.at("strict-der");
  EXPECT_GE(strict.accepted, single.corpus_chains);
}

}  // namespace
}  // namespace chainchaos::parsdiff
