// The issuance predicate: "did certificate A issue certificate B?"
//
// Both halves of the paper hang off this relation. Following §3.1
// ("Order of certificates"), A issued B iff:
//   (1) A's public key verifies B's signature,  AND
//   (2) subject(A) == issuer(B)  OR  (3) SKID(A) == AKID(B),
// where (2)/(3) tolerate absent fields: if B carries no AKID (or A no
// SKID), the DN match alone suffices, and vice versa.
//
// Signature verification dominates the cost, and the same (A, B) pair is
// re-examined many times across topology construction, completeness
// probing and the 8 client simulations — so results are memoized by
// certificate fingerprint pair.
#pragma once

#include <cstdint>

#include "x509/certificate.hpp"

namespace chainchaos::chain {

/// Field-level match outcomes used by both the predicate and the
/// client-side KID-priority logic (Table 2 test #5).
enum class KidMatch {
  kMatch,     ///< both fields present and equal
  kAbsent,    ///< at least one side lacks the field
  kMismatch,  ///< both present, different
};

/// SKID(issuer) vs AKID(subject) comparison.
KidMatch kid_match(const x509::Certificate& issuer,
                   const x509::Certificate& subject);

/// subject DN of `issuer` equals issuer DN of `subject`.
bool dn_links(const x509::Certificate& issuer,
              const x509::Certificate& subject);

/// Full issuance predicate with signature check (memoized).
bool issued_by(const x509::Certificate& subject,
               const x509::Certificate& issuer);

/// Name/KID-only linkage — the relation *before* the signature check,
/// which is what clients use to shortlist candidate issuers.
bool plausibly_issued_by(const x509::Certificate& subject,
                         const x509::Certificate& issuer);

/// Memoization statistics (for the perf benches) and a reset hook so
/// tests can isolate cache state.
struct IssuanceCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t signature_checks = 0;
};

/// Snapshot of the process-wide memo counters. The memo itself is
/// mutex-striped and safe to hit from any number of analysis threads;
/// see issuance.cpp. reset_issuance_cache() must not race a sweep.
IssuanceCacheStats issuance_cache_stats();
void reset_issuance_cache();

}  // namespace chainchaos::chain
