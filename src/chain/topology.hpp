// Topology graph over a server-provided certificate list (§3.1).
//
// The paper formalises a chain's issuance structure as a graph: each
// *distinct* certificate is a node (duplicates are folded onto their
// first occurrence and remembered as Cp[i] labels), and a directed edge
// runs subject -> issuer whenever the issuance predicate holds. The
// order/duplicate/irrelevant/multipath/reversed analyses in Section 4
// are all small graph computations over this structure; so is the
// Figure 2 topology rendering.
#pragma once

#include <string>
#include <vector>

#include "x509/certificate.hpp"

namespace chainchaos::chain {

class Topology {
 public:
  struct Node {
    x509::CertPtr cert;
    int first_position = 0;          ///< p in the paper's C_p labels
    std::vector<int> occurrences;    ///< all positions, ascending
    std::vector<int> issuers;        ///< nodes that issued this node
    std::vector<int> issued;         ///< nodes this node issued

    bool duplicated() const { return occurrences.size() > 1; }
  };

  /// Builds the graph. Signature checks are memoized process-wide, so
  /// rebuilding topologies over a corpus stays cheap.
  static Topology build(const std::vector<x509::CertPtr>& list);

  bool empty() const { return nodes_.empty(); }
  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  int size() const { return static_cast<int>(nodes_.size()); }

  /// The node holding list position 0 — the paper's C0, treated as the
  /// chain's leaf for analysis purposes (leaf *placement* correctness is
  /// a separate classifier).
  int leaf_node() const { return empty() ? -1 : 0; }

  /// All maximal simple paths from C0 following subject->issuer edges.
  /// Simple-path enumeration terminates even on cyclic cross-signing
  /// graphs (cf. CVE-2024-0567).
  std::vector<std::vector<int>> paths_from_leaf() const;

  /// Node ids with no direct or indirect issuing relationship to C0
  /// (not C0 itself, not an ancestor of it). Table 5 "Irrelevant".
  std::vector<int> irrelevant_nodes() const;

  /// True if any edge on any leaf path places the issuer *before* its
  /// subject in the original list order. Table 5 "Reversed Sequences".
  bool any_path_reversed() const;

  /// True if *every* leaf path contains a reversed edge (the paper's
  /// "8,370 had all paths reversed" statistic).
  bool all_paths_reversed() const;

  /// Human-readable rendering in the style of Figure 2: one line per
  /// node with its label (including Cp[i] duplicate labels) and edges.
  std::string to_ascii() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace chainchaos::chain
