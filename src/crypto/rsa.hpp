// Small-key RSA signatures over SHA-256 digests.
//
// This is the signature substrate for the synthetic Web PKI. Keys are
// deliberately small (default 512-bit modulus) so that generating and
// signing hundreds of thousands of certificates stays fast; signatures
// remain *genuinely verifiable*, which matters because the paper's
// issuance predicate ("A issued B") includes a real signature check.
// Nothing here is intended to protect production traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "crypto/bigint.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace chainchaos::crypto {

/// Miller–Rabin probabilistic primality test (deterministic witnesses for
/// 64-bit inputs, random witnesses above). `rounds` only applies above.
bool is_probable_prime(const BigInt& n, Rng& rng, int rounds = 24);

/// Searches for a prime of exactly `bits` bits.
BigInt generate_prime(Rng& rng, int bits);

namespace detail {

/// Per-key acceleration state, built lazily on first use and cached on
/// the key (DESIGN.md §5.12): the Montgomery context for the modulus
/// (absent when the modulus is even or trivial — hostile parsed SPKIs
/// can carry anything) and the SHA-256 key fingerprint the verification
/// memo keys on.
struct RsaKeyAccel {
  Bytes fingerprint;               ///< SHA-256 over n||e
  std::optional<MontgomeryContext> mont;
};

}  // namespace detail

/// RSA public key: (n, e).
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  RsaPublicKey() = default;
  RsaPublicKey(BigInt n_value, BigInt e_value)
      : n(std::move(n_value)), e(std::move(e_value)) {}
  RsaPublicKey(const RsaPublicKey& other) : n(other.n), e(other.e) {}
  RsaPublicKey(RsaPublicKey&& other) noexcept
      : n(std::move(other.n)),
        e(std::move(other.e)),
        accel_(other.accel_.exchange(nullptr, std::memory_order_acq_rel)) {}
  RsaPublicKey& operator=(const RsaPublicKey& other);
  RsaPublicKey& operator=(RsaPublicKey&& other) noexcept;
  ~RsaPublicKey() { delete accel_.load(std::memory_order_acquire); }

  /// Modulus size in whole bytes (signature width).
  std::size_t modulus_bytes() const {
    return static_cast<std::size_t>((n.bit_length() + 7) / 8);
  }

  /// Canonical encoding used inside SubjectPublicKeyInfo and for
  /// key-identifier derivation: DER-ish SEQUENCE of two INTEGERs is
  /// handled at the asn1 layer; this returns n||e big-endian bytes.
  Bytes fingerprint_material() const;

  /// Lazily built Montgomery context + key fingerprint, cached on the
  /// key so repeated verifications against one issuer skip the setup
  /// divmod. Thread-safe: concurrent first calls race benignly and one
  /// winner is published with compare-exchange; losers delete theirs.
  const detail::RsaKeyAccel& accel() const;

  bool operator==(const RsaPublicKey& o) const {
    return n == o.n && e == o.e;
  }

 private:
  /// Copies do not share the cache (each rebuilds lazily); the pointer
  /// is owned and freed by the destructor.
  mutable std::atomic<const detail::RsaKeyAccel*> accel_{nullptr};
};

/// RSA private key. Carries the CRT components (p, q, dp, dq, qinv) so
/// signing runs two half-width exponentiations (~4x faster than a plain
/// d-exponentiation); falls back to d when CRT parts are absent.
struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;
  BigInt p;
  BigInt q;
  BigInt dp;    ///< d mod (p-1)
  BigInt dq;    ///< d mod (q-1)
  BigInt qinv;  ///< q^-1 mod p

  bool has_crt() const { return !p.is_zero() && !q.is_zero(); }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generates an RSA keypair with a modulus of `modulus_bits` (must be
/// even, >= 128). e = 65537. Deterministic given the Rng state.
RsaKeyPair generate_keypair(Rng& rng, int modulus_bits = 512);

/// Signs SHA-256(message) with PKCS#1-v1.5-style padding sized to the
/// modulus. Returns a signature of exactly modulus_bytes() bytes.
Bytes rsa_sign(const RsaPrivateKey& key, BytesView message);

/// The PKCS#1-v1.5-style encoded message both sign and verify compare
/// against: 0x00 0x01 FF..FF 0x00 || digest, `width` bytes. Throws
/// std::invalid_argument when width < digest + 11. The BytesView
/// overload takes the digest directly so a caller that already hashed
/// the message (the Verifier shares one digest between the memo key and
/// this comparison) doesn't pay for SHA-256 twice.
Bytes rsa_pad_digest(BytesView digest, std::size_t width);

/// rsa_pad_digest(SHA-256(message), width).
Bytes rsa_padded_digest(BytesView message, std::size_t width);

/// Verifies a signature produced by rsa_sign. Routed through
/// crypto::Verifier (verifier.hpp) — the single verification entry
/// point — so calls share the Montgomery fast path and the memo.
bool rsa_verify(const RsaPublicKey& key, BytesView message, BytesView signature);

/// Process-wide pool of deterministically generated keypairs.
///
/// Generating RSA primes is by far the most expensive operation in the
/// simulator, and the corpus only needs a bounded set of *distinct*
/// signing identities (CAs and self-signing leaves). The pool generates
/// each keypair once from a fixed seed and hands out stable references
/// (storage is a deque: references survive pool growth).
///
/// Because the sequence is a pure function of the fixed seed, generated
/// keys are also cached on disk (CHAINCHAOS_KEY_CACHE overrides the
/// path; set it to "off" to disable) so repeated processes skip the
/// prime search entirely.
class KeyPool {
 public:
  /// Shared pool (lazily grown, thread-compatible single-threaded use).
  static KeyPool& instance();

  /// Returns keypair #index, generating up to that point if needed.
  const RsaKeyPair& at(std::size_t index);

  /// Stable keypair for a named identity. Every distinct name gets a
  /// distinct keypair — use for CAs and any other *signing* identity
  /// whose key identifier must not collide.
  const RsaKeyPair& for_name(std::string_view name);

  /// Stable keypair for a leaf subject, folded onto a small slot pool.
  /// Leaf keys are only *content* (SPKI/SKID); slot sharing between
  /// unrelated leaves is harmless and avoids a fresh prime search per
  /// synthetic domain (the dominant corpus-generation cost otherwise).
  const RsaKeyPair& leaf_slot(std::string_view name);

  std::size_t generated_count() const { return keys_.size(); }

 private:
  KeyPool();
  void load_cache();
  void append_to_cache(const RsaKeyPair& pair);

  std::deque<RsaKeyPair> keys_;
  std::map<std::string, std::size_t, std::less<>> named_;
  Rng rng_;
  std::string cache_path_;  ///< empty: caching disabled
  std::size_t cached_loaded_ = 0;
};

}  // namespace chainchaos::crypto
