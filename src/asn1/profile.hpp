// ParseProfile: explicit leniency knobs for the DER/X.509 decoders.
//
// ParsEval (PAPERS.md) shows real X.509 parsers disagree wildly on
// out-in-the-wild bytes: OpenSSL swallows BER length forms strict DER
// forbids, browsers accept time syntaxes libraries reject, GnuTLS maps
// legacy string types others refuse. This struct makes each of those
// tolerances an explicit, independently testable knob instead of an
// accident of one implementation.
//
// The DEFAULT-constructed profile reproduces this library's historical
// behaviour bit for bit (every knob here defaults to what the reader
// did before profiles existed), so parse paths that never mention a
// profile are unchanged. Named profile presets modeled on the
// OpenSSL/GnuTLS/browser behaviours live one layer up, in
// parsdiff/profile.hpp — asn1 only defines the knob vocabulary.
#pragma once

namespace chainchaos::asn1 {

/// How the reader treats DER length-octet minimality (RFC 5280 requires
/// DER; X.690 §10.1 requires minimal lengths).
enum class LengthRule {
  /// Reject every BER-ism: long form where short form fits, excess
  /// leading zero octets, long form below 0x80.
  kStrictDer,
  /// The historical default: leading-zero length octets round-trip
  /// safely and are tolerated (chainlint reports them as
  /// cert.der_nonminimal_length); long form below 0x80 is rejected.
  kLeadingZeroTolerant,
  /// Full BER tolerance: leading zeros AND non-minimal long form (e.g.
  /// 81 05) are accepted, as OpenSSL's d2i does.
  kBer,
};

/// Leniency knobs threaded through DerReader and x509::parse_certificate.
/// Every default reproduces the pre-profile reader exactly.
struct ParseProfile {
  // --- length framing (X.690 §10.1) --------------------------------------
  LengthRule length_rule = LengthRule::kLeadingZeroTolerant;

  // --- BOOLEAN content (X.690 §11.1) -------------------------------------
  /// DER requires TRUE to be exactly 0xff; BER accepts any non-zero
  /// octet. false (default) = accept any non-zero.
  bool strict_boolean = false;

  // --- time syntax (RFC 5280 §4.1.2.5) -----------------------------------
  /// Accept UTCTime (tag 0x17) where a time is expected. The historical
  /// reader (and the builder) speak GeneralizedTime only.
  bool accept_utc_time = false;
  /// Two-digit-year pivot for UTCTime: YY < pivot → 20YY, else 19YY.
  /// RFC 5280 pins 50 (1950..2049); kept a knob because deployed
  /// parsers have shipped other pivots.
  int utc_pivot_year = 50;
  /// Accept times with the seconds field omitted (YYMMDDHHMMZ /
  /// YYYYMMDDHHMMZ) — valid BER, forbidden by DER and RFC 5280.
  bool allow_missing_seconds = false;
  /// Accept explicit "+HHMM"/"-HHMM" offsets instead of the mandatory
  /// trailing "Z".
  bool allow_time_offsets = false;
  /// Accept GeneralizedTime fractional seconds ("...SS.fffZ") —
  /// forbidden by RFC 5280, seen in the wild, tolerated by some stacks.
  bool allow_fractional_seconds = false;

  // --- string types / charsets (X.680 §41, RFC 5280 §4.1.2.4) ------------
  /// Accept the legacy directory string tags (TeletexString 0x14,
  /// VideotexString 0x15, UniversalString 0x1c, BMPString 0x1e) where a
  /// string is expected, raw bytes passed through. The historical
  /// reader accepts UTF8String/PrintableString/IA5String only.
  bool extra_string_tags = false;
  /// Enforce the PrintableString alphabet (A-Za-z0-9 '()+,-./:=? and
  /// space); the historical reader takes the bytes verbatim.
  bool validate_printable_charset = false;
  /// Require UTF8String bodies to be well-formed UTF-8.
  bool validate_utf8 = false;

  // --- framing slack around the certificate ------------------------------
  /// Reject bytes trailing the outermost Certificate SEQUENCE. The
  /// historical parser reads one TLV and ignores the rest.
  bool reject_trailing_bytes = false;

  // --- extension criticality (RFC 5280 §4.2) -----------------------------
  /// Fail the parse on a critical extension this implementation does not
  /// process (the RFC-mandated behaviour browsers enforce; the
  /// historical parser notes and ignores).
  bool reject_unknown_critical = false;

  bool operator==(const ParseProfile&) const = default;
};

/// The process-wide default profile (all knobs at their historical
/// values). DerReader uses it when constructed without a profile.
const ParseProfile& default_parse_profile();

}  // namespace chainchaos::asn1
