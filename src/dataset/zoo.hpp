// CaZoo: the synthetic certification-authority landscape behind the
// corpus — hierarchies for the eight Table 11 issuers, a pool of
// anonymous "Other CAs", rare hierarchies reserved for cache-defeating
// incomplete chains, cross-signing structures for multi-path layouts,
// and the root material from which the four program stores are built.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ca/hierarchy.hpp"
#include "net/aia_repository.hpp"
#include "truststore/root_store.hpp"
#include "x509/builder.hpp"

namespace chainchaos::dataset {

class CaZoo {
 public:
  /// Builds every hierarchy, publishing AIA material into `aia`
  /// (which must outlive the zoo).
  explicit CaZoo(net::AiaRepository* aia);

  CaZoo(const CaZoo&) = delete;
  CaZoo& operator=(const CaZoo&) = delete;

  /// Hierarchy for a Table 11 issuer name ("Let's Encrypt", ...).
  /// Unknown names (the "Other CAs" bucket) rotate deterministically
  /// over the anonymous pool, keyed by the caller's discriminator.
  const ca::CaHierarchy& hierarchy_for(const std::string& ca_name,
                                       std::uint64_t discriminator) const;

  /// Hierarchies whose intermediates never back compliant chains; used
  /// for the Firefox-cache-miss share of incomplete chains.
  const ca::CaHierarchy& rare_hierarchy(std::uint64_t discriminator) const;

  /// Cross-signed twin of a hierarchy's *root* (same subject+key, issued
  /// by the independent AAA root) — the Figure 2c ingredient. Memoized
  /// per hierarchy.
  const x509::CertPtr& cross_root_cert(const ca::CaHierarchy& hierarchy);

  /// An older twin of the hierarchy's issuing intermediate: identical
  /// subject+issuer+key, shifted validity (the Figure 5 candidate pair).
  const x509::CertPtr& twin_intermediate(const ca::CaHierarchy& hierarchy);

  /// A variant of the hierarchy's top intermediate without an AKID —
  /// breaks the paper's AKID-only root-store probe (Table 8's no-AIA
  /// column). Memoized per hierarchy.
  const x509::CertPtr& akidless_top_intermediate(
      const ca::CaHierarchy& hierarchy);

  /// The independent trusted root used for cross-signing.
  const x509::CertPtr& aaa_root() const { return aaa_root_; }

  /// Self-signed root trusted by no program (moex.gov.tw's node 1).
  const x509::CertPtr& untrusted_gov_root() const { return untrusted_root_; }
  const x509::SigningIdentity& untrusted_gov_identity() const {
    return untrusted_gov_id_;
  }

  /// Root material for store construction: common core roots.
  std::vector<x509::CertPtr> core_roots() const;

  /// Per-program exclusive roots (bitmask per truststore contract).
  std::vector<std::pair<x509::CertPtr, unsigned>> exclusive_roots() const;

  /// Hierarchy rooted at a root trusted only by Microsoft+Apple
  /// (chains under it are incomplete for Mozilla/Chrome when AIA cannot
  /// help — Table 8's with-AIA deltas). Built without AIA publication.
  const ca::CaHierarchy& ms_apple_exclusive() const { return *exclusive_ms_apple_; }

  /// Counterpart trusted only by Mozilla+Chrome.
  const ca::CaHierarchy& moz_chrome_exclusive() const {
    return *exclusive_moz_chrome_;
  }

  /// All named issuer hierarchies (for iteration in benches/tests).
  const std::vector<std::string>& issuer_names() const { return names_; }

  /// Count of anonymous pool hierarchies (exposed for tests).
  std::size_t other_pool_size() const { return other_pool_.size(); }

 private:
  std::map<std::string, std::unique_ptr<ca::CaHierarchy>> by_name_;
  std::vector<std::unique_ptr<ca::CaHierarchy>> other_pool_;
  std::vector<std::unique_ptr<ca::CaHierarchy>> rare_pool_;
  std::vector<std::string> names_;

  x509::SigningIdentity aaa_id_;
  x509::CertPtr aaa_root_;
  x509::SigningIdentity untrusted_gov_id_;
  x509::CertPtr untrusted_root_;
  std::unique_ptr<ca::CaHierarchy> exclusive_ms_apple_;
  std::unique_ptr<ca::CaHierarchy> exclusive_moz_chrome_;

  std::map<std::string, x509::CertPtr> cross_cache_;
  std::map<std::string, x509::CertPtr> twin_cache_;
  std::map<std::string, x509::CertPtr> akidless_cache_;
};

}  // namespace chainchaos::dataset
