// Regenerates Table 3: leaf certificate deployment classification over
// the corpus (paper: 92.5% / 6.9% / ~0 / ~0 / 0.6% of 906,336 domains).
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "chain/leaf_placement.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  const auto corpus = bench::make_corpus();

  std::map<chain::LeafPlacement, std::uint64_t> counts;
  for (const dataset::DomainRecord& record : corpus->records()) {
    const chain::LeafPlacement placement = chain::classify_leaf_placement(
        record.observation.certificates, record.observation.domain);
    ++counts[placement];
  }
  const std::uint64_t total = corpus->records().size();

  report::Table table("Table 3: Leaf certificate deployment");
  table.header({"Place", "Match", "#domains (measured)", "paper"});
  table.row({"ok", "ok",
             report::count_pct(counts[chain::LeafPlacement::kCorrectMatched],
                               total),
             "838,354 (92.5%)"});
  table.row({"ok", "x",
             report::count_pct(
                 counts[chain::LeafPlacement::kCorrectMismatched], total),
             "62,536 (6.9%)"});
  table.row({"x", "ok",
             report::count_pct(
                 counts[chain::LeafPlacement::kIncorrectMatched], total),
             "0 (~0%)"});
  table.row({"x", "x",
             report::count_pct(
                 counts[chain::LeafPlacement::kIncorrectMismatched], total),
             "1 (~0%)"});
  table.row({"Other", "",
             report::count_pct(counts[chain::LeafPlacement::kOther], total),
             "5,445 (0.6%)"});
  std::fputs(table.render().c_str(), stdout);

  // The singleton: mot.gov.ps (paper §4.1).
  if (const dataset::DomainRecord* mot = corpus->exemplar("mot.gov.ps")) {
    const auto placement = chain::classify_leaf_placement(
        mot->observation.certificates, mot->observation.domain);
    std::printf("\nexemplar mot.gov.ps -> %s (paper: the single "
                "incorrectly-placed-and-mismatched domain)\n",
                chain::to_string(placement));
  }

  bench::print_paper_note(
      "Table 3",
      "leaf placement overwhelmingly compliant; mismatches are hosting "
      "certs; 'Other' are test/appliance certificates");
  return 0;
}
