#include "report/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace chainchaos::report {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!comma_due_.empty()) {
    if (comma_due_.back()) out_ += ',';
    comma_due_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  comma_due_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!comma_due_.empty());
  comma_due_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  comma_due_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!comma_due_.empty());
  comma_due_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  assert(!comma_due_.empty() && !after_key_);
  if (comma_due_.back()) out_ += ',';
  comma_due_.back() = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t n) {
  before_value();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t n) {
  before_value();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  if (!std::isfinite(d)) return null();
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

}  // namespace chainchaos::report
