// Regenerates Table 6: issuance characteristics of CAs/resellers, and
// demonstrates the causal link the paper established: a reversed
// ca-bundle + a naive file merge = a reversed-sequence deployment.
#include <cstdio>

#include "ca/ca_model.hpp"
#include "chain/completeness.hpp"
#include "chain/order_analysis.hpp"
#include "chain/topology.hpp"
#include "report/table.hpp"
#include "truststore/root_store.hpp"

using namespace chainchaos;

namespace {

const char* guide_label(ca::InstallationGuide guide) {
  switch (guide) {
    case ca::InstallationGuide::kNone: return "no";
    case ca::InstallationGuide::kApacheIisOnly: return "only Apache/IIS";
    case ca::InstallationGuide::kAllServers: return "yes";
  }
  return "?";
}

}  // namespace

int main() {
  // One shared hierarchy per depth profile keeps the table cheap.
  const ca::CaHierarchy shallow = ca::CaHierarchy::create("Bench CA d1", 1);
  const ca::CaHierarchy deep = ca::CaHierarchy::create("Bench CA d2", 2);

  report::Table table(
      "Table 6: SSL issuance characteristics by CA/reseller (observed)");
  table.header({"CA / reseller", "Auto mgmt", "Fullchain", "Ca-bundle",
                "Root incl.", "Bundle order ok", "Install guide",
                "naive admin deployment"});

  using ca::CaKind;
  for (CaKind kind :
       {CaKind::kLetsEncrypt, CaKind::kDigicert, CaKind::kSectigo,
        CaKind::kZeroSsl, CaKind::kGoGetSsl, CaKind::kTaiwanCa,
        CaKind::kCyberFolks, CaKind::kTrustico}) {
    const ca::CaHierarchy& hierarchy =
        (kind == CaKind::kSectigo || kind == CaKind::kTaiwanCa ||
         kind == CaKind::kGoGetSsl)
            ? deep
            : shallow;
    const ca::CaModel model(kind, &hierarchy);
    const auto& traits = model.characteristics();

    const ca::IssuedPackage package = model.issue("bench-ca.example.com");
    const auto deployed = model.naive_admin_deployment(package);
    const chain::Topology topo = chain::Topology::build(deployed);
    const chain::OrderAnalysis analysis = chain::analyze_order(deployed, topo);

    std::string verdict = "compliant";
    if (analysis.reversed_sequence) verdict = "REVERSED SEQUENCE";

    chain::CompletenessOptions comp_options;
    truststore::RootStore store("bench6");
    store.add(hierarchy.root());
    comp_options.store = &store;
    comp_options.aia_enabled = false;
    if (!chain::analyze_completeness(topo, comp_options).complete()) {
      verdict = analysis.reversed_sequence ? "REVERSED + INCOMPLETE"
                                           : "INCOMPLETE CHAIN";
    }

    table.row({model.name(),
               traits.automatic_certificate_management ? "yes" : "no",
               traits.provides_fullchain_file ? "yes" : "no",
               traits.provides_ca_bundle_file ? "yes" : "no",
               traits.provides_root_certificate ? "yes" : "no",
               traits.bundle_in_compliant_order ? "yes" : "NO (reversed)",
               guide_label(traits.guide), verdict});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\n[paper] Table 6 + §4.2: GoGetSSL, cyber_Folks S.A. and Trustico "
      "deliver the ca-bundle in reverse order; administrators who merge the "
      "two delivered files verbatim produce exactly the reversed 1->2->0 / "
      "1->2->3->0 deployments that dominate Table 5. TAIWAN-CA's bundles "
      "omit an intermediate, explaining its 41.9%% incomplete-chain rate in "
      "Table 11. Let's Encrypt's fullchain.pem yields compliant deployments "
      "even for naive admins.\n");
  return 0;
}
