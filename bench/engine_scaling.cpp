// Engine scaling bench: records/sec of the full §4 compliance sweep at
// 1/2/4/8 worker threads over one corpus, plus the determinism check
// that makes the sharded engine trustworthy — every thread count must
// produce a byte-identical summary.
//
// Corpus size defaults to 50,000 domains (CHAINCHAOS_DOMAINS overrides,
// as for every bench). The issuance memo is reset before each timed run
// so each configuration does the full signature-verification work
// instead of riding the previous run's cache.
//
// Packed mode (DESIGN.md §5.14) follows the RAM scaling runs: the
// corpus is packed to the binary on-disk format and swept twice via
// mmap — once unreplicated to assert the packed summary is
// byte-identical to the in-RAM baseline, then replicated to at least
// CHAINCHAOS_PACKED_RECORDS records (default 1,000,000; 0 skips the
// phase) reporting records/sec, bytes/sec, and the resident-set growth,
// which must stay under half the file size (the streaming sweep decodes
// shards lazily and returns their pages to the kernel, so RSS must not
// track file size).
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "chain/issuance.hpp"
#include "corpusio/source.hpp"
#include "corpusio/writer.hpp"
#include "engine/engine.hpp"
#include "report/table.hpp"

using namespace chainchaos;

namespace {

long max_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

/// The packed-corpus phase; returns false on any gate failure.
bool run_packed_phase(const dataset::Corpus& corpus,
                      const std::string& baseline_summary,
                      bench::JsonReporter& reporter) {
  std::size_t target = 1000000;
  if (const char* env = std::getenv("CHAINCHAOS_PACKED_RECORDS")) {
    target = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  if (target == 0) {
    std::printf("\n[packed] skipped (CHAINCHAOS_PACKED_RECORDS=0)\n");
    return true;
  }

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  const std::string path = dir + "/engine_scaling_packed.chc";

  // --- identity gate: unreplicated packed sweep == in-RAM baseline ----
  bool ok = true;
  {
    auto packed = corpusio::pack_corpus(corpus, path);
    if (!packed.ok()) {
      std::fprintf(stderr, "[packed] pack failed: %s\n",
                   packed.error().to_string().c_str());
      return false;
    }
    auto opened = corpusio::PackedCorpus::open(path);
    if (!opened.ok()) {
      std::fprintf(stderr, "[packed] open failed: %s\n",
                   opened.error().to_string().c_str());
      return false;
    }
    chain::CompletenessOptions options;
    options.store = &opened.value()->stores().union_store;
    options.aia = &opened.value()->aia();
    const chain::ComplianceAnalyzer analyzer(options);
    const corpusio::PackedRecordSource source(&opened.value()->reader());
    chain::reset_issuance_cache();
    engine::AnalysisRequest request;
    request.source = &source;
    request.analyzer = &analyzer;
    const engine::AnalysisResult result = engine::run(request);
    const std::string summary =
        engine::summary_table(result.tally.compliance).render();
    if (summary != baseline_summary || source.decode_errors() != 0) {
      std::fprintf(stderr,
                   "[packed] IDENTITY FAILURE: mmap sweep diverged from the "
                   "in-RAM baseline (%llu decode errors)\n",
                   static_cast<unsigned long long>(source.decode_errors()));
      ok = false;
    } else {
      std::printf("\n[packed] mmap sweep is byte-identical to the in-RAM "
                  "baseline\n");
    }
  }

  // --- scale run: replicate to >= target records ----------------------
  const std::size_t replicate =
      (target + corpus.size() - 1) / corpus.size();
  {
    auto packed = corpusio::pack_corpus(corpus, path, replicate);
    if (!packed.ok()) {
      std::fprintf(stderr, "[packed] pack failed: %s\n",
                   packed.error().to_string().c_str());
      std::remove(path.c_str());
      return false;
    }
  }
  auto opened = corpusio::PackedCorpus::open(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "[packed] open failed: %s\n",
                 opened.error().to_string().c_str());
    std::remove(path.c_str());
    return false;
  }
  const std::size_t file_bytes = opened.value()->reader().file_bytes();
  std::printf("[packed] %zu records, %.1f MiB at %s\n",
              opened.value()->reader().size(),
              static_cast<double>(file_bytes) / (1024.0 * 1024.0),
              path.c_str());

  chain::CompletenessOptions options;
  options.store = &opened.value()->stores().union_store;
  options.aia = &opened.value()->aia();
  const chain::ComplianceAnalyzer analyzer(options);
  const corpusio::PackedRecordSource source(&opened.value()->reader());
  chain::reset_issuance_cache();
  const long rss_before_kb = max_rss_kb();
  engine::AnalysisRequest request;
  request.source = &source;
  request.analyzer = &analyzer;
  const engine::AnalysisResult result = engine::run(request);
  const long rss_after_kb = max_rss_kb();

  const double bytes_per_sec =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(source.bytes_visited()) /
                result.elapsed_seconds
          : 0.0;
  const long rss_delta_kb =
      rss_after_kb > rss_before_kb ? rss_after_kb - rss_before_kb : 0;
  std::printf("[packed] swept %zu records on %u threads in %.2fs: "
              "%.0f records/sec, %.1f MiB/sec\n",
              result.records_processed, result.threads_used,
              result.elapsed_seconds, result.records_per_second(),
              bytes_per_sec / (1024.0 * 1024.0));
  std::printf("[packed] peak RSS grew %.1f MiB over a %.1f MiB file\n",
              static_cast<double>(rss_delta_kb) / 1024.0,
              static_cast<double>(file_bytes) / (1024.0 * 1024.0));
  reporter.record_count("packed_records", result.records_processed);
  reporter.record("packed_records_per_sec", result.records_per_second());
  reporter.record("packed_mib_per_sec", bytes_per_sec / (1024.0 * 1024.0));
  reporter.record("packed_rss_delta_mib",
                  static_cast<double>(rss_delta_kb) / 1024.0);
  if (source.decode_errors() != 0 ||
      result.records_processed != opened.value()->reader().size()) {
    std::fprintf(stderr, "[packed] SWEEP FAILURE: %llu decode errors\n",
                 static_cast<unsigned long long>(source.decode_errors()));
    ok = false;
  }
  // Streaming gate: resident growth must not track the file. Half the
  // file size is a generous bound — with per-shard release the real
  // growth is a few shards' worth of pages.
  if (static_cast<unsigned long long>(rss_delta_kb) * 1024ULL >
      static_cast<unsigned long long>(file_bytes) / 2ULL) {
    std::fprintf(stderr,
                 "[packed] MEMORY FAILURE: RSS growth exceeds half the "
                 "file size — streaming is not streaming\n");
    ok = false;
  }
  std::remove(path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = bench::json_flag(argc, argv);
  bench::JsonReporter reporter;
  dataset::CorpusConfig config = bench::config_from_env();
  if (std::getenv("CHAINCHAOS_DOMAINS") == nullptr) {
    config.domain_count = 50000;  // scaling needs a corpus worth sharding
  }
  std::printf("[corpus] %zu synthetic domains, seed %llu\n",
              config.domain_count,
              static_cast<unsigned long long>(config.seed));
  dataset::Corpus corpus(std::move(config));

  chain::CompletenessOptions options;
  options.store = &corpus.stores().union_store;
  options.aia = &corpus.aia();
  const chain::ComplianceAnalyzer analyzer(options);

  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  std::string baseline_summary;
  double baseline_elapsed = 0.0;

  report::Table table("Engine scaling: §4 compliance sweep");
  table.header({"threads", "elapsed", "records/sec", "speedup vs 1"});

  bool deterministic = true;
  for (const unsigned threads : thread_counts) {
    chain::reset_issuance_cache();
    engine::AnalysisRequest request;
    request.records = &corpus.records();
    request.shards.threads = threads;
    request.analyzer = &analyzer;
    const engine::AnalysisResult result = engine::run(request);

    const std::string summary =
        engine::summary_table(result.tally.compliance).render();
    if (threads == thread_counts.front()) {
      baseline_summary = summary;
      baseline_elapsed = result.elapsed_seconds;
    } else if (summary != baseline_summary) {
      deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: %u-thread summary differs from "
                   "%u-thread baseline\n",
                   threads, thread_counts.front());
    }

    char elapsed[32], rps[32], speedup[32];
    std::snprintf(elapsed, sizeof elapsed, "%.2fs", result.elapsed_seconds);
    std::snprintf(rps, sizeof rps, "%.0f", result.records_per_second());
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  result.elapsed_seconds > 0.0
                      ? baseline_elapsed / result.elapsed_seconds
                      : 0.0);
    table.row({std::to_string(threads), elapsed, rps, speedup});

    const std::string prefix = "threads_" + std::to_string(threads);
    reporter.record(prefix + "_elapsed_seconds", result.elapsed_seconds);
    reporter.record(prefix + "_records_per_sec", result.records_per_second());
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nhardware_concurrency: %u%s\n",
              std::thread::hardware_concurrency(),
              std::thread::hardware_concurrency() < 4
                  ? " (speedups above are bounded by available cores)"
                  : "");
  std::printf("summaries across thread counts: %s\n",
              deterministic ? "IDENTICAL (deterministic sharding)"
                            : "DIVERGED");
  std::fputs(baseline_summary.c_str(), stdout);

  const bool packed_ok = run_packed_phase(corpus, baseline_summary, reporter);
  const bool ok = deterministic && packed_ok;
  reporter.record_count("deterministic", deterministic ? 1 : 0);
  if (!reporter.write(json_path, "engine_scaling", ok)) return 1;
  return ok ? 0 : 1;
}
