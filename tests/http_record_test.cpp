#include <gtest/gtest.h>

#include "net/http.hpp"
#include "tls/record.hpp"
#include "x509/builder.hpp"

namespace chainchaos {
namespace {

// ---------------------------------------------------------------------------
// URL parsing
// ---------------------------------------------------------------------------

TEST(UrlTest, ParsesWellFormed) {
  auto url = net::parse_url("http://aia.ca.example/tier1.crt");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().host, "aia.ca.example");
  EXPECT_EQ(url.value().path, "/tier1.crt");
}

TEST(UrlTest, DefaultsPathToRoot) {
  auto url = net::parse_url("http://host.example");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().path, "/");
}

TEST(UrlTest, KeepsPort) {
  auto url = net::parse_url("http://host.example:8080/x");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().host, "host.example:8080");
}

TEST(UrlTest, RejectsOtherSchemesAndGarbage) {
  EXPECT_FALSE(net::parse_url("https://secure.example/x").ok());
  EXPECT_FALSE(net::parse_url("ftp://old.example/x").ok());
  EXPECT_FALSE(net::parse_url("http://").ok());
  EXPECT_FALSE(net::parse_url("not a url").ok());
}

// ---------------------------------------------------------------------------
// HTTP request/response codec
// ---------------------------------------------------------------------------

TEST(HttpTest, RequestRoundTrip) {
  net::HttpRequest req;
  req.target = "/class3.crt";
  req.host = "www.cacert.example";
  req.headers["accept"] = "application/pkix-cert";

  auto parsed = net::parse_request(req.encode());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().method, "GET");
  EXPECT_EQ(parsed.value().target, "/class3.crt");
  EXPECT_EQ(parsed.value().host, "www.cacert.example");
  EXPECT_EQ(parsed.value().headers.at("accept"), "application/pkix-cert");
}

TEST(HttpTest, RequestRequiresHost) {
  EXPECT_FALSE(net::parse_request("GET / HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(net::parse_request("").ok());
  EXPECT_FALSE(net::parse_request("GARBAGE\r\n\r\n").ok());
  EXPECT_FALSE(net::parse_request("GET / SPDY/9\r\nhost: h\r\n\r\n").ok());
}

TEST(HttpTest, ResponseRoundTripWithBinaryBody) {
  net::HttpResponse resp = net::http_ok(Bytes{0x30, 0x82, 0x00, 0x0a, 0xff},
                                        "application/pkix-cert");
  auto parsed = net::parse_response(resp.encode());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().status, 200);
  EXPECT_EQ(parsed.value().headers.at("content-type"),
            "application/pkix-cert");
  EXPECT_TRUE(equal(parsed.value().body, resp.body));
}

TEST(HttpTest, ResponseNotFound) {
  auto parsed = net::parse_response(net::http_not_found().encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().status, 404);
  EXPECT_EQ(parsed.value().reason, "Not Found");
}

TEST(HttpTest, ResponseRejectsMalformed) {
  const auto reject = [](const std::string& raw) {
    return !net::parse_response(to_bytes(raw)).ok();
  };
  EXPECT_TRUE(reject("HTTP/1.1 200 OK\r\n"));                // no terminator
  EXPECT_TRUE(reject("SPDY/3 200 OK\r\n\r\n"));              // wrong protocol
  EXPECT_TRUE(reject("HTTP/1.1 abc OK\r\n\r\n"));            // bad status
  EXPECT_TRUE(reject("HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nshort"));
}

TEST(HttpTest, ResponseBodyTruncatedToContentLength) {
  const std::string raw =
      "HTTP/1.1 200 OK\r\ncontent-length: 4\r\n\r\nbodyEXTRA";
  auto parsed = net::parse_response(to_bytes(raw));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(to_string(parsed.value().body), "body");
}

// ---------------------------------------------------------------------------
// TLS record layer
// ---------------------------------------------------------------------------

TEST(RecordTest, SmallPayloadSingleRecord) {
  const Bytes payload = to_bytes("handshake bytes");
  const Bytes wire = tls::encode_records(tls::ContentType::kHandshake, payload);
  EXPECT_EQ(wire.size(), payload.size() + 5);
  EXPECT_EQ(wire[0], 22);  // handshake

  auto back = tls::decode_records(wire, tls::ContentType::kHandshake);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(back.value(), payload));
}

TEST(RecordTest, LargePayloadFragmentsAt16K) {
  const Bytes payload(tls::kMaxFragment * 2 + 100, 0xab);
  const Bytes wire = tls::encode_records(tls::ContentType::kHandshake, payload);
  // Three records: 16384 + 16384 + 100, each with a 5-byte header.
  EXPECT_EQ(wire.size(), payload.size() + 3 * 5);

  auto back = tls::decode_records(wire, tls::ContentType::kHandshake);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(equal(back.value(), payload));
}

TEST(RecordTest, EmptyPayloadStillFrames) {
  const Bytes wire = tls::encode_records(tls::ContentType::kAlert, Bytes{});
  EXPECT_EQ(wire.size(), 5u);
  auto back = tls::decode_records(wire, tls::ContentType::kAlert);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(RecordTest, RejectsWrongTypeTruncationAndOverflow) {
  const Bytes wire =
      tls::encode_records(tls::ContentType::kHandshake, to_bytes("data"));
  EXPECT_FALSE(tls::decode_records(wire, tls::ContentType::kAlert).ok());
  EXPECT_FALSE(tls::decode_records(BytesView(wire.data(), 3),
                                   tls::ContentType::kHandshake)
                   .ok());
  EXPECT_FALSE(tls::decode_records(BytesView(wire.data(), wire.size() - 1),
                                   tls::ContentType::kHandshake)
                   .ok());

  Bytes oversized = wire;
  oversized[3] = 0xff;  // claim a fragment > 2^14
  oversized[4] = 0xff;
  EXPECT_FALSE(
      tls::decode_records(oversized, tls::ContentType::kHandshake).ok());

  Bytes bad_version = wire;
  bad_version[1] = 0x07;
  EXPECT_FALSE(
      tls::decode_records(bad_version, tls::ContentType::kHandshake).ok());
}

TEST(RecordTest, AlertMappingCoversChainFailures) {
  using pathbuild::BuildStatus;
  using tls::AlertDescription;
  EXPECT_EQ(tls::alert_for(BuildStatus::kOk), AlertDescription::kCloseNotify);
  EXPECT_EQ(tls::alert_for(BuildStatus::kNoIssuerFound),
            AlertDescription::kUnknownCa);
  EXPECT_EQ(tls::alert_for(BuildStatus::kUntrustedRoot),
            AlertDescription::kUnknownCa);
  EXPECT_EQ(tls::alert_for(BuildStatus::kExpired),
            AlertDescription::kCertificateExpired);
  EXPECT_EQ(tls::alert_for(BuildStatus::kHostnameMismatch),
            AlertDescription::kBadCertificate);
  EXPECT_EQ(tls::alert_for(BuildStatus::kInputListTooLong),
            AlertDescription::kInternalError);
}

TEST(RecordTest, AlertRoundTrip) {
  for (tls::AlertDescription alert :
       {tls::AlertDescription::kCloseNotify, tls::AlertDescription::kUnknownCa,
        tls::AlertDescription::kCertificateExpired}) {
    auto back = tls::decode_alert(tls::encode_alert(alert));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), alert);
  }
  EXPECT_FALSE(tls::decode_alert(Bytes{2}).ok());
  EXPECT_FALSE(tls::decode_alert(Bytes{9, 42}).ok());
}

}  // namespace
}  // namespace chainchaos
