// Tests for the chaind analysis service (src/service/): result cache,
// metrics, handler JSON, and the live loopback server — including the
// ISSUE acceptance scenarios (parallel byte-identical responses cache
// on vs off, 503 + Retry-After under backpressure, graceful drain).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "service/cache.hpp"
#include "service/client.hpp"
#include "service/handlers.hpp"
#include "service/server.hpp"
#include "x509/builder.hpp"

namespace chainchaos {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::make_identity;
using x509::SigningIdentity;

struct ServicePki {
  SigningIdentity root_id = make_identity(asn1::Name::make("Service Root"));
  SigningIdentity inter_id = make_identity(asn1::Name::make("Service Inter"));
  CertPtr root, inter, leaf;

  ServicePki() {
    CertificateBuilder rb;
    rb.subject(root_id.name).as_ca().public_key(root_id.keys.pub);
    root = rb.self_sign(root_id.keys);
    CertificateBuilder ib;
    ib.subject(inter_id.name).as_ca().public_key(inter_id.keys.pub);
    inter = ib.sign(root_id);
    CertificateBuilder lb;
    lb.as_leaf("service.example");
    leaf = lb.sign(inter_id);
  }

  std::string pem_chain() const {
    return x509::to_pem(*leaf) + x509::to_pem(*inter) + x509::to_pem(*root);
  }
};

ServicePki& pki() {
  static ServicePki instance;
  return instance;
}

// ---------------------------------------------------------------------------
// Raw-socket helpers (for scenarios the Client deliberately can't reach:
// half-written requests, rejected connections, crafted bytes)
// ---------------------------------------------------------------------------

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void send_raw(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads until the peer closes or `timeout_ms` of silence.
std::string recv_all(int fd, int timeout_ms = 2000) {
  std::string out;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, HitMissAndLruEviction) {
  service::ResultCache cache(/*capacity=*/2, /*shards=*/1);
  EXPECT_FALSE(cache.get(to_bytes("a")).has_value());
  cache.put(to_bytes("a"), "A");
  cache.put(to_bytes("b"), "B");
  EXPECT_EQ(cache.get(to_bytes("a")).value(), "A");  // refreshes "a"
  cache.put(to_bytes("c"), "C");                     // evicts LRU "b"
  EXPECT_FALSE(cache.get(to_bytes("b")).has_value());
  EXPECT_EQ(cache.get(to_bytes("a")).value(), "A");
  EXPECT_EQ(cache.get(to_bytes("c")).value(), "C");

  const service::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 3.0 / 5.0);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  service::ResultCache cache(0);
  cache.put(to_bytes("a"), "A");
  EXPECT_FALSE(cache.get(to_bytes("a")).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, PutSameKeyReplacesValue) {
  service::ResultCache cache(4);
  cache.put(to_bytes("k"), "v1");
  cache.put(to_bytes("k"), "v2");
  EXPECT_EQ(cache.get(to_bytes("k")).value(), "v2");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, ShardedCacheKeepsAllEntriesUnderCapacity) {
  service::ResultCache cache(/*capacity=*/64, /*shards=*/8);
  for (int i = 0; i < 32; ++i) {
    cache.put(to_bytes("key-" + std::to_string(i)), std::to_string(i));
  }
  for (int i = 0; i < 32; ++i) {
    const auto hit = cache.get(to_bytes("key-" + std::to_string(i)));
    ASSERT_TRUE(hit.has_value()) << "key-" << i;
    EXPECT_EQ(*hit, std::to_string(i));
  }
}

TEST(ResultCacheTest, KeyDependsOnEndpointDomainAndChain) {
  const std::vector<Bytes> chain = {to_bytes("cert-one"),
                                    to_bytes("cert-two")};
  const Bytes base = service::result_cache_key("analyze", "a.example", chain);
  EXPECT_EQ(base.size(), 32u);  // SHA-256
  EXPECT_EQ(base,
            service::result_cache_key("analyze", "a.example", chain));
  EXPECT_NE(base, service::result_cache_key("lint", "a.example", chain));
  EXPECT_NE(base, service::result_cache_key("analyze", "b.example", chain));
  EXPECT_NE(base, service::result_cache_key("analyze", "a.example",
                                            {to_bytes("cert-one")}));
  // Length-prefixed fields: moving a boundary must change the key.
  EXPECT_NE(base, service::result_cache_key(
                      "analyze", "a.example",
                      {to_bytes("cert-on"), to_bytes("ecert-two")}));
}

// ---------------------------------------------------------------------------
// Handler (no sockets)
// ---------------------------------------------------------------------------

TEST(ServiceHandlerTest, RoutesAndErrorStatuses) {
  service::ResultCache cache(16);
  service::Metrics metrics;
  service::RequestHandler handler({}, &cache, &metrics);

  net::HttpRequest req;
  req.method = "GET";
  req.target = "/healthz";
  EXPECT_EQ(handler.handle(req).status, 200);

  req.target = "/v1/stats";
  EXPECT_EQ(handler.handle(req).status, 200);

  req.target = "/nope";
  EXPECT_EQ(handler.handle(req).status, 404);

  req.target = "/v1/analyze";  // GET where POST is required
  EXPECT_EQ(handler.handle(req).status, 405);

  req.method = "POST";
  req.body = to_bytes("this is not a certificate");
  const net::HttpResponse bad = handler.handle(req);
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(to_string(bad.body).find("\"error\""), std::string::npos);
}

TEST(ServiceHandlerTest, AnalyzeMissThenHitSameBody) {
  service::ResultCache cache(16);
  service::Metrics metrics;
  service::RequestHandler handler({}, &cache, &metrics);

  net::HttpRequest req;
  req.method = "POST";
  req.target = "/v1/analyze?domain=service.example";
  req.body = to_bytes(pki().pem_chain());

  const net::HttpResponse first = handler.handle(req);
  ASSERT_EQ(first.status, 200);
  EXPECT_EQ(first.headers.at("x-cache"), "miss");
  const net::HttpResponse second = handler.handle(req);
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(second.headers.at("x-cache"), "hit");
  EXPECT_EQ(first.body, second.body);

  const std::string body = to_string(first.body);
  EXPECT_NE(body.find("\"domain\":\"service.example\""), std::string::npos);
  EXPECT_NE(body.find("\"certificates\":3"), std::string::npos);
  EXPECT_NE(body.find("\"compliant\":true"), std::string::npos);
  EXPECT_NE(body.find("\"path_build\""), std::string::npos);
  EXPECT_NE(body.find("\"lint\""), std::string::npos);
}

TEST(ServiceHandlerTest, ParsdiffAcceptsPemAndDerAndReportsTheSplit) {
  service::ResultCache cache(16);
  service::Metrics metrics;
  service::RequestHandler handler({}, &cache, &metrics);

  net::HttpRequest req;
  req.method = "GET";
  req.target = "/v1/parsdiff";
  EXPECT_EQ(handler.handle(req).status, 405);

  req.method = "POST";
  EXPECT_EQ(handler.handle(req).status, 400);  // empty body

  // A clean PEM chain: every profile accepts, no discrepancy.
  req.body = to_bytes(pki().pem_chain());
  const net::HttpResponse clean = handler.handle(req);
  ASSERT_EQ(clean.status, 200);
  const std::string clean_body = to_string(clean.body);
  EXPECT_NE(clean_body.find("\"certificates\":3"), std::string::npos);
  EXPECT_NE(clean_body.find("\"discrepancy\":false"), std::string::npos);
  EXPECT_NE(clean_body.find("\"profile\":\"strict-der\""), std::string::npos);

  // Raw concatenated DER also works (the lenient TLV splitter).
  Bytes der = pki().leaf->der;
  append(der, pki().inter->der);
  req.body = der;
  const net::HttpResponse raw = handler.handle(req);
  ASSERT_EQ(raw.status, 200);
  EXPECT_NE(to_string(raw.body).find("\"certificates\":2"),
            std::string::npos);

  // A PEM block whose DER carries trailing garbage: the strict profile
  // rejects, the default ignores — a PD-05 split.
  Bytes trailing = pki().leaf->der;
  trailing.push_back(0xde);
  req.body = to_bytes("-----BEGIN CERTIFICATE-----\n" +
                      base64_encode(trailing) +
                      "\n-----END CERTIFICATE-----\n");
  const net::HttpResponse split = handler.handle(req);
  ASSERT_EQ(split.status, 200);
  const std::string split_body = to_string(split.body);
  EXPECT_NE(split_body.find("\"discrepancy\":true"), std::string::npos);
  EXPECT_NE(split_body.find("\"class\":\"PD-05\""), std::string::npos);
}

TEST(ServiceHandlerTest, BusyResponseCarriesRetryAfter) {
  const net::HttpResponse busy = service::busy_response(7);
  EXPECT_EQ(busy.status, 503);
  EXPECT_EQ(busy.headers.at("retry-after"), "7");
  EXPECT_EQ(busy.headers.at("connection"), "close");
}

TEST(ServiceHandlerTest, DecodeChainBodyAcceptsPemAndDer) {
  const auto from_pem = service::decode_chain_body(
      to_bytes(pki().pem_chain()));
  ASSERT_TRUE(from_pem.ok());
  EXPECT_EQ(from_pem.value().size(), 3u);

  Bytes der = pki().leaf->der;
  der.insert(der.end(), pki().inter->der.begin(), pki().inter->der.end());
  const auto from_der = service::decode_chain_body(der);
  ASSERT_TRUE(from_der.ok());
  EXPECT_EQ(from_der.value().size(), 2u);

  EXPECT_FALSE(service::decode_chain_body(to_bytes("garbage")).ok());
  EXPECT_FALSE(service::decode_chain_body({}).ok());
}

// ---------------------------------------------------------------------------
// Live server
// ---------------------------------------------------------------------------

TEST(ServiceServerTest, HealthStatsAndAnalyzeOverRealSocket) {
  service::ServerConfig config;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());
  ASSERT_NE(port.value(), 0);
  EXPECT_TRUE(server.running());

  service::Client client(port.value());
  const auto health = client.healthz();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);

  const auto first = client.analyze(pki().pem_chain(), "service.example");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().status, 200);
  EXPECT_EQ(first.value().headers.at("x-cache"), "miss");

  const auto second = client.analyze(pki().pem_chain(), "service.example");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().headers.at("x-cache"), "hit");
  EXPECT_EQ(first.value().body, second.value().body);

  const auto lint = client.lint(pki().pem_chain(), "service.example");
  ASSERT_TRUE(lint.ok());
  EXPECT_EQ(lint.value().status, 200);
  EXPECT_NE(to_string(lint.value().body).find("\"findings\""),
            std::string::npos);

  const auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  const std::string body = to_string(stats.value().body);
  EXPECT_NE(body.find("\"requests\""), std::string::npos);
  EXPECT_NE(body.find("\"hits\":1"), std::string::npos);
  // The §5.12 verification counters ride along in the same payload.
  EXPECT_NE(body.find("\"verify\""), std::string::npos);
  EXPECT_NE(body.find("\"memo_hit_ratio\""), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ServiceServerTest, ParallelClientsByteIdenticalCacheOnVsOff) {
  constexpr unsigned kClients = 8;
  constexpr unsigned kRequestsPerClient = 4;
  const std::string chain = pki().pem_chain();

  // One pass per cache mode; every response body across both passes must
  // be byte-identical (the cache may only change the x-cache header).
  std::set<std::string> bodies;
  for (const std::size_t cache_capacity : {std::size_t{0}, std::size_t{64}}) {
    service::ServerConfig config;
    config.cache_capacity = cache_capacity;
    service::Server server(config);
    const auto port = server.start();
    ASSERT_TRUE(port.ok());

    std::vector<std::string> collected(kClients * kRequestsPerClient);
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        service::Client client(port.value());
        for (unsigned r = 0; r < kRequestsPerClient; ++r) {
          const auto response = client.analyze(chain, "service.example");
          if (!response.ok() || response.value().status != 200) {
            failures.fetch_add(1);
            return;
          }
          collected[c * kRequestsPerClient + r] =
              to_string(response.value().body);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0u);
    for (const std::string& body : collected) bodies.insert(body);

    const service::CacheStats stats = server.cache_stats();
    if (cache_capacity == 0) {
      EXPECT_EQ(stats.hits, 0u);
    } else {
      // 32 identical requests, one distinct chain. Concurrent first
      // requests may each miss (the cache does not coalesce in-flight
      // misses), so the worst case is one miss per client.
      EXPECT_GE(stats.hits, kClients * (kRequestsPerClient - 1));
      EXPECT_LE(stats.misses, kClients);
    }
    server.stop();
  }
  EXPECT_EQ(bodies.size(), 1u)
      << "cache on/off or thread interleaving changed the response bytes";
}

TEST(ServiceServerTest, FullQueueGets503WithRetryAfter) {
  service::ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.retry_after_seconds = 3;
  config.read_timeout_ms = 10000;  // parked connections hold the worker
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  // Idle connections park the single worker, then fill the queue; the
  // acceptor must answer the overflow connection itself with 503.
  std::vector<int> parked;
  std::string rejected;
  for (int i = 0; i < 10 && rejected.empty(); ++i) {
    const int fd = dial(port.value());
    const std::string reply = recv_all(fd, 300);
    if (!reply.empty()) {
      rejected = reply;
      ::close(fd);
    } else {
      parked.push_back(fd);
    }
  }
  ASSERT_FALSE(rejected.empty()) << "no connection was ever rejected";
  EXPECT_NE(rejected.find("503"), std::string::npos);
  EXPECT_NE(rejected.find("retry-after: 3"), std::string::npos);
  EXPECT_NE(rejected.find("connection: close"), std::string::npos);
  EXPECT_GE(server.metrics().rejected_total(), 1u);

  for (const int fd : parked) ::close(fd);
  server.stop();
}

TEST(ServiceServerTest, GracefulShutdownDrainsQueuedRequests) {
  service::ServerConfig config;
  config.workers = 1;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  // Park the single worker on an idle connection, then queue a complete
  // request behind it. stop() must abandon the idle connection, serve
  // the queued request to completion, and only then let the worker exit.
  const int idle = dial(port.value());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  net::HttpRequest req;
  req.method = "POST";
  req.target = "/v1/analyze?domain=service.example";
  req.host = "127.0.0.1";
  req.body = to_bytes(pki().pem_chain());
  const int queued = dial(port.value());
  send_raw(queued, req.encode());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server.stop();

  const std::string reply = recv_all(queued);
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("\"compliant\":true"), std::string::npos);
  // Served during shutdown, so the response must announce the close.
  EXPECT_NE(reply.find("connection: close"), std::string::npos);
  ::close(idle);
  ::close(queued);
}

TEST(ServiceServerTest, MalformedRequestsGetJsonErrors) {
  service::ServerConfig config;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  {
    // Header section beyond kMaxHeaderBytes → 431, connection closed.
    const int fd = dial(port.value());
    std::string huge = "POST /v1/analyze HTTP/1.1\r\nhost: x\r\n";
    huge += "x-pad: " + std::string(net::kMaxHeaderBytes, 'a') + "\r\n\r\n";
    send_raw(fd, huge);
    const std::string reply = recv_all(fd);
    EXPECT_NE(reply.find("431"), std::string::npos);
    ::close(fd);
  }
  {
    // Negative Content-Length → 400 before any body is read.
    const int fd = dial(port.value());
    send_raw(fd,
             "POST /v1/analyze HTTP/1.1\r\nhost: x\r\n"
             "content-length: -1\r\n\r\n");
    const std::string reply = recv_all(fd);
    EXPECT_NE(reply.find("400"), std::string::npos);
    EXPECT_NE(reply.find("\"error\""), std::string::npos);
    ::close(fd);
  }
  {
    // Unknown path → 404 JSON error, connection stays usable (keep-alive).
    const int fd = dial(port.value());
    send_raw(fd, "GET /nope HTTP/1.1\r\nhost: x\r\n\r\n");
    const std::string first = recv_all(fd, 500);
    EXPECT_NE(first.find("404"), std::string::npos);
    send_raw(fd, "GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
    const std::string second = recv_all(fd, 500);
    EXPECT_NE(second.find("200 OK"), std::string::npos);
    ::close(fd);
  }
  server.stop();
}

TEST(ServiceServerTest, StopIsIdempotentAndRestartNotSupported) {
  service::Server server({});
  const auto port = server.start();
  ASSERT_TRUE(port.ok());
  server.stop();
  server.stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
}

TEST(ServiceServerTest, SurvivesClientsKilledMidBody) {
  service::ServerConfig config;
  config.workers = 2;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  // More abrupt mid-body deaths than there are workers: each client
  // advertises a large body, sends a fragment, then resets the
  // connection (SO_LINGER 0 turns close() into RST). If any of these
  // cost a worker its thread, the probe request below never completes.
  for (int i = 0; i < 6; ++i) {
    const int fd = dial(port.value());
    send_raw(fd,
             "POST /v1/analyze HTTP/1.1\r\nhost: x\r\n"
             "content-length: 100000\r\n\r\npartial-body-then-death");
    struct linger hard_reset = {1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset, sizeof hard_reset);
    ::close(fd);
  }

  // Both workers must still be alive and serving.
  service::Client client(port.value());
  for (int i = 0; i < 3; ++i) {
    auto health = client.healthz();
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(health.value().status, 200);
  }
  auto analyzed = client.analyze(pki().pem_chain(), "service.example");
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(analyzed.value().status, 200);

  // The disconnects were seen and counted (the recv side may observe
  // either EOF-with-partial-buffer or ECONNRESET; both count), and no
  // worker needed the last-resort recovery path.
  EXPECT_GE(server.metrics().client_disconnects(), 1u);
  EXPECT_EQ(server.metrics().worker_recoveries(), 0u);

  // The robustness counters are surfaced through /v1/stats.
  auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  const std::string body = to_string(BytesView(stats.value().body));
  EXPECT_NE(body.find("\"connections\""), std::string::npos);
  EXPECT_NE(body.find("\"disconnects_midrequest\""), std::string::npos);
  EXPECT_NE(body.find("\"aia\""), std::string::npos);
  server.stop();
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ServiceMetricsTest, CountersAndJsonShape) {
  service::Metrics metrics;
  metrics.record_request(service::Endpoint::kAnalyze);
  metrics.record_request(service::Endpoint::kLint);
  metrics.record_response(200, /*latency_us=*/120);
  metrics.record_response(404, /*latency_us=*/30);
  metrics.record_rejected();
  metrics.note_queue_depth(5);
  metrics.note_queue_depth(2);  // high-water stays 5
  metrics.record_client_disconnect();
  metrics.record_write_failure();
  metrics.record_worker_recovery();

  EXPECT_EQ(metrics.requests_total(), 2u);
  EXPECT_EQ(metrics.rejected_total(), 1u);
  EXPECT_EQ(metrics.client_disconnects(), 1u);
  EXPECT_EQ(metrics.write_failures(), 1u);
  EXPECT_EQ(metrics.worker_recoveries(), 1u);

  net::FetchStats aia;
  aia.attempts = 7;
  aia.retries = 3;
  aia.deadline_exceeded = 1;
  const std::string json = metrics.to_json(service::CacheStats{}, aia);
  EXPECT_NE(json.find("\"analyze\":1"), std::string::npos);
  EXPECT_NE(json.find("\"lint\":1"), std::string::npos);
  EXPECT_NE(json.find("\"2xx\":1"), std::string::npos);
  EXPECT_NE(json.find("\"4xx\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rejected_busy\":1"), std::string::npos);
  EXPECT_NE(json.find("\"high_water_mark\":5"), std::string::npos);
  EXPECT_NE(json.find("\"hit_ratio\":0"), std::string::npos);
  EXPECT_NE(json.find("\"disconnects_midrequest\":1"), std::string::npos);
  EXPECT_NE(json.find("\"write_failures\":1"), std::string::npos);
  EXPECT_NE(json.find("\"worker_recoveries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"retries\":3"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_exceeded\":1"), std::string::npos);
}

}  // namespace
}  // namespace chainchaos
