#!/usr/bin/env bash
# Gating static-analysis pass (stage 7 of scripts/ci.sh).
#
#   scripts/tidy_gate.sh [build-dir]       # gate the tree
#   scripts/tidy_gate.sh --self-test       # prove the gate can fail
#
# Two layers, and — unlike the advisory clang-tidy run this replaces —
# BOTH are gating: any finding exits non-zero.
#
#   1. clang-tidy over every .cpp in src/ with the .clang-tidy profile,
#      warnings promoted to errors. Runs only when clang-tidy and a
#      compile_commands.json exist (the CI container ships g++ only).
#   2. A portable fallback scanner that always runs, so the gate has
#      teeth even without clang-tidy. It greps comment-stripped sources
#      for the highest-value patterns the tidy profile would flag:
#        - modernize-use-nullptr:            the NULL macro in C++ code
#        - readability-container-size-empty: `.size() == 0` comparisons
#        - bugprone (unsafe C APIs):         strcpy/strcat/sprintf/gets
#        - manual C allocation:              malloc/calloc/realloc
#        - namespace hygiene:                `using namespace std;`
#
# --self-test seeds one violation per fallback pattern into a temp tree
# and asserts the scanner rejects it — the proof demanded by the
# acceptance criteria that the gate genuinely fails on a violation.
set -u
cd "$(dirname "$0")/.."

# Strips // and /* */ comments plus string/char literals, so the
# patterns below only match code. (Sed-level stripping: good enough for
# this tree's style; clang-tidy is the precise layer when present.)
strip_code() {
  sed -e 's|/\*.*\*/||g' -e 's|//.*$||' -e 's|"[^"]*"||g' -e "s|'[^']*'||g" "$1"
}

# scan_tree <dir> — fallback scanner; prints findings, returns non-zero
# when any pattern matches.
scan_tree() {
  local root=$1 findings=0 f
  while IFS= read -r f; do
    local code
    code=$(strip_code "$f")
    while IFS= read -r hit; do
      [ -n "$hit" ] || continue
      echo "$f: $hit" >&2
      findings=1
    done <<EOF
$(printf '%s\n' "$code" | grep -nE \
      '\bNULL\b|\.size\(\) *[=!]= *0|0 *[=!]= *[A-Za-z_][A-Za-z0-9_.]*\.size\(\)|\b(strcpy|strcat|sprintf|gets)\(|\b(malloc|calloc|realloc)\(|using namespace std;' \
      || true)
EOF
  done < <(find "$root" \( -name '*.cpp' -o -name '*.hpp' \) | sort)
  return "$findings"
}

if [ "${1:-}" = "--self-test" ]; then
  SEED_DIR=$(mktemp -d)
  trap 'rm -rf "$SEED_DIR"' EXIT
  cat >"$SEED_DIR/seeded.cpp" <<'EOF'
#include <cstdlib>
#include <vector>
void seeded(std::vector<int>& v) {
  char* p = NULL;                 // modernize-use-nullptr
  if (v.size() == 0) v.clear();   // readability-container-size-empty
  void* q = malloc(16);           // manual C allocation
  (void)p; (void)q;
}
using namespace std;
EOF
  if scan_tree "$SEED_DIR" 2>/dev/null; then
    echo "tidy-gate self-test: FAILED (seeded violations not detected)" >&2
    exit 1
  fi
  HITS=$(scan_tree "$SEED_DIR" 2>&1 >/dev/null | wc -l)
  if [ "$HITS" -lt 4 ]; then
    echo "tidy-gate self-test: FAILED (only $HITS of 4 seeded patterns hit)" >&2
    exit 1
  fi
  # And the gate must still pass the clean tree.
  if ! scan_tree src; then
    echo "tidy-gate self-test: FAILED (clean tree rejected)" >&2
    exit 1
  fi
  echo "tidy-gate self-test: OK ($HITS seeded findings detected, clean tree passes)"
  exit 0
fi

BUILD_DIR="${1:-build}"
STATUS=0

echo "== tidy gate: clang-tidy (warnings-as-errors) =="
if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    for f in $(find src -name '*.cpp' | sort); do
      if ! clang-tidy --quiet --warnings-as-errors='*' -p "$BUILD_DIR" "$f"; then
        STATUS=1
      fi
    done
    [ "$STATUS" -eq 0 ] || echo "clang-tidy: findings above" >&2
  else
    echo "clang-tidy present but $BUILD_DIR/compile_commands.json missing;" >&2
    echo "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    STATUS=1
  fi
else
  echo "clang-tidy not installed; fallback scanner is the gate"
fi

echo "== tidy gate: portable fallback scanner =="
if ! scan_tree src; then
  echo "fallback scanner: findings above" >&2
  STATUS=1
fi

if [ "$STATUS" -eq 0 ]; then
  echo "tidy gate: clean"
else
  echo "tidy gate: FAILED" >&2
fi
exit "$STATUS"
