// The corpus-wide parser-differential sweep.
//
// One sharded pass (engine::run for corpus records, engine::for_each_shard
// for extra labeled inputs) parses every input under every panel profile
// and merges three views: the per-profile accept/reject matrix, the
// discrepancy count per PD-* class, and per-mutation-class divergence
// tallies for the labeled inputs. All accounting goes through
// ShardTally::counters (commutative per-key sums), so — like every other
// sweep in the tree — the summary is byte-identical for any thread
// count. summary_json() deliberately excludes timing/thread fields: the
// smoke test diffs the 1-thread and 8-thread renderings byte-for-byte.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "parsdiff/diff.hpp"
#include "parsdiff/profile.hpp"
#include "report/table.hpp"

namespace chainchaos::parsdiff {

/// A non-corpus input: a label (e.g. the chaos mutation class "B2") plus
/// the certificate blobs of one wire image.
struct LabeledInput {
  std::string label;
  std::vector<Bytes> certs;
};

struct SweepRequest {
  /// Corpus chains to sweep (optional; the served DER of each record).
  const std::vector<dataset::DomainRecord>* records = nullptr;

  /// Alternative chain supply, e.g. a corpusio::PackedRecordSource over
  /// a memory-mapped corpus file (optional; wins over `records`).
  const engine::RecordSource* source = nullptr;

  /// Pre-generated extra inputs, e.g. chaos-mutated wire images
  /// (optional). Generation is the caller's job — the sweep only
  /// parses — which keeps this library independent of chaos::.
  const std::vector<LabeledInput>* extra = nullptr;

  engine::ShardOptions shards;
};

/// One profile's accept/reject totals over the sweep (a matrix column).
struct ProfileTotals {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;

  bool operator==(const ProfileTotals&) const = default;
};

struct SweepSummary {
  std::uint64_t inputs = 0;         ///< corpus chains + extra inputs
  std::uint64_t corpus_chains = 0;
  std::uint64_t extra_inputs = 0;
  std::uint64_t discrepancies = 0;  ///< inputs where the panel split

  /// Matrix: profile name (registry order preserved via profiles()) to
  /// accept/reject totals.
  std::map<std::string, ProfileTotals> matrix;

  /// Discrepancy counts per PD-* class.
  std::map<std::string, std::uint64_t> by_class;

  /// For labeled inputs: "label/PD-xx" to count, e.g. "B2/PD-01".
  std::map<std::string, std::uint64_t> by_label_class;

  unsigned threads_used = 0;     ///< not part of summary_json()
  double elapsed_seconds = 0.0;  ///< not part of summary_json()

  bool operator==(const SweepSummary&) const = default;
};

/// Runs the sweep; deterministic for any thread count.
SweepSummary run_sweep(const SweepRequest& request);

/// The accept/reject matrix plus per-class counts as a text table.
report::Table summary_table(const SweepSummary& summary);
report::Table class_table(const SweepSummary& summary);

/// Machine-readable rendering: stable key order, no timing fields —
/// byte-identical across runs and thread counts.
std::string summary_json(const SweepSummary& summary);

}  // namespace chainchaos::parsdiff
