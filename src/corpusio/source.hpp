// PackedRecordSource: the engine::RecordSource over a memory-mapped
// packed corpus.
//
// Each visit() decodes its shard's records lazily out of the mapping —
// one dataset::DomainRecord materialized at a time — and (by default)
// hands the shard's pages back to the kernel afterwards, so a sweep's
// resident set stays roughly constant no matter how large the file is.
// Records that fail to decode are counted and skipped rather than
// aborting the sweep mid-shard; callers check decode_errors() after the
// run (the byte-identity tests require it to be zero).
#pragma once

#include <atomic>
#include <cstdint>

#include "corpusio/reader.hpp"
#include "engine/engine.hpp"

namespace chainchaos::corpusio {

class PackedRecordSource final : public engine::RecordSource {
 public:
  /// `reader` must outlive the source. `release_pages` = false keeps
  /// pages resident (useful when the same file is swept repeatedly).
  explicit PackedRecordSource(const CorpusReader* reader,
                              bool release_pages = true)
      : reader_(reader), release_pages_(release_pages) {}

  std::size_t size() const override { return reader_->size(); }

  void visit(std::size_t first, std::size_t last,
             const std::function<void(const dataset::DomainRecord&,
                                      std::size_t)>& fn) const override;

  /// Records skipped because they failed to decode (0 on a sound file).
  std::uint64_t decode_errors() const {
    return decode_errors_.load(std::memory_order_relaxed);
  }

  /// Data-section bytes spanned by every record visited so far — the
  /// numerator of the bench's bytes/sec figure.
  std::uint64_t bytes_visited() const {
    return bytes_visited_.load(std::memory_order_relaxed);
  }

  void reset_counters() {
    decode_errors_.store(0, std::memory_order_relaxed);
    bytes_visited_.store(0, std::memory_order_relaxed);
  }

 private:
  const CorpusReader* reader_;
  bool release_pages_;
  mutable std::atomic<std::uint64_t> decode_errors_{0};
  mutable std::atomic<std::uint64_t> bytes_visited_{0};
};

}  // namespace chainchaos::corpusio
