#include "net/http.hpp"

#include "support/str.hpp"

namespace chainchaos::net {

Result<Url> parse_url(const std::string& url) {
  constexpr std::string_view kScheme = "http://";
  if (!starts_with(url, kScheme)) {
    return make_error("http.bad_scheme", url);
  }
  const std::string rest = url.substr(kScheme.size());
  const std::size_t slash = rest.find('/');
  Url out;
  if (slash == std::string::npos) {
    out.host = rest;
    out.path = "/";
  } else {
    out.host = rest.substr(0, slash);
    out.path = rest.substr(slash);
  }
  if (out.host.empty()) return make_error("http.bad_host", url);
  return out;
}

std::string HttpRequest::encode() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "host: " + host + "\r\n";
  for (const auto& [name, value] : headers) {
    if (name == "host") continue;
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  return out;
}

namespace {

/// Splits "name: value" and lower-cases the name.
bool parse_header_line(const std::string& line, std::string* name,
                       std::string* value) {
  const std::size_t colon = line.find(':');
  if (colon == std::string::npos) return false;
  *name = to_lower(line.substr(0, colon));
  std::size_t start = colon + 1;
  while (start < line.size() && line[start] == ' ') ++start;
  *value = line.substr(start);
  return true;
}

}  // namespace

Result<HttpRequest> parse_request(const std::string& raw) {
  const std::vector<std::string> lines = split(raw, '\n');
  if (lines.empty()) return make_error("http.empty");

  std::string request_line = lines[0];
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.pop_back();
  }
  const std::vector<std::string> parts = split(request_line, ' ');
  if (parts.size() != 3 || !starts_with(parts[2], "HTTP/1.")) {
    return make_error("http.bad_request_line", request_line);
  }

  HttpRequest req;
  req.method = parts[0];
  req.target = parts[1];
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string line = lines[i];
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;  // end of headers
    std::string name, value;
    if (!parse_header_line(line, &name, &value)) {
      return make_error("http.bad_header", line);
    }
    if (name == "host") {
      req.host = value;
    } else {
      req.headers[name] = value;
    }
  }
  if (req.host.empty()) {
    return make_error("http.missing_host", "HTTP/1.1 requires Host");
  }
  return req;
}

Bytes HttpResponse::encode() const {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                     "\r\n";
  for (const auto& [name, value] : headers) {
    if (name == "content-length") continue;
    head += name + ": " + value + "\r\n";
  }
  head += "content-length: " + std::to_string(body.size()) + "\r\n\r\n";
  Bytes out = to_bytes(head);
  append(out, body);
  return out;
}

Result<HttpResponse> parse_response(BytesView raw) {
  // Find the header/body boundary.
  const std::string text(raw.begin(), raw.end());
  const std::size_t boundary = text.find("\r\n\r\n");
  if (boundary == std::string::npos) {
    return make_error("http.truncated", "no header terminator");
  }

  HttpResponse resp;
  const std::vector<std::string> lines = split(text.substr(0, boundary), '\n');
  std::string status_line = lines[0];
  if (!status_line.empty() && status_line.back() == '\r') {
    status_line.pop_back();
  }
  const std::vector<std::string> parts = split(status_line, ' ');
  if (parts.size() < 2 || !starts_with(parts[0], "HTTP/1.")) {
    return make_error("http.bad_status_line", status_line);
  }
  try {
    resp.status = std::stoi(parts[1]);
  } catch (const std::exception&) {
    return make_error("http.bad_status_code", parts[1]);
  }
  resp.reason = parts.size() > 2 ? parts[2] : "";
  for (std::size_t i = 3; i < parts.size(); ++i) resp.reason += " " + parts[i];

  std::optional<std::size_t> content_length;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string line = lines[i];
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::string name, value;
    if (!parse_header_line(line, &name, &value)) {
      return make_error("http.bad_header", line);
    }
    resp.headers[name] = value;
    if (name == "content-length") {
      try {
        content_length = static_cast<std::size_t>(std::stoull(value));
      } catch (const std::exception&) {
        return make_error("http.bad_content_length", value);
      }
    }
  }

  const std::size_t body_start = boundary + 4;
  const std::size_t available = raw.size() - body_start;
  if (!content_length.has_value()) content_length = available;
  if (*content_length > available) {
    return make_error("http.truncated", "body shorter than content-length");
  }
  resp.body.assign(raw.begin() + static_cast<std::ptrdiff_t>(body_start),
                   raw.begin() + static_cast<std::ptrdiff_t>(body_start +
                                                             *content_length));
  return resp;
}

HttpResponse http_ok(Bytes body, const std::string& content_type) {
  HttpResponse resp;
  resp.headers["content-type"] = content_type;
  resp.body = std::move(body);
  return resp;
}

HttpResponse http_not_found() {
  HttpResponse resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.headers["content-type"] = "text/plain";
  resp.body = to_bytes("no such certificate\n");
  return resp;
}

}  // namespace chainchaos::net
