#include <gtest/gtest.h>

#include <stdexcept>

#include "crypto/bigint.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "crypto/verifier.hpp"

namespace chainchaos::crypto {
namespace {

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 / NIST CAVS vectors)
// ---------------------------------------------------------------------------

struct ShaVector {
  const char* message;
  const char* digest_hex;
};

class Sha256VectorTest : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha256VectorTest, MatchesKnownDigest) {
  const Bytes digest = Sha256::digest(to_bytes(GetParam().message));
  EXPECT_EQ(hex_encode(digest), GetParam().digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Nist, Sha256VectorTest,
    ::testing::Values(
        ShaVector{"",
                  "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        ShaVector{"abc",
                  "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        ShaVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                  "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        ShaVector{"The quick brown fox jumps over the lazy dog",
                  "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"}));

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  const auto digest = ctx.finish();
  EXPECT_EQ(hex_encode(BytesView(digest.data(), digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalEqualsOneShot) {
  const Bytes data = to_bytes("hello incremental world, block boundaries!");
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    Sha256 ctx;
    ctx.update(BytesView(data.data(), cut));
    ctx.update(BytesView(data.data() + cut, data.size() - cut));
    const auto digest = ctx.finish();
    EXPECT_TRUE(equal(BytesView(digest.data(), digest.size()),
                      Sha256::digest(data)))
        << "cut=" << cut;
  }
}

TEST(Sha256Test, BlockBoundaryLengths) {
  // Lengths straddling the 55/56/64-byte padding edges.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes data(len, 0x5a);
    Sha256 ctx;
    ctx.update(data);
    const auto incremental = ctx.finish();
    EXPECT_TRUE(equal(BytesView(incremental.data(), incremental.size()),
                      Sha256::digest(data)))
        << "len=" << len;
  }
}

TEST(HmacTest, Rfc4231Vectors) {
  // RFC 4231 test case 1.
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex_encode(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2: short key.
  EXPECT_EQ(hex_encode(hmac_sha256(to_bytes("Jefe"),
                                   to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Test case 6: key longer than a block.
  const Bytes long_key(131, 0xaa);
  EXPECT_EQ(hex_encode(hmac_sha256(
                long_key, to_bytes("Test Using Larger Than Block-Size Key - "
                                   "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---------------------------------------------------------------------------
// BigInt
// ---------------------------------------------------------------------------

TEST(BigIntTest, ConstructionAndBytes) {
  EXPECT_TRUE(BigInt().is_zero());
  EXPECT_TRUE(BigInt(0).is_zero());
  EXPECT_EQ(BigInt(1).to_hex(), "01");
  EXPECT_EQ(BigInt(0xdeadbeefULL).to_hex(), "deadbeef");
  EXPECT_EQ(BigInt(0x1122334455667788ULL).to_hex(), "1122334455667788");
  EXPECT_EQ(BigInt().to_hex(), "00");
}

TEST(BigIntTest, FromBytesIgnoresLeadingZeros) {
  EXPECT_EQ(BigInt::from_bytes(Bytes{0, 0, 0x12, 0x34}).to_hex(), "1234");
  EXPECT_TRUE(BigInt::from_bytes(Bytes{0, 0, 0}).is_zero());
}

TEST(BigIntTest, PaddedBytes) {
  EXPECT_EQ(BigInt(0x1234).to_bytes_padded(4), (Bytes{0, 0, 0x12, 0x34}));
  EXPECT_EQ(BigInt().to_bytes_padded(2), (Bytes{0, 0}));
  EXPECT_THROW(BigInt(0x123456).to_bytes_padded(2), std::invalid_argument);
}

TEST(BigIntTest, ComparisonOrdering) {
  const BigInt a(100), b(200);
  const BigInt big = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_LT(a, b);
  EXPECT_GT(big, b);
  EXPECT_EQ(BigInt::compare(a, a), 0);
  EXPECT_LE(a, a);
  EXPECT_GE(big, big);
}

TEST(BigIntTest, AdditionWithCarryChains) {
  const BigInt max32 = BigInt::from_hex("ffffffff");
  EXPECT_EQ((max32 + BigInt(1)).to_hex(), "0100000000");
  const BigInt max128 = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((max128 + BigInt(1)).to_hex(), "0100000000000000000000000000000000");
  EXPECT_EQ((BigInt(0) + BigInt(0)).to_hex(), "00");
}

TEST(BigIntTest, SubtractionWithBorrowChains) {
  const BigInt big = BigInt::from_hex("0100000000000000000000000000000000");
  EXPECT_EQ((big - BigInt(1)).to_hex(), "ffffffffffffffffffffffffffffffff");
  EXPECT_TRUE((big - big).is_zero());
}

TEST(BigIntTest, MultiplicationKnownValues) {
  EXPECT_EQ((BigInt(0xffffffffULL) * BigInt(0xffffffffULL)).to_hex(),
            "fffffffe00000001");
  const BigInt a = BigInt::from_hex("123456789abcdef0fedcba9876543210");
  const BigInt b = BigInt::from_hex("0fedcba987654321");
  // python: hex(a * b)
  EXPECT_EQ((a * b).to_hex(),
            "0121fa00ad77d7423212849961ef529ccdeec6cd7a44a410");
  EXPECT_TRUE((a * BigInt(0)).is_zero());
}

TEST(BigIntTest, ShiftOperators) {
  const BigInt one(1);
  EXPECT_EQ((one << 0).to_hex(), "01");
  EXPECT_EQ((one << 8).to_hex(), "0100");
  EXPECT_EQ((one << 33).to_hex(), "0200000000");
  EXPECT_EQ(((one << 129) >> 129).to_hex(), "01");
  EXPECT_TRUE((one >> 1).is_zero());
  const BigInt v = BigInt::from_hex("deadbeefcafebabe");
  EXPECT_EQ(((v << 17) >> 17), v);
}

TEST(BigIntTest, DivisionAndModulo) {
  const BigInt a = BigInt::from_hex("deadbeefcafebabe1234567890abcdef");
  const BigInt b = BigInt::from_hex("0123456789abcdef");
  const BigInt q = a / b;
  const BigInt r = a % b;
  EXPECT_LT(r, b);
  EXPECT_EQ(q * b + r, a);
  // python: divmod(0xdeadbeefcafebabe1234567890abcdef, 0x0123456789abcdef)
  EXPECT_EQ(q.to_hex(), "c3b6b4d0c169e2d94d");
  EXPECT_EQ(r.to_hex(), "404fb271460c");
}

TEST(BigIntTest, DivisionEdgeCases) {
  EXPECT_THROW(BigInt(1) % BigInt(0), std::domain_error);
  EXPECT_TRUE((BigInt(5) / BigInt(10)).is_zero());
  EXPECT_EQ((BigInt(5) % BigInt(10)).to_hex(), "05");
  EXPECT_EQ((BigInt(10) / BigInt(10)).to_hex(), "01");
  EXPECT_TRUE((BigInt(10) % BigInt(10)).is_zero());
  // Single-limb fast path.
  EXPECT_EQ((BigInt::from_hex("100000000") / BigInt(3)).to_hex(), "55555555");
}

TEST(BigIntTest, DivisionRandomizedInvariant) {
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    const BigInt a = BigInt::random_with_bits(rng, 256);
    const BigInt b = BigInt::random_with_bits(
        rng, static_cast<int>(rng.between(2, 200)));
    const BigInt q = a / b;
    const BigInt r = a % b;
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a) << "iteration " << i;
  }
}

TEST(BigIntTest, BitLengthAndBitAccess) {
  EXPECT_EQ(BigInt().bit_length(), 0);
  EXPECT_EQ(BigInt(1).bit_length(), 1);
  EXPECT_EQ(BigInt(0xff).bit_length(), 8);
  EXPECT_EQ(BigInt::from_hex("010000000000000000").bit_length(), 65);
  const BigInt v(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(100));
}

TEST(BigIntTest, ModPowKnownValues) {
  // python: pow(3, 200, 1000) == 1.
  EXPECT_EQ(BigInt::mod_pow(BigInt(3), BigInt(200), BigInt(1000)), BigInt(1));
  // python: pow(7, 123, 10**9+7) == 937329259.
  EXPECT_EQ(BigInt::mod_pow(BigInt(7), BigInt(123), BigInt(1000000007)),
            BigInt(937329259));
  // Fermat: a^(p-1) mod p == 1 for prime p.
  const BigInt p(1000003);
  EXPECT_EQ(BigInt::mod_pow(BigInt(12345), p - BigInt(1), p), BigInt(1));
  EXPECT_EQ(BigInt::mod_pow(BigInt(5), BigInt(0), BigInt(7)), BigInt(1));
}

TEST(BigIntTest, GcdAndModInverse) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(18)).to_hex(), "06");
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(31)).to_hex(), "01");

  const BigInt m(3120);
  const BigInt inv = BigInt::mod_inverse(BigInt(17), m);
  EXPECT_EQ((inv * BigInt(17)) % m, BigInt(1));
  // Non-invertible: gcd(6, 9) = 3.
  EXPECT_TRUE(BigInt::mod_inverse(BigInt(6), BigInt(9)).is_zero());
}

TEST(BigIntTest, ModInverseRandomized) {
  Rng rng(77);
  const BigInt m = BigInt::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff");
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_with_bits(rng, 128);
    if (BigInt::gcd(a, m) != BigInt(1)) continue;
    const BigInt inv = BigInt::mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
}

TEST(BigIntTest, RandomWithBitsHasExactWidth) {
  Rng rng(55);
  for (int bits : {2, 8, 31, 32, 33, 64, 127, 256}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigInt::random_with_bits(rng, bits).bit_length(), bits);
    }
  }
}

// ---------------------------------------------------------------------------
// Primality / RSA
// ---------------------------------------------------------------------------

TEST(PrimalityTest, SmallKnownPrimesAndComposites) {
  Rng rng(2);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 101ull, 65537ull, 1000003ull}) {
    EXPECT_TRUE(is_probable_prime(BigInt(p), rng)) << p;
  }
  for (std::uint64_t c : {0ull, 1ull, 4ull, 100ull, 65541ull, 1000001ull}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(PrimalityTest, CarmichaelNumbersRejected) {
  Rng rng(2);
  // Carmichael numbers fool Fermat but not Miller-Rabin.
  for (std::uint64_t c : {561ull, 1105ull, 1729ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(PrimalityTest, LargeKnownPrime) {
  Rng rng(2);
  // 2^127 - 1 is a Mersenne prime.
  const BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  EXPECT_FALSE(is_probable_prime(m127 + BigInt(2), rng));
}

TEST(PrimalityTest, GeneratedPrimesHaveRequestedWidth) {
  Rng rng(31);
  for (int bits : {64, 128, 256}) {
    const BigInt p = generate_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(RsaTest, SignVerifyRoundTrip) {
  Rng rng(101);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("the quick brown certificate");
  const Bytes signature = rsa_sign(pair.priv, message);
  EXPECT_EQ(signature.size(), pair.pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(pair.pub, message, signature));
}

TEST(RsaTest, VerifyRejectsTampering) {
  Rng rng(102);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("authentic message");
  Bytes signature = rsa_sign(pair.priv, message);

  EXPECT_FALSE(rsa_verify(pair.pub, to_bytes("authentic messagF"), signature));

  Bytes flipped = signature;
  flipped[5] ^= 0x01;
  EXPECT_FALSE(rsa_verify(pair.pub, message, flipped));

  Bytes truncated(signature.begin(), signature.end() - 1);
  EXPECT_FALSE(rsa_verify(pair.pub, message, truncated));
}

TEST(RsaTest, VerifyRejectsWrongKey) {
  Rng rng(103);
  const RsaKeyPair a = generate_keypair(rng, 512);
  const RsaKeyPair b = generate_keypair(rng, 512);
  const Bytes message = to_bytes("cross-key check");
  EXPECT_FALSE(rsa_verify(b.pub, message, rsa_sign(a.priv, message)));
}

TEST(RsaTest, CrtSigningMatchesPlainExponentiation) {
  Rng rng(104);
  RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("crt equivalence");
  const Bytes crt_sig = rsa_sign(pair.priv, message);

  RsaPrivateKey plain = pair.priv;
  plain.p = BigInt{};
  plain.q = BigInt{};
  const Bytes plain_sig = rsa_sign(plain, message);
  EXPECT_TRUE(equal(crt_sig, plain_sig));
}

TEST(RsaTest, SignatureRejectsValueAboveModulus) {
  Rng rng(105);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("m");
  Bytes bogus = pair.pub.n.to_bytes_padded(pair.pub.modulus_bytes());
  EXPECT_FALSE(rsa_verify(pair.pub, message, bogus));
}

TEST(KeyPoolTest, NamedKeysAreStableAndDistinct) {
  KeyPool& pool = KeyPool::instance();
  const RsaKeyPair& a1 = pool.for_name("test-ca-alpha");
  const RsaKeyPair& a2 = pool.for_name("test-ca-alpha");
  const RsaKeyPair& b = pool.for_name("test-ca-beta");
  EXPECT_TRUE(a1.pub == a2.pub);
  EXPECT_FALSE(a1.pub == b.pub);
}

// ---------------------------------------------------------------------------
// Montgomery exponentiation (DESIGN.md §5.12)
// ---------------------------------------------------------------------------

TEST(ModPowTest, KnownAnswer512Bit) {
  const BigInt base = BigInt::from_hex(
      "a3223bc4cbdc41a02143330585801cda7f48c58b64c9a69301198142a1f49a57"
      "7be905086083c3d4c5519c77d34582a3ea33b39d9b7a8a3e25b186b17007c3a7");
  const BigInt exp = BigInt::from_hex(
      "a000cb226e0e202e46022f6fd072bac82058d49d41eaf61951ea91e4998980cd"
      "bd1f1ed42234dd9155264721f95c79bad2d1137ec0f8e259a06b6544d1e128cf");
  const BigInt odd_mod = BigInt::from_hex(
      "cdbf0d1032ac3f7dbd6f76b8d0db94019f7aec16cb66190d705dc3ba45f628d6"
      "3dbd4db19985d62d99016dafe4e879da349d943c9fa545deb5f800a8f4612d07");
  const BigInt odd_expected = BigInt::from_hex(
      "a7900b7f6c94f6901301dfa221105f14db923c6bd724df86930ece2b60eb4a8d"
      "fcc3d8ca0dcf840c0c0058bc23a7b7110e6762f934117329db8111e81fa7f6d5");
  EXPECT_EQ(BigInt::mod_pow(base, exp, odd_mod), odd_expected);
  EXPECT_EQ(BigInt::mod_pow_classic(base, exp, odd_mod), odd_expected);

  // Even modulus exercises the classic fallback inside mod_pow.
  const BigInt even_mod = odd_mod - BigInt(1);
  const BigInt even_expected = BigInt::from_hex(
      "93ec4a4d36294bf0fce15bbdb365b34dd45ed2fb8db552e286be57511755351a"
      "95897f857f606b3d7b7ce01c93263bab4fdc60bfe16e8e8b3e93ef41a0938b4b");
  EXPECT_EQ(BigInt::mod_pow(base, exp, even_mod), even_expected);
  EXPECT_EQ(BigInt::mod_pow_classic(base, exp, even_mod), even_expected);
}

TEST(ModPowTest, EdgeCaseSemantics) {
  const BigInt b(12345), e(678), zero, one(1);
  EXPECT_THROW(BigInt::mod_pow(b, e, zero), std::domain_error);
  EXPECT_THROW(BigInt::mod_pow_classic(b, e, zero), std::domain_error);
  EXPECT_EQ(BigInt::mod_pow(b, e, one), zero);
  EXPECT_EQ(BigInt::mod_pow_classic(b, e, one), zero);
  EXPECT_EQ(BigInt::mod_pow(b, zero, BigInt(7)), one);
  EXPECT_EQ(BigInt::mod_pow(b, one, BigInt(7)), b % BigInt(7));
  EXPECT_EQ(BigInt::mod_pow(zero, e, BigInt(7)), zero);
  // base >= m must be reduced before the ladder.
  EXPECT_EQ(BigInt::mod_pow(BigInt(10), BigInt(2), BigInt(7)), BigInt(2));
}

// The differential contract the whole PR rests on: mod_pow (Montgomery
// for odd moduli, classic for even) and mod_pow_classic agree bit-exact
// over 10k random (base, exp, mod) triples of mixed widths and parities.
TEST(ModPowTest, DifferentialTenThousandTriples) {
  Rng rng(424242);
  for (int i = 0; i < 10000; ++i) {
    const int mod_bits = 2 + static_cast<int>(rng.next() % 159);
    const BigInt m = BigInt::random_with_bits(rng, mod_bits);
    const BigInt base =
        BigInt::random_with_bits(rng, 2 + static_cast<int>(rng.next() % 190));
    const BigInt exp =
        BigInt::random_with_bits(rng, 2 + static_cast<int>(rng.next() % 96));
    const BigInt fast = BigInt::mod_pow(base, exp, m);
    const BigInt reference = BigInt::mod_pow_classic(base, exp, m);
    ASSERT_EQ(fast, reference)
        << "triple " << i << ": " << base.to_hex() << " ^ " << exp.to_hex()
        << " mod " << m.to_hex() << " (modulus "
        << (m.is_odd() ? "odd" : "even") << ")";
  }
}

TEST(MontgomeryContextTest, SuitableRequiresOddModulusAboveOne) {
  EXPECT_FALSE(MontgomeryContext::suitable(BigInt(0)));
  EXPECT_FALSE(MontgomeryContext::suitable(BigInt(1)));
  EXPECT_FALSE(MontgomeryContext::suitable(BigInt(4096)));
  EXPECT_TRUE(MontgomeryContext::suitable(BigInt(3)));
  EXPECT_TRUE(MontgomeryContext::suitable(BigInt(0xffffffffffffffffULL)));
  EXPECT_THROW(MontgomeryContext(BigInt(8)), std::domain_error);
  EXPECT_THROW(MontgomeryContext(BigInt(0)), std::domain_error);
}

// One immutable context serves many exponentiations (that is the whole
// point of caching it on the key): reuse across full-width exponents
// must stay bit-exact with the classic ladder.
TEST(MontgomeryContextTest, ReusedContextMatchesClassicOn512BitExponents) {
  Rng rng(31337);
  BigInt m = BigInt::random_with_bits(rng, 512);
  if (!m.is_odd()) m = m + BigInt(1);
  const MontgomeryContext context(m);
  EXPECT_EQ(context.modulus(), m);
  for (int i = 0; i < 8; ++i) {
    const BigInt base = BigInt::random_with_bits(rng, 511) % m;
    const BigInt exp = BigInt::random_with_bits(rng, 512);
    EXPECT_EQ(context.pow(base, exp),
              BigInt::mod_pow_classic(base, exp, m));
  }
  // Degenerate inputs through the same context.
  EXPECT_EQ(context.pow(BigInt(0), BigInt(5)), BigInt(0));
  EXPECT_EQ(context.pow(BigInt(7), BigInt(0)), BigInt(1));
  EXPECT_EQ(context.pow(m + BigInt(3), BigInt(1)), BigInt(3));
}

// ---------------------------------------------------------------------------
// Verifier front door (DESIGN.md §5.12)
// ---------------------------------------------------------------------------

TEST(VerifierTest, PublicKeyCarriesAlgorithmTag) {
  Rng rng(106);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  const PublicKey key(pair.pub);
  EXPECT_EQ(key.algorithm(), SignatureAlgorithm::kRsaSha256);
  EXPECT_TRUE(key.is_rsa());
  EXPECT_TRUE(key.rsa() == pair.pub);
  EXPECT_EQ(key.signature_width(), pair.pub.modulus_bytes());
  EXPECT_EQ(key.fingerprint(), Sha256::digest(pair.pub.fingerprint_material()));
  EXPECT_STREQ(to_string(key.algorithm()), "rsa-sha256");
}

TEST(VerifierTest, MemoAbsorbsRepeatTriples) {
  Rng rng(107);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("memoized message");
  const Bytes signature = rsa_sign(pair.priv, message);

  VerifyMemo memo;
  const VerifyMemoScope scope(&memo);
  const Verifier verifier = Verifier::current();
  const PublicKey key(pair.pub);
  EXPECT_TRUE(verifier.verify(key, message, signature));
  EXPECT_TRUE(verifier.verify(key, message, signature));
  EXPECT_TRUE(verifier.verify(key, message, signature));

  const VerifyMemoStats stats = memo.stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 2.0 / 3.0);
}

// The determinism-critical keying property: two signatures over the
// same message under the same key are distinct memo entries — a
// signature-blind key would replay the first answer for both.
TEST(VerifierTest, SameMessageDifferentSignatureNotAliased) {
  Rng rng(108);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("one TBS, two signatures");
  const Bytes good = rsa_sign(pair.priv, message);
  Bytes bad = good;
  bad[bad.size() / 2] ^= 0x01;

  VerifyMemo memo;
  const VerifyMemoScope scope(&memo);
  const Verifier verifier = Verifier::current();
  const PublicKey key(pair.pub);
  EXPECT_TRUE(verifier.verify(key, message, good));
  EXPECT_FALSE(verifier.verify(key, message, bad));
  // Replay both out of the memo: answers must not cross.
  EXPECT_TRUE(verifier.verify(key, message, good));
  EXPECT_FALSE(verifier.verify(key, message, bad));

  const VerifyMemoStats stats = memo.stats();
  EXPECT_EQ(stats.lookups, 4u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(VerifierTest, MemoScopeOverridesAndRestores) {
  Rng rng(109);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("scoped");
  const Bytes signature = rsa_sign(pair.priv, message);
  const PublicKey key(pair.pub);

  VerifyMemo outer;
  const VerifyMemoScope outer_scope(&outer);
  EXPECT_TRUE(Verifier::current().verify(key, message, signature));
  EXPECT_EQ(outer.stats().lookups, 1u);
  {
    // Scope over nullptr disables memoization entirely.
    const VerifyMemoScope inner_scope(nullptr);
    EXPECT_TRUE(Verifier::current().verify(key, message, signature));
    EXPECT_EQ(outer.stats().lookups, 1u);  // outer memo untouched
  }
  // Destructor restored the outer scope.
  EXPECT_TRUE(Verifier::current().verify(key, message, signature));
  const VerifyMemoStats stats = outer.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);

  outer.reset();
  EXPECT_EQ(outer.stats().lookups, 0u);
  EXPECT_EQ(outer.stats().entries, 0u);
}

TEST(VerifierTest, MemoEvictsWholesaleWhenShardFills) {
  Rng rng(110);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  VerifyMemo memo(/*max_entries_per_shard=*/1);
  const VerifyMemoScope scope(&memo);
  const Verifier verifier = Verifier::current();
  const PublicKey key(pair.pub);
  // Distinct messages spread across shards; each shard holds at most
  // one entry, so insertions into an occupied shard evict first.
  for (int i = 0; i < 32; ++i) {
    const Bytes message = to_bytes("evict " + std::to_string(i));
    verifier.verify(key, message, rsa_sign(pair.priv, message));
  }
  const VerifyMemoStats stats = memo.stats();
  EXPECT_EQ(stats.lookups, 32u);
  EXPECT_EQ(stats.insertions, 32u);
  EXPECT_EQ(stats.entries + stats.evictions, 32u);
}

TEST(VerifierTest, ForcedClassicPathAgreesWithMontgomery) {
  Rng rng(111);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("both paths");
  const Bytes good = rsa_sign(pair.priv, message);
  Bytes bad = good;
  bad[0] ^= 0x80;

  const VerifyMemoScope no_memo(nullptr);
  const Verifier verifier = Verifier::current();
  const PublicKey key(pair.pub);
  EXPECT_TRUE(verifier.verify(key, message, good));
  EXPECT_FALSE(verifier.verify(key, message, bad));
  Verifier::set_force_classic(true);
  EXPECT_TRUE(verifier.verify(key, message, good));
  EXPECT_FALSE(verifier.verify(key, message, bad));
  Verifier::set_force_classic(false);
}

TEST(RsaTest, KnownAnswerVector) {
  // Generated offline: 512-bit n = p*q, e = 65537, signature =
  // pad(SHA-256(msg))^d mod n. Pins the exact padding layout and byte
  // order — a verifier that drifts from sign() could still pass
  // round-trip tests, but not this one.
  RsaPublicKey pub(
      BigInt::from_hex(
          "6a45893428055add0ef05440247402a5d5db7207264f81fab7bfce0fceac0755"
          "5f6d9325e0f5c29bd19dfd97e4014db13c74ffa63234f89c1a584c52d59d1101"),
      BigInt(65537));
  const Bytes message = to_bytes("chainchaos RSA known-answer vector");
  const Bytes signature = *hex_decode(
      "0a755bc6a3d761c0f679f6758ec354678288712c7dc42dc5b6720dddcc892365"
      "937a480233de90f752f5eaa390ed1055c951407a92c20856b09a577798210126");
  EXPECT_TRUE(rsa_verify(pub, message, signature));
  Bytes tampered = signature;
  tampered.back() ^= 0x01;
  EXPECT_FALSE(rsa_verify(pub, message, tampered));
  EXPECT_FALSE(rsa_verify(pub, to_bytes("chainchaos rsa known-answer vector"),
                          signature));
}

TEST(KeyPoolTest, LeafSlotsAreStable) {
  KeyPool& pool = KeyPool::instance();
  const RsaKeyPair& a1 = pool.leaf_slot("leafy.example.com");
  const RsaKeyPair& a2 = pool.leaf_slot("leafy.example.com");
  EXPECT_TRUE(a1.pub == a2.pub);
}

}  // namespace
}  // namespace chainchaos::crypto
