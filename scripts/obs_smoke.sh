#!/usr/bin/env bash
# End-to-end smoke test for the observability subsystem (DESIGN.md §5.11
# tracing + §5.16 chainwatch).
#
# Five legs:
#   1. Offline: a chainprof corpus sweep must attribute >= 90% of wall
#      clock to stage spans with zero drops, and the exported chrome
#      trace must be structurally sane.
#   2. Live: chaind with --trace and --events on an ephemeral port;
#      after real traffic, GET /v1/metrics must pass the Prometheus
#      exposition checker (via chainprof --check-exposition) and carry
#      the service histograms, the tracer's per-stage families and the
#      chainwatch event counters; GET /v1/trace must return chrome
#      trace JSON; the JSONL event sink must carry the connection
#      lifecycle.
#   3. Time series: after ~6s of sampled load, GET /v1/timeseries must
#      hold >= 5 one-second samples, and `chainq watch` must render
#      rate rows from them without ever seeing a counter go backwards
#      (its exit status is the non-negative-rates gate).
#   4. Flight recorder: a chaind armed with --flight and then killed
#      with SIGSEGV must die by that signal yet leave a parseable
#      flight dump containing the served request's events.
#   5. Progress: measure_corpus --progress must stream monotonically
#      increasing [progress] lines on stderr while leaving the summary
#      on stdout byte-identical to a run without the flag.
#
# Usage: obs_smoke.sh <chainprof> <chaind> <chainq> <measure_corpus> \
#                     [trace_overhead]
# When the optional trace_overhead binary is given it runs last, gating
# the <3% budget with the event-emission arm included.
set -euo pipefail

USAGE="usage: obs_smoke.sh <chainprof> <chaind> <chainq> <measure_corpus> [trace_overhead]"
CHAINPROF=${1:?$USAGE}
CHAIND=${2:?$USAGE}
CHAINQ=${3:?$USAGE}
MEASURE=${4:?$USAGE}
TRACE_OVERHEAD=${5:-}

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"; [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true' EXIT

# --- leg 1: offline sweep profile --------------------------------------

"$CHAINPROF" --domains 2000 --trace-json "$WORKDIR/trace.json" \
    >"$WORKDIR/profile.txt"
cat "$WORKDIR/profile.txt"

# The acceptance bar: stage spans account for >= 90% of wall clock.
COVERAGE=$(sed -n 's/^stage total = \([0-9.]*\)% of wall clock.*/\1/p' \
    "$WORKDIR/profile.txt")
[ -n "$COVERAGE" ] || { echo "FAIL: no coverage line in chainprof output"; exit 1; }
awk -v c="$COVERAGE" 'BEGIN { exit (c >= 90.0) ? 0 : 1 }' \
    || { echo "FAIL: stage coverage $COVERAGE% is below 90%"; exit 1; }
grep -q " 0 dropped" "$WORKDIR/profile.txt" \
    || { echo "FAIL: sweep dropped spans (buffer too small?)"; exit 1; }
echo "sweep coverage: $COVERAGE% of wall clock, no dropped spans"

# The chrome trace export must be structurally sane: complete-event
# records with durations, and no truncation marker.
grep -q '"traceEvents"' "$WORKDIR/trace.json" \
    || { echo "FAIL: trace.json has no traceEvents array"; exit 1; }
grep -q '"ph":"X"' "$WORKDIR/trace.json" \
    || { echo "FAIL: trace.json has no complete events"; exit 1; }
grep -q '"dropped_spans":"0"' "$WORKDIR/trace.json" \
    || { echo "FAIL: trace.json reports dropped spans"; exit 1; }
echo "chrome trace export OK"

# --- leg 2: live daemon metrics + event sink ---------------------------

CHAIN="$WORKDIR/chain.pem"
PORT_FILE="$WORKDIR/port.txt"
EVENTS="$WORKDIR/events.jsonl"
"$CHAINQ" make-chain "$CHAIN"

"$CHAIND" --port 0 --port-file "$PORT_FILE" --duration 120 --trace \
    --events "$EVENTS" >"$WORKDIR/chaind.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "FAIL: chaind never wrote its port file"; exit 1; }
PORT=$(cat "$PORT_FILE")
echo "chaind is up on 127.0.0.1:$PORT (tracing + events on)"

# Real traffic: misses and hits, so the latency and queue-wait
# histograms and the per-stage span histograms all have observations.
"$CHAINQ" --port "$PORT" --repeat 5 analyze "$CHAIN" >/dev/null
"$CHAINQ" --port "$PORT" stats >/dev/null

"$CHAINQ" --port "$PORT" metrics >"$WORKDIR/metrics.txt"
"$CHAINPROF" --check-exposition "$WORKDIR/metrics.txt" \
    || { echo "FAIL: /v1/metrics is not valid Prometheus exposition"; exit 1; }
grep -q 'chainchaos_requests_total{endpoint="analyze"}' "$WORKDIR/metrics.txt" \
    || { echo "FAIL: metrics missing per-endpoint request counters"; exit 1; }
grep -q 'chainchaos_queue_wait_seconds_bucket' "$WORKDIR/metrics.txt" \
    || { echo "FAIL: metrics missing the queue-wait histogram"; exit 1; }
grep -q 'chainchaos_stage_duration_seconds_service_handle' "$WORKDIR/metrics.txt" \
    || { echo "FAIL: metrics missing tracer stage histograms (is --trace on?)"; exit 1; }
grep -q 'chainchaos_events_emitted_total' "$WORKDIR/metrics.txt" \
    || { echo "FAIL: metrics missing chainwatch event counters"; exit 1; }
grep -q 'chainchaos_loop_tick_duration_seconds_bucket' "$WORKDIR/metrics.txt" \
    || { echo "FAIL: metrics missing the event-loop tick histogram"; exit 1; }
echo "/v1/metrics passes the exposition checker"

"$CHAINQ" --port "$PORT" trace >"$WORKDIR/daemon_trace.json"
grep -q '"traceEvents"' "$WORKDIR/daemon_trace.json" \
    || { echo "FAIL: /v1/trace has no traceEvents array"; exit 1; }
echo "/v1/trace serves chrome trace JSON"

# The JSONL sink must carry the connection lifecycle for the traffic
# just served: structured lines, conn.open, and the access-log record.
[ -s "$EVENTS" ] || { echo "FAIL: --events sink is empty"; exit 1; }
head -n 1 "$EVENTS" | grep -q '^{"seq":' \
    || { echo "FAIL: event sink lines are not structured JSONL"; exit 1; }
grep -q '"kind":"conn.open"' "$EVENTS" \
    || { echo "FAIL: event sink has no conn.open events"; exit 1; }
grep -q '"kind":"request"' "$EVENTS" \
    || { echo "FAIL: event sink has no request events"; exit 1; }
grep -q 'POST /v1/analyze' "$EVENTS" \
    || { echo "FAIL: event sink request lines lack the access-log detail"; exit 1; }
echo "--events JSONL sink carries the connection lifecycle"

# --- leg 3: time-series ring + chainq watch ----------------------------

# Keep a trickle of load flowing while the per-second sampler fills the
# ring: >= 5 samples needs a bit over 5 seconds of daemon uptime.
(
  for _ in $(seq 1 12); do
    "$CHAINQ" --port "$PORT" --repeat 3 analyze "$CHAIN" >/dev/null 2>&1 || true
    sleep 0.5
  done
) &
LOAD_PID=$!
sleep 6.2
"$CHAINQ" --port "$PORT" timeseries >"$WORKDIR/timeseries.json"
SAMPLES=$(grep -o '"seq":' "$WORKDIR/timeseries.json" | wc -l)
[ "$SAMPLES" -ge 5 ] \
    || { echo "FAIL: /v1/timeseries has $SAMPLES samples, want >= 5"; exit 1; }
grep -q '"columns"' "$WORKDIR/timeseries.json" \
    || { echo "FAIL: /v1/timeseries is missing the columns array"; exit 1; }
grep -q '"requests_total"' "$WORKDIR/timeseries.json" \
    || { echo "FAIL: /v1/timeseries is missing the requests_total column"; exit 1; }
echo "/v1/timeseries holds $SAMPLES one-second samples"

# chainq watch renders rate rows from the sample backlog; it exits
# non-zero if any cumulative counter ever moves backwards between
# samples, so a zero exit IS the non-negative-rates gate.
"$CHAINQ" --port "$PORT" --samples 3 --interval-ms 200 watch \
    >"$WORKDIR/watch.txt" \
    || { echo "FAIL: chainq watch saw a counter go backwards"; exit 1; }
cat "$WORKDIR/watch.txt"
WATCH_ROWS=$(($(wc -l <"$WORKDIR/watch.txt") - 1))  # minus the header
[ "$WATCH_ROWS" -ge 3 ] \
    || { echo "FAIL: chainq watch printed $WATCH_ROWS rows, want >= 3"; exit 1; }
echo "chainq watch rendered $WATCH_ROWS rate rows with no negative deltas"

# The on-demand flight endpoint must return the live ring's events.
"$CHAINQ" --port "$PORT" flight >"$WORKDIR/flight_live.json"
grep -q '"events_enabled":true' "$WORKDIR/flight_live.json" \
    || { echo "FAIL: /v1/flight reports events disabled"; exit 1; }
grep -q '"kind":"request"' "$WORKDIR/flight_live.json" \
    || { echo "FAIL: /v1/flight has no request events"; exit 1; }
echo "/v1/flight serves the live event ring"

kill "$LOAD_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
RC=$?
DAEMON_PID=""
[ "$RC" -eq 0 ] || { echo "FAIL: chaind exited with $RC"; exit 1; }

# --- leg 4: crash flight recorder --------------------------------------

FLIGHT="$WORKDIR/flight.jsonl"
: >"$PORT_FILE"
"$CHAIND" --port 0 --port-file "$PORT_FILE" --duration 120 \
    --flight "$FLIGHT" >"$WORKDIR/chaind_flight.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "FAIL: flight chaind never wrote its port file"; exit 1; }
PORT=$(cat "$PORT_FILE")

# Put a request through so its events are in the ring when we crash it.
"$CHAINQ" --port "$PORT" analyze "$CHAIN" >/dev/null

kill -SEGV "$DAEMON_PID"
wait "$DAEMON_PID" && RC=0 || RC=$?
DAEMON_PID=""
[ "$RC" -eq 139 ] \
    || { echo "FAIL: SIGSEGV'd chaind exited $RC, want 139 (died by signal)"; exit 1; }
[ -s "$FLIGHT" ] || { echo "FAIL: no flight dump after SIGSEGV"; exit 1; }
head -n 1 "$FLIGHT" | grep -q '"flight":1' \
    || { echo "FAIL: flight dump is missing its header line"; exit 1; }
grep -q '"signal":11' "$FLIGHT" \
    || { echo "FAIL: flight dump does not record SIGSEGV"; exit 1; }
grep -q '"kind":"request"' "$FLIGHT" \
    || { echo "FAIL: flight dump lost the served request's events"; exit 1; }
grep -q 'POST /v1/analyze' "$FLIGHT" \
    || { echo "FAIL: flight dump request event lacks the access-log detail"; exit 1; }
grep -q '"flight_end"' "$FLIGHT" \
    || { echo "FAIL: flight dump is truncated (no footer)"; exit 1; }
# Every line is a JSON object: parseable by any JSONL reader.
BAD_LINES=$(grep -cv '^{.*}$' "$FLIGHT" || true)
[ "$BAD_LINES" -eq 0 ] \
    || { echo "FAIL: flight dump has $BAD_LINES non-JSONL lines"; exit 1; }
echo "SIGSEGV flight dump is parseable and holds the request's events"

# --- leg 5: sweep progress reporting -----------------------------------

# The progress stream rides stderr; stdout must stay byte-identical to
# a run without the flag, except the `engine:` timing footer, which is
# run-dependent with or without --progress.
"$MEASURE" --domains 2000 --threads 4 >"$WORKDIR/plain.out" 2>/dev/null
"$MEASURE" --domains 2000 --threads 4 --progress --progress-interval-ms 10 \
    >"$WORKDIR/progress.out" 2>"$WORKDIR/progress.err"
diff <(grep -v '^engine:' "$WORKDIR/plain.out") \
     <(grep -v '^engine:' "$WORKDIR/progress.out") \
    || { echo "FAIL: --progress changed the measurement summary"; exit 1; }
grep -q '^\[progress\]' "$WORKDIR/progress.err" \
    || { echo "FAIL: --progress printed no progress lines"; exit 1; }
grep -q '(done)$' "$WORKDIR/progress.err" \
    || { echo "FAIL: --progress never printed the final report"; exit 1; }
# Record counts must be monotonically increasing line over line.
sed -n 's/^\[progress\] \([0-9]*\)\/.*/\1/p' "$WORKDIR/progress.err" \
    | awk 'NR > 1 && $1 < prev { exit 1 } { prev = $1 }' \
    || { echo "FAIL: --progress record counts went backwards"; exit 1; }
PROGRESS_LINES=$(grep -c '^\[progress\]' "$WORKDIR/progress.err")
echo "measure_corpus --progress: $PROGRESS_LINES monotone lines, summary unchanged"

# --- optional: the <3% overhead gate with events enabled ---------------

if [ -n "$TRACE_OVERHEAD" ]; then
  "$TRACE_OVERHEAD" \
      || { echo "FAIL: trace/event overhead over the 3% budget"; exit 1; }
fi

echo "obs smoke OK"
