// chainwatch time-series ring: per-second snapshots of the service
// counters over a fixed window (DESIGN.md §5.16).
//
// The epoll loop pushes one row per sample interval (default 1 s); the
// ring holds the newest `window` rows (default 300 = five minutes) and
// wraps. Each row is the same ordered list of named columns, all
// monotonic counters or gauges sampled at one instant, so a consumer
// (chainq watch) can difference consecutive rows to get req/s,
// eviction/s, and latency-bucket deltas without ever seeing a negative
// rate — the whole row is taken from one MetricsSnapshot.
//
// Pushes happen on one thread (the loop) at 1 Hz and reads are rare
// (GET /v1/timeseries), so a plain mutex is the right tool here; the
// lock-free machinery lives where the hot paths are (EventLog, Tracer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace chainchaos::obs {

class TimeSeriesRing {
 public:
  struct Sample {
    std::uint64_t seq = 0;        ///< push order, dense from 0
    std::uint64_t uptime_ms = 0;  ///< server uptime at sample time
    std::vector<std::uint64_t> values;  ///< one per column, same order
  };

  TimeSeriesRing(std::vector<std::string> columns, std::size_t window);

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t window() const { return window_; }

  /// Appends one row. `values` must have exactly columns().size()
  /// entries (short rows are zero-padded defensively).
  void push(std::uint64_t uptime_ms, std::vector<std::uint64_t> values);

  /// Rows pushed over the ring's lifetime (>= window once wrapped).
  std::uint64_t pushed() const;

  /// The retained window, oldest first.
  std::vector<Sample> snapshot() const;

  /// The /v1/timeseries body: window, push count, column names, and the
  /// retained samples as flat objects of integer fields.
  std::string to_json() const;

 private:
  std::vector<std::string> columns_;
  std::size_t window_;

  mutable std::mutex mutex_;
  std::vector<Sample> ring_;
  std::uint64_t pushed_ = 0;
};

}  // namespace chainchaos::obs
