#include "corpusio/reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <utility>

namespace chainchaos::corpusio {

namespace {

Error truncated(const std::string& what) {
  return make_error("corpusio.truncated", what);
}

Error bad_index(const std::string& what) {
  return make_error("corpusio.bad_index", what);
}

}  // namespace

// --- MappedFile -------------------------------------------------------------

Result<MappedFile> MappedFile::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return make_error("corpusio.io",
                      path + ": " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return make_error("corpusio.io",
                      path + ": fstat: " + std::strerror(errno));
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return make_error("corpusio.truncated", path + ": empty file");
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) {
    return make_error("corpusio.io",
                      path + ": mmap: " + std::strerror(errno));
  }
  MappedFile file;
  file.data_ = static_cast<const std::uint8_t*>(addr);
  file.size_ = size;
  return file;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

void MappedFile::dont_need(std::size_t offset, std::size_t length) const {
  if (data_ == nullptr || length == 0 || offset >= size_) return;
  if (length > size_ - offset) length = size_ - offset;
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  // Round the start up and the end down: only pages fully inside the
  // range are dropped, so neighbouring records still being visited are
  // never evicted under a worker's feet.
  const std::size_t begin = (offset + page - 1) / page * page;
  const std::size_t end = (offset + length) / page * page;
  if (end <= begin) return;
  ::madvise(const_cast<std::uint8_t*>(data_) + begin, end - begin,
            MADV_DONTNEED);
}

// --- CorpusReader -----------------------------------------------------------

Result<std::unique_ptr<CorpusReader>> CorpusReader::open(
    const std::string& path) {
  auto mapped = MappedFile::map(path);
  if (!mapped.ok()) return mapped.error();

  auto reader = std::unique_ptr<CorpusReader>(new CorpusReader());
  reader->file_ = std::move(mapped).value();
  const MappedFile& file = reader->file_;

  // --- header ---------------------------------------------------------
  if (file.size() < kHeaderBytes) {
    return truncated(path + ": smaller than the fixed header");
  }
  Cursor cursor(file.data(), kHeaderBytes);
  BytesView magic;
  cursor.read_view(sizeof kMagic, magic);
  if (std::memcmp(magic.data(), kMagic, sizeof kMagic) != 0) {
    return make_error("corpusio.bad_magic", path);
  }
  FileHeader& h = reader->header_;
  std::uint32_t header_bytes = 0;
  std::uint32_t reserved32 = 0;
  if (!cursor.read_u32(h.version) || !cursor.read_u32(header_bytes) ||
      !cursor.read_u64(h.record_count) || !cursor.read_u64(h.data_offset) ||
      !cursor.read_u64(h.data_bytes) || !cursor.read_u64(h.env_offset) ||
      !cursor.read_u64(h.env_bytes) || !cursor.read_u64(h.index_offset) ||
      !cursor.read_u64(h.index_bytes) || !cursor.read_u64(h.seed) ||
      !cursor.read_u64(h.domain_count) || !cursor.read_u32(h.flags) ||
      !cursor.read_u32(reserved32) || !cursor.read_u64(h.file_checksum)) {
    return truncated(path + ": header");
  }
  if (h.version != kFormatVersion) {
    return make_error("corpusio.unsupported_version",
                      path + ": format version " + std::to_string(h.version));
  }
  if (header_bytes != kHeaderBytes) {
    return make_error("corpusio.unsupported_version",
                      path + ": header size " + std::to_string(header_bytes));
  }
  if (h.record_count == 0) {
    return make_error("corpusio.empty", path + ": zero records");
  }

  // --- section coherence ----------------------------------------------
  // Sections must be header | data | env | index, contiguous, and end
  // exactly at EOF. Each section size is bounded against the bytes left
  // after its (already-bounded) offset BEFORE it joins any sum, so no
  // check below can wrap mod 2^64 — a crafted header cannot alias an
  // out-of-range section back onto EOF.
  const std::uint64_t file_size = file.size();
  if (h.data_offset != kHeaderBytes ||
      h.data_bytes > file_size - h.data_offset) {
    return truncated(path + ": data section exceeds the file");
  }
  if (h.env_offset != h.data_offset + h.data_bytes ||
      h.env_bytes > file_size - h.env_offset) {
    return truncated(path + ": env section exceeds the file");
  }
  if (h.index_offset != h.env_offset + h.env_bytes ||
      h.index_bytes != file_size - h.index_offset) {
    return truncated(path + ": section layout does not cover the file");
  }
  // Division instead of record_count * kIndexEntryBytes: the product of
  // two hostile u64 fields could wrap to a plausible value.
  if (h.index_bytes % kIndexEntryBytes != 0 ||
      h.record_count != h.index_bytes / kIndexEntryBytes) {
    return bad_index(path + ": index size does not match record count");
  }
  // A record is at minimum: u32 label_bytes + 8-byte fixed labels +
  // 4 empty strings (2 bytes each) + u32 cert_count + u64 checksum.
  constexpr std::uint64_t kMinRecordBytes = 4 + 8 + 8 + 4 + 8;
  if (h.record_count > h.data_bytes / kMinRecordBytes) {
    return bad_index(path + ": record count impossible for data size");
  }

  // --- index scan -----------------------------------------------------
  // Every entry must lie inside the data section, be at least the
  // minimum record size, and start exactly where the previous record
  // ended (ascending, non-overlapping, gap-free — the writer packs
  // records back to back, so anything else is corruption).
  Cursor index(file.data() + h.index_offset,
               static_cast<std::size_t>(h.index_bytes));
  std::uint64_t expected_offset = h.data_offset;
  for (std::uint64_t i = 0; i < h.record_count; ++i) {
    IndexEntry entry;
    if (!decode_index_entry(index, entry)) {
      return truncated(path + ": index entry " + std::to_string(i));
    }
    if (entry.length < kMinRecordBytes) {
      return bad_index(path + ": record " + std::to_string(i) + " too short");
    }
    if (entry.offset < expected_offset) {
      return make_error("corpusio.overlap",
                        path + ": record " + std::to_string(i) +
                            " overlaps its predecessor");
    }
    if (entry.offset != expected_offset) {
      return bad_index(path + ": record " + std::to_string(i) +
                       " leaves a gap");
    }
    if (entry.offset + entry.length > h.env_offset) {
      return bad_index(path + ": record " + std::to_string(i) +
                       " extends past the data section");
    }
    expected_offset = entry.offset + entry.length;
  }
  if (expected_offset != h.env_offset) {
    return bad_index(path + ": records do not cover the data section");
  }
  return reader;
}

IndexEntry CorpusReader::index_entry(std::size_t i) const {
  Cursor cursor(
      file_.data() + header_.index_offset + i * std::size_t{kIndexEntryBytes},
      kIndexEntryBytes);
  IndexEntry entry;
  decode_index_entry(cursor, entry);  // in-bounds by open()'s validation
  return entry;
}

Result<dataset::DomainRecord> CorpusReader::decode_record(
    std::size_t i) const {
  const IndexEntry entry = index_entry(i);
  const std::uint8_t* base =
      file_.data() + static_cast<std::size_t>(entry.offset);
  const std::size_t length = entry.length;
  const std::string where = "record " + std::to_string(i);

  // Checksum covers everything but the trailing checksum itself.
  Cursor tail(base + length - 8, 8);
  std::uint64_t stored = 0;
  tail.read_u64(stored);
  if (stored != entry.checksum ||
      fnv1a64(BytesView(base, length - 8)) != stored) {
    return make_error("corpusio.checksum_mismatch", where);
  }

  Cursor cursor(base, length - 8);
  std::uint32_t label_bytes = 0;
  if (!cursor.read_u32(label_bytes) || cursor.remaining() < label_bytes) {
    return truncated(where + ": label block");
  }

  dataset::DomainRecord record;
  {
    Cursor labels(base + cursor.offset(), label_bytes);
    std::uint8_t primary = 0;
    std::uint8_t leaf = 0;
    std::uint8_t flags = 0;
    std::uint8_t reserved = 0;
    std::uint32_t missing = 0;
    if (!labels.read_u8(primary) || !labels.read_u8(leaf) ||
        !labels.read_u8(flags) || !labels.read_u8(reserved) ||
        !labels.read_u32(missing)) {
      return truncated(where + ": label fields");
    }
    if (primary > kMaxDefectWire || leaf > kMaxDefectWire) {
      return bad_index(where + ": defect value out of range");
    }
    record.primary_defect = static_cast<dataset::DefectType>(primary);
    record.leaf_defect = static_cast<dataset::DefectType>(leaf);
    record.root_included = (flags & kFlagRootIncluded) != 0;
    record.rare_hierarchy = (flags & kFlagRareHierarchy) != 0;
    record.akidless_terminal = (flags & kFlagAkidlessTerminal) != 0;
    record.exclusive_store_domain = (flags & kFlagExclusiveStoreDomain) != 0;
    record.exemplar = (flags & kFlagExemplar) != 0;
    if (missing > static_cast<std::uint32_t>(
                      std::numeric_limits<int>::max())) {
      return bad_index(where + ": missing count out of range");
    }
    record.missing_count = static_cast<int>(missing);
    std::string* fields[4] = {&record.observation.domain,
                              &record.observation.ca_name,
                              &record.observation.server_software,
                              &record.exemplar_name};
    for (std::string* field : fields) {
      std::uint16_t n = 0;
      if (!labels.read_u16(n) || !labels.read_string(n, *field)) {
        return truncated(where + ": label strings");
      }
    }
  }
  // Skip over the label block in the outer cursor.
  {
    BytesView skipped;
    cursor.read_view(label_bytes, skipped);
  }

  std::uint32_t cert_count = 0;
  if (!cursor.read_u32(cert_count)) return truncated(where + ": cert count");
  record.observation.certificates.reserve(cert_count);
  for (std::uint32_t c = 0; c < cert_count; ++c) {
    std::uint32_t der_len = 0;
    BytesView der;
    if (!cursor.read_u32(der_len) || !cursor.read_view(der_len, der)) {
      return truncated(where + ": certificate " + std::to_string(c));
    }
    auto cert = x509::parse_certificate(der);
    if (!cert.ok()) {
      return make_error("corpusio.bad_certificate",
                        where + ": " + cert.error().to_string());
    }
    record.observation.certificates.push_back(std::move(cert).value());
  }
  if (!cursor.done()) {
    return bad_index(where + ": trailing bytes after certificates");
  }
  return record;
}

Result<EnvironmentBlock> CorpusReader::environment() const {
  Cursor cursor(file_.data() + static_cast<std::size_t>(header_.env_offset),
                static_cast<std::size_t>(header_.env_bytes));
  EnvironmentBlock env;

  std::uint32_t core_count = 0;
  if (!cursor.read_u32(core_count)) return truncated("env: core root count");
  env.core_roots.reserve(core_count);
  for (std::uint32_t i = 0; i < core_count; ++i) {
    std::uint32_t der_len = 0;
    BytesView der;
    if (!cursor.read_u32(der_len) || !cursor.read_view(der_len, der)) {
      return truncated("env: core root " + std::to_string(i));
    }
    auto cert = x509::parse_certificate(der);
    if (!cert.ok()) {
      return make_error("corpusio.bad_certificate",
                        "env core root: " + cert.error().to_string());
    }
    env.core_roots.push_back(std::move(cert).value());
  }

  std::uint32_t exclusive_count = 0;
  if (!cursor.read_u32(exclusive_count)) {
    return truncated("env: exclusive root count");
  }
  env.exclusive_roots.reserve(exclusive_count);
  for (std::uint32_t i = 0; i < exclusive_count; ++i) {
    std::uint32_t mask = 0;
    std::uint32_t der_len = 0;
    BytesView der;
    if (!cursor.read_u32(mask) || !cursor.read_u32(der_len) ||
        !cursor.read_view(der_len, der)) {
      return truncated("env: exclusive root " + std::to_string(i));
    }
    auto cert = x509::parse_certificate(der);
    if (!cert.ok()) {
      return make_error("corpusio.bad_certificate",
                        "env exclusive root: " + cert.error().to_string());
    }
    env.exclusive_roots.emplace_back(std::move(cert).value(), mask);
  }

  std::uint32_t aia_count = 0;
  if (!cursor.read_u32(aia_count)) return truncated("env: AIA count");
  env.aia_entries.reserve(aia_count);
  for (std::uint32_t i = 0; i < aia_count; ++i) {
    std::uint8_t flags = 0;
    std::uint16_t uri_len = 0;
    net::AiaEntrySnapshot entry;
    if (!cursor.read_u8(flags) || !cursor.read_u16(uri_len) ||
        !cursor.read_string(uri_len, entry.uri)) {
      return truncated("env: AIA entry " + std::to_string(i));
    }
    entry.unreachable = (flags & 2) != 0;
    if ((flags & 1) != 0) {
      std::uint32_t der_len = 0;
      BytesView der;
      if (!cursor.read_u32(der_len) || !cursor.read_view(der_len, der)) {
        return truncated("env: AIA certificate " + std::to_string(i));
      }
      auto cert = x509::parse_certificate(der);
      if (!cert.ok()) {
        return make_error("corpusio.bad_certificate",
                          "env AIA entry: " + cert.error().to_string());
      }
      entry.cert = std::move(cert).value();
    }
    env.aia_entries.push_back(std::move(entry));
  }
  if (!cursor.done()) {
    return truncated("env: trailing bytes after AIA entries");
  }
  return env;
}

Result<bool> CorpusReader::verify() const {
  // Whole-file checksum: header with the checksum field zeroed, then the
  // digest of every post-header byte in file order (writer.cpp formula).
  FileHeader copy = header_;
  std::uint64_t expected = fnv1a64(encode_header(copy, true));
  const std::uint64_t body_hash =
      fnv1a64(BytesView(file_.data() + kHeaderBytes,
                        file_.size() - kHeaderBytes));
  Bytes body_digest;
  put_u64(body_digest, body_hash);
  expected = fnv1a64(expected, body_digest);
  if (expected != header_.file_checksum) {
    return make_error("corpusio.checksum_mismatch", "file checksum");
  }
  for (std::size_t i = 0; i < size(); ++i) {
    const IndexEntry entry = index_entry(i);
    const std::uint8_t* base =
        file_.data() + static_cast<std::size_t>(entry.offset);
    Cursor tail(base + entry.length - 8, 8);
    std::uint64_t stored = 0;
    tail.read_u64(stored);
    if (stored != entry.checksum ||
        fnv1a64(BytesView(base, entry.length - 8)) != stored) {
      return make_error("corpusio.checksum_mismatch",
                        "record " + std::to_string(i));
    }
  }
  return true;
}

std::uint64_t CorpusReader::record_bytes(std::size_t first,
                                         std::size_t last) const {
  if (first >= last || last > size()) return 0;
  const IndexEntry head = index_entry(first);
  const IndexEntry tail = index_entry(last - 1);
  return tail.offset + tail.length - head.offset;
}

void CorpusReader::release_records(std::size_t first, std::size_t last) const {
  if (first >= last || last > size()) return;
  const IndexEntry head = index_entry(first);
  const std::uint64_t bytes = record_bytes(first, last);
  file_.dont_need(static_cast<std::size_t>(head.offset),
                  static_cast<std::size_t>(bytes));
}

// --- PackedCorpus -----------------------------------------------------------

Result<std::unique_ptr<PackedCorpus>> PackedCorpus::open(
    const std::string& path) {
  auto reader = CorpusReader::open(path);
  if (!reader.ok()) return reader.error();
  auto corpus = std::unique_ptr<PackedCorpus>(new PackedCorpus());
  corpus->reader_ = std::move(reader).value();

  auto env = corpus->reader_->environment();
  if (!env.ok()) return env.error();
  corpus->stores_ = truststore::make_program_stores(
      env.value().core_roots, env.value().exclusive_roots);
  corpus->aia_.replay_snapshot(env.value().aia_entries);
  return corpus;
}

}  // namespace chainchaos::corpusio
