#include <gtest/gtest.h>

#include "chain/analyzer.hpp"
#include "chain/issuance.hpp"
#include "chain/topology.hpp"
#include "x509/builder.hpp"

namespace chainchaos::chain {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::make_identity;
using x509::SigningIdentity;

constexpr std::int64_t kNb = 1700000000;
constexpr std::int64_t kNa = 1900000000;

/// Shared three-tier PKI: root -> I1 -> I2 -> leaf, plus a foreign root
/// and a cross-signed twin of the root (Figure 2c material).
class ChainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    root_id_ = new SigningIdentity(
        make_identity(asn1::Name::make("ChainT Root", "ChainT", "US")));
    CertificateBuilder rb;
    rb.subject(root_id_->name).as_ca().public_key(root_id_->keys.pub);
    root_ = new CertPtr(rb.self_sign(root_id_->keys));

    i1_id_ = new SigningIdentity(
        make_identity(asn1::Name::make("ChainT I1", "ChainT", "US")));
    CertificateBuilder i1b;
    i1b.subject(i1_id_->name).as_ca(1).public_key(i1_id_->keys.pub);
    i1_ = new CertPtr(i1b.sign(*root_id_));

    i2_id_ = new SigningIdentity(
        make_identity(asn1::Name::make("ChainT I2", "ChainT", "US")));
    CertificateBuilder i2b;
    i2b.subject(i2_id_->name).as_ca(0).public_key(i2_id_->keys.pub);
    i2_ = new CertPtr(i2b.sign(*i1_id_));

    CertificateBuilder lb;
    lb.as_leaf("chain.example.com");
    leaf_ = new CertPtr(lb.sign(*i2_id_));

    foreign_id_ = new SigningIdentity(
        make_identity(asn1::Name::make("Foreign Root", "Elsewhere", "DE")));
    CertificateBuilder fb;
    fb.subject(foreign_id_->name).as_ca().public_key(foreign_id_->keys.pub);
    foreign_root_ = new CertPtr(fb.self_sign(foreign_id_->keys));

    // Cross-signed twin of the root (same subject+key, issued by the
    // foreign root).
    CertificateBuilder xb;
    xb.subject(root_id_->name).as_ca().public_key(root_id_->keys.pub);
    cross_root_ = new CertPtr(xb.sign(*foreign_id_));
  }

  static SigningIdentity* root_id_;
  static SigningIdentity* i1_id_;
  static SigningIdentity* i2_id_;
  static SigningIdentity* foreign_id_;
  static CertPtr* root_;
  static CertPtr* i1_;
  static CertPtr* i2_;
  static CertPtr* leaf_;
  static CertPtr* foreign_root_;
  static CertPtr* cross_root_;
};

SigningIdentity* ChainFixture::root_id_ = nullptr;
SigningIdentity* ChainFixture::i1_id_ = nullptr;
SigningIdentity* ChainFixture::i2_id_ = nullptr;
SigningIdentity* ChainFixture::foreign_id_ = nullptr;
CertPtr* ChainFixture::root_ = nullptr;
CertPtr* ChainFixture::i1_ = nullptr;
CertPtr* ChainFixture::i2_ = nullptr;
CertPtr* ChainFixture::leaf_ = nullptr;
CertPtr* ChainFixture::foreign_root_ = nullptr;
CertPtr* ChainFixture::cross_root_ = nullptr;

// ---------------------------------------------------------------------------
// Issuance predicate
// ---------------------------------------------------------------------------

TEST_F(ChainFixture, IssuancePredicateFollowsHierarchy) {
  EXPECT_TRUE(issued_by(**i1_, **root_));
  EXPECT_TRUE(issued_by(**i2_, **i1_));
  EXPECT_TRUE(issued_by(**leaf_, **i2_));

  EXPECT_FALSE(issued_by(**leaf_, **i1_));     // skips a level
  EXPECT_FALSE(issued_by(**leaf_, **root_));
  EXPECT_FALSE(issued_by(**i1_, **i2_));       // inverted
  EXPECT_FALSE(issued_by(**leaf_, **foreign_root_));
}

TEST_F(ChainFixture, KidMatchClasses) {
  EXPECT_EQ(kid_match(**i2_, **leaf_), KidMatch::kMatch);
  EXPECT_EQ(kid_match(**i1_, **leaf_), KidMatch::kMismatch);

  CertificateBuilder nb;
  nb.subject_cn("no-akid.example").omit_authority_key_id();
  const CertPtr no_akid = nb.sign(*i2_id_);
  EXPECT_EQ(kid_match(**i2_, *no_akid), KidMatch::kAbsent);
}

TEST_F(ChainFixture, DnLeniencyWhenKidAbsent) {
  // A child without AKID still links by DN alone.
  CertificateBuilder nb;
  nb.subject_cn("dn-only.example").omit_authority_key_id();
  const CertPtr dn_only = nb.sign(*i2_id_);
  EXPECT_TRUE(issued_by(*dn_only, **i2_));
}

TEST_F(ChainFixture, KidAloneLinksDespiteDnMismatch) {
  // AKID matches I2's SKID but the issuer DN is wrong: the paper's
  // leniency accepts criterion (3) alone — provided the signature holds.
  CertificateBuilder builder;
  builder.subject_cn("kid-link.example");
  const CertPtr cert = builder.sign(*i2_id_);
  // Rewrite issuer DN by re-signing under a synthetic identity with
  // I2's keys but another name.
  SigningIdentity odd;
  odd.name = asn1::Name::make("Renamed I2");
  odd.keys = i2_id_->keys;
  CertificateBuilder builder2;
  builder2.subject_cn("kid-link.example");
  const CertPtr renamed = builder2.sign(odd);
  // DN no longer links, but SKID/AKID + signature do.
  EXPECT_FALSE(dn_links(**i2_, *renamed));
  EXPECT_TRUE(issued_by(*renamed, **i2_));
}

TEST_F(ChainFixture, SignatureIsMandatory) {
  // Same subject DN as I2 and same SKID, but a different key actually
  // signs: the DN/KID match alone must not be enough.
  SigningIdentity impostor;
  impostor.name = i2_id_->name;
  impostor.keys = foreign_id_->keys;
  CertificateBuilder builder;
  builder.subject_cn("victim.example");
  CertPtr forged = builder.sign(impostor);
  EXPECT_TRUE(dn_links(**i2_, *forged));
  EXPECT_FALSE(issued_by(*forged, **i2_));
}

TEST_F(ChainFixture, IssuanceCacheCountsWork) {
  reset_issuance_cache();
  EXPECT_TRUE(issued_by(**leaf_, **i2_));
  EXPECT_TRUE(issued_by(**leaf_, **i2_));
  const IssuanceCacheStats& stats = issuance_cache_stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.signature_checks, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

// ---------------------------------------------------------------------------
// Topology (Figure 2)
// ---------------------------------------------------------------------------

TEST_F(ChainFixture, CompliantChainTopology) {
  // Figure 2a: a straight line.
  const Topology topo = Topology::build({*leaf_, *i2_, *i1_, *root_});
  ASSERT_EQ(topo.size(), 4);
  const auto paths = topo.paths_from_leaf();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(topo.irrelevant_nodes().empty());
  EXPECT_FALSE(topo.any_path_reversed());
}

TEST_F(ChainFixture, DuplicatesFoldOntoFirstOccurrence) {
  // Figure 2d flavour: duplicate I2 later in the list.
  const Topology topo = Topology::build({*leaf_, *i2_, *i1_, *i2_, *root_});
  ASSERT_EQ(topo.size(), 4);  // folded
  const Topology::Node& i2_node = topo.node(1);
  EXPECT_TRUE(i2_node.duplicated());
  EXPECT_EQ(i2_node.occurrences, (std::vector<int>{1, 3}));
  // Folding does not change path structure.
  EXPECT_EQ(topo.paths_from_leaf().size(), 1u);
}

TEST_F(ChainFixture, IrrelevantNodesDetected) {
  // Figure 2b flavour: a foreign root rides along.
  const Topology topo = Topology::build({*leaf_, *i2_, *i1_, *foreign_root_});
  const auto irrelevant = topo.irrelevant_nodes();
  ASSERT_EQ(irrelevant.size(), 1u);
  EXPECT_EQ(topo.node(irrelevant[0]).cert->subject.common_name().value(),
            "Foreign Root");
}

TEST_F(ChainFixture, CrossSignCreatesMultiplePathsAndReversal) {
  // Figure 2c: cross cert placed before the self-signed root.
  const Topology topo =
      Topology::build({*leaf_, *i2_, *i1_, *cross_root_, *root_});
  const auto paths = topo.paths_from_leaf();
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_TRUE(topo.any_path_reversed());
  EXPECT_FALSE(topo.all_paths_reversed());  // the direct-to-cross path is
                                            // positionally ordered

  // Reordering (cross after root) removes the reversal but keeps both
  // paths.
  const Topology fixed =
      Topology::build({*leaf_, *i2_, *i1_, *root_, *cross_root_});
  EXPECT_EQ(fixed.paths_from_leaf().size(), 2u);
  EXPECT_FALSE(fixed.any_path_reversed());
}

TEST_F(ChainFixture, ReversedSequenceDetected) {
  const Topology topo = Topology::build({*leaf_, *i1_, *i2_});
  const auto paths = topo.paths_from_leaf();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(topo.any_path_reversed());
  EXPECT_TRUE(topo.all_paths_reversed());
}

TEST_F(ChainFixture, CyclicCrossSigningTerminates) {
  // Two CAs that cross-sign each other (the CVE-2024-0567 shape):
  // path enumeration must terminate and stay simple.
  SigningIdentity a_id = make_identity(asn1::Name::make("Cycle A"));
  SigningIdentity b_id = make_identity(asn1::Name::make("Cycle B"));
  CertificateBuilder ab;
  ab.subject(a_id.name).as_ca().public_key(a_id.keys.pub);
  const CertPtr a_by_b = ab.sign(b_id);
  CertificateBuilder ba;
  ba.subject(b_id.name).as_ca().public_key(b_id.keys.pub);
  const CertPtr b_by_a = ba.sign(a_id);

  CertificateBuilder lb;
  lb.as_leaf("cycle.example");
  const CertPtr cycle_leaf = lb.sign(a_id);

  const Topology topo = Topology::build({cycle_leaf, a_by_b, b_by_a});
  const auto paths = topo.paths_from_leaf();
  ASSERT_EQ(paths.size(), 1u);
  // leaf -> A(by B) -> B(by A); the cycle guard stops there.
  EXPECT_EQ(paths[0].size(), 3u);
}

TEST_F(ChainFixture, SingleCertTopology) {
  const Topology topo = Topology::build({*leaf_});
  EXPECT_EQ(topo.size(), 1);
  const auto paths = topo.paths_from_leaf();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 1u);
  EXPECT_FALSE(topo.any_path_reversed());
}

TEST_F(ChainFixture, EmptyTopology) {
  const Topology topo = Topology::build({});
  EXPECT_TRUE(topo.empty());
  EXPECT_TRUE(topo.paths_from_leaf().empty());
  EXPECT_TRUE(topo.irrelevant_nodes().empty());
  EXPECT_FALSE(topo.any_path_reversed());
}

TEST_F(ChainFixture, AsciiRenderingMentionsLabels) {
  const Topology topo = Topology::build({*leaf_, *i2_, *i2_});
  const std::string ascii = topo.to_ascii();
  EXPECT_NE(ascii.find("C0"), std::string::npos);
  EXPECT_NE(ascii.find("C1[1]@2"), std::string::npos);  // duplicate label
}

// ---------------------------------------------------------------------------
// Leaf placement (Table 3 taxonomy)
// ---------------------------------------------------------------------------

TEST_F(ChainFixture, LeafPlacementCorrectMatched) {
  EXPECT_EQ(classify_leaf_placement({*leaf_, *i2_}, "chain.example.com"),
            LeafPlacement::kCorrectMatched);
}

TEST_F(ChainFixture, LeafPlacementCorrectMismatched) {
  EXPECT_EQ(classify_leaf_placement({*leaf_, *i2_}, "other.example.org"),
            LeafPlacement::kCorrectMismatched);
}

TEST_F(ChainFixture, LeafPlacementIncorrectMatched) {
  // A CA cert first (non-domain CN), the real leaf later.
  EXPECT_EQ(classify_leaf_placement({*i2_, *leaf_}, "chain.example.com"),
            LeafPlacement::kIncorrectMatched);
}

TEST_F(ChainFixture, LeafPlacementIncorrectMismatched) {
  EXPECT_EQ(classify_leaf_placement({*i2_, *leaf_}, "unrelated.example.org"),
            LeafPlacement::kIncorrectMismatched);
}

TEST_F(ChainFixture, LeafPlacementOther) {
  EXPECT_EQ(classify_leaf_placement({*i2_, *i1_}, "chain.example.com"),
            LeafPlacement::kOther);
  EXPECT_EQ(classify_leaf_placement({}, "chain.example.com"),
            LeafPlacement::kOther);
}

TEST_F(ChainFixture, LeafPlacementWildcardCounts) {
  CertificateBuilder wb;
  wb.as_leaf("*.wild.example.com");
  const CertPtr wildcard = wb.sign(*i2_id_);
  EXPECT_EQ(classify_leaf_placement({wildcard}, "a.wild.example.com"),
            LeafPlacement::kCorrectMatched);
  EXPECT_EQ(classify_leaf_placement({wildcard}, "deep.a.wild.example.com"),
            LeafPlacement::kCorrectMismatched);  // wildcard covers one label
}

// ---------------------------------------------------------------------------
// Order analysis (Table 5 taxonomy)
// ---------------------------------------------------------------------------

TEST_F(ChainFixture, OrderCompliantChain) {
  EXPECT_TRUE(order_compliant({*leaf_, *i2_, *i1_, *root_}));
  EXPECT_TRUE(order_compliant({*leaf_, *i2_, *i1_}));  // root omitted
  EXPECT_TRUE(order_compliant({*leaf_}));
  const Topology topo = Topology::build({*leaf_, *i2_, *i1_});
  const OrderAnalysis analysis = analyze_order({*leaf_, *i2_, *i1_}, topo);
  EXPECT_TRUE(analysis.compliant);
  EXPECT_FALSE(analysis.any_order_issue());
}

TEST_F(ChainFixture, OrderViolationsByType) {
  {  // duplicate leaf
    const std::vector<CertPtr> list = {*leaf_, *leaf_, *i2_, *i1_};
    const OrderAnalysis a = analyze_order(list, Topology::build(list));
    EXPECT_FALSE(a.compliant);
    EXPECT_TRUE(a.has_duplicates);
    EXPECT_TRUE(a.duplicate_leaf);
    EXPECT_FALSE(a.duplicate_root);
    EXPECT_EQ(a.max_duplicate_occurrences, 2);
  }
  {  // duplicate intermediate + root
    const std::vector<CertPtr> list = {*leaf_, *i2_, *i2_, *i1_, *root_, *root_};
    const OrderAnalysis a = analyze_order(list, Topology::build(list));
    EXPECT_TRUE(a.duplicate_intermediate);
    EXPECT_TRUE(a.duplicate_root);
    EXPECT_FALSE(a.duplicate_leaf);
  }
  {  // irrelevant certificate
    const std::vector<CertPtr> list = {*leaf_, *i2_, *foreign_root_, *i1_};
    const OrderAnalysis a = analyze_order(list, Topology::build(list));
    EXPECT_TRUE(a.has_irrelevant);
    EXPECT_EQ(a.irrelevant_count, 1);
  }
  {  // reversed
    const std::vector<CertPtr> list = {*leaf_, *i1_, *i2_};
    const OrderAnalysis a = analyze_order(list, Topology::build(list));
    EXPECT_TRUE(a.reversed_sequence);
    EXPECT_TRUE(a.all_paths_reversed);
    EXPECT_FALSE(a.compliant);
  }
  {  // multiple paths (cross-sign, Figure 2c placement)
    const std::vector<CertPtr> list = {*leaf_, *i2_, *i1_, *cross_root_, *root_};
    const OrderAnalysis a = analyze_order(list, Topology::build(list));
    EXPECT_TRUE(a.multiple_paths);
    EXPECT_EQ(a.path_count, 2);
    EXPECT_TRUE(a.reversed_sequence);
  }
}

TEST_F(ChainFixture, CrossSignCompliantOrderIsAccepted) {
  // [leaf, I2, I1, root, cross]: every adjacent pair certifies its
  // predecessor (cross certifies the root since they share the key).
  EXPECT_TRUE(order_compliant({*leaf_, *i2_, *i1_, *root_, *cross_root_}));
}

// ---------------------------------------------------------------------------
// Completeness (Table 7)
// ---------------------------------------------------------------------------

class CompletenessFixture : public ChainFixture {
 protected:
  void SetUp() override {
    store_.add(*root_);
    store_.add(*foreign_root_);
    options_.store = &store_;
    options_.aia = &aia_;
  }

  truststore::RootStore store_{"completeness"};
  net::AiaRepository aia_;
  CompletenessOptions options_;
};

TEST_F(CompletenessFixture, CompleteWithRoot) {
  const Topology topo = Topology::build({*leaf_, *i2_, *i1_, *root_});
  const CompletenessResult r = analyze_completeness(topo, options_);
  EXPECT_EQ(r.category, Completeness::kCompleteWithRoot);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.aia_outcome, AiaOutcome::kNotAttempted);
}

TEST_F(CompletenessFixture, CompleteWithoutRoot) {
  const Topology topo = Topology::build({*leaf_, *i2_, *i1_});
  const CompletenessResult r = analyze_completeness(topo, options_);
  EXPECT_EQ(r.category, Completeness::kCompleteWithoutRoot);
}

TEST_F(CompletenessFixture, IncompleteWithoutAiaField) {
  // Missing I1; I2 has no AIA extension (builder default in this test PKI).
  const Topology topo = Topology::build({*leaf_, *i2_});
  const CompletenessResult r = analyze_completeness(topo, options_);
  EXPECT_EQ(r.category, Completeness::kIncomplete);
  EXPECT_EQ(r.aia_outcome, AiaOutcome::kNoAiaField);
  EXPECT_EQ(r.missing_certificates, 1);
}

TEST_F(CompletenessFixture, IncompleteButAiaRepairable) {
  // Publish I1 at a URI and re-issue I2 with that AIA pointer.
  aia_.publish("http://chain.test/i1.crt", *i1_);
  CertificateBuilder i2b;
  i2b.subject(i2_id_->name)
      .as_ca(0)
      .public_key(i2_id_->keys.pub)
      .aia_ca_issuers("http://chain.test/i1.crt");
  const CertPtr i2_with_aia = i2b.sign(*i1_id_);
  CertificateBuilder lb;
  lb.as_leaf("aia-fix.example");
  const CertPtr leaf2 = lb.sign(*i2_id_);

  const Topology topo = Topology::build({leaf2, i2_with_aia});
  const CompletenessResult r = analyze_completeness(topo, options_);
  EXPECT_EQ(r.category, Completeness::kIncomplete);
  EXPECT_EQ(r.aia_outcome, AiaOutcome::kCompleted);
  EXPECT_EQ(r.missing_certificates, 1);
}

TEST_F(CompletenessFixture, IncompleteWithDeadAia) {
  aia_.mark_unreachable("http://chain.test/dead.crt");
  CertificateBuilder i2b;
  i2b.subject(i2_id_->name)
      .as_ca(0)
      .public_key(i2_id_->keys.pub)
      .aia_ca_issuers("http://chain.test/dead.crt");
  const CertPtr i2_dead = i2b.sign(*i1_id_);
  CertificateBuilder lb;
  lb.as_leaf("dead-aia.example");
  const CertPtr leaf2 = lb.sign(*i2_id_);

  const Topology topo = Topology::build({leaf2, i2_dead});
  const CompletenessResult r = analyze_completeness(topo, options_);
  EXPECT_EQ(r.category, Completeness::kIncomplete);
  EXPECT_EQ(r.aia_outcome, AiaOutcome::kUnreachable);
}

TEST_F(CompletenessFixture, WrongIssuerServedAtAia) {
  // The CAcert case: the URI serves the certificate itself.
  CertificateBuilder i2b;
  i2b.subject(i2_id_->name)
      .as_ca(0)
      .public_key(i2_id_->keys.pub)
      .aia_ca_issuers("http://chain.test/self.crt");
  const CertPtr i2_selfref = i2b.sign(*i1_id_);
  aia_.publish("http://chain.test/self.crt", i2_selfref);
  CertificateBuilder lb;
  lb.as_leaf("selfref.example");
  const CertPtr leaf2 = lb.sign(*i2_id_);

  const Topology topo = Topology::build({leaf2, i2_selfref});
  const CompletenessResult r = analyze_completeness(topo, options_);
  EXPECT_EQ(r.category, Completeness::kIncomplete);
  EXPECT_EQ(r.aia_outcome, AiaOutcome::kWrongIssuer);
}

TEST_F(CompletenessFixture, AkidOnlyStoreProbeFailsWithoutDnFallback) {
  // Terminal intermediate without an AKID: the paper's method (no DN
  // fallback, no AIA) cannot match the store; the library default can.
  CertificateBuilder i1b;
  i1b.subject(i1_id_->name)
      .as_ca(1)
      .public_key(i1_id_->keys.pub)
      .omit_authority_key_id();
  const CertPtr i1_akidless = i1b.sign(*root_id_);

  const Topology topo = Topology::build({*leaf_, *i2_, i1_akidless});

  CompletenessOptions strict = options_;
  strict.match_store_by_dn = false;
  strict.aia_enabled = false;
  EXPECT_EQ(analyze_completeness(topo, strict).category,
            Completeness::kIncomplete);

  CompletenessOptions lenient = options_;
  lenient.aia_enabled = false;
  EXPECT_EQ(analyze_completeness(topo, lenient).category,
            Completeness::kCompleteWithoutRoot);
}

TEST_F(CompletenessFixture, BestPathWins) {
  // One path ends at the root (complete), another dangles: the chain is
  // complete (the paper takes "at least one complete path").
  const Topology topo =
      Topology::build({*leaf_, *i2_, *i1_, *root_, *foreign_root_});
  EXPECT_EQ(analyze_completeness(topo, options_).category,
            Completeness::kCompleteWithRoot);
}

// ---------------------------------------------------------------------------
// Aggregate analyzer
// ---------------------------------------------------------------------------

TEST_F(CompletenessFixture, AnalyzerAggregates) {
  ComplianceAnalyzer analyzer(options_);

  ChainObservation good;
  good.domain = "chain.example.com";
  good.certificates = {*leaf_, *i2_, *i1_};
  const ComplianceReport good_report = analyzer.analyze(good);
  EXPECT_TRUE(good_report.compliant());
  EXPECT_TRUE(good_report.leaf_placed_correctly());

  ChainObservation reversed;
  reversed.domain = "chain.example.com";
  reversed.certificates = {*leaf_, *i1_, *i2_};
  const ComplianceReport bad_report = analyzer.analyze(reversed);
  EXPECT_FALSE(bad_report.compliant());
  EXPECT_TRUE(bad_report.order.reversed_sequence);
  // Reversal does not make it incomplete.
  EXPECT_TRUE(bad_report.completeness.complete());
}

TEST_F(CompletenessFixture, RoleClassifier) {
  EXPECT_EQ(classify_role(**root_), CertRole::kRoot);
  EXPECT_EQ(classify_role(**i1_), CertRole::kIntermediate);
  EXPECT_EQ(classify_role(**leaf_), CertRole::kLeaf);
}

}  // namespace
}  // namespace chainchaos::chain
