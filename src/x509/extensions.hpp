// X.509 v3 extension value types relevant to chain construction
// (RFC 5280 §4.2): BasicConstraints, KeyUsage, ExtendedKeyUsage,
// SubjectKeyIdentifier, AuthorityKeyIdentifier, SubjectAltName and
// AuthorityInfoAccess.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/bytes.hpp"

namespace chainchaos::x509 {

/// BasicConstraints: CA flag + optional path length constraint.
struct BasicConstraints {
  bool is_ca = false;
  std::optional<int> path_len_constraint;

  bool operator==(const BasicConstraints&) const = default;
};

/// KeyUsage bits (subset used by chain building; RFC 5280 §4.2.1.3).
struct KeyUsage {
  bool digital_signature = false;
  bool key_encipherment = false;
  bool key_cert_sign = false;
  bool crl_sign = false;

  bool operator==(const KeyUsage&) const = default;

  /// The capability that matters when selecting an issuer: may this
  /// certificate sign other certificates?
  bool allows_cert_signing() const { return key_cert_sign; }
};

/// ExtendedKeyUsage: list of purpose OIDs.
struct ExtKeyUsage {
  std::vector<std::string> purposes;

  bool operator==(const ExtKeyUsage&) const = default;
  bool allows(std::string_view purpose_oid) const {
    for (const std::string& p : purposes) {
      if (p == purpose_oid) return true;
    }
    return false;
  }
};

/// SubjectAltName restricted to the two name forms the paper's leaf
/// classifier inspects: DNS names and IPv4 addresses (kept as text).
struct SubjectAltName {
  std::vector<std::string> dns_names;
  std::vector<std::string> ip_addresses;

  bool operator==(const SubjectAltName&) const = default;
  bool empty() const { return dns_names.empty() && ip_addresses.empty(); }
};

/// NameConstraints (RFC 5280 §4.2.1.10), restricted to dNSName
/// subtrees — the form BetterTLS exercises (Table 1) and the only one
/// with Web PKI deployment. A name falls within a subtree when it equals
/// the base or is a subdomain of it.
struct NameConstraints {
  std::vector<std::string> permitted_dns;
  std::vector<std::string> excluded_dns;

  bool operator==(const NameConstraints&) const = default;

  /// True if `dns_name` satisfies these constraints.
  bool allows(std::string_view dns_name) const;
};

/// AuthorityInfoAccess: the caIssuers URI drives AIA chain completion;
/// OCSP is carried for fidelity but unused by construction.
struct AuthorityInfoAccess {
  std::optional<std::string> ca_issuers_uri;
  std::optional<std::string> ocsp_uri;

  bool operator==(const AuthorityInfoAccess&) const = default;
};

}  // namespace chainchaos::x509
