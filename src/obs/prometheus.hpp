// Prometheus text exposition (version 0.0.4): the writer behind
// GET /v1/metrics and a small conformance checker the smoke tests and
// unit tests run over every document we emit.
//
// Durations are exported in seconds (the Prometheus convention), so the
// µs/ns bucket bounds of the internal histograms are converted at render
// time; counters stay raw.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "support/result.hpp"

namespace chainchaos::obs {

/// Label set: ordered name/value pairs rendered as {a="b",c="d"}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Streaming writer for one exposition document. Families must be
/// announced (help/type) before their samples — exactly the discipline
/// check_exposition() enforces.
class PromWriter {
 public:
  /// Emits `# HELP` and `# TYPE` for a family. `type` is one of
  /// counter|gauge|histogram.
  void family(std::string_view name, std::string_view help,
              std::string_view type);

  void sample(std::string_view name, const Labels& labels, double value);
  void sample(std::string_view name, const Labels& labels,
              std::uint64_t value);

  /// Renders one full histogram family (cumulative `_bucket` samples
  /// with an `le="+Inf"` terminator, `_sum`, `_count`) from per-bucket
  /// counts whose bounds are in `unit_per_second`-ths of a second (1e6
  /// for µs bounds, 1e9 for ns).
  void histogram(std::string_view name, std::string_view help,
                 const Labels& labels, const std::uint64_t* bucket_counts,
                 std::size_t bucket_count,
                 const std::uint64_t* upper_bounds, double unit_per_second,
                 std::uint64_t total_units);

  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Renders the tracer's per-stage duration histograms (stages with zero
/// observations are skipped).
std::string render_stage_metrics(const StageStatsSnapshot& snapshot);

/// Validates Prometheus text exposition format: line grammar, metric and
/// label name charsets, numeric values, `# TYPE` before first sample of
/// a family, no duplicate TYPE, histogram completeness (`le="+Inf"`
/// bucket present, `_sum`/`_count` present, cumulative bucket counts
/// non-decreasing). Returns the number of sample lines on success.
Result<std::size_t> check_exposition(std::string_view text);

}  // namespace chainchaos::obs
