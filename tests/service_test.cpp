// Tests for the chaind analysis service (src/service/): result cache,
// metrics, handler JSON, and the live loopback server — including the
// ISSUE acceptance scenarios (parallel byte-identical responses cache
// on vs off, 503 + Retry-After under backpressure, graceful drain).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "obs/event_log.hpp"
#include "service/cache.hpp"
#include "service/client.hpp"
#include "service/event_loop.hpp"
#include "service/handlers.hpp"
#include "service/server.hpp"
#include "x509/builder.hpp"

namespace chainchaos {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::make_identity;
using x509::SigningIdentity;

struct ServicePki {
  SigningIdentity root_id = make_identity(asn1::Name::make("Service Root"));
  SigningIdentity inter_id = make_identity(asn1::Name::make("Service Inter"));
  CertPtr root, inter, leaf;

  ServicePki() {
    CertificateBuilder rb;
    rb.subject(root_id.name).as_ca().public_key(root_id.keys.pub);
    root = rb.self_sign(root_id.keys);
    CertificateBuilder ib;
    ib.subject(inter_id.name).as_ca().public_key(inter_id.keys.pub);
    inter = ib.sign(root_id);
    CertificateBuilder lb;
    lb.as_leaf("service.example");
    leaf = lb.sign(inter_id);
  }

  std::string pem_chain() const {
    return x509::to_pem(*leaf) + x509::to_pem(*inter) + x509::to_pem(*root);
  }
};

ServicePki& pki() {
  static ServicePki instance;
  return instance;
}

// ---------------------------------------------------------------------------
// Raw-socket helpers (for scenarios the Client deliberately can't reach:
// half-written requests, rejected connections, crafted bytes)
// ---------------------------------------------------------------------------

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void send_raw(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads until the peer closes or `timeout_ms` of silence.
std::string recv_all(int fd, int timeout_ms = 2000) {
  std::string out;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

/// Reads exactly `count` complete response frames off a kept-alive
/// connection (recv_all would block until close). Returns fewer frames
/// on timeout, EOF, or unframeable bytes.
std::vector<std::string> recv_frames(int fd, std::size_t count,
                                     int timeout_ms = 5000) {
  std::vector<std::string> frames;
  std::string buffer;
  char buf[4096];
  while (frames.size() < count) {
    const auto probe = net::probe_response_frame(buffer);
    if (!probe.ok()) break;
    if (probe.value().complete) {
      frames.push_back(buffer.substr(0, probe.value().total_bytes));
      buffer.erase(0, probe.value().total_bytes);
      continue;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    buffer.append(buf, static_cast<std::size_t>(n));
  }
  return frames;
}

std::string recv_frame(int fd, int timeout_ms = 5000) {
  const std::vector<std::string> frames = recv_frames(fd, 1, timeout_ms);
  return frames.empty() ? std::string() : frames.front();
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, HitMissAndLruEviction) {
  service::ResultCache cache(/*capacity=*/2, /*shards=*/1);
  EXPECT_FALSE(cache.get(to_bytes("a")).has_value());
  cache.put(to_bytes("a"), "A");
  cache.put(to_bytes("b"), "B");
  EXPECT_EQ(cache.get(to_bytes("a")).value(), "A");  // refreshes "a"
  cache.put(to_bytes("c"), "C");                     // evicts LRU "b"
  EXPECT_FALSE(cache.get(to_bytes("b")).has_value());
  EXPECT_EQ(cache.get(to_bytes("a")).value(), "A");
  EXPECT_EQ(cache.get(to_bytes("c")).value(), "C");

  const service::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 3.0 / 5.0);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  service::ResultCache cache(0);
  cache.put(to_bytes("a"), "A");
  EXPECT_FALSE(cache.get(to_bytes("a")).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, PutSameKeyReplacesValue) {
  service::ResultCache cache(4);
  cache.put(to_bytes("k"), "v1");
  cache.put(to_bytes("k"), "v2");
  EXPECT_EQ(cache.get(to_bytes("k")).value(), "v2");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, ShardedCacheKeepsAllEntriesUnderCapacity) {
  service::ResultCache cache(/*capacity=*/64, /*shards=*/8);
  for (int i = 0; i < 32; ++i) {
    cache.put(to_bytes("key-" + std::to_string(i)), std::to_string(i));
  }
  for (int i = 0; i < 32; ++i) {
    const auto hit = cache.get(to_bytes("key-" + std::to_string(i)));
    ASSERT_TRUE(hit.has_value()) << "key-" << i;
    EXPECT_EQ(*hit, std::to_string(i));
  }
}

TEST(ResultCacheTest, KeyDependsOnEndpointDomainAndChain) {
  const std::vector<Bytes> chain = {to_bytes("cert-one"),
                                    to_bytes("cert-two")};
  const Bytes base = service::result_cache_key("analyze", "a.example", chain);
  EXPECT_EQ(base.size(), 32u);  // SHA-256
  EXPECT_EQ(base,
            service::result_cache_key("analyze", "a.example", chain));
  EXPECT_NE(base, service::result_cache_key("lint", "a.example", chain));
  EXPECT_NE(base, service::result_cache_key("analyze", "b.example", chain));
  EXPECT_NE(base, service::result_cache_key("analyze", "a.example",
                                            {to_bytes("cert-one")}));
  // Length-prefixed fields: moving a boundary must change the key.
  EXPECT_NE(base, service::result_cache_key(
                      "analyze", "a.example",
                      {to_bytes("cert-on"), to_bytes("ecert-two")}));
}

// ---------------------------------------------------------------------------
// Handler (no sockets)
// ---------------------------------------------------------------------------

TEST(ServiceHandlerTest, RoutesAndErrorStatuses) {
  service::ResultCache cache(16);
  service::Metrics metrics;
  service::RequestHandler handler({}, &cache, &metrics);

  net::HttpRequest req;
  req.method = "GET";
  req.target = "/healthz";
  EXPECT_EQ(handler.handle(req).status, 200);

  req.target = "/v1/stats";
  EXPECT_EQ(handler.handle(req).status, 200);

  req.target = "/nope";
  EXPECT_EQ(handler.handle(req).status, 404);

  req.target = "/v1/analyze";  // GET where POST is required
  EXPECT_EQ(handler.handle(req).status, 405);

  req.method = "POST";
  req.body = to_bytes("this is not a certificate");
  const net::HttpResponse bad = handler.handle(req);
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(to_string(bad.body).find("\"error\""), std::string::npos);
}

TEST(ServiceHandlerTest, AnalyzeMissThenHitSameBody) {
  service::ResultCache cache(16);
  service::Metrics metrics;
  service::RequestHandler handler({}, &cache, &metrics);

  net::HttpRequest req;
  req.method = "POST";
  req.target = "/v1/analyze?domain=service.example";
  req.body = to_bytes(pki().pem_chain());

  const net::HttpResponse first = handler.handle(req);
  ASSERT_EQ(first.status, 200);
  EXPECT_EQ(first.headers.at("x-cache"), "miss");
  const net::HttpResponse second = handler.handle(req);
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(second.headers.at("x-cache"), "hit");
  EXPECT_EQ(first.body, second.body);

  const std::string body = to_string(first.body);
  EXPECT_NE(body.find("\"domain\":\"service.example\""), std::string::npos);
  EXPECT_NE(body.find("\"certificates\":3"), std::string::npos);
  EXPECT_NE(body.find("\"compliant\":true"), std::string::npos);
  EXPECT_NE(body.find("\"path_build\""), std::string::npos);
  EXPECT_NE(body.find("\"lint\""), std::string::npos);
}

TEST(ServiceHandlerTest, ParsdiffAcceptsPemAndDerAndReportsTheSplit) {
  service::ResultCache cache(16);
  service::Metrics metrics;
  service::RequestHandler handler({}, &cache, &metrics);

  net::HttpRequest req;
  req.method = "GET";
  req.target = "/v1/parsdiff";
  EXPECT_EQ(handler.handle(req).status, 405);

  req.method = "POST";
  EXPECT_EQ(handler.handle(req).status, 400);  // empty body

  // A clean PEM chain: every profile accepts, no discrepancy.
  req.body = to_bytes(pki().pem_chain());
  const net::HttpResponse clean = handler.handle(req);
  ASSERT_EQ(clean.status, 200);
  const std::string clean_body = to_string(clean.body);
  EXPECT_NE(clean_body.find("\"certificates\":3"), std::string::npos);
  EXPECT_NE(clean_body.find("\"discrepancy\":false"), std::string::npos);
  EXPECT_NE(clean_body.find("\"profile\":\"strict-der\""), std::string::npos);

  // Raw concatenated DER also works (the lenient TLV splitter).
  Bytes der = pki().leaf->der;
  append(der, pki().inter->der);
  req.body = der;
  const net::HttpResponse raw = handler.handle(req);
  ASSERT_EQ(raw.status, 200);
  EXPECT_NE(to_string(raw.body).find("\"certificates\":2"),
            std::string::npos);

  // A PEM block whose DER carries trailing garbage: the strict profile
  // rejects, the default ignores — a PD-05 split.
  Bytes trailing = pki().leaf->der;
  trailing.push_back(0xde);
  req.body = to_bytes("-----BEGIN CERTIFICATE-----\n" +
                      base64_encode(trailing) +
                      "\n-----END CERTIFICATE-----\n");
  const net::HttpResponse split = handler.handle(req);
  ASSERT_EQ(split.status, 200);
  const std::string split_body = to_string(split.body);
  EXPECT_NE(split_body.find("\"discrepancy\":true"), std::string::npos);
  EXPECT_NE(split_body.find("\"class\":\"PD-05\""), std::string::npos);
}

TEST(ServiceHandlerTest, BusyResponseCarriesRetryAfter) {
  const net::HttpResponse busy = service::busy_response(7);
  EXPECT_EQ(busy.status, 503);
  EXPECT_EQ(busy.headers.at("retry-after"), "7");
  EXPECT_EQ(busy.headers.at("connection"), "close");
}

TEST(ServiceHandlerTest, DecodeChainBodyAcceptsPemAndDer) {
  const auto from_pem = service::decode_chain_body(
      to_bytes(pki().pem_chain()));
  ASSERT_TRUE(from_pem.ok());
  EXPECT_EQ(from_pem.value().size(), 3u);

  Bytes der = pki().leaf->der;
  der.insert(der.end(), pki().inter->der.begin(), pki().inter->der.end());
  const auto from_der = service::decode_chain_body(der);
  ASSERT_TRUE(from_der.ok());
  EXPECT_EQ(from_der.value().size(), 2u);

  EXPECT_FALSE(service::decode_chain_body(to_bytes("garbage")).ok());
  EXPECT_FALSE(service::decode_chain_body({}).ok());
}

// ---------------------------------------------------------------------------
// Live server
// ---------------------------------------------------------------------------

TEST(ServiceServerTest, HealthStatsAndAnalyzeOverRealSocket) {
  service::ServerConfig config;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());
  ASSERT_NE(port.value(), 0);
  EXPECT_TRUE(server.running());

  service::Client client(port.value());
  const auto health = client.healthz();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);

  const auto first = client.analyze(pki().pem_chain(), "service.example");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().status, 200);
  EXPECT_EQ(first.value().headers.at("x-cache"), "miss");

  const auto second = client.analyze(pki().pem_chain(), "service.example");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().headers.at("x-cache"), "hit");
  EXPECT_EQ(first.value().body, second.value().body);

  const auto lint = client.lint(pki().pem_chain(), "service.example");
  ASSERT_TRUE(lint.ok());
  EXPECT_EQ(lint.value().status, 200);
  EXPECT_NE(to_string(lint.value().body).find("\"findings\""),
            std::string::npos);

  const auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  const std::string body = to_string(stats.value().body);
  EXPECT_NE(body.find("\"requests\""), std::string::npos);
  EXPECT_NE(body.find("\"hits\":1"), std::string::npos);
  // The §5.12 verification counters ride along in the same payload.
  EXPECT_NE(body.find("\"verify\""), std::string::npos);
  EXPECT_NE(body.find("\"memo_hit_ratio\""), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ServiceServerTest, ParallelClientsByteIdenticalCacheOnVsOff) {
  constexpr unsigned kClients = 8;
  constexpr unsigned kRequestsPerClient = 4;
  const std::string chain = pki().pem_chain();

  // One pass per cache mode; every response body across both passes must
  // be byte-identical (the cache may only change the x-cache header).
  std::set<std::string> bodies;
  for (const std::size_t cache_capacity : {std::size_t{0}, std::size_t{64}}) {
    service::ServerConfig config;
    config.cache_capacity = cache_capacity;
    service::Server server(config);
    const auto port = server.start();
    ASSERT_TRUE(port.ok());

    std::vector<std::string> collected(kClients * kRequestsPerClient);
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        service::Client client(port.value());
        for (unsigned r = 0; r < kRequestsPerClient; ++r) {
          const auto response = client.analyze(chain, "service.example");
          if (!response.ok() || response.value().status != 200) {
            failures.fetch_add(1);
            return;
          }
          collected[c * kRequestsPerClient + r] =
              to_string(response.value().body);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0u);
    for (const std::string& body : collected) bodies.insert(body);

    const service::CacheStats stats = server.cache_stats();
    if (cache_capacity == 0) {
      EXPECT_EQ(stats.hits, 0u);
    } else {
      // 32 identical requests, one distinct chain. Concurrent first
      // requests may each miss (the cache does not coalesce in-flight
      // misses), so the worst case is one miss per client.
      EXPECT_GE(stats.hits, kClients * (kRequestsPerClient - 1));
      EXPECT_LE(stats.misses, kClients);
    }
    server.stop();
  }
  EXPECT_EQ(bodies.size(), 1u)
      << "cache on/off or thread interleaving changed the response bytes";
}

TEST(ServiceServerTest, FullQueueGets503WithRetryAfter) {
  service::ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.retry_after_seconds = 3;
  config.handler_stall_ms = 400;  // test seam: hold the worker in-handler
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  // Occupy the single worker with one request, then pipeline three more
  // on a second connection while it is stalled: the first fills the
  // queue (capacity 1), the other two overflow. The event loop must
  // answer the overflow in-stream with 503 + Retry-After — and because
  // the connection itself is healthy, WITHOUT closing it, so the
  // pipeline stays in sync.
  const int primer = dial(port.value());
  send_raw(primer, "GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  const int fd = dial(port.value());
  const std::string probe = "GET /v1/stats HTTP/1.1\r\nhost: x\r\n\r\n";
  send_raw(fd, probe + probe + probe);
  const std::vector<std::string> replies = recv_frames(fd, 3);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_NE(replies[0].find("200 OK"), std::string::npos);
  for (int i = 1; i <= 2; ++i) {
    EXPECT_NE(replies[i].find("503"), std::string::npos) << replies[i];
    EXPECT_NE(replies[i].find("retry-after: 3"), std::string::npos);
    EXPECT_EQ(replies[i].find("connection: close"), std::string::npos)
        << "an in-stream 503 must not tear down a healthy connection";
  }
  EXPECT_GE(server.metrics().rejected_total(), 2u);

  // The stream is still usable after the shed responses.
  send_raw(fd, "GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
  const std::string after = recv_frame(fd);
  EXPECT_NE(after.find("200 OK"), std::string::npos);

  ::close(primer);
  ::close(fd);
  server.stop();
}

TEST(ServiceServerTest, GracefulShutdownDrainsQueuedRequests) {
  service::ServerConfig config;
  config.workers = 1;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  // One idle connection and one with a half-sent request. stop() must
  // abandon the idle connection immediately, but keep the half-read one
  // alive until its frame completes and is served.
  const int idle = dial(port.value());

  net::HttpRequest req;
  req.method = "POST";
  req.target = "/v1/analyze?domain=service.example";
  req.host = "127.0.0.1";
  req.body = to_bytes(pki().pem_chain());
  const std::string wire = req.encode();
  const std::size_t half = wire.size() / 2;

  const int pending = dial(port.value());
  send_raw(pending, wire.substr(0, half));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::thread finisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const std::string rest = wire.substr(half);
    std::size_t sent = 0;
    while (sent < rest.size()) {
      const ssize_t n =
          ::send(pending, rest.data() + sent, rest.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
  });
  server.stop();
  finisher.join();

  const std::string reply = recv_all(pending);
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("\"compliant\":true"), std::string::npos);
  // Served during shutdown, so the response must announce the close.
  EXPECT_NE(reply.find("connection: close"), std::string::npos);

  // The idle connection was closed by the drain, with no bytes sent.
  char byte = 0;
  EXPECT_EQ(::recv(idle, &byte, 1, MSG_DONTWAIT), 0);
  ::close(idle);
  ::close(pending);
}

TEST(ServiceServerTest, MalformedRequestsGetJsonErrors) {
  service::ServerConfig config;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  {
    // Header section beyond kMaxHeaderBytes → 431, connection closed.
    const int fd = dial(port.value());
    std::string huge = "POST /v1/analyze HTTP/1.1\r\nhost: x\r\n";
    huge += "x-pad: " + std::string(net::kMaxHeaderBytes, 'a') + "\r\n\r\n";
    send_raw(fd, huge);
    const std::string reply = recv_all(fd);
    EXPECT_NE(reply.find("431"), std::string::npos);
    ::close(fd);
  }
  {
    // Negative Content-Length → 400 before any body is read.
    const int fd = dial(port.value());
    send_raw(fd,
             "POST /v1/analyze HTTP/1.1\r\nhost: x\r\n"
             "content-length: -1\r\n\r\n");
    const std::string reply = recv_all(fd);
    EXPECT_NE(reply.find("400"), std::string::npos);
    EXPECT_NE(reply.find("\"error\""), std::string::npos);
    ::close(fd);
  }
  {
    // Unknown path → 404 JSON error, connection stays usable (keep-alive).
    const int fd = dial(port.value());
    send_raw(fd, "GET /nope HTTP/1.1\r\nhost: x\r\n\r\n");
    const std::string first = recv_all(fd, 500);
    EXPECT_NE(first.find("404"), std::string::npos);
    send_raw(fd, "GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
    const std::string second = recv_all(fd, 500);
    EXPECT_NE(second.find("200 OK"), std::string::npos);
    ::close(fd);
  }
  server.stop();
}

TEST(ServiceServerTest, StopIsIdempotentAndRestartNotSupported) {
  service::Server server({});
  const auto port = server.start();
  ASSERT_TRUE(port.ok());
  server.stop();
  server.stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
}

TEST(ServiceServerTest, SurvivesClientsKilledMidBody) {
  service::ServerConfig config;
  config.workers = 2;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  // More abrupt mid-body deaths than there are workers: each client
  // advertises a large body, sends a fragment, then resets the
  // connection (SO_LINGER 0 turns close() into RST). If any of these
  // cost a worker its thread, the probe request below never completes.
  for (int i = 0; i < 6; ++i) {
    const int fd = dial(port.value());
    send_raw(fd,
             "POST /v1/analyze HTTP/1.1\r\nhost: x\r\n"
             "content-length: 100000\r\n\r\npartial-body-then-death");
    struct linger hard_reset = {1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset, sizeof hard_reset);
    ::close(fd);
  }

  // Both workers must still be alive and serving.
  service::Client client(port.value());
  for (int i = 0; i < 3; ++i) {
    auto health = client.healthz();
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(health.value().status, 200);
  }
  auto analyzed = client.analyze(pki().pem_chain(), "service.example");
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(analyzed.value().status, 200);

  // The disconnects were seen and counted (the recv side may observe
  // either EOF-with-partial-buffer or ECONNRESET; both count), and no
  // worker needed the last-resort recovery path.
  EXPECT_GE(server.metrics().client_disconnects(), 1u);
  EXPECT_EQ(server.metrics().worker_recoveries(), 0u);

  // The robustness counters are surfaced through /v1/stats.
  auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  const std::string body = to_string(BytesView(stats.value().body));
  EXPECT_NE(body.find("\"connections\""), std::string::npos);
  EXPECT_NE(body.find("\"disconnects_midrequest\""), std::string::npos);
  EXPECT_NE(body.find("\"aia\""), std::string::npos);
  server.stop();
}

// ---------------------------------------------------------------------------
// Event loop: incremental parsing, deadlines, admission control
// ---------------------------------------------------------------------------

TEST(ServiceServerTest, ByteAtATimeParsingMatchesWholeFrame) {
  service::Server server({});
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  const std::string wire = "GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
  const int whole = dial(port.value());
  send_raw(whole, wire);
  const std::string baseline = recv_frame(whole);
  ::close(whole);
  ASSERT_NE(baseline.find("200 OK"), std::string::npos);

  const int drip = dial(port.value());
  for (const char byte : wire) send_raw(drip, std::string(1, byte));
  EXPECT_EQ(recv_frame(drip), baseline);
  ::close(drip);
  server.stop();
}

TEST(ServiceServerTest, AdversarialSplitPointsMatchWholeFrame) {
  service::ServerConfig config;
  config.cache_capacity = 0;  // every response is a fresh computation
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  net::HttpRequest req;
  req.method = "POST";
  req.target = "/v1/analyze?domain=service.example";
  req.host = "127.0.0.1";
  req.body = to_bytes(pki().pem_chain());
  const std::string wire = req.encode();
  const std::size_t boundary = wire.find("\r\n\r\n");
  ASSERT_NE(boundary, std::string::npos);

  const int whole = dial(port.value());
  send_raw(whole, wire);
  const std::string baseline = recv_frame(whole);
  ::close(whole);
  ASSERT_NE(baseline.find("200 OK"), std::string::npos);

  // Each split lands on a parser state transition: mid-request-line,
  // mid-header-name, inside the blank-line CRLFCRLF, exactly at the
  // header/body boundary, and mid-body.
  const std::vector<std::size_t> splits = {
      3, wire.find("host") + 2, boundary + 2, boundary + 4,
      boundary + 4 + (wire.size() - boundary - 4) / 2};
  for (const std::size_t split : splits) {
    ASSERT_LT(split, wire.size());
    const int fd = dial(port.value());
    send_raw(fd, wire.substr(0, split));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    send_raw(fd, wire.substr(split));
    EXPECT_EQ(recv_frame(fd), baseline) << "split at byte " << split;
    ::close(fd);
  }

  // A split straddling a pipeline boundary: two frames, cut inside the
  // second frame's request line.
  const std::string h = "GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
  const int base_fd = dial(port.value());
  send_raw(base_fd, h);
  const std::string h_reply = recv_frame(base_fd);
  ::close(base_fd);
  const int fd = dial(port.value());
  send_raw(fd, (h + h).substr(0, h.size() + 5));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  send_raw(fd, (h + h).substr(h.size() + 5));
  const std::vector<std::string> replies = recv_frames(fd, 2);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], h_reply);
  EXPECT_EQ(replies[1], h_reply);
  ::close(fd);
  server.stop();
}

TEST(ServiceServerTest, IdleAndSlowReadDeadlinesEvict) {
  service::ServerConfig config;
  config.read_timeout_ms = 300;
  config.idle_timeout_ms = 250;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  const int idle = dial(port.value());
  const int loris = dial(port.value());
  // A slow-loris opener: a partial header that never completes. The read
  // deadline anchors at the first byte of the frame, so dribbling more
  // bytes would not extend it either.
  send_raw(loris, "POST /v1/analyze HTTP/1.1\r\nhost: x\r\n");

  // Both must be evicted without any cooperation from the peer, and
  // silently (an unfinished frame gets no response bytes).
  EXPECT_EQ(recv_all(idle, 2000), "");
  EXPECT_EQ(recv_all(loris, 2000), "");
  EXPECT_GE(server.metrics().evictions(service::Eviction::kIdle), 1u);
  EXPECT_GE(server.metrics().evictions(service::Eviction::kSlowRead), 1u);
  ::close(idle);
  ::close(loris);
  server.stop();
}

TEST(ServiceServerTest, WriteDeadlineEvictsNeverReadingClient) {
  service::ServerConfig config;
  config.write_timeout_ms = 300;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  // A client that requests a large amount of data and never reads it. A
  // tiny receive buffer (set before connect so it caps the advertised
  // window) makes the server's send queue fill quickly; the single
  // event-loop write deadline must then evict the connection. This pins
  // the one-mechanism write timeout that replaced SO_SNDTIMEO.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 1024;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port.value());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // The kernel absorbs responses until the server's send buffer is full
  // (autotuned up to net.ipv4.tcp_wmem[2], typically 4 MiB), so the
  // burst must overflow that before the write deadline can engage.
  std::string burst;
  for (int i = 0; i < 4000; ++i) {
    burst += "GET /v1/metrics HTTP/1.1\r\nhost: x\r\n\r\n";
  }
  send_raw(fd, burst);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(8);
  while (server.metrics().evictions(service::Eviction::kSlowWrite) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(server.metrics().evictions(service::Eviction::kSlowWrite), 1u);
  EXPECT_GE(server.metrics().write_failures(), 1u);

  // Well-behaved clients were never affected.
  service::Client client(port.value());
  const auto health = client.healthz();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);
  ::close(fd);
  server.stop();
}

TEST(ServiceServerTest, AdmissionCapSheds503AndCloses) {
  service::ServerConfig config;
  config.max_connections = 2;
  config.retry_after_seconds = 5;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  // Two admitted keep-alive connections occupy the budget.
  auto a = std::make_unique<service::Client>(port.value());
  auto b = std::make_unique<service::Client>(port.value());
  ASSERT_TRUE(a->healthz().ok());
  ASSERT_TRUE(b->healthz().ok());

  // The third connection is shed at the door: 503 + Retry-After,
  // connection: close, then EOF (recv_all runs until close).
  const int fd = dial(port.value());
  const std::string reply = recv_all(fd, 3000);
  ::close(fd);
  EXPECT_NE(reply.find("503"), std::string::npos) << reply;
  EXPECT_NE(reply.find("retry-after: 5"), std::string::npos);
  EXPECT_NE(reply.find("connection: close"), std::string::npos);
  EXPECT_GE(server.metrics().rejected_total(), 1u);

  // Freeing one admitted connection frees a slot.
  a.reset();
  service::Client late(port.value());
  bool admitted = false;
  for (int attempt = 0; attempt < 20 && !admitted; ++attempt) {
    const auto health = late.healthz();
    admitted = health.ok() && health.value().status == 200;
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(admitted) << "slot was never reclaimed after a client left";
  server.stop();
}

TEST(ServiceServerTest, FdExhaustionShedsWithReservedFd) {
  service::Server server({});
  const auto port = server.start();
  ASSERT_TRUE(port.ok());
  {
    service::Client client(port.value());
    ASSERT_TRUE(client.healthz().ok());
  }

  struct rlimit orig{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &orig), 0);
  struct rlimit low = orig;
  low.rlim_cur = 1024;
  if (orig.rlim_max != RLIM_INFINITY && low.rlim_cur > orig.rlim_max) {
    low.rlim_cur = orig.rlim_max;
  }
  if (::setrlimit(RLIMIT_NOFILE, &low) != 0) {
    GTEST_SKIP() << "cannot lower RLIMIT_NOFILE";
  }

  // Exhaust the fd table, then free exactly one slot: the client socket
  // below takes it, so the server's accept() is the call that hits
  // EMFILE. The reserved-fd fallback must still answer 503-and-close
  // instead of leaving the connection dangling in the backlog.
  std::vector<int> hogs;
  for (;;) {
    const int hog = ::open("/dev/null", O_RDONLY);
    if (hog < 0) break;
    hogs.push_back(hog);
  }
  ASSERT_FALSE(hogs.empty());
  ::close(hogs.back());
  hogs.pop_back();

  const int fd = dial(port.value());
  const std::string reply = recv_all(fd, 3000);
  ::close(fd);
  for (const int hog : hogs) ::close(hog);
  ::setrlimit(RLIMIT_NOFILE, &orig);

  EXPECT_NE(reply.find("503"), std::string::npos) << reply;
  EXPECT_NE(reply.find("connection: close"), std::string::npos);
  EXPECT_GE(server.metrics().fd_exhausted(), 1u);
  EXPECT_GE(server.metrics().accept_errors(), 1u);

  // With the pressure gone, the reserve is re-armed and service resumes.
  service::Client after(port.value());
  const auto health = after.healthz();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);
  server.stop();
}

TEST(ServiceServerTest, PollFallbackServesIdentically) {
  service::ServerConfig config;
  config.force_poll = true;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());
  EXPECT_FALSE(server.using_epoll());

  service::Client client(port.value());
  const auto health = client.healthz();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);
  const auto analyzed = client.analyze(pki().pem_chain(), "service.example");
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(analyzed.value().status, 200);

  std::vector<net::HttpRequest> reqs(3);
  for (auto& req : reqs) req.target = "/v1/stats";
  const auto piped = client.pipeline(std::move(reqs));
  ASSERT_TRUE(piped.ok());
  ASSERT_EQ(piped.value().size(), 3u);
  for (const auto& response : piped.value()) {
    EXPECT_EQ(response.status, 200);
  }
  server.stop();
}

#ifdef __linux__
TEST(ServiceServerTest, EpollBackendSelectedByDefaultOnLinux) {
  service::Server server({});
  const auto port = server.start();
  ASSERT_TRUE(port.ok());
  EXPECT_TRUE(server.using_epoll());
  server.stop();
}
#endif

// ---------------------------------------------------------------------------
// service::Client pipelining
// ---------------------------------------------------------------------------

TEST(ServiceClientTest, PipelinedAnalyzeOrderedByteIdentical) {
  service::ServerConfig config;
  config.cache_capacity = 0;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  const std::string chain = pki().pem_chain();
  const std::vector<std::string> domains = {"d0.example", "d1.example",
                                            "d2.example", "d3.example",
                                            "d4.example"};
  // Sequential baseline on its own connection.
  std::vector<std::string> expected;
  {
    service::Client seq(port.value());
    for (const std::string& domain : domains) {
      const auto response = seq.analyze(chain, domain);
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response.value().status, 200);
      expected.push_back(to_string(response.value().body));
    }
  }

  service::Client piped(port.value());
  std::vector<net::HttpRequest> reqs;
  for (const std::string& domain : domains) {
    net::HttpRequest req;
    req.method = "POST";
    req.target = "/v1/analyze?domain=" + domain;
    req.headers["content-type"] = "application/x-pem-file";
    req.body = to_bytes(chain);
    reqs.push_back(std::move(req));
  }
  const auto out = piped.pipeline(std::move(reqs));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), domains.size());
  for (std::size_t i = 0; i < domains.size(); ++i) {
    EXPECT_EQ(out.value()[i].status, 200);
    const std::string body = to_string(out.value()[i].body);
    EXPECT_EQ(body, expected[i]) << "response " << i << " out of order";
    EXPECT_NE(body.find("\"domain\":\"" + domains[i] + "\""),
              std::string::npos);
  }
  server.stop();
}

TEST(ServiceClientTest, PipelineHonoursConnectionClose) {
  service::Server server({});
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  service::Client client(port.value());
  std::vector<net::HttpRequest> reqs(3);
  for (auto& req : reqs) req.target = "/healthz";
  reqs[1].headers["connection"] = "close";
  const auto out = client.pipeline(std::move(reqs));
  ASSERT_TRUE(out.ok());
  // The server honours the close after the second response; the third
  // request was discarded, and the shorter vector reports exactly that.
  ASSERT_EQ(out.value().size(), 2u);
  EXPECT_EQ(out.value()[0].status, 200);
  EXPECT_EQ(out.value()[1].status, 200);
  EXPECT_EQ(out.value()[1].headers.at("connection"), "close");

  // The client redials transparently for the next request.
  const auto again = client.healthz();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().status, 200);
  server.stop();
}

TEST(ServiceClientTest, MidPipelineOverloadKeepsStreamInSync) {
  service::ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.retry_after_seconds = 2;
  config.handler_stall_ms = 400;
  service::Server server(config);
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  // Stall the single worker, then pipeline three requests: the middle of
  // the stream is shed with 503s, but responses still come back in
  // request order on the same connection.
  const int primer = dial(port.value());
  send_raw(primer, "GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  service::Client client(port.value());
  std::vector<net::HttpRequest> reqs(3);
  for (auto& req : reqs) req.target = "/v1/stats";
  const auto out = client.pipeline(std::move(reqs));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 3u);
  EXPECT_EQ(out.value()[0].status, 200);
  EXPECT_EQ(out.value()[1].status, 503);
  EXPECT_EQ(out.value()[1].headers.at("retry-after"), "2");
  EXPECT_EQ(out.value()[2].status, 503);

  // No desynchronisation: the next request on the same connection pairs
  // with its own response.
  const auto after = client.stats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().status, 200);
  ::close(primer);
  server.stop();
}

// ---------------------------------------------------------------------------
// TimeoutWheel (unit, fake clock)
// ---------------------------------------------------------------------------

TEST(TimeoutWheelTest, FiresCancelsAndReschedules) {
  const auto origin = std::chrono::steady_clock::now();
  const auto at = [origin](int ms) {
    return origin + std::chrono::milliseconds(ms);
  };
  service::TimeoutWheel wheel(/*slots=*/8, /*tick_ms=*/10, origin);

  wheel.schedule(1, at(15));
  wheel.schedule(2, at(15));
  wheel.schedule(3, at(15));
  wheel.cancel(2);
  wheel.schedule(3, at(500));  // reschedule far beyond one revolution
  EXPECT_EQ(wheel.pending(), 2u);

  std::vector<std::uint64_t> due;
  wheel.collect_due(at(30), due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(wheel.pending(), 1u);

  due.clear();
  wheel.collect_due(at(120), due);  // full revolution: 3 still not due
  EXPECT_TRUE(due.empty());
  EXPECT_EQ(wheel.pending(), 1u);

  due.clear();
  wheel.collect_due(at(510), due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimeoutWheelTest, DeadlineInsideCurrentTickStillFires) {
  const auto origin = std::chrono::steady_clock::now();
  const auto at = [origin](int ms) {
    return origin + std::chrono::milliseconds(ms);
  };
  service::TimeoutWheel wheel(/*slots=*/8, /*tick_ms=*/10, origin);

  // A deadline inside the cursor's own tick must be clamped forward, not
  // scheduled a full revolution away.
  wheel.schedule(7, at(1));
  std::vector<std::uint64_t> due;
  wheel.collect_due(at(5), due);  // still inside tick 0: nothing sweeps
  EXPECT_TRUE(due.empty());
  wheel.collect_due(at(11), due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimeoutWheelTest, RescheduleEarlierWins) {
  const auto origin = std::chrono::steady_clock::now();
  const auto at = [origin](int ms) {
    return origin + std::chrono::milliseconds(ms);
  };
  service::TimeoutWheel wheel(/*slots=*/8, /*tick_ms=*/10, origin);

  wheel.schedule(9, at(400));
  wheel.schedule(9, at(25));  // moved earlier: the new deadline rules
  std::vector<std::uint64_t> due;
  wheel.collect_due(at(30), due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{9}));
  EXPECT_EQ(wheel.pending(), 0u);
  // The stale slot entry from the first schedule must not resurrect it.
  due.clear();
  wheel.collect_due(at(410), due);
  EXPECT_TRUE(due.empty());
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ServiceMetricsTest, CountersAndJsonShape) {
  service::Metrics metrics;
  metrics.record_request(service::Endpoint::kAnalyze);
  metrics.record_request(service::Endpoint::kLint);
  metrics.record_response(200, /*latency_us=*/120);
  metrics.record_response(404, /*latency_us=*/30);
  metrics.record_rejected();
  metrics.note_queue_depth(5);
  metrics.note_queue_depth(2);  // high-water stays 5
  metrics.record_client_disconnect();
  metrics.record_write_failure();
  metrics.record_worker_recovery();
  metrics.record_connection_open();
  metrics.record_connection_open();
  metrics.record_connection_close();
  metrics.record_accept_error();
  metrics.record_fd_exhausted();
  metrics.record_eviction(service::Eviction::kSlowRead);
  metrics.record_eviction(service::Eviction::kSlowWrite);
  metrics.record_eviction(service::Eviction::kIdle);

  EXPECT_EQ(metrics.requests_total(), 2u);
  EXPECT_EQ(metrics.rejected_total(), 1u);
  EXPECT_EQ(metrics.client_disconnects(), 1u);
  EXPECT_EQ(metrics.write_failures(), 1u);
  EXPECT_EQ(metrics.worker_recoveries(), 1u);
  EXPECT_EQ(metrics.connections_open(), 1u);
  EXPECT_EQ(metrics.connections_peak(), 2u);
  EXPECT_EQ(metrics.connections_accepted(), 2u);
  EXPECT_EQ(metrics.accept_errors(), 1u);
  EXPECT_EQ(metrics.fd_exhausted(), 1u);
  EXPECT_EQ(metrics.evictions(service::Eviction::kSlowRead), 1u);
  EXPECT_EQ(metrics.evictions(service::Eviction::kSlowWrite), 1u);
  EXPECT_EQ(metrics.evictions(service::Eviction::kIdle), 1u);

  net::FetchStats aia;
  aia.attempts = 7;
  aia.retries = 3;
  aia.deadline_exceeded = 1;
  const std::string json = metrics.to_json(service::CacheStats{}, aia);
  EXPECT_NE(json.find("\"analyze\":1"), std::string::npos);
  EXPECT_NE(json.find("\"lint\":1"), std::string::npos);
  EXPECT_NE(json.find("\"2xx\":1"), std::string::npos);
  EXPECT_NE(json.find("\"4xx\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rejected_busy\":1"), std::string::npos);
  EXPECT_NE(json.find("\"high_water_mark\":5"), std::string::npos);
  EXPECT_NE(json.find("\"hit_ratio\":0"), std::string::npos);
  EXPECT_NE(json.find("\"disconnects_midrequest\":1"), std::string::npos);
  EXPECT_NE(json.find("\"write_failures\":1"), std::string::npos);
  EXPECT_NE(json.find("\"worker_recoveries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"open\":1"), std::string::npos);
  EXPECT_NE(json.find("\"peak\":2"), std::string::npos);
  EXPECT_NE(json.find("\"accepted\":2"), std::string::npos);
  EXPECT_NE(json.find("\"accept_errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"fd_exhausted\":1"), std::string::npos);
  EXPECT_NE(json.find("\"evicted_slow_read\":1"), std::string::npos);
  EXPECT_NE(json.find("\"evicted_slow_write\":1"), std::string::npos);
  EXPECT_NE(json.find("\"evicted_idle\":1"), std::string::npos);
  EXPECT_NE(json.find("\"retries\":3"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_exceeded\":1"), std::string::npos);

  const std::string prom = metrics.to_prometheus(service::CacheStats{}, aia);
  EXPECT_NE(prom.find("chainchaos_connections_open 1"), std::string::npos);
  EXPECT_NE(prom.find("chainchaos_connections_peak 2"), std::string::npos);
  EXPECT_NE(prom.find("chainchaos_connections_accepted_total 2"),
            std::string::npos);
  EXPECT_NE(prom.find("chainchaos_accept_errors_total 1"), std::string::npos);
  EXPECT_NE(prom.find("chainchaos_fd_exhausted_total 1"), std::string::npos);
  EXPECT_NE(prom.find("chainchaos_evictions_total{kind=\"slow_read\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("chainchaos_evictions_total{kind=\"idle\"} 1"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// chainwatch over the live service: /v1/timeseries, /v1/flight,
// slow-request events (DESIGN.md §5.16)
// ---------------------------------------------------------------------------

/// The event log is process-global; these tests own it for their
/// duration and leave it clean for the rest of the suite.
class ServiceWatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EventLog::instance().reset();
    obs::EventLog::instance().set_enabled(true);
  }
  void TearDown() override { obs::EventLog::instance().reset(); }
};

TEST_F(ServiceWatchTest, StatsUptimeIsPresentAndMonotone) {
  service::ServerConfig config;
  config.workers = 1;
  service::Server server(config);
  ASSERT_TRUE(server.start().ok());

  service::Client client(server.port());
  auto first = client.stats();
  ASSERT_TRUE(first.ok());
  const std::string body1 = to_string(first.value().body);
  const std::size_t at = body1.find("\"uptime_seconds\":");
  ASSERT_NE(at, std::string::npos);
  const double uptime1 = std::strtod(
      body1.c_str() + at + std::strlen("\"uptime_seconds\":"), nullptr);
  EXPECT_GE(uptime1, 0.0);

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto second = client.stats();
  ASSERT_TRUE(second.ok());
  const std::string body2 = to_string(second.value().body);
  const std::size_t at2 = body2.find("\"uptime_seconds\":");
  ASSERT_NE(at2, std::string::npos);
  const double uptime2 = std::strtod(
      body2.c_str() + at2 + std::strlen("\"uptime_seconds\":"), nullptr);
  EXPECT_GT(uptime2, uptime1);
  server.stop();
}

TEST_F(ServiceWatchTest, TimeseriesEndpointAccumulatesSamples) {
  service::ServerConfig config;
  config.workers = 2;
  config.sample_interval_ms = 20;  // fast cadence so the test stays short
  service::Server server(config);
  ASSERT_TRUE(server.start().ok());

  service::Client client(server.port());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::string body;
  for (;;) {
    ASSERT_TRUE(client.analyze(pki().pem_chain(), "watch.example").ok());
    auto response = client.timeseries();
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response.value().status, 200);
    body = to_string(response.value().body);
    // Run until the ring holds >= 5 samples (each sample needs one
    // sample_interval_ms-spaced loop wakeup).
    if (body.find("\"seq\":4") != std::string::npos) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "ring never reached 5 samples: " << body;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(body.find("\"columns\":["), std::string::npos);
  EXPECT_NE(body.find("\"requests_total\""), std::string::npos);
  EXPECT_NE(body.find("\"latency_bucket_8\""), std::string::npos);
  server.stop();
}

TEST_F(ServiceWatchTest, FlightEndpointReturnsLifecycleEvents) {
  service::ServerConfig config;
  config.workers = 1;
  service::Server server(config);
  ASSERT_TRUE(server.start().ok());

  service::Client client(server.port());
  ASSERT_TRUE(client.analyze(pki().pem_chain(), "flight.example").ok());
  auto response = client.flight();
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200);
  const std::string body = to_string(response.value().body);
  EXPECT_NE(body.find("\"events_enabled\":true"), std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"conn.open\""), std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"request\""), std::string::npos);
  EXPECT_NE(body.find("POST /v1/analyze"), std::string::npos);
  server.stop();
}

TEST_F(ServiceWatchTest, SlowRequestsEmitEvents) {
  service::ServerConfig config;
  config.workers = 1;
  config.handler_stall_ms = 30;  // every handler takes >= 30ms
  config.slow_request_ms = 10;   // threshold well under the stall
  service::Server server(config);
  ASSERT_TRUE(server.start().ok());

  service::Client client(server.port());
  ASSERT_TRUE(client.analyze(pki().pem_chain(), "slow.example").ok());
  server.stop();

  bool found = false;
  for (const obs::EventRecord& event :
       obs::EventLog::instance().collect(256)) {
    if (std::string(event.kind) == "slow_request") {
      found = true;
      EXPECT_GE(event.value, 10000u);  // microseconds, >= the threshold
      EXPECT_NE(std::string(event.detail).find("/v1/analyze"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(found) << "no slow_request event for a stalled handler";
}

TEST(ServiceWatchDisabledTest, EndpointsStayQuietWithoutEvents) {
  // Events off (the default): /v1/flight reports events_enabled=false
  // and the lifecycle emits nothing; /v1/timeseries still works (the
  // ring is always on — it is counters, not events).
  obs::EventLog::instance().reset();
  service::ServerConfig config;
  config.workers = 1;
  service::Server server(config);
  ASSERT_TRUE(server.start().ok());

  service::Client client(server.port());
  ASSERT_TRUE(client.analyze(pki().pem_chain(), "quiet.example").ok());
  auto flight = client.flight();
  ASSERT_TRUE(flight.ok());
  EXPECT_NE(to_string(flight.value().body).find("\"events_enabled\":false"),
            std::string::npos);
  EXPECT_EQ(obs::EventLog::instance().emitted(), 0u);
  server.stop();
}

}  // namespace
}  // namespace chainchaos
