#include "service/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "obs/event_log.hpp"
#include "obs/trace.hpp"
#include "service/event_loop.hpp"
#include "support/str.hpp"

namespace chainchaos::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Upper bound on one poller wait; also the timeout wheel's tick. The
/// loop re-checks the stopping flag at least this often even with no
/// socket activity.
constexpr int kPollIntervalMs = 50;
constexpr std::size_t kWheelSlots = 256;

/// Poller tags 0 and 1 are the listening socket and the wake pipe;
/// connection ids start above them and are never reused, so a stale
/// readiness event can never be misrouted to a newer connection.
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kFirstConnId = 2;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One relaxed load; the chainwatch emission sites below all hide
/// behind it so the event log costs nothing while disabled.
bool events_on() { return obs::EventLog::instance().enabled(); }

}  // namespace

// ---------------------------------------------------------------------------
// Event-loop state (DESIGN.md §5.15)
// ---------------------------------------------------------------------------

struct Server::Loop {
  /// One queued response in a connection's pipeline window. Slots are
  /// created in request order and written strictly front-to-back; a slot
  /// born with a response (parse errors, overload 503s) is `ready`
  /// immediately, handler responses become ready when their Completion
  /// merges.
  struct Slot {
    bool ready = false;
    bool close_after = false;
    /// False when the response was already counted at creation (the
    /// probe-error and overload paths record their metrics immediately,
    /// matching the pre-event-loop server).
    bool count_response = true;
    int status = 0;
    Bytes wire;           ///< encoded response (valid once ready)
    std::size_t sent = 0; ///< partial-write continuation cursor
    Clock::time_point parsed_at{};
    std::uint64_t write_begin_ns = 0;
    bool write_started = false;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string in;          ///< received, not yet parsed
    std::deque<Slot> slots;  ///< pipeline window, front = next to write
    std::uint64_t base_seq = 0;  ///< seq of slots.front()
    std::uint64_t next_seq = 0;  ///< seq the next request will take
    std::size_t inflight = 0;    ///< slots awaiting a worker completion
    bool draining = false;  ///< no more reads; close once slots flush
    bool frame_started = false;
    std::uint64_t frame_begin_ns = 0;
    Clock::time_point read_deadline{};
    bool read_armed = false;
    Clock::time_point write_deadline{};
    bool write_armed = false;
    bool want_read = true;
    bool want_write = false;
  };

  explicit Loop(Server& server)
      : srv(server),
        poller(server.config_.force_poll),
        wheel(kWheelSlots, kPollIntervalMs, Clock::now()) {}

  Server& srv;
  Poller poller;
  TimeoutWheel wheel;
  std::unordered_map<std::uint64_t, Connection> conns;
  std::uint64_t next_id = kFirstConnId;
  std::size_t inflight = 0;  ///< work items dispatched, completions pending
  bool drain_started = false;
  std::vector<Poller::Event> events;
  std::vector<std::uint64_t> due;

  std::size_t pipeline_depth() const {
    return srv.config_.pipeline_depth == 0 ? 1 : srv.config_.pipeline_depth;
  }
  std::chrono::milliseconds idle_timeout() const {
    return std::chrono::milliseconds(srv.config_.idle_timeout_ms > 0
                                         ? srv.config_.idle_timeout_ms
                                         : srv.config_.read_timeout_ms);
  }

  void run() {
    const auto sample_interval =
        std::chrono::milliseconds(srv.config_.sample_interval_ms);
    auto next_sample = Clock::now();
    while (true) {
      if (srv.stopping_.load() && !drain_started) begin_drain();
      if (drain_started && conns.empty() && inflight == 0) break;
      poller.wait(events, kPollIntervalMs);
      // Everything below the wait is the tick's busy time: dispatch,
      // completion merging, deadline sweeps, and the 1 Hz time-series
      // sample. A tick busier than the poll interval means the pump is
      // late for its own cadence — that is the stall counter.
      const auto woke = Clock::now();
      srv.metrics_.record_poll_batch(events.size());
      for (const Poller::Event& ev : events) {
        if (ev.tag == kListenTag) {
          accept_ready();
        } else if (ev.tag == kWakeTag) {
          drain_wake_pipe();
        } else {
          on_conn_event(ev);
        }
      }
      drain_completions();
      check_deadlines();
      if (srv.config_.sample_interval_ms > 0 && woke >= next_sample) {
        srv.sample_timeseries();
        next_sample = woke + sample_interval;
      }
      const auto busy_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - woke)
              .count();
      srv.metrics_.record_loop_tick(static_cast<std::uint64_t>(busy_us));
      if (busy_us > kPollIntervalMs * 1000) srv.metrics_.record_pump_stall();
      srv.metrics_.note_wheel_pending(wheel.pending());
    }
  }

  // --- lifecycle ---------------------------------------------------------

  void begin_drain() {
    drain_started = true;
    poller.remove(srv.listen_fd_);
    // Idle connections have nothing to drain; everything else finishes
    // under its deadlines with "connection: close" forced on the way out.
    std::vector<std::uint64_t> idle;
    for (const auto& [id, c] : conns) {
      if (c.slots.empty() && c.inflight == 0 && c.in.empty()) {
        idle.push_back(id);
      }
    }
    for (const std::uint64_t id : idle) close_conn(id, false);
  }

  void close_conn(std::uint64_t id, bool responses_lost) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    if (responses_lost) srv.metrics_.record_write_failure();
    wheel.cancel(id);
    poller.remove(it->second.fd);
    ::close(it->second.fd);
    srv.metrics_.record_connection_close();
    conns.erase(it);
    if (events_on()) {
      obs::EventLog::instance().emit(obs::EventLevel::kDebug, "conn.close",
                                     responses_lost ? "responses_lost" : "",
                                     0, id);
    }
  }

  /// True when closing this connection now would lose responses the
  /// client is still owed (pending or partially written slots).
  static bool owes_responses(const Connection& c) {
    return !c.slots.empty() || c.inflight > 0;
  }

  /// Peer vanished (EOF, ECONNRESET, POLLERR/POLLHUP). Unparsed bytes
  /// mean a mid-request disconnect, counted separately from an idle
  /// keep-alive teardown.
  void peer_gone(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    if (!it->second.in.empty()) srv.metrics_.record_client_disconnect();
    close_conn(id, owes_responses(it->second));
  }

  // --- accept + admission ------------------------------------------------

  void accept_ready() {
    if (drain_started) return;
    for (;;) {
      int fd = ::accept(srv.listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        srv.metrics_.record_accept_error();
        if (errno == EMFILE || errno == ENFILE) {
          // fd budget exhausted. Close the reserved fd to free one slot,
          // accept the connection that is otherwise stuck in the backlog,
          // shed it with 503, then re-arm the reserve. Without this the
          // loop would spin on a permanently-ready listener.
          srv.metrics_.record_fd_exhausted();
          if (srv.reserve_fd_ >= 0) {
            ::close(srv.reserve_fd_);
            srv.reserve_fd_ = -1;
          }
          fd = ::accept(srv.listen_fd_, nullptr, nullptr);
          if (fd >= 0) shed(fd);
          srv.reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
          if (fd < 0) return;  // nothing acceptable even with the slot free
          continue;
        }
        if (errno == ECONNABORTED || errno == EPROTO) continue;
        return;
      }
      if (srv.stopping_.load()) {
        ::close(fd);
        continue;
      }
      if (srv.config_.max_connections != 0 &&
          conns.size() >= srv.config_.max_connections) {
        shed(fd);
        continue;
      }
      if (!set_nonblocking(fd)) {
        srv.metrics_.record_accept_error();
        ::close(fd);
        continue;
      }
      const std::uint64_t id = next_id++;
      Connection c;
      c.fd = fd;
      c.id = id;
      c.read_deadline = Clock::now() + idle_timeout();
      c.read_armed = true;
      conns.emplace(id, std::move(c));
      wheel.schedule(id, conns[id].read_deadline);
      poller.add(fd, id, /*want_read=*/true, /*want_write=*/false);
      srv.metrics_.record_connection_open();
      if (events_on()) {
        obs::EventLog::instance().emit(obs::EventLevel::kInfo, "conn.open",
                                       "", 0, id);
      }
    }
  }

  /// Admission rejection: best-effort 503 + Retry-After, then close. The
  /// socket never enters the loop, so the send must not block.
  void shed(int fd) {
    srv.metrics_.record_rejected();
    if (events_on()) {
      obs::EventLog::instance().emit(obs::EventLevel::kWarn, "conn.shed",
                                     "admission");
    }
    const Bytes wire =
        busy_response(srv.config_.retry_after_seconds).encode();
    (void)::send(fd, wire.data(), wire.size(),
                 MSG_NOSIGNAL | MSG_DONTWAIT);
    ::close(fd);
  }

  // --- readiness dispatch ------------------------------------------------

  void on_conn_event(const Poller::Event& ev) {
    const std::uint64_t id = ev.tag;
    if (ev.readable) {
      if (!on_readable(id)) return;
    }
    if (ev.error) {
      // Error with no readable data (or data already drained): the peer
      // is gone. When readable was set, on_readable has already seen the
      // EOF/error if there was one.
      if (conns.count(id) != 0) peer_gone(id);
      return;
    }
    pump(id);
  }

  /// Pulls a bounded burst of bytes off the socket. Returns false when
  /// the connection was closed (EOF or hard error).
  bool on_readable(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return false;
    Connection& c = it->second;
    char chunk[16384];
    for (int burst = 0; burst < 4; ++burst) {
      if (c.draining) break;
      const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        c.in.append(chunk, static_cast<std::size_t>(n));
        if (!c.frame_started) note_frame_start(c);
        if (static_cast<std::size_t>(n) < sizeof chunk) break;
        continue;
      }
      if (n == 0) {
        peer_gone(id);
        return false;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      peer_gone(id);
      return false;
    }
    return true;
  }

  /// The first byte of a new frame anchors the read deadline and the
  /// service.read measurement: a frame must complete within
  /// read_timeout_ms of its first byte no matter how slowly the rest
  /// drips in, and idle keep-alive time never pollutes the stage.
  void note_frame_start(Connection& c) {
    c.frame_started = true;
    c.read_deadline =
        Clock::now() + std::chrono::milliseconds(srv.config_.read_timeout_ms);
    c.read_armed = true;
    c.frame_begin_ns =
        obs::Tracer::instance().enabled() ? obs::Tracer::now_ns() : 0;
  }

  /// Parse + flush + recompute interest/deadlines for one connection.
  void pump(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    do_parse(it->second);
    if (!do_flush(id)) return;
    settle(id);
  }

  // --- incremental parse + dispatch --------------------------------------

  void do_parse(Connection& c) {
    while (!c.draining && !c.in.empty() &&
           c.slots.size() < pipeline_depth()) {
      auto probe = net::probe_request_frame(c.in);
      if (!probe.ok()) {
        // Hostile or broken framing (oversized headers, bad
        // Content-Length): reject and drop the connection once the
        // error response flushes.
        net::HttpResponse error = json_error(
            probe.error().code == "http.headers_too_large" ? 431 : 400,
            "Bad Request", probe.error().code, probe.error().message);
        error.headers["connection"] = "close";
        srv.metrics_.record_response(error.status, 0);
        push_ready_slot(c, error, /*close_after=*/true,
                        /*count_response=*/false, Clock::time_point{});
        c.draining = true;
        c.in.clear();
        c.frame_started = false;
        return;
      }
      if (!probe.value().complete) return;

      const std::size_t frame_bytes = probe.value().total_bytes;
      if (c.frame_begin_ns != 0) {
        obs::Tracer::instance().record_duration(
            obs::Stage::kServiceRead,
            obs::Tracer::now_ns() - c.frame_begin_ns);
      }
      const auto parsed_at = Clock::now();
      auto request = net::parse_request(c.in.substr(0, frame_bytes));
      c.in.erase(0, frame_bytes);
      c.frame_started = false;
      c.frame_begin_ns = 0;

      if (!request.ok()) {
        net::HttpResponse error =
            json_error(400, "Bad Request", request.error().code,
                       request.error().message);
        error.headers["connection"] = "close";
        push_ready_slot(c, error, /*close_after=*/true,
                        /*count_response=*/true, parsed_at);
        c.draining = true;
        return;
      }

      dispatch(c, std::move(request.value()), parsed_at);
      // The leftover bytes (if any) are the next pipelined frame; its
      // read deadline anchors here.
      if (!c.in.empty() && !c.frame_started) note_frame_start(c);
    }
  }

  /// Queues the request for the worker pool, or answers 503 in place
  /// when the queue is full. Either way the request occupies exactly one
  /// pipeline slot, so the response stream never desynchronises.
  void dispatch(Connection& c, net::HttpRequest request,
                Clock::time_point parsed_at) {
    std::string trace_header;
    if (const auto it = request.headers.find("x-trace-id");
        it != request.headers.end()) {
      trace_header = it->second;
    }
    const bool asked_close = net::wants_close(request.headers);
    const std::uint64_t event_trace =
        trace_header.empty() ? 0 : obs::trace_id_from_string(trace_header);
    if (events_on()) {
      // The access-log line: one event per parsed request frame.
      obs::EventLog::instance().emit(obs::EventLevel::kInfo, "request",
                                     request.method + " " + request.target,
                                     0, c.id, event_trace);
    }

    bool queued = false;
    {
      std::lock_guard<std::mutex> lock(srv.queue_mutex_);
      if (srv.work_queue_.size() < srv.config_.queue_capacity) {
        srv.work_queue_.push_back(
            WorkItem{c.id, c.next_seq, std::move(request), parsed_at});
        srv.metrics_.note_queue_depth(srv.work_queue_.size());
        queued = true;
      }
    }
    if (queued) {
      srv.queue_cv_.notify_one();
      Slot slot;
      slot.parsed_at = parsed_at;
      c.slots.push_back(std::move(slot));
      c.next_seq++;
      c.inflight++;
      inflight++;
      return;
    }

    // Backpressure on an established connection: the 503 takes the
    // request's slot and — unlike the admission path — does not close,
    // so pipelined successors stay in sync.
    srv.metrics_.record_rejected();
    if (events_on()) {
      obs::EventLog::instance().emit(obs::EventLevel::kWarn, "queue.full",
                                     request.target, 0, c.id, event_trace);
    }
    net::HttpResponse busy = busy_response(srv.config_.retry_after_seconds);
    const bool close_after = asked_close || srv.stopping_.load();
    if (!close_after) busy.headers.erase("connection");
    if (!trace_header.empty()) busy.headers["x-trace-id"] = trace_header;
    push_ready_slot(c, busy, close_after, /*count_response=*/false,
                    parsed_at);
  }

  void push_ready_slot(Connection& c, const net::HttpResponse& response,
                       bool close_after, bool count_response,
                       Clock::time_point parsed_at) {
    Slot slot;
    slot.ready = true;
    slot.close_after = close_after;
    slot.count_response = count_response;
    slot.status = response.status;
    slot.wire = response.encode();
    slot.parsed_at = parsed_at;
    c.slots.push_back(std::move(slot));
    c.next_seq++;
  }

  // --- ordered write-back -------------------------------------------------

  /// Writes the ready prefix of the pipeline window. Returns false when
  /// the connection was closed (write error or a close_after slot
  /// completing).
  bool do_flush(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return false;
    Connection& c = it->second;
    while (!c.slots.empty() && c.slots.front().ready) {
      Slot& slot = c.slots.front();
      if (!slot.write_started) {
        slot.write_started = true;
        c.write_deadline = Clock::now() + std::chrono::milliseconds(
                                              srv.config_.write_timeout_ms);
        c.write_armed = true;
        slot.write_begin_ns =
            obs::Tracer::instance().enabled() ? obs::Tracer::now_ns() : 0;
      }
      while (slot.sent < slot.wire.size()) {
        const ssize_t n =
            ::send(c.fd, slot.wire.data() + slot.sent,
                   slot.wire.size() - slot.sent, MSG_NOSIGNAL);
        if (n > 0) {
          slot.sent += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          return true;  // wait for writability; deadline stays armed
        }
        // EPIPE/reset: this response and everything behind it is lost.
        close_conn(id, true);
        return false;
      }

      // Response fully written.
      if (slot.write_begin_ns != 0) {
        obs::Tracer::instance().record_duration(
            obs::Stage::kServiceWrite,
            obs::Tracer::now_ns() - slot.write_begin_ns);
      }
      c.write_armed = false;
      if (slot.count_response) {
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - slot.parsed_at)
                .count();
        srv.metrics_.record_response(slot.status,
                                     static_cast<std::uint64_t>(micros));
        if (events_on()) {
          obs::EventLog::instance().emit(obs::EventLevel::kInfo, "response",
                                         "",
                                         static_cast<std::uint64_t>(slot.status),
                                         c.id);
        }
      }
      const bool close_after = slot.close_after;
      c.slots.pop_front();
      c.base_seq++;
      if (close_after) {
        close_conn(id, owes_responses(c));
        return false;
      }
    }
    return true;
  }

  // --- worker completions --------------------------------------------------

  void drain_wake_pipe() {
    char sink[256];
    while (::read(srv.wake_rx_, sink, sizeof sink) > 0) {
    }
  }

  void drain_completions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(srv.completions_mutex_);
      batch.swap(srv.completions_);
    }
    if (batch.empty()) return;
    std::vector<std::uint64_t> touched;
    for (Completion& done : batch) {
      inflight--;
      const auto it = conns.find(done.conn);
      if (it == conns.end()) continue;  // loss was counted at close
      Connection& c = it->second;
      c.inflight--;
      const std::uint64_t idx = done.seq - c.base_seq;
      if (idx >= c.slots.size()) continue;  // cannot happen; stay safe
      bool close_after = done.close_after;
      if (srv.stopping_.load()) close_after = true;
      if (close_after) done.response.headers["connection"] = "close";
      Slot& slot = c.slots[idx];
      slot.ready = true;
      slot.close_after = close_after;
      slot.status = done.response.status;
      slot.wire = done.response.encode();
      touched.push_back(done.conn);
    }
    for (const std::uint64_t id : touched) {
      if (conns.count(id) == 0) continue;  // closed by an earlier flush
      // Full pump, not just a flush: completions free pipeline slots, and
      // frames already buffered in `c.in` must parse into them now — the
      // kernel may hold no more bytes, so no readable event will come.
      pump(id);
    }
  }

  // --- interest + deadline bookkeeping ------------------------------------

  void settle(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Connection& c = it->second;

    if (c.draining) {
      c.read_armed = false;
    } else if (c.in.empty() && !c.frame_started) {
      if (c.slots.empty() && c.inflight == 0) {
        if (drain_started) {
          close_conn(id, false);
          return;
        }
        // Fully idle keep-alive connection: only the idle deadline runs.
        c.read_deadline = Clock::now() + idle_timeout();
        c.read_armed = true;
      } else {
        // Responses still owed but nothing half-read: the write deadline
        // (armed per response) governs; no read clock runs.
        c.read_armed = false;
      }
    }
    // A started frame keeps the deadline note_frame_start() armed.

    const bool want_read = !c.draining && c.slots.size() < pipeline_depth();
    const bool want_write = !c.slots.empty() && c.slots.front().ready &&
                            c.slots.front().sent < c.slots.front().wire.size();
    if (want_read != c.want_read || want_write != c.want_write) {
      c.want_read = want_read;
      c.want_write = want_write;
      poller.set(c.fd, want_read, want_write);
    }
    rearm(c);
  }

  void rearm(Connection& c) {
    bool armed = false;
    Clock::time_point deadline{};
    if (c.read_armed) {
      deadline = c.read_deadline;
      armed = true;
    }
    if (c.write_armed && (!armed || c.write_deadline < deadline)) {
      deadline = c.write_deadline;
      armed = true;
    }
    if (armed) {
      wheel.schedule(c.id, deadline);
    } else {
      wheel.cancel(c.id);
    }
  }

  static void note_eviction(Eviction kind, std::uint64_t id) {
    if (events_on()) {
      obs::EventLog::instance().emit(obs::EventLevel::kWarn, "conn.evict",
                                     to_string(kind), 0, id);
    }
  }

  void check_deadlines() {
    const auto now = Clock::now();
    due.clear();
    wheel.collect_due(now, due);
    for (const std::uint64_t id : due) {
      const auto it = conns.find(id);
      if (it == conns.end()) continue;
      Connection& c = it->second;
      if (c.write_armed && now >= c.write_deadline) {
        // Peer would not drain its response in time (a never-reading
        // client): the response is lost, the connection goes.
        srv.metrics_.record_eviction(Eviction::kSlowWrite);
        srv.metrics_.record_write_failure();
        note_eviction(Eviction::kSlowWrite, id);
        close_conn(id, false);
        continue;
      }
      if (c.read_armed && now >= c.read_deadline) {
        if (c.frame_started) {
          // Slow-loris: the frame's first byte is older than the read
          // timeout and it still has not completed.
          srv.metrics_.record_eviction(Eviction::kSlowRead);
          note_eviction(Eviction::kSlowRead, id);
          close_conn(id, owes_responses(c));
        } else {
          srv.metrics_.record_eviction(Eviction::kIdle);
          note_eviction(Eviction::kIdle, id);
          close_conn(id, false);
        }
        continue;
      }
      // False wakeup (deadline moved since this wheel entry): re-arm.
      rearm(c);
    }
  }
};

// ---------------------------------------------------------------------------
// Server lifecycle
// ---------------------------------------------------------------------------

namespace {

HandlerOptions with_timeseries(HandlerOptions options,
                               const obs::TimeSeriesRing* ring) {
  options.timeseries = ring;
  return options;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(config),
      cache_(config.cache_capacity, config.cache_shards),
      timeseries_(timeseries_columns(), kTimeseriesWindowSeconds),
      handler_(with_timeseries(config.handler, &timeseries_), &cache_,
               &metrics_) {}

void Server::sample_timeseries() {
  const MetricsSnapshot m = metrics_.snapshot();
  const CacheStats cache = cache_.stats();
  const net::FetchStats aia = config_.handler.aia != nullptr
                                  ? config_.handler.aia->stats()
                                  : net::FetchStats{};
  timeseries_.push(
      static_cast<std::uint64_t>(m.uptime_seconds * 1000.0),
      timeseries_row(m, cache, aia, crypto::verify_snapshot()));
}

Server::~Server() { stop(); }

bool Server::using_epoll() const {
  return loop_ != nullptr && loop_->poller.using_epoll();
}

void Server::wake_loop() {
  if (wake_tx_ >= 0) {
    const char byte = 'w';
    (void)::write(wake_tx_, &byte, 1);  // pipe full = wakeup already pending
  }
}

Result<std::uint16_t> Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return make_error("service.socket", std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  auto fail = [this](const char* code) -> Result<std::uint16_t> {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return make_error(code, detail);
  };

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    return fail("service.bind");
  }
  if (::listen(listen_fd_, 1024) < 0) {
    return fail("service.listen");
  }
  if (!set_nonblocking(listen_fd_)) {
    return fail("service.nonblock");
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    return fail("service.pipe");
  }
  wake_rx_ = pipe_fds[0];
  wake_tx_ = pipe_fds[1];
  set_nonblocking(wake_rx_);
  set_nonblocking(wake_tx_);
  reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

  started_ = true;
  stopping_.store(false);
  workers_done_ = false;
  loop_ = std::make_unique<Loop>(*this);
  loop_->poller.add(listen_fd_, kListenTag, /*want_read=*/true,
                    /*want_write=*/false);
  loop_->poller.add(wake_rx_, kWakeTag, /*want_read=*/true,
                    /*want_write=*/false);

  const unsigned workers = config_.workers == 0 ? 1 : config_.workers;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_thread(); });
  }
  loop_thread_ = std::thread([this] { loop_->run(); });
  return port_;
}

void Server::stop() {
  if (!started_) return;
  stopping_.store(true);
  wake_loop();
  // The loop drains: it sheds idle connections, serves everything
  // buffered or in flight (workers are still running), and exits once no
  // connection or dispatched request remains.
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    workers_done_ = true;  // the loop is gone, so the queue is final
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  loop_.reset();
  completions_.clear();
  for (int* fd : {&listen_fd_, &wake_rx_, &wake_tx_, &reserve_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  started_ = false;
}

// ---------------------------------------------------------------------------
// Worker pool: handlers only, never I/O
// ---------------------------------------------------------------------------

void Server::worker_thread() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(
          lock, [this] { return workers_done_ || !work_queue_.empty(); });
      if (work_queue_.empty()) return;  // done and fully drained
      item = std::move(work_queue_.front());
      work_queue_.pop_front();
    }

    const auto wait_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - item.parsed_at)
            .count();
    metrics_.record_queue_wait(static_cast<std::uint64_t>(wait_us));
#ifndef CHAINCHAOS_OBS_DISABLED
    // Cross-thread interval (loop parsed, worker dequeued): histogram
    // only, no span — a span needs a single owning thread stack.
    if (obs::Tracer::instance().enabled()) {
      obs::Tracer::instance().record_duration(
          obs::Stage::kServiceQueueWait,
          static_cast<std::uint64_t>(wait_us) * 1000);
    }
#endif
    // The slow-request watch times everything the worker does for the
    // request (including the stall seam, which tests use to force a
    // deterministic "slow handler").
    const bool watch_slow = config_.slow_request_ms > 0 && events_on();
    const auto handle_begin = watch_slow ? Clock::now() : Clock::time_point{};

    if (config_.handler_stall_ms > 0) {
      // Test seam: makes "worker busy" a deterministic state so overload
      // tests can fill the queue without racing real handler latency.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.handler_stall_ms));
    }

    std::string trace_header;
    if (const auto it = item.request.headers.find("x-trace-id");
        it != item.request.headers.end()) {
      trace_header = it->second;
    }

    Completion done;
    done.conn = item.conn;
    done.seq = item.seq;
    try {
      // Correlate every span this request produces with the
      // caller-chosen x-trace-id (if any); the header is echoed on the
      // response so the caller can line up client- and server-side spans
      // — including on the cache-hit path, which never reaches the
      // analyzers.
      obs::TraceContext trace_ctx(
          trace_header.empty() ? 0
                               : obs::trace_id_from_string(trace_header));
      net::HttpResponse response;
      {
        CHAINCHAOS_SPAN(obs::Stage::kServiceHandle);
        response = handler_.handle(item.request);
      }
      done.close_after = net::wants_close(item.request.headers);
      done.response = std::move(response);
    } catch (...) {
      // Crash-free contract: a request must never cost a worker thread.
      // Anything a handler throws (bad_alloc under memory pressure, a
      // defect surfaced by the chaos campaign) is absorbed here; the
      // client gets a 500 and the worker lives to dequeue the next
      // request. The counter makes the event visible in /v1/stats.
      metrics_.record_worker_recovery();
      done.response =
          json_error(500, "Internal Server Error", "service.handler_error",
                     "handler raised an unexpected error");
      done.close_after = true;
    }
    if (!trace_header.empty()) {
      done.response.headers["x-trace-id"] = trace_header;
    }

    if (watch_slow) {
      const auto handle_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - handle_begin)
              .count();
      if (handle_us >=
          static_cast<std::int64_t>(config_.slow_request_ms) * 1000) {
        obs::EventLog::instance().emit(
            obs::EventLevel::kWarn, "slow_request", item.request.target,
            static_cast<std::uint64_t>(handle_us), item.conn,
            trace_header.empty() ? 0
                                 : obs::trace_id_from_string(trace_header));
      }
    }

    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.push_back(std::move(done));
    }
    wake_loop();
  }
}

}  // namespace chainchaos::service
