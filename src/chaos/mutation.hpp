// Chain mutation engine: well-formed chains in, adversarial chains out.
//
// The paper measures how deployed chains *actually* deviate from RFC
// 5280 §6 / RFC 8446 expectations; the chaos harness asks the dual
// question — does every layer of this library survive inputs far worse
// than anything the measurement corpus contains? The mutator takes the
// corpus's well-formed chains and derives adversarial variants at two
// levels:
//
//   byte-level      B1..B6  malformed DER (truncation at TLV boundaries,
//                           corrupted length fields, bit flips, garbage
//                           framing, pathologically deep nesting)
//   structure-level S1..S7  well-formed certificates arranged wrongly
//                           (the paper's Table 9 deviations pushed to
//                           their extremes: duplicates, reversal,
//                           shuffles, irrelevant certs, 100+-cert
//                           chains, issuer cycles, empty chains)
//
// Every mutation is a pure function of (class, seed): same inputs, same
// bytes out, regardless of thread, platform, or run. That determinism is
// what makes campaign summaries byte-comparable across runs and thread
// counts (DESIGN.md §5.10).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/bytes.hpp"
#include "support/result.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::dataset {
class Corpus;
}

namespace chainchaos::chaos {

/// The mutation taxonomy (DESIGN.md §5.10). Byte-level classes damage
/// the DER encoding itself; structure-level classes keep every
/// certificate well-formed and damage the *list* — the layer the paper's
/// Table 9 construction deviations live at.
enum class MutationClass {
  // --- byte-level --------------------------------------------------------
  kTruncateTlv,    ///< B1: cut the encoding at a TLV boundary
  kLengthCorrupt,  ///< B2: rewrite a length field (over/under/reserved)
  kBitFlip,        ///< B3: flip 1..8 bits anywhere in the DER
  kGarbagePrefix,  ///< B4: random bytes before the outer SEQUENCE
  kGarbageSuffix,  ///< B5: trailing junk after the outer SEQUENCE
  kDeepNest,       ///< B6: constructed-TLV tower, up to ~12k levels
  // --- structure-level ---------------------------------------------------
  kEmptyChain,     ///< S1: zero certificates
  kDuplicateCert,  ///< S2: same certificate repeated (Table 9 "duplicate")
  kReversedOrder,  ///< S3: root-first order (Table 9 "reversed")
  kShuffledOrder,  ///< S4: seeded permutation of the list
  kIrrelevantCert, ///< S5: certs from an unrelated domain spliced in
  kLongChain,      ///< S6: 100+-cert list (restriction-limit probing)
  kIssuerCycle,    ///< S7: A↔B issuer loop / self-referential cert
};

inline constexpr std::size_t kMutationClassCount = 13;

/// Registry row for one mutation class: the stable ID used in campaign
/// summaries and the paper anchor the class stresses.
struct MutationSpec {
  MutationClass cls;
  const char* id;         ///< "B1".."B6", "S1".."S7" — stable across PRs
  const char* name;       ///< kebab-case, accepted by --mutations
  const char* paper_row;  ///< Table 9 deviation / §6 hazard it extremizes
};

/// All classes in registry order (B1..B6 then S1..S7).
const std::array<MutationSpec, kMutationClassCount>& all_mutations();

/// Spec lookup for one class.
const MutationSpec& spec(MutationClass cls);

/// Parses "B3", "bit-flip", etc. (case-sensitive) to a class.
Result<MutationClass> mutation_from_name(std::string_view text);

/// One mutated input: the certificate list as raw DER blobs (possibly
/// not parseable — that is the point) plus its provenance.
struct MutatedChain {
  MutationClass cls = MutationClass::kEmptyChain;
  std::string mutation_id;  ///< e.g. "B1"
  std::uint64_t seed = 0;   ///< the exact seed that reproduces this input
  std::vector<Bytes> certs;

  /// Concatenated DER — the wire body POSTed to chaind endpoints.
  Bytes wire() const;
};

/// Builds a constructed-TLV tower of exactly `depth` levels in O(depth)
/// time and bytes (sizes precomputed inside-out, headers emitted
/// outermost-first — never O(depth²) rewrapping). Exposed for the asn1
/// depth-cap regression test.
Bytes deep_nested_tlv(std::size_t depth);

/// The mutation engine. Construction harvests material once (base chains
/// to damage, a foreign pool for irrelevant-cert splicing, a pre-built
/// issuer-cycle kit); mutate() is then const, allocation-local, and safe
/// to call concurrently from any number of campaign workers.
class ChainMutator {
 public:
  /// `base_chains` must be non-empty; each chain is the DER list of one
  /// well-formed observation. `foreign_pool` feeds kIrrelevantCert and
  /// kLongChain (falls back to base material when empty).
  ChainMutator(std::vector<std::vector<Bytes>> base_chains,
               std::vector<Bytes> foreign_pool);

  /// Harvests up to `base_limit` chains from the corpus records (and a
  /// foreign pool from the records *after* them, so the two sets never
  /// share certificates).
  static ChainMutator from_corpus(const dataset::Corpus& corpus,
                                  std::size_t base_limit = 64);

  /// Derives one adversarial chain. Pure function of (cls, seed).
  MutatedChain mutate(MutationClass cls, std::uint64_t seed) const;

  std::size_t base_chain_count() const { return base_chains_.size(); }

 private:
  std::vector<std::vector<Bytes>> base_chains_;
  std::vector<Bytes> foreign_pool_;

  // Pre-built S7 material: leaf -> cycle_a -> cycle_b -> cycle_a -> ...
  // (cycle_a and cycle_b sign each other) and a self-referential
  // certificate (subject == issuer DN, signed by a *different* key, so
  // it chains to itself by name forever without being self-signed).
  Bytes cycle_leaf_;
  Bytes cycle_a_;
  Bytes cycle_b_;
  Bytes self_referential_;
};

}  // namespace chainchaos::chaos
