#!/usr/bin/env bash
# End-to-end smoke test for the packed corpus store (DESIGN.md §5.14).
#
# Packs a 2000-domain corpus to the binary format, then asserts:
#   * corpus_cat reads back the header (record count, seed) and the
#     full checksum verification passes,
#   * a single record extracts as PEM,
#   * the mmap streaming sweep (measure_corpus --corpus) produces a
#     summary byte-identical to regenerating and sweeping the same
#     corpus in RAM,
#   * the packed sweep is byte-identical between 1 and 8 threads,
#   * a corrupted copy is rejected with a typed error, not swept.
#
# Usage: corpusio_smoke.sh <corpus_pack> <corpus_cat> <measure_corpus>
set -euo pipefail

PACK=${1:?usage: corpusio_smoke.sh <corpus_pack> <corpus_cat> <measure_corpus>}
CAT=${2:?usage: corpusio_smoke.sh <corpus_pack> <corpus_cat> <measure_corpus>}
MEASURE=${3:?usage: corpusio_smoke.sh <corpus_pack> <corpus_cat> <measure_corpus>}

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

CORPUS="$WORKDIR/corpus.chc"

"$PACK" --out "$CORPUS" --domains 2000 --seed 833 \
    || { echo "FAIL: corpus_pack failed"; exit 1; }

# --- header + verification ------------------------------------------------
"$CAT" "$CORPUS" >"$WORKDIR/header.txt" \
    || { echo "FAIL: corpus_cat header dump failed"; exit 1; }
grep -q "format version   1" "$WORKDIR/header.txt" \
    || { echo "FAIL: header does not report format version 1"; exit 1; }
grep -q "seed=833" "$WORKDIR/header.txt" \
    || { echo "FAIL: header does not carry the seed"; exit 1; }
"$CAT" "$CORPUS" --verify \
    || { echo "FAIL: checksum verification failed"; exit 1; }

# --- single-record extraction --------------------------------------------
"$CAT" "$CORPUS" --record 0 >"$WORKDIR/record0.pem" \
    || { echo "FAIL: record extraction failed"; exit 1; }
grep -q -- "-----BEGIN CERTIFICATE-----" "$WORKDIR/record0.pem" \
    || { echo "FAIL: extracted record carries no PEM"; exit 1; }

# --- packed sweep == regenerated in-RAM sweep ----------------------------
# Strip the mode-specific progress lines; the summary tables and engine
# tallies must match byte for byte.
"$MEASURE" --corpus "$CORPUS" --threads 4 \
    | grep -v "^streaming\|^engine:" >"$WORKDIR/packed.txt" \
    || { echo "FAIL: packed sweep failed"; exit 1; }
"$MEASURE" --domains 2000 --seed 833 --threads 4 \
    | grep -v "^generating\|^engine:" >"$WORKDIR/ram.txt" \
    || { echo "FAIL: in-RAM sweep failed"; exit 1; }
diff -u "$WORKDIR/ram.txt" "$WORKDIR/packed.txt" \
    || { echo "FAIL: packed sweep diverges from the in-RAM sweep"; exit 1; }
echo "packed sweep is byte-identical to the regenerated in-RAM sweep"

# --- thread-count determinism over the mmap source -----------------------
"$MEASURE" --corpus "$CORPUS" --threads 1 \
    | grep -v "^engine:" >"$WORKDIR/packed_t1.txt"
"$MEASURE" --corpus "$CORPUS" --threads 8 \
    | grep -v "^engine:" >"$WORKDIR/packed_t8.txt"
diff -u "$WORKDIR/packed_t1.txt" "$WORKDIR/packed_t8.txt" \
    || { echo "FAIL: packed sweep differs between 1 and 8 threads"; exit 1; }
echo "packed sweep is byte-identical across thread counts"

# --- corruption is rejected, not swept -----------------------------------
cp "$CORPUS" "$WORKDIR/bad.chc"
printf 'XXXX' | dd of="$WORKDIR/bad.chc" bs=1 count=4 conv=notrunc 2>/dev/null
if "$MEASURE" --corpus "$WORKDIR/bad.chc" --threads 1 2>"$WORKDIR/bad.err"; then
  echo "FAIL: corrupted corpus was swept"; exit 1
fi
grep -q "corpusio.bad_magic" "$WORKDIR/bad.err" \
    || { echo "FAIL: corruption not reported as corpusio.bad_magic"; exit 1; }

echo "corpusio smoke OK"
