// Arbitrary-precision unsigned integers.
//
// Sized for the library's needs: 512-1024-bit RSA moduli. Schoolbook
// multiplication is O(n^2) but n is ~16 limbs, so even the classic
// divide-per-step exponentiation stays under a millisecond. The hot
// path, though, is MontgomeryContext (DESIGN.md §5.12): CIOS Montgomery
// multiplication plus sliding-window exponentiation, which replaces the
// Knuth division after every multiply with a shift-free reduction and
// carries the signature-verification sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace chainchaos::crypto {

class MontgomeryContext;

/// Unsigned big integer, little-endian limbs of 32 bits.
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t value);

  /// From big-endian bytes (leading zeros allowed).
  static BigInt from_bytes(BytesView be);

  /// From lower/upper-case hex (no prefix). Empty string -> 0.
  static BigInt from_hex(std::string_view hex);

  /// Uniform value with exactly `bits` bits (msb set). bits >= 2.
  static BigInt random_with_bits(Rng& rng, int bits);

  /// Big-endian bytes, minimal length (0 encodes as single 0x00).
  Bytes to_bytes() const;

  /// Big-endian bytes left-padded with zeros to `width` bytes.
  /// The value must fit.
  Bytes to_bytes_padded(std::size_t width) const;

  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  int bit_length() const;
  bool bit(int i) const;

  /// Value of the low 64 bits.
  std::uint64_t low_u64() const;

  // Comparison. Returns <0, 0, >0.
  static int compare(const BigInt& a, const BigInt& b);
  bool operator==(const BigInt& o) const { return compare(*this, o) == 0; }
  bool operator!=(const BigInt& o) const { return compare(*this, o) != 0; }
  bool operator<(const BigInt& o) const { return compare(*this, o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(*this, o) <= 0; }
  bool operator>(const BigInt& o) const { return compare(*this, o) > 0; }
  bool operator>=(const BigInt& o) const { return compare(*this, o) >= 0; }

  BigInt operator+(const BigInt& o) const;
  /// Requires *this >= o.
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator%(const BigInt& m) const;
  /// Floor division.
  BigInt operator/(const BigInt& d) const;
  BigInt operator<<(int bits) const;
  BigInt operator>>(int bits) const;

  /// (base ^ exp) mod m. Explicit edge-case semantics:
  ///   * m == 0 throws std::domain_error (there is no residue ring),
  ///   * m == 1 returns 0 (every value is congruent to 0 mod 1),
  ///   * exp == 0 returns 1 (for m > 1), exp == 1 returns base % m,
  ///   * base >= m is reduced first.
  /// Odd m > 1 dispatches to MontgomeryContext; even m falls back to
  /// mod_pow_classic. Both paths are bit-exact equal.
  static BigInt mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m);

  /// The plain square-and-multiply ladder with a full division per step.
  /// Same edge-case semantics as mod_pow. Works for any m >= 1 (even
  /// moduli included) and serves as the differential-testing reference
  /// for the Montgomery path.
  static BigInt mod_pow_classic(const BigInt& base, const BigInt& exp,
                                const BigInt& m);

  /// Greatest common divisor.
  static BigInt gcd(BigInt a, BigInt b);

  /// Modular inverse of a mod m; returns 0 if gcd(a, m) != 1.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

 private:
  friend class MontgomeryContext;  // reads/builds limb vectors directly

  void trim();
  static void divmod(const BigInt& num, const BigInt& den, BigInt& quot,
                     BigInt& rem);

  std::vector<std::uint32_t> limbs_;  // little-endian; empty == 0
};

/// Precomputed Montgomery state for one odd modulus > 1 (DESIGN.md
/// §5.12): modulus words, -n^{-1} mod 2^w and R^2 mod n with
/// R = 2^(w*k). pow() runs CIOS multiplication inside a sliding-window
/// ladder, so the per-step cost is one pass of multiply-accumulate
/// instead of a full Knuth division. Construction costs one divmod
/// (for R^2); contexts are immutable after that and safe to share
/// across threads — pow() keeps all scratch on its own stack.
class MontgomeryContext {
 public:
  /// The word type of the internal CIOS loops. Where the compiler has a
  /// 128-bit accumulator, 64-bit words quarter the partial-product
  /// count versus the BigInt's 32-bit limbs; the 32-bit fallback keeps
  /// the same algorithm on a 64-bit accumulator.
#if defined(__SIZEOF_INT128__)
  using Word = std::uint64_t;
#else
  using Word = std::uint32_t;
#endif

  /// Requires suitable(modulus); throws std::domain_error otherwise.
  explicit MontgomeryContext(const BigInt& modulus);

  /// Montgomery reduction needs gcd(modulus, 2^w) == 1: odd moduli > 1.
  static bool suitable(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }
  std::size_t word_count() const { return n_.size(); }

  /// (base ^ exp) mod modulus; bit-exact with BigInt::mod_pow_classic.
  BigInt pow(const BigInt& base, const BigInt& exp) const;

 private:
  /// out = a * b * R^{-1} mod n (CIOS). All pointers are k-word arrays;
  /// `scratch` holds k+1 words. `out` may alias `a` or `b`.
  void mont_mul(const Word* a, const Word* b, Word* out,
                Word* scratch) const;

  BigInt modulus_;
  std::vector<Word> n_;   ///< modulus words, little-endian
  std::vector<Word> rr_;  ///< R^2 mod n, k words
  Word n0inv_ = 0;        ///< -n^{-1} mod 2^w
};

}  // namespace chainchaos::crypto
