// ResultCache: sharded, fingerprint-keyed LRU cache of rendered analysis
// responses.
//
// The paper's corpus observation that motivates this: intermediates and
// whole served chains repeat heavily across domains (§4 folds duplicates
// with Cp[i] labels; a handful of CA chains dominate the Top 1M), so an
// online analysis service sees the same byte-identical chain over and
// over. The cache keys on SHA-256 over the request's concatenated chain
// DER (plus endpoint and query domain, which change the verdict), and
// stores the fully rendered JSON body — a hit skips parsing, analysis,
// linting and rendering entirely.
//
// Concurrency: the key space is striped over N independent shards, each
// a mutex-protected LRU list + index. Threads touching different shards
// never contend; SHA-256 uniformity spreads keys evenly. Counters
// (hits/misses/evictions/insertions) are per-shard and merged on read.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/bytes.hpp"

namespace chainchaos::service {

/// Merged cache counters (see ResultCache::stats()).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t entries = 0;  ///< currently resident

  double hit_ratio() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class ResultCache {
 public:
  /// `capacity` = maximum resident entries across all shards; 0 disables
  /// the cache (every get() misses, put() is a no-op). `shard_count` is
  /// clamped to [1, capacity] so every shard can hold at least one entry.
  explicit ResultCache(std::size_t capacity, std::size_t shard_count = 8);

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// `key` is a digest (any length ≥ 8; in practice SHA-256). Returns the
  /// cached value and refreshes its LRU position.
  std::optional<std::string> get(const Bytes& key);

  /// Inserts (or refreshes) `key`, evicting the shard's least recently
  /// used entry when the shard is full.
  void put(const Bytes& key, std::string value);

  /// Counters merged over all shards; consistent per shard, not globally
  /// atomic (fine for metrics).
  CacheStats stats() const;

 private:
  struct Shard {
    std::mutex mutex;
    /// Front = most recently used. Keys stored as raw digest strings.
    std::list<std::pair<std::string, std::string>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, std::string>>::iterator>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
  };

  Shard& shard_for(const Bytes& key);

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// The service's cache key: SHA-256 over endpoint, query domain, and the
/// concatenated DER of every certificate in the chain (length-prefixed so
/// (A,BC) and (AB,C) cannot collide).
Bytes result_cache_key(std::string_view endpoint, std::string_view domain,
                       const std::vector<Bytes>& chain_der);

}  // namespace chainchaos::service
