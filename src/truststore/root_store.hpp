// Root stores: the sets of trust anchors a client (or the server-side
// completeness analysis) accepts as chain termini.
//
// The paper checks incomplete chains against the Mozilla, Chrome,
// Microsoft and Apple root programs (§3.1) and quantifies how per-store
// differences change the result (Table 8). We model four synthetic
// programs that share a large common core and differ in a controlled
// handful of roots, plus the union store the paper uses as its baseline.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "x509/certificate.hpp"

namespace chainchaos::truststore {

/// A named set of trusted self-signed root certificates with the lookup
/// operations chain building needs.
class RootStore {
 public:
  RootStore() = default;
  explicit RootStore(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add(x509::CertPtr root);
  std::size_t size() const { return roots_.size(); }
  const std::vector<x509::CertPtr>& roots() const { return roots_; }

  /// Trust-anchor membership by exact DER fingerprint.
  bool contains(const x509::Certificate& cert) const;

  /// Roots whose SKID equals `akid` (the completeness analysis' first
  /// probe for a missing parent).
  std::vector<x509::CertPtr> find_by_key_id(BytesView akid) const;

  /// Roots whose subject DN equals `issuer_dn`.
  std::vector<x509::CertPtr> find_by_subject(const asn1::Name& issuer_dn) const;

  /// Union of this store and another (deduplicated by fingerprint).
  RootStore merged_with(const RootStore& other, std::string merged_name) const;

 private:
  std::string name_;
  std::vector<x509::CertPtr> roots_;
};

/// The four synthetic root programs plus their union.
///
/// Layout (sized so Table 8's "root store differences have limited
/// impact" observation reproduces): a shared core trusted by all four
/// programs, plus small per-program exclusive sets. Store contents are
/// deterministic — the same call always yields identical stores.
struct ProgramStores {
  RootStore mozilla;
  RootStore chrome;
  RootStore microsoft;
  RootStore apple;
  RootStore union_store;  ///< paper's baseline for completeness analysis

  const RootStore& by_name(std::string_view name) const;
};

/// Builds the program stores over the given set of root certificates.
/// `core` roots go into every program; each entry of `exclusive`
/// assigns one root to a subset of programs (bitmask: 1=mozilla,
/// 2=chrome, 4=microsoft, 8=apple).
ProgramStores make_program_stores(
    const std::vector<x509::CertPtr>& core,
    const std::vector<std::pair<x509::CertPtr, unsigned>>& exclusive);

}  // namespace chainchaos::truststore
