// Log-spaced duration buckets and quantile estimation, shared by the
// tracer's per-stage statistics and service::Metrics.
//
// Quantiles come from linear interpolation inside the bucket that holds
// the target rank — the classic Prometheus histogram_quantile() model —
// so an 8-bucket histogram yields a usable p50/p99 without storing raw
// samples. The math lives here, once, and tests pin it on hand-built
// bucket contents.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace chainchaos::obs {

/// Upper bounds (ns) of the tracer's duration buckets; the last bucket
/// is unbounded. Geometric ×4 steps from 1µs to ~4.3s cover everything
/// from a single DER parse to a pathological AIA-laden build.
inline constexpr std::array<std::uint64_t, 12> kDurationBucketUpperNs = {
    1'000,         4'000,         16'000,        64'000,
    256'000,       1'024'000,     4'096'000,     16'384'000,
    65'536'000,    262'144'000,   1'048'576'000, 4'294'967'296};

inline constexpr std::size_t kDurationBucketCount =
    kDurationBucketUpperNs.size() + 1;

/// Bucket index for one observation (last bucket = overflow).
std::size_t duration_bucket(std::uint64_t ns);

/// Estimates the q-quantile (q in [0,1]) of a log-bucketed histogram by
/// linear interpolation within the bucket containing the target rank.
///
/// `counts` has one more entry than `upper_bounds` (the trailing +Inf
/// bucket). Conventions, pinned by tests:
///   * empty histogram -> 0;
///   * the first bucket interpolates from lower bound 0;
///   * a rank landing in the +Inf bucket returns the largest finite
///     bound (there is nothing defensible to interpolate toward).
double quantile_from_buckets(const std::uint64_t* counts,
                             std::size_t bucket_count,
                             const std::uint64_t* upper_bounds,
                             double q);

}  // namespace chainchaos::obs
