// The sharded batch-analysis engine: corpus traversal, end to end.
//
// The paper's server-side pipeline (§4) analyzes ~1M domains per scan;
// walking that single-threaded leaves every core but one idle. The
// engine owns the traversal instead: the record range is cut into
// contiguous shards, a fixed pool of workers (`std::thread`, default
// hardware_concurrency) pulls shards from a shared atomic cursor
// (work-stealing — fast workers drain the queue, no static partition
// imbalance), and each worker accounts into its own ShardTally. After
// the sweep the per-worker tallies are merged. Because tallies are
// commutative sums and every per-record computation is a pure function
// of the record (see the thread-safety notes on ComplianceAnalyzer and
// PathBuilder), results are byte-identical regardless of thread count
// or shard boundaries.
//
// Three consumers share this one entry point:
//   * compliance sweeps   — AnalysisRequest::analyzer (measure_corpus,
//                           bench/table3/5/7),
//   * attribution tallies — AnalysisRequest::key_of (bench/table10/11),
//   * differential sweeps — difftest::DifferentialHarness::run, which
//                           rides for_each_shard directly (its output is
//                           one DomainDiff per record, written by index).
// Anything else hooks in via the per_record callback.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "crypto/verifier.hpp"
#include "dataset/corpus.hpp"
#include "engine/tally.hpp"

namespace chainchaos::engine {

/// Where a sweep's records come from. The engine only ever touches a
/// record inside a shard-sized visit, so a source may materialize
/// records lazily (the packed-corpus reader decodes each record from a
/// memory-mapped file and discards it after the callback) or hand out
/// references into long-lived storage (the in-RAM corpus vector).
/// Implementations must tolerate concurrent visit() calls from
/// different workers on disjoint ranges.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  /// Total records in the source.
  virtual std::size_t size() const = 0;

  /// Invokes `fn(record, index)` for every index in [first, last), in
  /// ascending order. The record reference is only guaranteed valid for
  /// the duration of the callback.
  virtual void visit(
      std::size_t first, std::size_t last,
      const std::function<void(const dataset::DomainRecord&, std::size_t)>&
          fn) const = 0;
};

/// RecordSource over an in-RAM record vector (the historical sweep
/// input): visit() hands out references into the vector, no copies.
class VectorRecordSource final : public RecordSource {
 public:
  explicit VectorRecordSource(
      const std::vector<dataset::DomainRecord>* records)
      : records_(records) {}

  std::size_t size() const override {
    return records_ != nullptr ? records_->size() : 0;
  }

  void visit(std::size_t first, std::size_t last,
             const std::function<void(const dataset::DomainRecord&,
                                      std::size_t)>& fn) const override {
    for (std::size_t i = first; i < last; ++i) fn((*records_)[i], i);
  }

 private:
  const std::vector<dataset::DomainRecord>* records_;
};

/// Worker-pool shape shared by every engine entry point.
struct ShardOptions {
  unsigned threads = 0;        ///< 0 = std::thread::hardware_concurrency
  std::size_t shard_size = 0;  ///< records per work unit; 0 = auto
};

/// Resolves a requested thread count (0 -> hardware_concurrency, at
/// least 1).
unsigned resolve_threads(unsigned requested);

/// The shard size the pool will actually use for `count` records (auto
/// mode aims for several shards per worker so stealing can balance).
std::size_t resolve_shard_size(std::size_t count, unsigned threads,
                               std::size_t requested);

/// Low-level sharded parallel-for over [0, count). `shard_fn(first,
/// last, worker)` is invoked once per shard with the half-open record
/// range and the index (< threads) of the worker running it; workers
/// steal shards from a shared cursor until the range is drained. Blocks
/// until every shard completed. `shard_fn` must be safe to call
/// concurrently from different workers on disjoint ranges.
void for_each_shard(std::size_t count, const ShardOptions& options,
                    const std::function<void(std::size_t first,
                                             std::size_t last,
                                             unsigned worker)>& shard_fn);

/// One progress report from a running sweep (DESIGN.md §5.16). Built
/// from shared relaxed atomics the workers bump as shards finish — the
/// reporting path never touches the tallies, so enabling progress can
/// not perturb the byte-identical summary contract.
struct SweepProgress {
  std::size_t records_done = 0;   ///< records visited so far
  std::size_t records_total = 0;  ///< source size (before filtering)
  std::size_t shards_done = 0;
  std::size_t shard_count = 0;
  double elapsed_seconds = 0.0;
  double records_per_second = 0.0;
  double eta_seconds = 0.0;  ///< at the current rate; 0 when done/unknown
  bool final_report = false;  ///< the one guaranteed 100% report
};

/// Receives SweepProgress callbacks during engine::run. on_progress may
/// be invoked concurrently from any worker thread (whichever worker
/// crosses the reporting interval delivers the report), so
/// implementations must be thread-safe. Reports are rate-limited to the
/// request's progress_interval_ms; ordering across workers is not
/// guaranteed — consumers wanting monotonic output should track the
/// highest records_done they have seen.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void on_progress(const SweepProgress& progress) = 0;
};

/// One batch-analysis job over a record range.
struct AnalysisRequest {
  /// The records to analyze (must outlive the run). Ignored when
  /// `source` is set; exactly one of the two must be non-null.
  const std::vector<dataset::DomainRecord>* records = nullptr;

  /// Alternative record supply: any RecordSource (the packed-corpus
  /// mmap reader, a filtered view, ...). When set it wins over
  /// `records`. Must outlive the run.
  const RecordSource* source = nullptr;

  ShardOptions shards;

  /// When set, every record is run through the analyzer and accounted
  /// into ShardTally::compliance. The analyzer's analyze() is const and
  /// concurrency-safe (see chain/analyzer.hpp).
  const chain::ComplianceAnalyzer* analyzer = nullptr;

  /// Optional record filter: return false to skip (e.g. exemplars).
  std::function<bool(const dataset::DomainRecord&)> filter;

  /// Optional attribution key (server software, CA name, ...): each
  /// analyzed record is additionally accounted into
  /// ShardTally::by_key[key_of(record)]. Requires `analyzer`.
  std::function<std::string(const dataset::DomainRecord&)> key_of;

  /// Optional custom per-record hook. `report` is non-null iff
  /// `analyzer` is set. The callback must only touch `tally` (its
  /// worker's private accumulator) and its own captured thread-safe
  /// state; it runs concurrently across workers.
  std::function<void(const dataset::DomainRecord& record, std::size_t index,
                     const chain::ComplianceReport* report,
                     ShardTally& tally)>
      per_record;

  /// Sweep-wide signature-verification memo (DESIGN.md §5.12). Every
  /// worker shares the one memo via a thread-local scope installed for
  /// the duration of its shards; the memo's counters are atomics and
  /// merge across workers by construction. nullptr = the process-wide
  /// memo (the daemon's accumulator). The memo only short-circuits
  /// repeat (TBS, key, signature) triples, so tallies are byte-identical
  /// with it on, off, or shared between runs.
  crypto::VerifyMemo* verify_memo = nullptr;

  /// false: workers verify with no memo at all (the determinism tests'
  /// memo-off arm; also the escape hatch if residency ever matters more
  /// than repeat suppression).
  bool verify_memo_enabled = true;

  /// Optional sweep-progress consumer (records/sec, shard completion,
  /// ETA). Reports fire at most every progress_interval_ms plus one
  /// final 100% report; null = no reporting, zero overhead.
  ProgressSink* progress = nullptr;
  int progress_interval_ms = 500;
};

struct AnalysisResult {
  ShardTally tally;  ///< merged over all workers

  std::size_t records_processed = 0;  ///< passed the filter
  std::size_t records_skipped = 0;
  unsigned threads_used = 0;
  std::size_t shard_count = 0;
  double elapsed_seconds = 0.0;

  /// This sweep's verification-memo activity: counter fields are the
  /// delta over the run (even on the shared process memo), `entries` is
  /// the residency after the sweep. All zero when the memo was disabled.
  crypto::VerifyMemoStats verify_memo;

  double records_per_second() const {
    return elapsed_seconds > 0.0
               ? static_cast<double>(records_processed) / elapsed_seconds
               : 0.0;
  }
};

/// Runs the job: shards the record range over the worker pool, accounts
/// per-worker, merges. Deterministic for any thread count.
AnalysisResult run(const AnalysisRequest& request);

}  // namespace chainchaos::engine
