// Minimal HTTP/1.1 message codec — the transport beneath AIA fetching
// and the chaind analysis service (src/service/).
//
// RFC 5280 delivers caIssuers material over plain HTTP, and the paper's
// privacy/security caveats about AIA stem from exactly that. The
// repository therefore speaks real HTTP framing internally: every fetch
// encodes a GET request, routes it to the in-process origin, and parses
// the response — so tests exercise the same encode/parse path a real
// client would, including malformed-response handling. The same codec
// frames the daemon's loopback socket traffic, where the peer is
// untrusted: parsing enforces hard caps on header volume and a strict
// Content-Length grammar (digits only — no sign, no whitespace, no
// overflow wrap).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "support/bytes.hpp"
#include "support/result.hpp"

namespace chainchaos::net {

/// Hard limits applied to messages read from untrusted sockets.
inline constexpr std::size_t kMaxHeaderBytes = 16 * 1024;  ///< request line + headers
inline constexpr std::size_t kMaxHeaderCount = 64;
inline constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

/// Parsed absolute http:// URL (the only scheme AIA uses in practice —
/// https would be circular).
struct Url {
  std::string host;  ///< may include :port
  std::string path;  ///< always starts with '/'
};

/// Parses "http://host[:port]/path". Rejects other schemes.
Result<Url> parse_url(const std::string& url);

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string host;
  std::map<std::string, std::string> headers;  ///< lower-cased names
  Bytes body;

  /// Sets Content-Length from the body automatically (when non-empty).
  std::string encode() const;
};

/// Parses exactly one request message (request line, headers, body).
/// `raw` must contain the whole frame — use probe_request_frame() to
/// find its extent when reading from a socket. Enforces kMaxHeaderBytes
/// / kMaxHeaderCount / kMaxBodyBytes and rejects duplicate, signed,
/// non-numeric, or overflowing Content-Length values, and any body bytes
/// beyond the declared length.
Result<HttpRequest> parse_request(const std::string& raw);

/// Incremental framing probe for a socket reader: given the bytes
/// received so far, reports whether a complete request message is
/// present and how long it is.
struct RequestFrame {
  bool complete = false;        ///< full header + body received
  std::size_t total_bytes = 0;  ///< frame length when complete
};

/// Returns an error as soon as the prefix is hopeless (header section
/// over kMaxHeaderBytes, bad Content-Length, body over kMaxBodyBytes) so
/// servers can reject slow-loris or oversized uploads without buffering
/// them to completion.
Result<RequestFrame> probe_request_frame(std::string_view raw);

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;  ///< lower-cased names
  Bytes body;

  /// Sets Content-Length from the body automatically.
  Bytes encode() const;
};

Result<HttpResponse> parse_response(BytesView raw);

/// Incremental framing probe for a client reading pipelined responses:
/// given the bytes received so far, reports whether a complete response
/// message is present and how long it is. Unlike parse_response (which
/// may treat everything-to-EOF as the body), a pipelined stream has no
/// EOF delimiter, so a complete header section without a Content-Length
/// is an error ("http.missing_content_length") — chaind always sends
/// one, and anything else cannot be framed.
struct ResponseFrame {
  bool complete = false;        ///< full header + body received
  std::size_t total_bytes = 0;  ///< frame length when complete
};

Result<ResponseFrame> probe_response_frame(std::string_view raw);

/// True when the header map carries "connection: close" (any case).
bool wants_close(const std::map<std::string, std::string>& headers);

/// Canonical response helpers.
HttpResponse http_ok(Bytes body, const std::string& content_type);
HttpResponse http_not_found();

}  // namespace chainchaos::net
