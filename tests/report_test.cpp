#include <gtest/gtest.h>

#include <limits>

#include "report/json.hpp"
#include "report/table.hpp"

namespace chainchaos::report {
namespace {

TEST(TableTest, RendersHeaderRuleAndRows) {
  Table table("Demo");
  table.header({"Type", "Count"});
  table.row({"alpha", "1"});
  table.row({"beta-longer", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("Type"), std::string::npos);
  EXPECT_NE(out.find("beta-longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Columns align: "Count" and "22" start at the same offset.
  const auto line_with = [&out](const std::string& needle) {
    const std::size_t pos = out.find(needle);
    const std::size_t line_start = out.rfind('\n', pos);
    return pos - (line_start == std::string::npos ? 0 : line_start + 1);
  };
  EXPECT_EQ(line_with("Count"), line_with("22"));
}

TEST(TableTest, ToleratesRaggedRows) {
  Table table("Ragged");
  table.header({"A", "B", "C"});
  table.row({"only-one"});
  EXPECT_NE(table.render().find("only-one"), std::string::npos);
}

TEST(FormattingTest, Percentages) {
  EXPECT_EQ(pct(1, 4), "25.0%");
  EXPECT_EQ(pct(1, 3), "33.3%");
  EXPECT_EQ(pct(0, 100), "0.0%");
  // An empty population has no rate: never fabricate "0.0%".
  EXPECT_EQ(pct(5, 0), "n/a");
  EXPECT_EQ(pct(0, 0), "n/a");
}

TEST(FormattingTest, ThousandsSeparators) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(906336), "906,336");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(JsonWriterTest, EscapesControlQuotesAndBackslash) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
}

TEST(JsonWriterTest, NestedContainersGetCommasRight) {
  JsonWriter w;
  w.begin_object();
  w.key("n").value(std::uint64_t{42});
  w.key("list").begin_array();
  w.value("a").value("b");
  w.begin_object().key("x").value(true).end_object();
  w.end_array();
  w.key("none").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"n":42,"list":["a","b",{"x":true}],"none":null})");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(1.5);
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[1.5,null,null]");
}

TEST(FormattingTest, CountPctMatchesPaperStyle) {
  EXPECT_EQ(count_pct(16952, 906336), "16,952 (1.9%)");
  EXPECT_EQ(count_pct(0, 10), "0 (0.0%)");
  EXPECT_EQ(count_pct(0, 0), "0 (n/a)");
}

}  // namespace
}  // namespace chainchaos::report
