// Certificate-level lint rules: DER strictness and RFC 5280 profile
// checks over a single parsed certificate.
//
// The DER-strictness rules re-scan the certificate's raw encoding
// (cert.der / cert.tbs_der) rather than the parsed fields, because the
// defects they hunt — non-minimal length encodings, negative or
// oversized serials, the wrong validity time type — are erased by
// parsing. The reader (asn1/der.cpp) deliberately tolerates a few
// BER-isms (leading-zero long-form lengths) so that real-world bytes
// parse; chainlint is where that leniency is reported.
#include <string>

#include "asn1/der.hpp"
#include "lint/registry.hpp"
#include "support/str.hpp"

namespace chainchaos::lint {
namespace {

using asn1::DerReader;
using asn1::Tag;

// 2050-01-01T00:00:00Z — RFC 5280 §4.1.2.5: validity dates through 2049
// MUST be UTCTime; GeneralizedTime starts here.
constexpr std::int64_t kYear2050 = 2524608000;

// ---- raw DER helpers ------------------------------------------------------

/// Walks every TLV in `der` (recursing into constructed values) and
/// reports the first non-minimal length encoding: long form where short
/// form suffices, or long form with excess leading octets. Returns the
/// byte offset of the offending length, or npos when the encoding is
/// minimal throughout. Malformed structure aborts the walk silently —
/// anything reaching lint already survived parse_certificate().
constexpr std::size_t kClean = static_cast<std::size_t>(-1);

std::size_t scan_nonminimal_length(BytesView der,
                                   std::size_t depth = asn1::kMaxNestingDepth) {
  if (depth == 0) return kClean;  // parse_certificate's gate makes this
                                  // unreachable; belt and braces.
  std::size_t pos = 0;
  while (pos < der.size()) {
    const std::uint8_t tag = der[pos++];
    if ((tag & 0x1f) == 0x1f) {  // multi-byte tag (never emitted here)
      while (pos < der.size() && (der[pos] & 0x80)) ++pos;
      if (pos++ >= der.size()) return kClean;
    }
    if (pos >= der.size()) return kClean;
    const std::size_t length_at = pos;
    std::size_t length = der[pos++];
    if (length & 0x80) {
      const std::size_t num_octets = length & 0x7f;
      if (num_octets == 0 || num_octets > 8 ||
          pos + num_octets > der.size()) {
        return kClean;  // indefinite/corrupt: not our rule's business
      }
      if (der[pos] == 0x00) return length_at;  // excess leading octet
      length = 0;
      for (std::size_t i = 0; i < num_octets; ++i) {
        length = (length << 8) | der[pos++];
      }
      if (length < 0x80) return length_at;  // short form would do
    }
    if (length > der.size() - pos) return kClean;
    if (tag & 0x20) {  // constructed: recurse into the body
      const std::size_t inner =
          scan_nonminimal_length(der.subspan(pos, length), depth - 1);
      if (inner != kClean) return pos + inner;
    }
    pos += length;
  }
  return kClean;
}

/// The raw TBS facts parsing normalizes away: the serial INTEGER's
/// content octets and the tag bytes of the two validity times.
struct RawTbs {
  bool ok = false;
  Bytes serial_body;
  std::uint8_t not_before_tag = 0;
  std::uint8_t not_after_tag = 0;
};

RawTbs read_raw_tbs(const x509::Certificate& cert) {
  RawTbs raw;
  DerReader outer(cert.tbs_der);
  auto tbs = outer.read(Tag::kSequence);
  if (!tbs.ok()) return raw;
  DerReader body(tbs.value().body);
  auto version_tag = body.peek_tag();
  if (version_tag.ok() &&
      version_tag.value() == asn1::context_constructed(0)) {
    if (!body.read_any().ok()) return raw;
  }
  auto serial = body.read(Tag::kInteger);
  if (!serial.ok()) return raw;
  raw.serial_body = std::move(serial.value().body);
  if (!body.read(Tag::kSequence).ok()) return raw;  // signature algorithm
  if (!body.read(Tag::kSequence).ok()) return raw;  // issuer
  auto validity = body.read(Tag::kSequence);
  if (!validity.ok()) return raw;
  DerReader times(validity.value().body);
  auto nb = times.read_any();
  if (!nb.ok()) return raw;
  auto na = times.read_any();
  if (!na.ok()) return raw;
  raw.not_before_tag = nb.value().tag;
  raw.not_after_tag = na.value().tag;
  raw.ok = true;
  return raw;
}

bool is_zero_integer(const Bytes& body) {
  for (std::uint8_t b : body) {
    if (b != 0) return false;
  }
  return true;
}

/// "scheme://non-empty" with an http(s) scheme — the only accessLocation
/// form AIA chasing can act on.
bool well_formed_http_uri(const std::string& uri) {
  std::string_view rest;
  if (starts_with(uri, "http://")) {
    rest = std::string_view(uri).substr(7);
  } else if (starts_with(uri, "https://")) {
    rest = std::string_view(uri).substr(8);
  } else {
    return false;
  }
  if (rest.empty() || rest.front() == '/') return false;
  for (char c : rest) {
    if (c == ' ' || static_cast<unsigned char>(c) < 0x21) return false;
  }
  return true;
}

// ---- checks ---------------------------------------------------------------

void check_der_nonminimal_length(const CertContext& ctx, Emitter& out) {
  const std::size_t at = scan_nonminimal_length(ctx.cert.der);
  if (at != kClean) {
    out.fire("non-minimal length encoding at byte offset " +
             std::to_string(at));
  }
}

void check_serial_not_positive(const CertContext& ctx, Emitter& out) {
  const RawTbs raw = read_raw_tbs(ctx.cert);
  if (!raw.ok || raw.serial_body.empty()) return;
  if (raw.serial_body[0] & 0x80) {
    out.fire("serial encodes a negative INTEGER");
  } else if (is_zero_integer(raw.serial_body)) {
    out.fire("serial is zero");
  }
}

void check_serial_too_long(const CertContext& ctx, Emitter& out) {
  const RawTbs raw = read_raw_tbs(ctx.cert);
  if (raw.ok && raw.serial_body.size() > 20) {
    out.fire(std::to_string(raw.serial_body.size()) +
             " content octets (limit 20)");
  }
}

void check_wrong_validity_encoding(const CertContext& ctx, Emitter& out) {
  const RawTbs raw = read_raw_tbs(ctx.cert);
  if (!raw.ok) return;
  const auto generalized = static_cast<std::uint8_t>(Tag::kGeneralizedTime);
  if (raw.not_before_tag == generalized && ctx.cert.not_before < kYear2050) {
    out.fire("notBefore predates 2050 but uses GeneralizedTime");
  } else if (raw.not_after_tag == generalized &&
             ctx.cert.not_after < kYear2050) {
    out.fire("notAfter predates 2050 but uses GeneralizedTime");
  }
}

void check_validity_inverted(const CertContext& ctx, Emitter& out) {
  if (ctx.cert.not_after < ctx.cert.not_before) {
    out.fire("notAfter precedes notBefore");
  }
}

void check_expired(const CertContext& ctx, Emitter& out) {
  if (ctx.options.now == 0) return;  // time-dependent rule disabled
  if (ctx.cert.not_after < ctx.options.now) {
    out.fire("expired " +
             std::to_string(ctx.options.now - ctx.cert.not_after) +
             "s before the reference time");
  }
}

void check_ca_no_ski(const CertContext& ctx, Emitter& out) {
  if (ctx.cert.is_ca() && !ctx.cert.subject_key_id.has_value()) {
    out.fire();
  }
}

void check_no_aki(const CertContext& ctx, Emitter& out) {
  if (!ctx.cert.authority_key_id.has_value() && !ctx.cert.is_self_issued()) {
    out.fire();
  }
}

void check_ca_no_keycertsign(const CertContext& ctx, Emitter& out) {
  if (ctx.cert.is_ca() && ctx.cert.key_usage.has_value() &&
      !ctx.cert.key_usage->key_cert_sign) {
    out.fire();
  }
}

void check_keycertsign_not_ca(const CertContext& ctx, Emitter& out) {
  if (ctx.cert.key_usage.has_value() && ctx.cert.key_usage->key_cert_sign &&
      !ctx.cert.is_ca()) {
    out.fire();
  }
}

void check_aia_url_malformed(const CertContext& ctx, Emitter& out) {
  if (!ctx.cert.aia.has_value()) return;
  if (ctx.cert.aia->ca_issuers_uri.has_value() &&
      !well_formed_http_uri(*ctx.cert.aia->ca_issuers_uri)) {
    out.fire("caIssuers: \"" + *ctx.cert.aia->ca_issuers_uri + "\"");
  } else if (ctx.cert.aia->ocsp_uri.has_value() &&
             !well_formed_http_uri(*ctx.cert.aia->ocsp_uri)) {
    out.fire("ocsp: \"" + *ctx.cert.aia->ocsp_uri + "\"");
  }
}

void check_leaf_no_san(const CertContext& ctx, Emitter& out) {
  if (ctx.cert.is_ca()) return;
  if (!ctx.cert.subject_alt_name.has_value() ||
      ctx.cert.subject_alt_name->empty()) {
    out.fire();
  }
}

}  // namespace

std::vector<CertRule> builtin_cert_rules() {
  return {
      {{"cert.der_nonminimal_length", Severity::kError, "ITU-T X.690 §10.1",
        "DER requires the shortest possible length encoding; this "
        "certificate uses a long-form or zero-padded length where a "
        "shorter form exists"},
       check_der_nonminimal_length},
      {{"cert.serial_not_positive", Severity::kError, "RFC 5280 §4.1.2.2",
        "serialNumber MUST be a positive integer"},
       check_serial_not_positive},
      {{"cert.serial_too_long", Severity::kWarn, "RFC 5280 §4.1.2.2",
        "serialNumber MUST NOT be longer than 20 octets"},
       check_serial_too_long},
      {{"cert.wrong_validity_encoding", Severity::kNotice,
        "RFC 5280 §4.1.2.5",
        "validity dates through 2049 MUST be encoded as UTCTime, not "
        "GeneralizedTime"},
       check_wrong_validity_encoding},
      {{"cert.validity_inverted", Severity::kError, "RFC 5280 §4.1.2.5",
        "notAfter precedes notBefore: the validity window is empty"},
       check_validity_inverted},
      {{"cert.expired", Severity::kWarn, "RFC 5280 §4.1.2.5",
        "the certificate's validity window has elapsed at the reference "
        "time"},
       check_expired},
      {{"cert.ca_no_ski", Severity::kWarn, "RFC 5280 §4.2.1.2",
        "CA certificates MUST include a Subject Key Identifier"},
       check_ca_no_ski},
      {{"cert.no_aki", Severity::kWarn, "RFC 5280 §4.2.1.1",
        "certificates MUST include an Authority Key Identifier unless "
        "self-issued"},
       check_no_aki},
      {{"cert.ca_no_keycertsign", Severity::kError, "RFC 5280 §4.2.1.3",
        "a CA certificate that asserts KeyUsage MUST assert keyCertSign"},
       check_ca_no_keycertsign},
      {{"cert.keycertsign_not_ca", Severity::kError, "RFC 5280 §4.2.1.9",
        "keyCertSign is asserted but the basicConstraints CA bit is not"},
       check_keycertsign_not_ca},
      {{"cert.aia_url_malformed", Severity::kWarn, "RFC 5280 §4.2.2.1",
        "an authorityInfoAccess accessLocation is not a well-formed "
        "http(s) URI"},
       check_aia_url_malformed},
      {{"cert.leaf_no_san", Severity::kWarn,
        "CA/B Forum BR §7.1.4.2.1; RFC 2818 §3.1",
        "server certificates must carry their identities in "
        "subjectAltName"},
       check_leaf_no_san},
  };
}

}  // namespace chainchaos::lint
