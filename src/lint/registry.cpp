#include "lint/registry.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace chainchaos::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarn: return "warn";
    case Severity::kInfo: return "info";
    case Severity::kNotice: return "notice";
  }
  return "?";
}

// Defined by the rule tables (cert_rules.cpp / chain_rules.cpp).
std::vector<CertRule> builtin_cert_rules();
std::vector<ChainRule> builtin_chain_rules();

namespace {

template <typename T>
std::vector<T> sorted_by_id(std::vector<T> rules) {
  std::sort(rules.begin(), rules.end(),
            [](const T& a, const T& b) { return a.rule.id < b.rule.id; });
  for (std::size_t i = 1; i < rules.size(); ++i) {
    assert(rules[i - 1].rule.id != rules[i].rule.id && "duplicate rule ID");
  }
  return rules;
}

}  // namespace

const std::vector<CertRule>& cert_rules() {
  static const std::vector<CertRule> rules =
      sorted_by_id(builtin_cert_rules());
  return rules;
}

const std::vector<ChainRule>& chain_rules() {
  static const std::vector<ChainRule> rules =
      sorted_by_id(builtin_chain_rules());
  return rules;
}

std::vector<const Rule*> all_rules() {
  std::vector<const Rule*> out;
  out.reserve(cert_rules().size() + chain_rules().size());
  for (const CertRule& r : cert_rules()) out.push_back(&r.rule);
  for (const ChainRule& r : chain_rules()) out.push_back(&r.rule);
  std::sort(out.begin(), out.end(),
            [](const Rule* a, const Rule* b) { return a->id < b->id; });
  return out;
}

namespace {

struct FamilyRegistry {
  std::mutex mu;
  std::vector<const std::vector<Rule>*> families;
};

FamilyRegistry& family_registry() {
  static FamilyRegistry registry;
  return registry;
}

}  // namespace

void register_rule_family(const std::vector<Rule>* family) {
  if (family == nullptr) return;
  FamilyRegistry& registry = family_registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const std::vector<Rule>* existing : registry.families) {
    if (existing == family) return;
  }
  registry.families.push_back(family);
}

const Rule* find_rule(std::string_view id) {
  for (const CertRule& r : cert_rules()) {
    if (r.rule.id == id) return &r.rule;
  }
  for (const ChainRule& r : chain_rules()) {
    if (r.rule.id == id) return &r.rule;
  }
  FamilyRegistry& registry = family_registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const std::vector<Rule>* family : registry.families) {
    for (const Rule& rule : *family) {
      if (rule.id == id) return &rule;
    }
  }
  return nullptr;
}

}  // namespace chainchaos::lint
