// chainlint rule registry.
//
// Rules are registered at compile time: cert_rules.cpp and
// chain_rules.cpp each define a static table of {descriptor, check
// function} pairs, and the registry concatenates them (sorted by ID,
// asserted unique) on first use. Checks are plain function pointers —
// every rule is a stateless pure function of its context — so the
// registry is immutable after construction and safe to share across the
// engine's worker threads.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "chain/analyzer.hpp"
#include "lint/rule.hpp"

namespace chainchaos::lint {

/// Shared knobs for a lint pass.
struct LintOptions {
  /// Reference time (unix seconds) for expiry rules. 0 disables the
  /// time-dependent rules — corpus sweeps pass a fixed timestamp so
  /// results stay deterministic across runs.
  std::int64_t now = 0;
};

/// Context handed to certificate-level checks: one member of a served
/// list (or a standalone certificate: index 0 of a size-1 "chain").
struct CertContext {
  const x509::Certificate& cert;
  std::size_t index = 0;
  std::size_t chain_size = 1;
  const LintOptions& options;
};

/// Context handed to chain-level checks. The compliance report comes
/// from the same chain:: analyzers the engine tallies ride on, so lint
/// findings and corpus tallies can never disagree.
struct ChainContext {
  const chain::ChainObservation& observation;
  const chain::ComplianceReport& report;
  const LintOptions& options;
};

/// Sink for fired rules; binds the rule under evaluation to the report
/// being assembled.
class Emitter {
 public:
  Emitter(const Rule& rule, int default_cert_index,
          std::vector<Finding>& out)
      : rule_(rule), default_index_(default_cert_index), out_(out) {}

  void fire(std::string detail = {}) { fire_at(default_index_, std::move(detail)); }

  void fire_at(int cert_index, std::string detail = {}) {
    out_.push_back(Finding{&rule_, cert_index, std::move(detail)});
  }

 private:
  const Rule& rule_;
  int default_index_;
  std::vector<Finding>& out_;
};

using CertCheck = void (*)(const CertContext&, Emitter&);
using ChainCheck = void (*)(const ChainContext&, Emitter&);

struct CertRule {
  Rule rule;
  CertCheck check;
};

struct ChainRule {
  Rule rule;
  ChainCheck check;
};

/// Certificate-level rules, sorted by ID.
const std::vector<CertRule>& cert_rules();

/// Chain-level rules, sorted by ID.
const std::vector<ChainRule>& chain_rules();

/// Every registered rule descriptor (cert + chain), sorted by ID.
std::vector<const Rule*> all_rules();

/// Descriptor lookup; nullptr when the ID is unknown. Resolves both the
/// built-in chainlint rules and any auxiliary families registered via
/// register_rule_family().
const Rule* find_rule(std::string_view id);

/// Registers an auxiliary family of rule descriptors (e.g. the parsdiff
/// PD-* discrepancy classes) so find_rule() can resolve their IDs with
/// the same severity/citation metadata as chainlint rules. Auxiliary
/// families are deliberately NOT folded into all_rules(): the lint JSON
/// rule listing stays byte-identical, and each family surfaces through
/// its own subsystem's report. Pointers must stay valid for the process
/// lifetime (point them at static tables). Registering the same family
/// pointer twice is a no-op; thread-safe.
void register_rule_family(const std::vector<Rule>* family);

}  // namespace chainchaos::lint
