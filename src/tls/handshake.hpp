// In-process TLS handshake simulation: a ChainServer that serves its
// configured certificate list over the real Certificate-message wire
// format, and a TlsClient that decodes it and runs its profile's path
// builder — the end-to-end loop a downstream user of this library drives
// (see examples/quickstart.cpp).
#pragma once

#include <string>
#include <vector>

#include "pathbuild/path_builder.hpp"
#include "tls/certificate_message.hpp"
#include "tls/record.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::tls {

/// A server endpoint: a hostname plus the certificate list its operator
/// configured (possibly non-compliant — that is the point).
class ChainServer {
 public:
  ChainServer(std::string hostname, std::vector<x509::CertPtr> chain)
      : hostname_(std::move(hostname)), chain_(std::move(chain)) {}

  const std::string& hostname() const { return hostname_; }
  const std::vector<x509::CertPtr>& chain() const { return chain_; }

  /// The Certificate handshake message this server sends.
  Bytes certificate_message(TlsVersion version) const {
    return encode_certificate_message(chain_, version);
  }

  /// The same message framed into TLS records (fragmented at 2^14).
  Bytes certificate_records(TlsVersion version) const {
    return encode_records(ContentType::kHandshake,
                          certificate_message(version));
  }

 private:
  std::string hostname_;
  std::vector<x509::CertPtr> chain_;
};

/// Outcome of a simulated handshake from the client's perspective.
struct HandshakeOutcome {
  bool wire_ok = false;      ///< records + Certificate message decoded
  pathbuild::BuildResult build;
  std::string error;         ///< wire-level error, when !wire_ok

  /// The alert the client would send back (close_notify on success).
  AlertDescription alert = AlertDescription::kInternalError;
  /// That alert as a ready-to-send TLS record.
  Bytes alert_record;

  bool connected() const { return wire_ok && build.ok(); }
};

/// Performs one handshake: decode the server's Certificate message with
/// the given TLS version, then construct+validate via `builder`.
HandshakeOutcome simulate_handshake(const ChainServer& server,
                                    const pathbuild::PathBuilder& builder,
                                    TlsVersion version = TlsVersion::kTls13);

}  // namespace chainchaos::tls
