#include "crypto/bigint.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace chainchaos::crypto {

BigInt::BigInt(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes(BytesView be) {
  BigInt out;
  out.limbs_.assign((be.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    // byte i (from the end) goes to limb i/4, shift (i%4)*8
    const std::size_t from_end = be.size() - 1 - i;
    out.limbs_[i / 4] |= static_cast<std::uint32_t>(be[from_end]) << (8 * (i % 4));
  }
  out.trim();
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  const auto bytes = hex_decode(padded);
  if (!bytes) throw std::invalid_argument("BigInt::from_hex: bad hex");
  return from_bytes(*bytes);
}

BigInt BigInt::random_with_bits(Rng& rng, int bits) {
  assert(bits >= 2);
  BigInt out;
  const int limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng.next());
  // Clear bits above `bits`, then force the top bit.
  const int top_bits = bits - 32 * (limbs - 1);
  if (top_bits < 32) {
    out.limbs_.back() &= (1u << top_bits) - 1;
  }
  out.limbs_.back() |= 1u << (top_bits - 1);
  out.trim();
  return out;
}

Bytes BigInt::to_bytes() const {
  if (limbs_.empty()) return Bytes{0};
  Bytes out;
  out.reserve(limbs_.size() * 4);
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const std::uint32_t limb = limbs_[i];
    out.push_back(static_cast<std::uint8_t>(limb >> 24));
    out.push_back(static_cast<std::uint8_t>(limb >> 16));
    out.push_back(static_cast<std::uint8_t>(limb >> 8));
    out.push_back(static_cast<std::uint8_t>(limb));
  }
  // Strip leading zeros but keep at least one byte.
  std::size_t first = 0;
  while (first + 1 < out.size() && out[first] == 0) ++first;
  return Bytes(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

Bytes BigInt::to_bytes_padded(std::size_t width) const {
  Bytes minimal = to_bytes();
  if (minimal.size() == 1 && minimal[0] == 0) minimal.clear();
  if (minimal.size() > width) {
    throw std::invalid_argument("BigInt::to_bytes_padded: value too wide");
  }
  Bytes out(width - minimal.size(), 0);
  append(out, minimal);
  return out;
}

std::string BigInt::to_hex() const {
  return hex_encode(to_bytes());
}

int BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const std::uint32_t top = limbs_.back();
  int bits = 32 * static_cast<int>(limbs_.size() - 1);
  for (int i = 31; i >= 0; --i) {
    if (top & (1u << i)) return bits + i + 1;
  }
  return bits;  // unreachable given trim()
}

bool BigInt::bit(int i) const {
  const std::size_t limb = static_cast<std::size_t>(i) / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t BigInt::low_u64() const {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigInt::compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  assert(*this >= o);
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) diff -= o.limbs_[i];
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (limbs_.empty() || o.limbs_.empty()) return BigInt{};
  BigInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + a * o.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::operator<<(int bits) const {
  if (limbs_.empty() || bits == 0) return *this;
  const int limb_shift = bits / 32;
  const int bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(int bits) const {
  const int limb_shift = bits / 32;
  const int bit_shift = bits % 32;
  if (static_cast<std::size_t>(limb_shift) >= limbs_.size()) return BigInt{};
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

void BigInt::divmod(const BigInt& num, const BigInt& den, BigInt& quot,
                    BigInt& rem) {
  if (den.is_zero()) throw std::domain_error("BigInt: division by zero");
  quot = BigInt{};
  rem = BigInt{};
  if (num < den) {
    rem = num;
    return;
  }

  // Single-limb divisor: plain short division.
  if (den.limbs_.size() == 1) {
    const std::uint64_t d = den.limbs_[0];
    quot.limbs_.assign(num.limbs_.size(), 0);
    std::uint64_t r = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (r << 32) | num.limbs_[i];
      quot.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      r = cur % d;
    }
    quot.trim();
    rem = BigInt(r);
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm D (base 2^32).
  const std::size_t n = den.limbs_.size();
  const std::size_t m = num.limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  for (std::uint32_t top = den.limbs_.back(); !(top & 0x80000000u); top <<= 1) {
    ++shift;
  }
  BigInt v = den << shift;
  BigInt u = num << shift;
  u.limbs_.resize(num.limbs_.size() + 1, 0);  // u has m+n+1 limbs

  quot.limbs_.assign(m + 1, 0);
  constexpr std::uint64_t kBase = std::uint64_t{1} << 32;

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q̂ from the top two limbs of the current remainder.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    std::uint64_t qhat = numerator / v.limbs_[n - 1];
    std::uint64_t rhat = numerator % v.limbs_[n - 1];
    while (qhat >= kBase ||
           qhat * v.limbs_[n - 2] > ((rhat << 32) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v.limbs_[n - 1];
      if (rhat >= kBase) break;
    }

    // D4: multiply-and-subtract u[j .. j+n] -= q̂ * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = qhat * v.limbs_[i] + carry;
      carry = product >> 32;
      const std::int64_t diff = static_cast<std::int64_t>(u.limbs_[i + j]) -
                                static_cast<std::int64_t>(product & 0xffffffffu) -
                                borrow;
      u.limbs_[i + j] = static_cast<std::uint32_t>(diff);
      borrow = (diff < 0) ? 1 : 0;
    }
    const std::int64_t diff = static_cast<std::int64_t>(u.limbs_[j + n]) -
                              static_cast<std::int64_t>(carry) - borrow;
    u.limbs_[j + n] = static_cast<std::uint32_t>(diff);

    // D5/D6: if we subtracted one time too many, add the divisor back.
    if (diff < 0) {
      --qhat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u.limbs_[i + j]) + v.limbs_[i] + add_carry;
        u.limbs_[i + j] = static_cast<std::uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u.limbs_[j + n] =
          static_cast<std::uint32_t>(u.limbs_[j + n] + add_carry);
    }
    quot.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  // D8: the remainder is the low n limbs of u, denormalized.
  u.limbs_.resize(n);
  u.trim();
  rem = u >> shift;
  quot.trim();
}

BigInt BigInt::operator%(const BigInt& m) const {
  BigInt q, r;
  divmod(*this, m, q, r);
  return r;
}

BigInt BigInt::operator/(const BigInt& d) const {
  BigInt q, r;
  divmod(*this, d, q, r);
  return q;
}

BigInt BigInt::mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero()) throw std::domain_error("BigInt::mod_pow: modulus is zero");
  if (m == BigInt(1)) return BigInt{};  // everything is 0 mod 1
  if (exp.is_zero()) return BigInt(1);
  if (MontgomeryContext::suitable(m)) return MontgomeryContext(m).pow(base, exp);
  return mod_pow_classic(base, exp, m);
}

BigInt BigInt::mod_pow_classic(const BigInt& base, const BigInt& exp,
                               const BigInt& m) {
  if (m.is_zero()) throw std::domain_error("BigInt::mod_pow: modulus is zero");
  if (m == BigInt(1)) return BigInt{};
  BigInt result(1);
  BigInt b = base % m;
  const int ebits = exp.bit_length();
  for (int i = 0; i < ebits; ++i) {
    if (exp.bit(i)) result = (result * b) % m;
    b = (b * b) % m;
  }
  return result;
}

// ---- Montgomery arithmetic ----------------------------------------------

namespace {

// Double-width accumulator matching MontgomeryContext::Word.
#if defined(__SIZEOF_INT128__)
using Wide = unsigned __int128;
#else
using Wide = std::uint64_t;
#endif

constexpr int kWordBits = static_cast<int>(sizeof(MontgomeryContext::Word)) * 8;
constexpr int kLimbsPerWord = kWordBits / 32;

// Packs the BigInt's little-endian 32-bit limbs into `words` CIOS words.
std::vector<MontgomeryContext::Word> pack_words(
    const std::vector<std::uint32_t>& limbs, std::size_t words) {
  std::vector<MontgomeryContext::Word> out(words, 0);
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    out[i / kLimbsPerWord] |= static_cast<MontgomeryContext::Word>(limbs[i])
                              << (32 * (i % kLimbsPerWord));
  }
  return out;
}

}  // namespace

bool MontgomeryContext::suitable(const BigInt& modulus) {
  return modulus.is_odd() && modulus > BigInt(1);
}

MontgomeryContext::MontgomeryContext(const BigInt& modulus)
    : modulus_(modulus) {
  if (!suitable(modulus)) {
    throw std::domain_error("MontgomeryContext: modulus must be odd and > 1");
  }
  const std::size_t words =
      (modulus.limbs_.size() + kLimbsPerWord - 1) / kLimbsPerWord;
  n_ = pack_words(modulus.limbs_, words);

  // n0inv = -n^{-1} mod 2^w via Newton iteration: each step doubles the
  // number of correct low bits, so six steps from the (3-bit-correct)
  // seed n_[0] cover 64 bits with margin (extra steps are fixpoints).
  Word inv = n_[0];
  for (int i = 0; i < 6; ++i) inv *= Word{2} - n_[0] * inv;
  n0inv_ = Word{0} - inv;

  // R^2 mod n with R = 2^(wk); one divmod at construction, never again.
  const int k_bits = static_cast<int>(n_.size()) * kWordBits;
  const BigInt rr = (BigInt(1) << (2 * k_bits)) % modulus_;
  rr_ = pack_words(rr.limbs_, n_.size());
}

void MontgomeryContext::mont_mul(const Word* a, const Word* b, Word* out,
                                 Word* scratch) const {
  const std::size_t k = n_.size();
  const Word* n = n_.data();
  Word* t = scratch;  // k+1 words
  std::fill(t, t + k + 1, Word{0});
  for (std::size_t i = 0; i < k; ++i) {
    // One fused pass: t = (t + a[i]*b + m*n) / 2^w, with m chosen so
    // the low word vanishes. Two separate carry chains (the a[i]*b one
    // and the m*n one) because their sum would overflow the wide
    // accumulator; fusing still halves the passes over t versus the
    // textbook two-loop form.
    const Wide ai = a[i];
    Wide u = t[0] + ai * b[0];
    const Word m = static_cast<Word>(u) * n0inv_;
    Wide v = static_cast<Word>(u) + static_cast<Wide>(m) * n[0];
    Wide carry_a = u >> kWordBits;
    Wide carry_m = v >> kWordBits;
    for (std::size_t j = 1; j < k; ++j) {
      u = t[j] + ai * b[j] + carry_a;
      carry_a = u >> kWordBits;
      v = static_cast<Word>(u) + static_cast<Wide>(m) * n[j] + carry_m;
      t[j - 1] = static_cast<Word>(v);
      carry_m = v >> kWordBits;
    }
    // Top: t[k] <= 1 (the t < 2n loop invariant), so this sum fits.
    u = t[k] + carry_a + carry_m;
    t[k - 1] = static_cast<Word>(u);
    t[k] = static_cast<Word>(u >> kWordBits);
  }

  // Final conditional subtraction: the loop invariant bounds t < 2n.
  bool ge = t[k] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t j = k; j-- > 0;) {
      if (t[j] != n[j]) {
        ge = t[j] > n[j];
        break;
      }
    }
  }
  if (ge) {
    Word borrow = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const Word tj = t[j];
      const Word nj = n[j];
      out[j] = tj - nj - borrow;
      borrow = (tj < nj || (tj == nj && borrow)) ? Word{1} : Word{0};
    }
  } else {
    std::copy(t, t + k, out);
  }
}

BigInt MontgomeryContext::pow(const BigInt& base, const BigInt& exp) const {
  const std::size_t k = n_.size();
  if (exp.is_zero()) return BigInt(1);  // modulus > 1 by construction

  std::vector<Word> scratch(k + 1);
  std::vector<Word> one(k, 0);
  one[0] = 1;

  // Reduce the base and convert it into the Montgomery domain.
  const BigInt reduced = base % modulus_;
  std::vector<Word> xm = pack_words(reduced.limbs_, k);
  mont_mul(xm.data(), rr_.data(), xm.data(), scratch.data());

  // Window width by exponent size: RSA's e=65537 stays narrow, a full
  // private-exponent ladder earns the bigger table.
  const int ebits = exp.bit_length();
  int window = 1;
  if (ebits > 512) {
    window = 5;
  } else if (ebits > 128) {
    window = 4;
  } else if (ebits > 24) {
    window = 3;
  } else if (ebits > 8) {
    window = 2;
  }

  // Precompute the odd powers x^1, x^3, ..., x^(2^window - 1).
  const std::size_t table_size = std::size_t{1} << (window - 1);
  std::vector<Word> table(table_size * k);
  std::copy(xm.begin(), xm.end(), table.begin());
  if (table_size > 1) {
    std::vector<Word> x2(k);
    mont_mul(xm.data(), xm.data(), x2.data(), scratch.data());
    for (std::size_t idx = 1; idx < table_size; ++idx) {
      mont_mul(table.data() + (idx - 1) * k, x2.data(), table.data() + idx * k,
               scratch.data());
    }
  }

  // acc = 1 in the Montgomery domain (= R mod n).
  std::vector<Word> acc(k, 0);
  mont_mul(rr_.data(), one.data(), acc.data(), scratch.data());

  // Left-to-right sliding window over the exponent bits.
  int i = ebits - 1;
  while (i >= 0) {
    if (!exp.bit(i)) {
      mont_mul(acc.data(), acc.data(), acc.data(), scratch.data());
      --i;
      continue;
    }
    int j = i - window + 1;
    if (j < 0) j = 0;
    while (!exp.bit(j)) ++j;  // keep the window ending on a set bit
    std::uint32_t value = 0;
    for (int s = i; s >= j; --s) {
      mont_mul(acc.data(), acc.data(), acc.data(), scratch.data());
      value = (value << 1) | static_cast<std::uint32_t>(exp.bit(s));
    }
    mont_mul(acc.data(), table.data() + ((value - 1) / 2) * k, acc.data(),
             scratch.data());
    i = j - 1;
  }

  // Leave the Montgomery domain (multiply by 1 un-scales by R).
  mont_mul(acc.data(), one.data(), acc.data(), scratch.data());

  BigInt result;
  result.limbs_.resize(k * kLimbsPerWord);
  for (std::size_t w = 0; w < k; ++w) {
    for (int p = 0; p < kLimbsPerWord; ++p) {
      result.limbs_[w * kLimbsPerWord + p] =
          static_cast<std::uint32_t>(acc[w] >> (32 * p));
    }
  }
  result.trim();
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = b;
    b = r;
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid over non-negative values, tracking coefficients with
  // explicit signs to stay within the unsigned BigInt.
  BigInt old_r = a % m, r = m;
  BigInt old_s(1), s{};
  bool old_s_neg = false, s_neg = false;

  while (!r.is_zero()) {
    BigInt q = old_r / r;

    BigInt next_r = old_r - q * r;
    old_r = r;
    r = next_r;

    // next_s = old_s - q * s (signed arithmetic emulated)
    BigInt qs = q * s;
    BigInt next_s;
    bool next_s_neg;
    if (old_s_neg == s_neg) {
      if (old_s >= qs) {
        next_s = old_s - qs;
        next_s_neg = old_s_neg;
      } else {
        next_s = qs - old_s;
        next_s_neg = !old_s_neg;
      }
    } else {
      next_s = old_s + qs;
      next_s_neg = old_s_neg;
    }
    old_s = s;
    old_s_neg = s_neg;
    s = next_s;
    s_neg = next_s_neg;
  }

  if (old_r != BigInt(1)) return BigInt{};  // not invertible
  BigInt inv = old_s % m;
  if (old_s_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

}  // namespace chainchaos::crypto
