// TLS record-layer framing (RFC 8446 §5.1) and the alert vocabulary
// (§6.2) a client emits when chain construction or validation fails.
//
// Handshake messages — including the Certificate message carrying the
// chain — travel inside TLSPlaintext records of at most 2^14 bytes of
// fragment each. Long certificate lists (the ns3.link 29-certificate
// pile, for instance) genuinely span multiple records, so the codec
// fragments and reassembles.
#pragma once

#include <cstdint>
#include <vector>

#include "pathbuild/path_builder.hpp"
#include "support/bytes.hpp"
#include "support/result.hpp"

namespace chainchaos::tls {

enum class ContentType : std::uint8_t {
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

/// Maximum fragment size per record (2^14, RFC 8446 §5.1).
inline constexpr std::size_t kMaxFragment = 16384;

/// Legacy record version bytes (0x0303 everywhere post-TLS 1.2).
inline constexpr std::uint16_t kRecordVersion = 0x0303;

/// Splits a payload into TLSPlaintext records of the given content type.
Bytes encode_records(ContentType type, BytesView payload);

/// Reassembles consecutive records of one content type back into the
/// payload. Fails on framing errors, type changes mid-stream, or
/// fragments above the size cap.
Result<Bytes> decode_records(BytesView wire, ContentType expected_type);

/// TLS AlertDescription values relevant to certificate processing.
enum class AlertDescription : std::uint8_t {
  kCloseNotify = 0,
  kBadCertificate = 42,
  kUnsupportedCertificate = 43,
  kCertificateExpired = 45,
  kCertificateUnknown = 46,
  kUnknownCa = 48,
  kDecodeError = 50,
  kInternalError = 80,
};

const char* to_string(AlertDescription alert);

/// The alert a client would send for a given build outcome; kCloseNotify
/// stands in for "no alert" on success.
AlertDescription alert_for(pathbuild::BuildStatus status);

/// Two-byte alert payload (level=fatal except close_notify).
Bytes encode_alert(AlertDescription alert);

/// Parses an alert payload back.
Result<AlertDescription> decode_alert(BytesView payload);

}  // namespace chainchaos::tls
