// Regenerates the paper's §5.2 real-world differential-testing results:
// pass rates of non-compliant chains across the browser and library
// panels, discrepancy counts, the I-1..I-4 deficiency attribution, and
// the per-client failure census.
#include <cstdio>

#include "bench_common.hpp"
#include "difftest/harness.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  auto corpus = bench::make_corpus();

  difftest::DifferentialHarness harness(*corpus);
  harness.seed_intermediate_caches();
  std::printf("running 8 clients over %zu domains...\n", corpus->size());
  const auto diffs = harness.run();
  const difftest::DiffSummary summary = harness.summarize(diffs);

  report::Table overview("§5.2 differential testing overview");
  overview.header({"Metric", "measured", "paper"});
  overview.row({"domains tested", report::with_commas(summary.total_domains),
                "906,336"});
  overview.row({"non-compliant chains",
                report::with_commas(summary.noncompliant_domains), "26,361"});
  overview.row({"non-compliant passing ALL browsers",
                report::count_pct(summary.noncompliant_all_browsers_ok,
                                  summary.noncompliant_domains),
                "61.1%"});
  overview.row({"non-compliant passing ALL libraries",
                report::count_pct(summary.noncompliant_all_libraries_ok,
                                  summary.noncompliant_domains),
                "47.4%"});
  overview.row({"chains with browser discrepancies",
                report::with_commas(summary.browser_discrepancies), "3,295"});
  overview.row({"chains with library discrepancies",
                report::with_commas(summary.library_discrepancies), "10,804"});
  overview.row({"non-compliant w/ building issue in some library",
                report::count_pct(summary.noncompliant_any_library_failure,
                                  summary.noncompliant_domains),
                "40.9%"});
  overview.row({"non-compliant w/ building issue in some browser",
                report::count_pct(summary.noncompliant_any_browser_failure,
                                  summary.noncompliant_domains),
                "12.5%"});
  std::fputs(overview.render().c_str(), stdout);

  report::Table findings("Deficiency attribution of discrepant chains");
  findings.header({"Finding", "measured chains", "paper anchor"});
  const auto finding_count = [&summary](difftest::Finding f) {
    const auto it = summary.findings.find(f);
    return it == summary.findings.end() ? std::uint64_t{0}
                                        : static_cast<std::uint64_t>(it->second);
  };
  findings.row({"I-1 order reorganization (MbedTLS)",
                report::with_commas(
                    finding_count(difftest::Finding::kI1_OrderReorganization)),
                "51 chains / 22 Taiwan gov sites"});
  findings.row({"I-2 input list too long (GnuTLS cap 16)",
                report::with_commas(
                    finding_count(difftest::Finding::kI2_LongChain)),
                "10 chains"});
  findings.row({"I-3 missing backtracking (OpenSSL/GnuTLS)",
                report::with_commas(
                    finding_count(difftest::Finding::kI3_Backtracking)),
                "1 case (moex.gov.tw)"});
  findings.row({"I-4 missing AIA completion",
                report::with_commas(
                    finding_count(difftest::Finding::kI4_AiaCompletion)),
                "8,553 chains (libraries) / 1,074 (Firefox)"});
  findings.row({"other",
                report::with_commas(finding_count(difftest::Finding::kOther)),
                "-"});
  std::printf("\n%s", findings.render().c_str());

  report::Table census("Per-client failure census (full corpus)");
  census.header({"Client", "failed handshakes", "share"});
  for (std::size_t p = 0; p < harness.profiles().size(); ++p) {
    census.row({harness.profiles()[p].name,
                report::with_commas(summary.failures_per_client[p]),
                report::pct(static_cast<double>(summary.failures_per_client[p]),
                            static_cast<double>(summary.total_domains))});
  }
  std::printf("\n%s", census.render().c_str());

  // The paper's CryptoAPI ablation: disable AIA, count how many of the
  // previously-rescued chains now fail (paper: 8,373 of 8,553 = 97.9%).
  clients::ClientProfile nerfed =
      clients::make_profile(clients::ClientKind::kCryptoApi);
  nerfed.policy.aia_completion = false;
  pathbuild::PathBuilder ablated(nerfed.policy, &corpus->stores().union_store,
                                 &corpus->aia());
  clients::ClientProfile stock =
      clients::make_profile(clients::ClientKind::kCryptoApi);
  pathbuild::PathBuilder full(stock.policy, &corpus->stores().union_store,
                              &corpus->aia());
  std::uint64_t rescued = 0, lost = 0;
  for (const dataset::DomainRecord& record : corpus->records()) {
    if (!dataset::is_completeness_defect(record.primary_defect)) continue;
    if (!full.build(record.observation.certificates, record.observation.domain)
             .ok()) {
      continue;
    }
    ++rescued;
    lost += !ablated
                 .build(record.observation.certificates,
                        record.observation.domain)
                 .ok();
  }
  std::printf("\nCryptoAPI ablation: of %s AIA-rescued incomplete chains, "
              "disabling AIA breaks %s (paper: 8,373 of 8,553 = 97.9%%; the "
              "remainder came from the Windows intermediate store)\n",
              report::with_commas(rescued).c_str(),
              report::with_commas(lost).c_str());

  bench::print_paper_note(
      "§5.2",
      "libraries (except CryptoAPI) underperform browsers; AIA completion "
      "is the single most impactful capability; all four deficiency "
      "classes I-1..I-4 reproduce");
  return 0;
}
