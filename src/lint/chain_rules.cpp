// Chain-level lint rules: the paper's Tables 3/5/7 taxonomy as stable
// diagnostics.
//
// Every check reads the ComplianceReport produced by the chain::
// analyzers instead of re-deriving the structure, so a corpus tally
// (engine::ComplianceTally) and a lint sweep over the same records can
// never disagree about what a chain's defects are.
#include <string>

#include "lint/registry.hpp"

namespace chainchaos::lint {
namespace {

void check_leaf_not_first(const ChainContext& ctx, Emitter& out) {
  const chain::LeafPlacement p = ctx.report.leaf_placement;
  if (p == chain::LeafPlacement::kIncorrectMatched ||
      p == chain::LeafPlacement::kIncorrectMismatched) {
    out.fire(std::string("classified ") + chain::to_string(p));
  }
}

void check_no_leaf_identified(const ChainContext& ctx, Emitter& out) {
  if (ctx.report.leaf_placement == chain::LeafPlacement::kOther) {
    out.fire("no certificate in the list is domain- or IP-shaped");
  }
}

void check_duplicate_certs(const ChainContext& ctx, Emitter& out) {
  const chain::OrderAnalysis& order = ctx.report.order;
  if (!order.has_duplicates) return;
  std::string detail =
      "max " + std::to_string(order.max_duplicate_occurrences) + " copies";
  if (order.duplicate_leaf) detail += " [leaf]";
  if (order.duplicate_intermediate) detail += " [intermediate]";
  if (order.duplicate_root) detail += " [root]";
  out.fire(std::move(detail));
}

void check_irrelevant_certs(const ChainContext& ctx, Emitter& out) {
  if (ctx.report.order.has_irrelevant) {
    out.fire(std::to_string(ctx.report.order.irrelevant_count) +
             " certificate(s) unrelated to the leaf's issuing paths");
  }
}

void check_multiple_paths(const ChainContext& ctx, Emitter& out) {
  if (ctx.report.order.multiple_paths) {
    out.fire(std::to_string(ctx.report.order.path_count) +
             " maximal paths from the leaf");
  }
}

void check_reversed_order(const ChainContext& ctx, Emitter& out) {
  if (ctx.report.order.reversed_sequence) {
    out.fire(ctx.report.order.all_paths_reversed
                 ? "every leaf path contains a reversed edge"
                 : "at least one leaf path contains a reversed edge");
  }
}

void check_incomplete(const ChainContext& ctx, Emitter& out) {
  const chain::CompletenessResult& c = ctx.report.completeness;
  if (c.complete()) return;
  std::string detail = "AIA repair: ";
  detail += chain::to_string(c.aia_outcome);
  if (c.missing_certificates > 0) {
    detail += ", " + std::to_string(c.missing_certificates) +
              " certificate(s) missing";
  }
  out.fire(std::move(detail));
}

void check_root_included(const ChainContext& ctx, Emitter& out) {
  if (ctx.report.completeness.category ==
      chain::Completeness::kCompleteWithRoot) {
    out.fire("the self-signed anchor was transmitted");
  }
}

void check_expired_intermediate(const ChainContext& ctx, Emitter& out) {
  if (ctx.options.now == 0) return;  // time-dependent rule disabled
  const auto& certs = ctx.observation.certificates;
  for (std::size_t i = 1; i < certs.size(); ++i) {
    if (certs[i]->is_ca() && !certs[i]->valid_at(ctx.options.now)) {
      out.fire_at(static_cast<int>(i),
                  certs[i]->subject.common_name().value_or("(no CN)"));
    }
  }
}

}  // namespace

std::vector<ChainRule> builtin_chain_rules() {
  return {
      {{"chain.leaf_not_first", Severity::kError,
        "RFC 8446 §4.4.2; paper Table 3",
        "the server's end-entity certificate is not first in the "
        "Certificate message"},
       check_leaf_not_first},
      {{"chain.no_leaf_identified", Severity::kWarn,
        "RFC 8446 §4.4.2; paper Table 3 'Other'",
        "no certificate in the list looks like the server's end-entity "
        "certificate"},
       check_no_leaf_identified},
      {{"chain.duplicate_certs", Severity::kWarn,
        "RFC 5246 §7.4.2; paper Table 5",
        "the certificate list contains bit-identical duplicates"},
       check_duplicate_certs},
      {{"chain.irrelevant_certs", Severity::kWarn,
        "RFC 5246 §7.4.2; paper Table 5",
        "the list carries certificates with no issuing relationship to "
        "the leaf"},
       check_irrelevant_certs},
      {{"chain.multiple_paths", Severity::kWarn, "paper §4.2, Table 5",
        "more than one maximal issuing path starts at the leaf (e.g. a "
        "cross-signed bundle)"},
       check_multiple_paths},
      {{"chain.reversed_order", Severity::kError,
        "RFC 5246 §7.4.2; paper Table 5",
        "an issuer appears before the certificate it certifies"},
       check_reversed_order},
      {{"chain.incomplete", Severity::kError,
        "RFC 5246 §7.4.2; paper Table 7",
        "intermediate certificates are missing: no path reaches a trust "
        "anchor"},
       check_incomplete},
      {{"chain.root_included", Severity::kNotice,
        "RFC 8446 §4.4.2; paper Table 7",
        "the chain includes the self-signed root, which clients already "
        "hold and the server MAY omit"},
       check_root_included},
      {{"chain.expired_intermediate", Severity::kError, "RFC 5280 §6.1.3",
        "a CA certificate in the chain is outside its validity window at "
        "the reference time"},
       check_expired_intermediate},
  };
}

}  // namespace chainchaos::lint
