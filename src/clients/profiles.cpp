#include "clients/profiles.hpp"

#include <stdexcept>

namespace chainchaos::clients {

using pathbuild::BasicConstraintsPriority;
using pathbuild::BuildPolicy;
using pathbuild::KeyUsagePriority;
using pathbuild::KidPriority;
using pathbuild::ValidityPriority;

ClientProfile make_profile(ClientKind kind) {
  ClientProfile profile;
  profile.kind = kind;
  BuildPolicy& p = profile.policy;

  switch (kind) {
    case ClientKind::kOpenSsl:
      profile.name = "OpenSSL";
      profile.is_browser = false;
      p.reorder = true;
      p.eliminate_redundancy = true;
      p.aia_completion = false;
      p.intermediate_cache = false;
      p.backtracking = false;                       // finding I-3
      p.max_constructed_depth = 0;                  // ">52": unlimited
      p.validity_priority = ValidityPriority::kFirstValid;      // VP1
      p.kid_priority = KidPriority::kMatchOrAbsentFirst;        // KP1
      p.key_usage_priority = KeyUsagePriority::kNone;           // "—"
      p.basic_constraints_priority = BasicConstraintsPriority::kNone;
      p.allow_self_signed_leaf = false;
      break;

    case ClientKind::kGnuTls:
      profile.name = "GnuTLS";
      profile.is_browser = false;
      p.reorder = true;
      p.eliminate_redundancy = true;
      p.aia_completion = false;
      p.intermediate_cache = false;
      p.backtracking = false;                       // finding I-3
      p.max_input_list = 16;                        // finding I-2: the cap
                                                    // is on the *input list*
      p.validity_priority = ValidityPriority::kFirstListed;     // "—"
      p.kid_priority = KidPriority::kMatchOrAbsentFirst;        // KP1
      p.key_usage_priority = KeyUsagePriority::kNone;           // "—"
      p.basic_constraints_priority = BasicConstraintsPriority::kNone;
      p.allow_self_signed_leaf = false;
      break;

    case ClientKind::kMbedTls:
      profile.name = "MbedTLS";
      profile.is_browser = false;
      p.reorder = false;                            // the one client without
                                                    // order reorganization
      p.eliminate_redundancy = false;               // §4.2: keeps duplicates
      p.aia_completion = false;
      p.intermediate_cache = false;
      p.backtracking = false;
      p.max_constructed_depth = 10;
      p.partial_validation = true;                  // validates during build
      p.validity_priority = ValidityPriority::kFirstValid;      // VP1
      p.kid_priority = KidPriority::kNone;          // "—": first listed
      p.key_usage_priority = KeyUsagePriority::kCorrectOrMissingFirst;  // KUP
      p.basic_constraints_priority = BasicConstraintsPriority::kCorrectFirst;
      p.allow_self_signed_leaf = true;
      break;

    case ClientKind::kCryptoApi:
      profile.name = "CryptoAPI";
      profile.is_browser = false;
      p.reorder = true;
      p.eliminate_redundancy = true;
      p.aia_completion = true;
      p.intermediate_cache = false;
      p.backtracking = true;                        // finding I-3: picked the
                                                    // trusted path at moex
      p.max_constructed_depth = 13;
      p.validity_priority = ValidityPriority::kMostRecentThenLongest;  // VP2
      p.kid_priority = KidPriority::kMatchFirst;    // KP2
      p.key_usage_priority = KeyUsagePriority::kCorrectOrMissingFirst;  // KUP
      p.basic_constraints_priority = BasicConstraintsPriority::kCorrectFirst;
      p.allow_self_signed_leaf = false;
      break;

    case ClientKind::kChrome:
      profile.name = "Chrome";
      profile.is_browser = true;
      p.reorder = true;
      p.eliminate_redundancy = true;
      p.aia_completion = true;
      p.intermediate_cache = false;
      p.backtracking = true;
      p.max_constructed_depth = 0;                  // ">52"
      p.validity_priority = ValidityPriority::kMostRecentThenLongest;  // VP2
      p.kid_priority = KidPriority::kMatchFirst;    // KP2
      p.key_usage_priority = KeyUsagePriority::kCorrectOrMissingFirst;  // KUP
      p.basic_constraints_priority = BasicConstraintsPriority::kCorrectFirst;
      p.allow_self_signed_leaf = false;
      break;

    case ClientKind::kEdge:
      profile.name = "Microsoft Edge";
      profile.is_browser = true;
      p.reorder = true;
      p.eliminate_redundancy = true;
      p.aia_completion = true;
      p.intermediate_cache = false;
      p.backtracking = true;
      p.max_constructed_depth = 21;
      p.validity_priority = ValidityPriority::kMostRecentThenLongest;  // VP2
      p.kid_priority = KidPriority::kMatchFirst;    // KP2
      p.key_usage_priority = KeyUsagePriority::kCorrectOrMissingFirst;  // KUP
      p.basic_constraints_priority = BasicConstraintsPriority::kCorrectFirst;
      p.allow_self_signed_leaf = false;
      break;

    case ClientKind::kSafari:
      profile.name = "Safari";
      profile.is_browser = true;
      p.reorder = true;
      p.eliminate_redundancy = true;
      p.aia_completion = true;
      p.intermediate_cache = false;
      p.backtracking = true;
      p.max_constructed_depth = 0;                  // ">52"
      p.validity_priority = ValidityPriority::kMostRecentThenLongest;  // VP2
      p.kid_priority = KidPriority::kMatchOrAbsentFirst;  // KP1
      p.key_usage_priority = KeyUsagePriority::kCorrectOrMissingFirst;  // KUP
      p.basic_constraints_priority = BasicConstraintsPriority::kCorrectFirst;
      p.allow_self_signed_leaf = true;
      break;

    case ClientKind::kFirefox:
      profile.name = "Firefox";
      profile.is_browser = true;
      p.reorder = true;
      p.eliminate_redundancy = true;
      p.aia_completion = false;                     // no AIA fetching...
      p.intermediate_cache = true;                  // ...cache instead (§5.1)
      p.backtracking = true;
      p.max_constructed_depth = 8;
      p.validity_priority = ValidityPriority::kFirstValid;      // VP1
      p.kid_priority = KidPriority::kNone;          // "—": first listed
      p.key_usage_priority = KeyUsagePriority::kCorrectOrMissingFirst;  // KUP
      p.basic_constraints_priority = BasicConstraintsPriority::kCorrectFirst;
      p.allow_self_signed_leaf = false;
      break;

    default:
      throw std::invalid_argument("unknown client kind");
  }
  return profile;
}

std::vector<ClientProfile> library_profiles() {
  return {make_profile(ClientKind::kOpenSsl), make_profile(ClientKind::kGnuTls),
          make_profile(ClientKind::kMbedTls),
          make_profile(ClientKind::kCryptoApi)};
}

std::vector<ClientProfile> browser_profiles() {
  return {make_profile(ClientKind::kChrome), make_profile(ClientKind::kEdge),
          make_profile(ClientKind::kSafari),
          make_profile(ClientKind::kFirefox)};
}

std::vector<ClientProfile> all_profiles() {
  std::vector<ClientProfile> out = library_profiles();
  for (ClientProfile& browser : browser_profiles()) {
    out.push_back(std::move(browser));
  }
  return out;
}

}  // namespace chainchaos::clients
