#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>

#include "obs/event_log.hpp"
#include "obs/trace.hpp"

namespace chainchaos::obs::flight {

namespace {

char g_path[256] = {0};
std::size_t g_max_events = 256;
std::size_t g_max_spans = 256;

// --- async-signal-safe line builder -----------------------------------
// One dump line is formatted into a fixed stack buffer and written with
// a single write(2). Overlong content is truncated, never overflowed.

struct Line {
  char buf[768];
  std::size_t len = 0;

  void put(char c) {
    if (len < sizeof buf) buf[len++] = c;
  }
  void str(const char* s) {
    while (*s != '\0') put(*s++);
  }
  void u64(std::uint64_t v) {
    char digits[20];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put(digits[--n]);
  }
  /// JSON string body: control bytes, '"' and '\\' become '_' so no
  /// escape sequence can blow up the fixed buffer mid-character.
  void escaped(const char* s, std::size_t max) {
    for (std::size_t i = 0; i < max && s[i] != '\0'; ++i) {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      put(c < 0x20 || c == '"' || c == '\\' ? '_' : static_cast<char>(c));
    }
  }
  std::size_t flush(int fd) {
    put('\n');
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    const std::size_t written = off;
    len = 0;
    return written;
  }
};

std::size_t dump_events(int fd) {
  const EventLog& log = EventLog::instance();
  const EventLog::Slot* slots = log.slots();
  const std::uint64_t end = log.cursor();
  const std::uint64_t cap = log.capacity();
  std::uint64_t window = g_max_events < cap ? g_max_events : cap;
  const std::uint64_t begin = end > window ? end - window : 0;
  const std::uint64_t mask = cap - 1;
  std::size_t count = 0;
  Line line;
  for (std::uint64_t seq = begin; seq < end; ++seq) {
    const EventLog::Slot& slot = slots[seq & mask];
    if (slot.commit.load(std::memory_order_acquire) != seq + 1) continue;
    const EventRecord r = slot.record;
    if (slot.commit.load(std::memory_order_acquire) != seq + 1) continue;
    line.str("{\"e\":{\"seq\":");
    line.u64(r.seq);
    line.str(",\"t_ns\":");
    line.u64(r.t_ns);
    line.str(",\"level\":\"");
    line.str(to_string(r.level));
    line.str("\",\"kind\":\"");
    line.escaped(r.kind, sizeof r.kind);
    line.str("\",\"conn\":");
    line.u64(r.conn_id);
    line.str(",\"trace\":");
    line.u64(r.trace_id);
    line.str(",\"value\":");
    line.u64(r.value);
    line.str(",\"detail\":\"");
    line.escaped(r.detail, sizeof r.detail);
    line.str("\"}}");
    line.flush(fd);
    ++count;
  }
  return count;
}

std::size_t dump_spans(int fd) {
  const detail::ThreadBuffer* buffers[Tracer::kMaxFlightBuffers];
  const std::size_t n_buffers = Tracer::instance().flight_buffers(
      buffers, Tracer::kMaxFlightBuffers);
  std::size_t count = 0;
  Line line;
  for (std::size_t b = 0; b < n_buffers && count < g_max_spans; ++b) {
    const detail::ThreadBuffer& buffer = *buffers[b];
    const std::size_t cursor =
        buffer.cursor.load(std::memory_order_acquire);
    // Newest spans matter most in a crash; walk backwards from the
    // cursor and stop once this buffer's share of the budget is spent.
    const std::size_t share = g_max_spans / (n_buffers == 0 ? 1 : n_buffers);
    const std::size_t take = share == 0 ? 1 : share;
    std::size_t taken = 0;
    for (std::size_t i = cursor; i > 0 && taken < take && count < g_max_spans;
         --i) {
      const detail::ThreadBuffer::Slot& slot = buffer.slots[i - 1];
      if (!slot.done.load(std::memory_order_acquire)) continue;
      const SpanRecord r = slot.record;
      line.str("{\"s\":{\"stage\":\"");
      line.str(to_string(r.stage));
      line.str("\",\"thread\":");
      line.u64(r.thread_id);
      line.str(",\"trace\":");
      line.u64(r.trace_id);
      line.str(",\"start_ns\":");
      line.u64(r.start_ns);
      line.str(",\"end_ns\":");
      line.u64(r.end_ns);
      line.str("}}");
      line.flush(fd);
      ++taken;
      ++count;
    }
  }
  return count;
}

void on_fatal_signal(int sig) {
  // A fault inside the dump must not loop: restore the default
  // disposition first so any nested signal kills the process outright.
  ::signal(sig, SIG_DFL);
  if (g_path[0] != '\0') {
    const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dump_to_fd(fd, sig);
      ::close(fd);
    }
  }
  ::raise(sig);
}

}  // namespace

bool set_dump_path(const char* path) {
  const std::size_t n = std::strlen(path);
  if (n == 0 || n >= sizeof g_path) return false;
  std::memcpy(g_path, path, n + 1);
  return true;
}

void set_limits(std::size_t max_events, std::size_t max_spans) {
  g_max_events = max_events == 0 ? 1 : max_events;
  g_max_spans = max_spans == 0 ? 1 : max_spans;
}

void install_signal_handlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = on_fatal_signal;
  sigemptyset(&action.sa_mask);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(sig, &action, nullptr);
  }
}

std::size_t dump_to_fd(int fd, int signal) {
  Line line;
  line.str("{\"flight\":1,\"signal\":");
  line.u64(static_cast<std::uint64_t>(signal < 0 ? 0 : signal));
  line.str("}");
  line.flush(fd);
  const std::size_t events = dump_events(fd);
  const std::size_t spans = dump_spans(fd);
  line.str("{\"flight_end\":{\"events\":");
  line.u64(events);
  line.str(",\"spans\":");
  line.u64(spans);
  line.str("}}");
  line.flush(fd);
  return events + spans;
}

bool dump_now() {
  if (g_path[0] == '\0') return false;
  const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  dump_to_fd(fd, 0);
  ::close(fd);
  return true;
}

}  // namespace chainchaos::obs::flight
