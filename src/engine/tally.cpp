#include "engine/tally.hpp"

#include <algorithm>

namespace chainchaos::engine {

void ComplianceTally::account(const chain::ComplianceReport& report) {
  ++total;

  leaf_placed += report.leaf_placed_correctly();
  ++leaf_placement[static_cast<std::size_t>(report.leaf_placement)];

  const chain::OrderAnalysis& order = report.order;
  const bool order_issue = order.any_order_issue();
  order_noncompliant += order_issue;
  duplicates += order.has_duplicates;
  duplicate_leaf += order.duplicate_leaf;
  duplicate_intermediate += order.duplicate_intermediate;
  duplicate_root += order.duplicate_root;
  max_duplicate_occurrences =
      std::max(max_duplicate_occurrences, order.max_duplicate_occurrences);
  irrelevant += order.has_irrelevant;
  multiple_paths += order.multiple_paths;
  reversed += order.reversed_sequence;
  all_paths_reversed += order.all_paths_reversed;

  const chain::CompletenessResult& completeness = report.completeness;
  switch (completeness.category) {
    case chain::Completeness::kCompleteWithRoot: ++complete_with_root; break;
    case chain::Completeness::kCompleteWithoutRoot:
      ++complete_without_root;
      break;
    case chain::Completeness::kIncomplete:
      ++incomplete;
      missing_one += completeness.missing_certificates == 1;
      switch (completeness.aia_outcome) {
        case chain::AiaOutcome::kCompleted: ++aia_completed; break;
        case chain::AiaOutcome::kNoAiaField: ++aia_no_field; break;
        case chain::AiaOutcome::kUnreachable: ++aia_unreachable; break;
        case chain::AiaOutcome::kWrongIssuer: ++aia_wrong_issuer; break;
        case chain::AiaOutcome::kNotAttempted: break;
      }
      break;
  }

  noncompliant += order_issue || !completeness.complete();
}

void ComplianceTally::merge(const ComplianceTally& other) {
  total += other.total;
  leaf_placed += other.leaf_placed;
  order_noncompliant += other.order_noncompliant;
  incomplete += other.incomplete;
  noncompliant += other.noncompliant;
  for (std::size_t i = 0; i < leaf_placement.size(); ++i) {
    leaf_placement[i] += other.leaf_placement[i];
  }
  duplicates += other.duplicates;
  duplicate_leaf += other.duplicate_leaf;
  duplicate_intermediate += other.duplicate_intermediate;
  duplicate_root += other.duplicate_root;
  max_duplicate_occurrences =
      std::max(max_duplicate_occurrences, other.max_duplicate_occurrences);
  irrelevant += other.irrelevant;
  multiple_paths += other.multiple_paths;
  reversed += other.reversed;
  all_paths_reversed += other.all_paths_reversed;
  complete_with_root += other.complete_with_root;
  complete_without_root += other.complete_without_root;
  missing_one += other.missing_one;
  aia_completed += other.aia_completed;
  aia_no_field += other.aia_no_field;
  aia_unreachable += other.aia_unreachable;
  aia_wrong_issuer += other.aia_wrong_issuer;
}

void ShardTally::merge(const ShardTally& other) {
  compliance.merge(other.compliance);
  for (const auto& [key, tally] : other.by_key) {
    by_key[key].merge(tally);
  }
  for (const auto& [key, count] : other.counters) {
    counters[key] += count;
  }
}

report::Table summary_table(const ComplianceTally& tally) {
  report::Table table("Server-side evaluation summary (paper §4)");
  table.header({"Metric", "measured", "paper"});
  table.row({"domains analyzed", report::with_commas(tally.total), "906,336"});
  table.row({"leaf correctly placed first",
             report::count_pct(tally.leaf_placed, tally.total), "99.4%"});
  table.row({"issuance-order non-compliant",
             report::count_pct(tally.order_noncompliant, tally.total),
             "16,952 (1.9%)"});
  table.row({"missing intermediates",
             report::count_pct(tally.incomplete, tally.total),
             "12,087 (1.3%)"});
  table.row({"non-compliant overall",
             report::count_pct(tally.noncompliant, tally.total),
             "26,361 (2.9%)"});
  return table;
}

}  // namespace chainchaos::engine
