#!/usr/bin/env bash
# End-to-end smoke test for the parser-differential sweep (DESIGN.md
# §5.13).
#
# Runs parsdiff_corpus over a 2000-domain corpus plus 5000 chaos-mutated
# inputs on 1 thread and again on 8, and asserts:
#   * both runs exit 0,
#   * the two JSON matrices are byte-identical (the sweep's determinism
#     contract: counters are commutative sums, JSON carries no timing),
#   * the sweep actually found discrepancies (the chaos inputs guarantee
#     the panel splits somewhere).
#
# Usage: parsdiff_smoke.sh <parsdiff_corpus-binary>
set -euo pipefail

PARSDIFF=${1:?usage: parsdiff_smoke.sh <parsdiff_corpus>}

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

run_sweep() {
  "$PARSDIFF" --domains 2000 --chaos 5000 --seed 833 --threads "$1" --json
}

run_sweep 1 >"$WORKDIR/run1.json" \
    || { echo "FAIL: 1-thread sweep failed"; exit 1; }
run_sweep 8 >"$WORKDIR/run2.json" \
    || { echo "FAIL: 8-thread sweep failed"; exit 1; }

diff -u "$WORKDIR/run1.json" "$WORKDIR/run2.json" \
    || { echo "FAIL: sweep output differs between 1 and 8 threads"; exit 1; }
echo "sweep matrices are byte-identical across thread counts"

grep -q '"discrepancies":0[,}]' "$WORKDIR/run1.json" \
    && { echo "FAIL: sweep found no discrepancies"; exit 1; }
# 2000 requested domains plus the corpus's exemplar records, and all
# 5000 chaos inputs.
CORPUS=$(grep -o '"corpus_chains":[0-9]*' "$WORKDIR/run1.json" | cut -d: -f2)
EXTRA=$(grep -o '"extra_inputs":[0-9]*' "$WORKDIR/run1.json" | cut -d: -f2)
[ "${CORPUS:-0}" -ge 2000 ] \
    || { echo "FAIL: corpus coverage $CORPUS < 2000 chains"; exit 1; }
[ "${EXTRA:-0}" -eq 5000 ] \
    || { echo "FAIL: chaos coverage $EXTRA != 5000 inputs"; exit 1; }

echo "parsdiff smoke OK"
