#include "tls/certificate_message.hpp"

namespace chainchaos::tls {

namespace {

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u16(Bytes& out, std::size_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u24(Bytes& out, std::size_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

class WireReader {
 public:
  explicit WireReader(BytesView data) : data_(data) {}

  bool at_end() const { return pos_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  Result<std::uint8_t> u8() {
    if (remaining() < 1) return make_error("tls.truncated", "u8");
    return data_[pos_++];
  }
  Result<std::size_t> u16() {
    if (remaining() < 2) return make_error("tls.truncated", "u16");
    const std::size_t v = (static_cast<std::size_t>(data_[pos_]) << 8) |
                          data_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  Result<std::size_t> u24() {
    if (remaining() < 3) return make_error("tls.truncated", "u24");
    const std::size_t v = (static_cast<std::size_t>(data_[pos_]) << 16) |
                          (static_cast<std::size_t>(data_[pos_ + 1]) << 8) |
                          data_[pos_ + 2];
    pos_ += 3;
    return v;
  }
  Result<BytesView> take(std::size_t n) {
    if (remaining() < n) return make_error("tls.truncated", "opaque");
    BytesView view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace

Bytes encode_certificate_message(const std::vector<x509::CertPtr>& list,
                                 TlsVersion version) {
  Bytes body;
  if (version == TlsVersion::kTls13) {
    put_u8(body, 0);  // empty certificate_request_context
  }

  Bytes entries;
  for (const x509::CertPtr& cert : list) {
    put_u24(entries, cert->der.size());
    append(entries, cert->der);
    if (version == TlsVersion::kTls13) {
      put_u16(entries, 0);  // no per-entry extensions
    }
  }
  put_u24(body, entries.size());
  append(body, entries);

  Bytes message;
  put_u8(message, kHandshakeTypeCertificate);
  put_u24(message, body.size());
  append(message, body);
  return message;
}

Result<std::vector<x509::CertPtr>> decode_certificate_message(
    BytesView message, TlsVersion version) {
  WireReader reader(message);

  auto msg_type = reader.u8();
  if (!msg_type.ok()) return msg_type.error();
  if (msg_type.value() != kHandshakeTypeCertificate) {
    return make_error("tls.wrong_type", "not a Certificate message");
  }
  auto body_len = reader.u24();
  if (!body_len.ok()) return body_len.error();
  if (body_len.value() != reader.remaining()) {
    return make_error("tls.bad_length", "handshake length mismatch");
  }

  if (version == TlsVersion::kTls13) {
    auto ctx_len = reader.u8();
    if (!ctx_len.ok()) return ctx_len.error();
    auto ctx = reader.take(ctx_len.value());
    if (!ctx.ok()) return ctx.error();
  }

  auto list_len = reader.u24();
  if (!list_len.ok()) return list_len.error();
  if (list_len.value() != reader.remaining()) {
    return make_error("tls.bad_length", "certificate_list length mismatch");
  }

  std::vector<x509::CertPtr> out;
  while (!reader.at_end()) {
    auto cert_len = reader.u24();
    if (!cert_len.ok()) return cert_len.error();
    if (cert_len.value() == 0) {
      return make_error("tls.bad_length", "zero-length certificate entry");
    }
    auto der = reader.take(cert_len.value());
    if (!der.ok()) return der.error();
    auto cert = x509::parse_certificate(der.value());
    if (!cert.ok()) return cert.error();
    out.push_back(std::move(cert).value());

    if (version == TlsVersion::kTls13) {
      auto ext_len = reader.u16();
      if (!ext_len.ok()) return ext_len.error();
      auto ext = reader.take(ext_len.value());
      if (!ext.ok()) return ext.error();
    }
  }
  return out;
}

}  // namespace chainchaos::tls
