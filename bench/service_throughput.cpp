// Service throughput bench: requests/sec of the chaind daemon over real
// loopback sockets at 1/4/8 workers, result cache on vs off.
//
// The workload is repeat-heavy by design — a handful of distinct chains
// queried over and over from 8 concurrent keep-alive clients — which is
// the corpus-shaped traffic the sharded LRU cache exists for (served
// chains repeat heavily across the Top 1M; see DESIGN.md §5.9). The
// cache-on rows should therefore show both a large hit ratio and a
// correspondingly higher request rate; the bench fails if cache-on and
// cache-off ever disagree on a response body.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "report/table.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "x509/builder.hpp"

using namespace chainchaos;

namespace {

/// Builds `count` distinct leaf+intermediate+root PEM chains.
std::vector<std::string> make_chains(std::size_t count) {
  std::vector<std::string> chains;
  chains.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string tag = "bench-" + std::to_string(i);
    const x509::SigningIdentity root_id =
        x509::make_identity(asn1::Name::make(tag + " Root"));
    const x509::SigningIdentity inter_id =
        x509::make_identity(asn1::Name::make(tag + " Inter"));
    x509::CertificateBuilder rb;
    rb.subject(root_id.name).as_ca().public_key(root_id.keys.pub);
    const x509::CertPtr root = rb.self_sign(root_id.keys);
    x509::CertificateBuilder ib;
    ib.subject(inter_id.name).as_ca().public_key(inter_id.keys.pub);
    const x509::CertPtr inter = ib.sign(root_id);
    x509::CertificateBuilder lb;
    lb.as_leaf(tag + ".example");
    const x509::CertPtr leaf = lb.sign(inter_id);
    chains.push_back(x509::to_pem(*leaf) + x509::to_pem(*inter) +
                     x509::to_pem(*root));
  }
  return chains;
}

struct RunResult {
  double requests_per_second = 0.0;
  double hit_ratio = 0.0;
  std::uint64_t errors = 0;
  std::set<std::string> bodies;  ///< distinct response bodies seen
};

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Hostile company for the immunity phase: idle keep-alive parkers and
/// slow-loris drippers sharing the event loop with the good clients.
struct HostileCompany {
  std::vector<int> idle_fds;
  std::vector<std::thread> drippers;
  std::atomic<bool> stop{false};

  void start(std::uint16_t port, unsigned idle, unsigned loris) {
    for (unsigned i = 0; i < idle; ++i) {
      const int fd = dial(port);
      if (fd >= 0) idle_fds.push_back(fd);
    }
    for (unsigned i = 0; i < loris; ++i) {
      drippers.emplace_back([this, port] {
        const int fd = dial(port);
        if (fd < 0) return;
        const std::string opener = "POST /v1/analyze HTTP/1.1\r\n";
        const std::string pad = "x-bench-pad: aaaaaaaa\r\n";
        ::send(fd, opener.data(), opener.size(), MSG_NOSIGNAL);
        std::size_t cursor = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          if (::send(fd, pad.data() + cursor % pad.size(), 1, MSG_NOSIGNAL) <=
              0) {
            break;  // evicted — stay gone, like a real starved attacker
          }
          ++cursor;
        }
        ::close(fd);
      });
    }
  }

  void finish() {
    stop.store(true);
    for (std::thread& t : drippers) t.join();
    for (const int fd : idle_fds) ::close(fd);
  }
};

RunResult run_load(unsigned workers, bool cache_on,
                   const std::vector<std::string>& chains,
                   unsigned clients, unsigned requests_per_client,
                   unsigned hostile_idle = 0, unsigned hostile_loris = 0) {
  service::ServerConfig config;
  config.workers = workers;
  config.queue_capacity = 256;
  config.cache_capacity = cache_on ? 4096 : 0;
  service::Server server(config);
  const auto port = server.start();
  if (!port.ok()) {
    std::fprintf(stderr, "bench: server failed to start: %s\n",
                 port.error().to_string().c_str());
    std::exit(1);
  }

  HostileCompany hostile;
  if (hostile_idle != 0 || hostile_loris != 0) {
    hostile.start(port.value(), hostile_idle, hostile_loris);
  }

  RunResult result;
  std::vector<std::set<std::string>> per_client_bodies(clients);
  std::atomic<std::uint64_t> errors{0};

  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      service::Client client(port.value());
      for (unsigned r = 0; r < requests_per_client; ++r) {
        const std::string& chain = chains[(c + r) % chains.size()];
        const auto response = client.analyze(chain, "bench.example");
        if (!response.ok() || response.value().status != 200) {
          errors.fetch_add(1);
          continue;
        }
        per_client_bodies[c].insert(to_string(response.value().body));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  hostile.finish();

  const std::uint64_t total =
      static_cast<std::uint64_t>(clients) * requests_per_client;
  result.requests_per_second = elapsed > 0 ? total / elapsed : 0.0;
  result.hit_ratio = server.cache_stats().hit_ratio();
  result.errors = errors.load();
  for (const auto& bodies : per_client_bodies) {
    result.bodies.insert(bodies.begin(), bodies.end());
  }
  server.stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = bench::json_flag(argc, argv);
  bench::JsonReporter reporter;
  unsigned requests_per_client = 200;
  if (const char* env = std::getenv("CHAINCHAOS_REQUESTS")) {
    requests_per_client = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  constexpr unsigned kClients = 8;
  constexpr std::size_t kDistinctChains = 4;

  std::printf("[load] %u clients x %u requests, %zu distinct chains\n",
              kClients, requests_per_client, kDistinctChains);
  const std::vector<std::string> chains = make_chains(kDistinctChains);

  report::Table table("chaind throughput: 8 keep-alive clients, loopback");
  table.header({"workers", "cache", "req/sec", "hit ratio", "errors"});

  char buf[64];
  bool ok = true;
  std::set<std::string> all_bodies;
  for (const unsigned workers : {1u, 4u, 8u}) {
    for (const bool cache_on : {false, true}) {
      const RunResult run = run_load(workers, cache_on, chains, kClients,
                                     requests_per_client);
      std::snprintf(buf, sizeof buf, "%.0f", run.requests_per_second);
      std::string rate = buf;
      std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * run.hit_ratio);
      table.row({std::to_string(workers), cache_on ? "on" : "off", rate,
                 cache_on ? buf : "-", std::to_string(run.errors)});
      if (run.errors != 0) ok = false;
      all_bodies.insert(run.bodies.begin(), run.bodies.end());
      reporter.record("workers_" + std::to_string(workers) + "_cache_" +
                          (cache_on ? "on" : "off") + "_req_per_sec",
                      run.requests_per_second);
    }
  }
  std::fputs(table.render().c_str(), stdout);

  // High-concurrency scaling: the event loop must hold throughput as
  // the client count climbs past the worker count (total request volume
  // held constant so the rows compare like for like).
  report::Table scale_table("chaind scaling: 4 workers, cache on, loopback");
  scale_table.header({"clients", "req/sec", "errors"});
  const unsigned total_requests = 8 * requests_per_client * 4;
  double rps_at_8 = 0.0;
  for (const unsigned clients : {8u, 64u, 128u}) {
    const RunResult run = run_load(4, true, chains, clients,
                                   std::max(total_requests / clients, 8u));
    std::snprintf(buf, sizeof buf, "%.0f", run.requests_per_second);
    scale_table.row({std::to_string(clients), buf,
                     std::to_string(run.errors)});
    if (run.errors != 0) ok = false;
    all_bodies.insert(run.bodies.begin(), run.bodies.end());
    reporter.record("clients_" + std::to_string(clients) + "_req_per_sec",
                    run.requests_per_second);
    if (clients == 8) rps_at_8 = run.requests_per_second;
    if (clients == 64 && run.requests_per_second < 0.4 * rps_at_8) {
      std::printf("\nFAIL: 64 clients ran at %.0f req/s vs %.0f at 8 — "
                  "throughput collapsed under concurrency\n",
                  run.requests_per_second, rps_at_8);
      ok = false;
    }
  }
  std::fputs(scale_table.render().c_str(), stdout);

  // Slow-client immunity: 32 idle parkers and 8 slow-loris drippers
  // share the loop with 8 good clients; the good clients must keep
  // most of their clean-room throughput and see zero errors.
  const RunResult clean =
      run_load(4, true, chains, kClients, requests_per_client);
  const RunResult contested =
      run_load(4, true, chains, kClients, requests_per_client, 32, 8);
  std::printf("\n[immunity] 8 good clients + 32 idle + 8 slow-loris: "
              "%.0f req/s vs %.0f clean (errors %llu)\n",
              contested.requests_per_second, clean.requests_per_second,
              static_cast<unsigned long long>(contested.errors));
  if (contested.errors != 0 || clean.errors != 0) ok = false;
  if (contested.requests_per_second < 0.3 * clean.requests_per_second) {
    std::printf("FAIL: hostile clients stole %.0f%% of throughput\n",
                100.0 * (1.0 - contested.requests_per_second /
                                   clean.requests_per_second));
    ok = false;
  }
  all_bodies.insert(clean.bodies.begin(), clean.bodies.end());
  all_bodies.insert(contested.bodies.begin(), contested.bodies.end());
  reporter.record("immunity_clean_req_per_sec", clean.requests_per_second);
  reporter.record("immunity_contested_req_per_sec",
                  contested.requests_per_second);

  // Every configuration must agree byte-for-byte: one body per chain.
  if (all_bodies.size() != kDistinctChains) {
    std::printf("\nFAIL: %zu distinct response bodies for %zu chains — "
                "cache or concurrency changed the output\n",
                all_bodies.size(), kDistinctChains);
    ok = false;
  } else {
    std::printf("\nresponses byte-identical across workers and cache modes "
                "(%zu bodies for %zu chains)\n",
                all_bodies.size(), kDistinctChains);
  }
  if (!reporter.write(json_path, "service_throughput", ok)) return 1;
  return ok ? 0 : 1;
}
