// Property-based tests: invariants that must hold across randomized
// sweeps rather than single examples — parser robustness under byte
// mutation, path-builder output invariants over a generated corpus,
// wire-format round-trip stability.
#include <gtest/gtest.h>

#include "chain/issuance.hpp"
#include "clients/profiles.hpp"
#include "ca/hierarchy.hpp"
#include "dataset/corpus.hpp"
#include "difftest/harness.hpp"
#include "tls/certificate_message.hpp"
#include "tls/record.hpp"
#include "x509/builder.hpp"

namespace chainchaos {
namespace {

// ---------------------------------------------------------------------------
// Parser robustness: no input may crash, hang, or return an invalid
// object — only Ok or a clean error.
// ---------------------------------------------------------------------------

class MutationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ca_ = new ca::CaHierarchy(ca::CaHierarchy::create("Prop CA", 2, nullptr));
    leaf_ = new x509::CertPtr(ca_->issue_leaf("prop.example.com"));
  }
  static ca::CaHierarchy* ca_;
  static x509::CertPtr* leaf_;
};

ca::CaHierarchy* MutationFixture::ca_ = nullptr;
x509::CertPtr* MutationFixture::leaf_ = nullptr;

TEST_F(MutationFixture, CertificateParserSurvivesSingleByteFlips) {
  const Bytes& der = (*leaf_)->der;
  // Flip every byte position once (8 variants sampled by rotating bit).
  for (std::size_t pos = 0; pos < der.size(); ++pos) {
    Bytes mutated = der;
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
    const auto result = x509::parse_certificate(mutated);
    if (result.ok()) {
      // A parse that still succeeds must at least be self-consistent:
      // the cached DER equals the input and the fingerprint is fresh.
      EXPECT_TRUE(equal(result.value()->der, mutated));
    }
  }
}

TEST_F(MutationFixture, CertificateParserSurvivesTruncation) {
  const Bytes& der = (*leaf_)->der;
  for (std::size_t len = 0; len < der.size(); ++len) {
    const auto result = x509::parse_certificate(BytesView(der.data(), len));
    EXPECT_FALSE(result.ok()) << "truncated to " << len;
  }
}

TEST_F(MutationFixture, CertificateParserSurvivesRandomGarbage) {
  Rng rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes garbage(rng.between(0, 600));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    // Bias towards plausible DER openings half the time.
    if (trial % 2 == 0 && garbage.size() > 2) {
      garbage[0] = 0x30;
      garbage[1] = static_cast<std::uint8_t>(rng.next());
    }
    (void)x509::parse_certificate(garbage);  // must not crash
  }
  SUCCEED();
}

TEST_F(MutationFixture, CertificateMessageDecoderSurvivesMutation) {
  const std::vector<x509::CertPtr> list = {*leaf_,
                                           ca_->intermediates().back()};
  Rng rng(777);
  for (tls::TlsVersion version :
       {tls::TlsVersion::kTls12, tls::TlsVersion::kTls13}) {
    const Bytes message = tls::encode_certificate_message(list, version);
    for (int trial = 0; trial < 400; ++trial) {
      Bytes mutated = message;
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      (void)tls::decode_certificate_message(mutated, version);  // no crash
    }
  }
  SUCCEED();
}

TEST_F(MutationFixture, RecordDecoderSurvivesMutation) {
  const Bytes wire = tls::encode_records(tls::ContentType::kHandshake,
                                         Bytes(40000, 0x5c));
  Rng rng(31337);
  for (int trial = 0; trial < 400; ++trial) {
    Bytes mutated = wire;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    (void)tls::decode_records(mutated, tls::ContentType::kHandshake);
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Path-builder invariants: for EVERY corpus chain and EVERY client,
// a successful build must produce a genuinely valid path.
// ---------------------------------------------------------------------------

class BuilderInvariantFixture : public ::testing::Test {
 protected:
  static dataset::Corpus& corpus() {
    static dataset::Corpus* instance = [] {
      dataset::CorpusConfig config;
      config.domain_count = 600;
      return new dataset::Corpus(std::move(config));
    }();
    return *instance;
  }
};

TEST_F(BuilderInvariantFixture, SuccessfulPathsAreSound) {
  for (const clients::ClientProfile& profile : clients::all_profiles()) {
    pathbuild::IntermediateCache cache;
    if (profile.policy.intermediate_cache) {
      for (const auto& record : corpus().records()) {
        if (record.primary_defect == dataset::DefectType::kNone) {
          cache.remember_chain(record.observation.certificates);
        }
      }
    }
    pathbuild::PathBuilder builder(profile.policy,
                                   &corpus().stores().union_store,
                                   &corpus().aia(), &cache);
    for (const auto& record : corpus().records()) {
      const auto result = builder.build(record.observation.certificates,
                                        record.observation.domain);
      if (!result.ok()) continue;

      ASSERT_GE(result.path.size(), 1u);
      // (1) Adjacency: every certificate is issued by its successor.
      for (std::size_t i = 0; i + 1 < result.path.size(); ++i) {
        EXPECT_TRUE(chain::issued_by(*result.path[i], *result.path[i + 1]))
            << profile.name << " @ " << record.observation.domain;
      }
      // (2) Trust: the terminus is a store root.
      EXPECT_TRUE(
          corpus().stores().union_store.contains(*result.path.back()))
          << profile.name << " @ " << record.observation.domain;
      // (3) No certificate appears twice.
      for (std::size_t i = 0; i < result.path.size(); ++i) {
        for (std::size_t j = i + 1; j < result.path.size(); ++j) {
          EXPECT_FALSE(equal(result.path[i]->fingerprint,
                             result.path[j]->fingerprint));
        }
      }
      // (4) Hostname: the leaf matches the queried domain.
      EXPECT_TRUE(result.path.front()->matches_host(record.observation.domain))
          << profile.name << " @ " << record.observation.domain;
      // (5) Validity at the policy's clock.
      for (const auto& cert : result.path) {
        EXPECT_TRUE(cert->valid_at(profile.policy.validation_time));
      }
      // (6) Depth cap honoured.
      if (profile.policy.max_constructed_depth > 0) {
        EXPECT_LE(static_cast<int>(result.path.size()),
                  profile.policy.max_constructed_depth);
      }
    }
  }
}

TEST_F(BuilderInvariantFixture, InputListCapNeverExceeded) {
  const auto gnutls = clients::make_profile(clients::ClientKind::kGnuTls);
  pathbuild::PathBuilder builder(gnutls.policy,
                                 &corpus().stores().union_store);
  for (const auto& record : corpus().records()) {
    const auto result = builder.build(record.observation.certificates,
                                      record.observation.domain);
    if (record.observation.certificates.size() > 16) {
      EXPECT_EQ(result.status, pathbuild::BuildStatus::kInputListTooLong)
          << record.observation.domain;
    } else {
      EXPECT_NE(result.status, pathbuild::BuildStatus::kInputListTooLong)
          << record.observation.domain;
    }
  }
}

TEST_F(BuilderInvariantFixture, DeterministicVerdictsPerClient) {
  // Two fresh builders over the same corpus agree everywhere (no hidden
  // state besides the explicit cache).
  const auto chrome = clients::make_profile(clients::ClientKind::kChrome);
  pathbuild::PathBuilder a(chrome.policy, &corpus().stores().union_store,
                           &corpus().aia());
  pathbuild::PathBuilder b(chrome.policy, &corpus().stores().union_store,
                           &corpus().aia());
  for (const auto& record : corpus().records()) {
    EXPECT_EQ(a.build(record.observation.certificates,
                      record.observation.domain)
                  .status,
              b.build(record.observation.certificates,
                      record.observation.domain)
                  .status)
        << record.observation.domain;
  }
}

// ---------------------------------------------------------------------------
// Wire format: encode/decode is the identity over the whole corpus.
// ---------------------------------------------------------------------------

TEST_F(BuilderInvariantFixture, CertificateMessageRoundTripsWholeCorpus) {
  for (const auto& record : corpus().records()) {
    for (tls::TlsVersion version :
         {tls::TlsVersion::kTls12, tls::TlsVersion::kTls13}) {
      const Bytes message = tls::encode_certificate_message(
          record.observation.certificates, version);
      auto decoded = tls::decode_certificate_message(message, version);
      ASSERT_TRUE(decoded.ok()) << record.observation.domain;
      ASSERT_EQ(decoded.value().size(),
                record.observation.certificates.size());
      for (std::size_t i = 0; i < decoded.value().size(); ++i) {
        EXPECT_TRUE(equal(decoded.value()[i]->der,
                          record.observation.certificates[i]->der));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Normalization idempotence over the corpus (extends the §6.1 tests).
// ---------------------------------------------------------------------------

TEST_F(BuilderInvariantFixture, AnalyzerIdempotentOnItsOwnOutput) {
  // Analyzing a chain twice (fresh topologies) yields identical reports.
  chain::CompletenessOptions options;
  options.store = &corpus().stores().union_store;
  options.aia = &corpus().aia();
  const chain::ComplianceAnalyzer analyzer(options);
  for (const auto& record : corpus().records()) {
    const auto first = analyzer.analyze(record.observation);
    const auto second = analyzer.analyze(record.observation);
    EXPECT_EQ(first.leaf_placement, second.leaf_placement);
    EXPECT_EQ(first.order.any_order_issue(), second.order.any_order_issue());
    EXPECT_EQ(first.completeness.category, second.completeness.category);
    EXPECT_EQ(first.completeness.aia_outcome, second.completeness.aia_outcome);
  }
}

}  // namespace
}  // namespace chainchaos
