#include "parsdiff/profile.hpp"

namespace chainchaos::parsdiff {

namespace {

using asn1::LengthRule;
using asn1::ParseProfile;

ParseProfile strict_der_profile() {
  ParseProfile p;
  p.length_rule = LengthRule::kStrictDer;
  p.strict_boolean = true;
  p.validate_printable_charset = true;
  p.validate_utf8 = true;
  p.reject_trailing_bytes = true;
  p.reject_unknown_critical = true;
  return p;
}

ParseProfile openssl_like_profile() {
  // OpenSSL's d2i layer is BER-tolerant on lengths and accepts the full
  // UTCTime/GeneralizedTime repertoire including missing seconds.
  ParseProfile p;
  p.length_rule = LengthRule::kBer;
  p.accept_utc_time = true;
  p.allow_missing_seconds = true;
  return p;
}

ParseProfile gnutls_like_profile() {
  // GnuTLS (libtasn1) accepts the legacy string universe — TeletexString,
  // VideotexString, VisibleString, BMPString — without charset checks,
  // and tolerates leading-zero lengths like the default profile.
  ParseProfile p;
  p.extra_string_tags = true;
  p.accept_utc_time = true;
  return p;
}

ParseProfile browser_like_profile() {
  // Browser verifiers parse time laxly (UTCTime pivot, missing seconds,
  // offsets, fractional seconds) but enforce RFC 5280 §4.2 on unknown
  // critical extensions.
  ParseProfile p;
  p.accept_utc_time = true;
  p.allow_missing_seconds = true;
  p.allow_time_offsets = true;
  p.allow_fractional_seconds = true;
  p.reject_unknown_critical = true;
  return p;
}

std::vector<ProfileSpec> build_panel() {
  return {
      {"default", "chainchaos historical",
       "leading-zero length tolerance only; everything else strict-ish",
       asn1::default_parse_profile()},
      {"strict-der", "X.690 DER verbatim",
       "minimal lengths, DER booleans, charset+UTF-8 checks, no trailing "
       "bytes, unknown-critical rejected",
       strict_der_profile()},
      {"openssl-ber", "OpenSSL d2i",
       "BER lengths, UTCTime accepted, seconds optional",
       openssl_like_profile()},
      {"gnutls-string", "GnuTLS/libtasn1",
       "legacy string tags accepted, UTCTime accepted, no charset checks",
       gnutls_like_profile()},
      {"browser-time", "Chrome/Firefox verifiers",
       "lax time (pivot, offsets, fractions), unknown-critical rejected",
       browser_like_profile()},
  };
}

}  // namespace

const std::vector<ProfileSpec>& profiles() {
  static const std::vector<ProfileSpec> panel = build_panel();
  return panel;
}

const ProfileSpec* find_profile(std::string_view name) {
  for (const ProfileSpec& spec : profiles()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace chainchaos::parsdiff
