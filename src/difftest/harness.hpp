// Differential testing harness (paper §5.2).
//
// Runs every client profile over every corpus domain and compares the
// verdicts. The interesting output is exactly what the paper reports:
// pass rates of non-compliant chains across the browser and library
// panels, the number of chains on which the panels disagree, and the
// attribution of each disagreement to one of the four deficiency
// classes:
//   I-1  missing order reorganization      (MbedTLS)
//   I-2  input-list length cap             (GnuTLS)
//   I-3  missing backtracking              (OpenSSL/GnuTLS/MbedTLS)
//   I-4  missing AIA completion            (libraries; Firefox cache miss)
#pragma once

#include <map>
#include <string>
#include <vector>

#include "clients/profiles.hpp"
#include "dataset/corpus.hpp"
#include "engine/engine.hpp"
#include "pathbuild/path_builder.hpp"

namespace chainchaos::difftest {

/// Deficiency classes from §5.2.
enum class Finding {
  kNone,
  kI1_OrderReorganization,
  kI2_LongChain,
  kI3_Backtracking,
  kI4_AiaCompletion,
  kOther,
};

const char* to_string(Finding finding);

/// Per-domain differential outcome.
struct DomainDiff {
  std::size_t record_index = 0;
  std::vector<pathbuild::BuildStatus> statuses;  ///< parallel to profiles
  bool all_browsers_ok = false;
  bool all_libraries_ok = false;
  bool browsers_disagree = false;
  bool libraries_disagree = false;
  Finding finding = Finding::kNone;
};

struct DiffSummary {
  std::size_t total_domains = 0;
  std::size_t noncompliant_domains = 0;

  // Pass rates within the non-compliant subset (the paper's 61.1%/47.4%).
  std::size_t noncompliant_all_browsers_ok = 0;
  std::size_t noncompliant_all_libraries_ok = 0;

  // Disagreement counts over the full corpus (the paper's 3,295/10,804).
  std::size_t browser_discrepancies = 0;
  std::size_t library_discrepancies = 0;

  // Build-issue impact within the non-compliant subset (40.9%/12.5%).
  std::size_t noncompliant_any_library_failure = 0;
  std::size_t noncompliant_any_browser_failure = 0;

  std::map<Finding, std::size_t> findings;

  // Per-client failure counts over the full corpus.
  std::vector<std::size_t> failures_per_client;
};

class DifferentialHarness {
 public:
  /// Uses all 8 profiles in Table 9 order unless a subset is given.
  DifferentialHarness(dataset::Corpus& corpus,
                      std::vector<clients::ClientProfile> profiles =
                          clients::all_profiles());

  /// Pre-seeds cache-using clients (Firefox) by "browsing" every
  /// compliant chain once — the stand-in for browsing history.
  void seed_intermediate_caches();

  /// Runs the full differential sweep on the sharded engine: each domain
  /// is independent (embarrassingly parallel), so records are sharded
  /// over the worker pool and each diff is written at its record index.
  /// During the sweep the seeded intermediate caches are read-only
  /// snapshots (builders run with cache learning disabled), which makes
  /// the result a pure per-record function — byte-identical for any
  /// `shards.threads`, and identical to a sequential walk.
  std::vector<DomainDiff> run(const engine::ShardOptions& shards = {});

  /// Aggregates a sweep into the paper's summary statistics. Compliance
  /// of each domain is taken from the generator's ground-truth labels.
  DiffSummary summarize(const std::vector<DomainDiff>& diffs) const;

  const std::vector<clients::ClientProfile>& profiles() const {
    return profiles_;
  }

  /// The per-client intermediate cache (exposed for ablations).
  pathbuild::IntermediateCache& cache_for(std::size_t profile_index) {
    return caches_[profile_index];
  }

 private:
  Finding classify(const dataset::DomainRecord& record,
                   const std::vector<pathbuild::BuildResult>& results) const;

  /// Runs all profiles over one record (pure; safe from any worker).
  DomainDiff diff_one(const dataset::DomainRecord& record, std::size_t index,
                      const std::vector<pathbuild::PathBuilder>& builders) const;

  dataset::Corpus& corpus_;
  std::vector<clients::ClientProfile> profiles_;
  std::vector<pathbuild::IntermediateCache> caches_;
};

}  // namespace chainchaos::difftest
