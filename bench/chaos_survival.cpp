// Chaos survival bench: mutation + classification throughput of the
// chaos harness at 1/2/4/8 threads, with the determinism cross-check
// the crash-free contract promises (DESIGN.md §5.10).
//
// Reports inputs/sec for the direct-pipeline campaign — the number that
// bounds how large a pre-release bombardment CI can afford — and fails
// (exit 1) if any thread count changes the campaign digest or any input
// crashes, hangs, or goes unclassified. Not a paper table: this is a
// harness-health bench, like engine_scaling.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "chaos/campaign.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main(int argc, char** argv) {
  std::size_t count = 520;  // 40 inputs per mutation class
  if (argc > 1) count = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));

  report::Table table("Chaos survival: campaign throughput and digest stability");
  table.header({"threads", "inputs", "inputs/sec", "crashes", "hangs",
                "digest(12)"});
  std::string reference_digest;
  bool ok = true;

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    chaos::CampaignOptions options;
    options.count = count;
    options.threads = threads;
    chaos::Campaign campaign(options);

    const auto start = std::chrono::steady_clock::now();
    const chaos::CampaignSummary summary = campaign.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    if (reference_digest.empty()) reference_digest = summary.digest;
    if (summary.digest != reference_digest || !summary.contract_ok()) ok = false;

    table.row({std::to_string(threads), std::to_string(summary.inputs),
               std::to_string(static_cast<std::uint64_t>(
                   seconds > 0 ? static_cast<double>(count) / seconds : 0)),
               std::to_string(summary.crashes), std::to_string(summary.hangs),
               summary.digest.substr(0, 12)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n", ok ? "contract held at every thread count"
                         : "CONTRACT VIOLATION (see rows above)");
  return ok ? 0 : 1;
}
