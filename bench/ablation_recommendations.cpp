// Ablation study for the paper's §6.2 client-side recommendations:
// starting from a minimal client, add one construction capability at a
// time and measure how many corpus chains each step rescues. This
// quantifies the paper's claim that AIA completion, backtracking and
// order reorganization — plus the trusted-root/KID prioritisation
// advice — drive validation success on real-world (non-compliant)
// chains.
#include <cstdio>

#include "bench_common.hpp"
#include "chain/analyzer.hpp"
#include "httpserver/normalize.hpp"
#include "pathbuild/path_builder.hpp"
#include "report/table.hpp"

using namespace chainchaos;

namespace {

struct Step {
  const char* name;
  pathbuild::BuildPolicy policy;
};

}  // namespace

int main() {
  const auto corpus = bench::make_corpus();

  pathbuild::BuildPolicy minimal;
  minimal.reorder = false;
  minimal.eliminate_redundancy = false;
  minimal.backtracking = false;
  minimal.aia_completion = false;
  minimal.kid_priority = pathbuild::KidPriority::kNone;
  minimal.validity_priority = pathbuild::ValidityPriority::kFirstListed;

  std::vector<Step> steps;
  steps.push_back({"minimal (forward scan only)", minimal});

  pathbuild::BuildPolicy with_reorder = minimal;
  with_reorder.reorder = true;
  with_reorder.eliminate_redundancy = true;
  steps.push_back({"+ order reorganization & dedup", with_reorder});

  pathbuild::BuildPolicy with_backtracking = with_reorder;
  with_backtracking.backtracking = true;
  steps.push_back({"+ backtracking", with_backtracking});

  pathbuild::BuildPolicy with_aia = with_backtracking;
  with_aia.aia_completion = true;
  steps.push_back({"+ AIA completion", with_aia});

  pathbuild::BuildPolicy with_priorities = with_aia;
  with_priorities.kid_priority = pathbuild::KidPriority::kMatchFirst;
  with_priorities.validity_priority =
      pathbuild::ValidityPriority::kMostRecentThenLongest;
  with_priorities.key_usage_priority =
      pathbuild::KeyUsagePriority::kCorrectOrMissingFirst;
  with_priorities.basic_constraints_priority =
      pathbuild::BasicConstraintsPriority::kCorrectFirst;
  steps.push_back({"+ §6.2 priorities (KID/validity/KU/BC)", with_priorities});

  pathbuild::BuildPolicy with_trusted_pref = with_priorities;
  with_trusted_pref.prefer_trusted_root = true;
  steps.push_back({"+ prefer trusted self-signed root", with_trusted_pref});

  report::Table table("§6.2 capability ablation over the corpus");
  table.header({"Client configuration", "handshakes OK", "rescued vs prev",
                "candidates considered", "backtracks"});

  std::size_t prev_ok = 0;
  bool first = true;
  for (const Step& step : steps) {
    pathbuild::PathBuilder builder(step.policy, &corpus->stores().union_store,
                                   &corpus->aia());
    std::size_t ok = 0;
    long long candidates = 0, backtracks = 0;
    for (const dataset::DomainRecord& record : corpus->records()) {
      const auto result = builder.build(record.observation.certificates,
                                        record.observation.domain);
      ok += result.ok();
      candidates += result.stats.candidates_considered;
      backtracks += result.stats.backtracks;
    }
    table.row({step.name,
               report::count_pct(ok, corpus->records().size()),
               first ? "-" : "+" + report::with_commas(ok - prev_ok),
               report::with_commas(static_cast<std::uint64_t>(candidates)),
               report::with_commas(static_cast<std::uint64_t>(backtracks))});
    prev_ok = ok;
    first = false;
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\n[paper] §6.2: 'clients equipped with all three capabilities "
      "[completion, backtracking, reordering] exhibit a significantly "
      "higher success rate'; prioritising the trusted self-signed root "
      "removes wasted attempts on the 744 chains where an intermediate "
      "and a trusted root share subject_DN and KID.\n");

  // The specific §6.2 scenario: candidates sharing subject_DN and KID
  // where one is a trusted root — preference reduces attempts.
  std::size_t fewer = 0, compared = 0;
  pathbuild::PathBuilder plain(with_priorities, &corpus->stores().union_store,
                               &corpus->aia());
  pathbuild::PathBuilder preferring(with_trusted_pref,
                                    &corpus->stores().union_store,
                                    &corpus->aia());
  for (const dataset::DomainRecord& record : corpus->records()) {
    if (!record.root_included) continue;  // root + intermediate both present
    const auto a = plain.build(record.observation.certificates,
                               record.observation.domain);
    const auto b = preferring.build(record.observation.certificates,
                                    record.observation.domain);
    if (!a.ok() || !b.ok()) continue;
    ++compared;
    fewer += b.stats.candidates_considered <= a.stats.candidates_considered;
  }
  std::printf("\ntrusted-root preference: no extra construction attempts on "
              "%zu of %zu root-included chains\n",
              fewer, compared);

  // ---- §6.1 server-side recommendation: automated deploy-time checks ----
  // Run every corpus chain through the normalizer a compliant server
  // would apply at configuration time, then re-measure order compliance.
  chain::CompletenessOptions comp;
  comp.store = &corpus->stores().union_store;
  comp.aia = &corpus->aia();
  const chain::ComplianceAnalyzer analyzer(comp);

  std::size_t order_before = 0, order_after = 0;
  std::size_t incomplete_before = 0, incomplete_after = 0;
  std::size_t chains_fixed = 0;
  for (const dataset::DomainRecord& record : corpus->records()) {
    const chain::ComplianceReport before =
        analyzer.analyze(record.observation);
    order_before += before.order.any_order_issue();
    incomplete_before += !before.completeness.complete();

    const httpserver::NormalizationResult normalized =
        httpserver::normalize_chain(record.observation.certificates);
    chains_fixed += normalized.changed();
    chain::ChainObservation fixed = record.observation;
    fixed.certificates = normalized.chain;
    const chain::ComplianceReport after = analyzer.analyze(fixed);
    order_after += after.order.any_order_issue();
    incomplete_after += !after.completeness.complete();
  }

  report::Table server_table("§6.1 server-side ablation: deploy-time "
                             "normalization");
  server_table.header({"Metric", "as deployed", "after normalization"});
  server_table.row({"order non-compliant chains",
                    report::with_commas(order_before),
                    report::with_commas(order_after)});
  server_table.row({"incomplete chains",
                    report::with_commas(incomplete_before),
                    report::with_commas(incomplete_after)});
  server_table.row({"chains corrected at deploy time",
                    "-", report::with_commas(chains_fixed)});
  std::printf("\n%s", server_table.render().c_str());
  std::printf("\n[paper] §6.1: automated server checks can resolve the "
              "order-taxonomy defects (duplicates, reversals, irrelevant "
              "certs) but not missing intermediates — those need the CA's "
              "packaging (or client-side AIA) to fix.\n");
  return 0;
}
