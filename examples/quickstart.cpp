// Quickstart: the library's end-to-end loop in ~60 lines.
//
//   1. Stand up a synthetic CA hierarchy and issue a server certificate.
//   2. Configure a TLS server with a *misordered* chain (the kind the
//      paper found on 1.9% of top domains).
//   3. Run handshakes against two clients — Chrome-like and MbedTLS-like
//      profiles — and watch the chain-construction gap decide the
//      outcome.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "ca/hierarchy.hpp"
#include "clients/profiles.hpp"
#include "tls/handshake.hpp"
#include "truststore/root_store.hpp"

using namespace chainchaos;

int main() {
  // 1. A CA with two intermediate tiers, plus a trust store holding its
  //    root (think: one entry of the Mozilla root program).
  const ca::CaHierarchy authority =
      ca::CaHierarchy::create("Quickstart CA", /*intermediate_count=*/2);
  truststore::RootStore store("quickstart");
  store.add(authority.root());

  const x509::CertPtr leaf = authority.issue_leaf("shop.example.com");

  // 2. The administrator concatenates the CA's files in the wrong order:
  //    leaf first (that part they got right), then the ca-bundle as
  //    delivered — reversed.
  std::vector<x509::CertPtr> misordered = {leaf};
  for (const x509::CertPtr& intermediate : authority.intermediates()) {
    misordered.push_back(intermediate);  // root-most first == reversed
  }
  const tls::ChainServer server("shop.example.com", misordered);
  std::printf("server chain (as served):\n");
  for (std::size_t i = 0; i < server.chain().size(); ++i) {
    std::printf("  [%zu] %s\n", i,
                server.chain()[i]->subject.to_string().c_str());
  }

  // 3. Handshake with two very different clients.
  for (const clients::ClientKind kind :
       {clients::ClientKind::kChrome, clients::ClientKind::kMbedTls}) {
    const clients::ClientProfile profile = clients::make_profile(kind);
    const pathbuild::PathBuilder builder(profile.policy, &store);
    const tls::HandshakeOutcome outcome =
        tls::simulate_handshake(server, builder);

    std::printf("\n%s: %s\n", profile.name.c_str(),
                outcome.connected() ? "connection established"
                                    : "HANDSHAKE FAILED");
    std::printf("  status: %s, candidates considered: %d\n",
                to_string(outcome.build.status),
                outcome.build.stats.candidates_considered);
    if (outcome.connected()) {
      std::printf("  constructed path:\n");
      for (const x509::CertPtr& cert : outcome.build.path) {
        std::printf("    %s\n", cert->subject.to_string().c_str());
      }
    }
  }

  std::printf("\nSame server, same certificates — only the clients' chain-"
              "construction capabilities differ. That gap is the paper's "
              "subject.\n");
  return 0;
}
