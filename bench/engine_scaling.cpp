// Engine scaling bench: records/sec of the full §4 compliance sweep at
// 1/2/4/8 worker threads over one corpus, plus the determinism check
// that makes the sharded engine trustworthy — every thread count must
// produce a byte-identical summary.
//
// Corpus size defaults to 50,000 domains (CHAINCHAOS_DOMAINS overrides,
// as for every bench). The issuance memo is reset before each timed run
// so each configuration does the full signature-verification work
// instead of riding the previous run's cache.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "chain/issuance.hpp"
#include "engine/engine.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  dataset::CorpusConfig config = bench::config_from_env();
  if (std::getenv("CHAINCHAOS_DOMAINS") == nullptr) {
    config.domain_count = 50000;  // scaling needs a corpus worth sharding
  }
  std::printf("[corpus] %zu synthetic domains, seed %llu\n",
              config.domain_count,
              static_cast<unsigned long long>(config.seed));
  dataset::Corpus corpus(std::move(config));

  chain::CompletenessOptions options;
  options.store = &corpus.stores().union_store;
  options.aia = &corpus.aia();
  const chain::ComplianceAnalyzer analyzer(options);

  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  std::string baseline_summary;
  double baseline_elapsed = 0.0;

  report::Table table("Engine scaling: §4 compliance sweep");
  table.header({"threads", "elapsed", "records/sec", "speedup vs 1"});

  bool deterministic = true;
  for (const unsigned threads : thread_counts) {
    chain::reset_issuance_cache();
    engine::AnalysisRequest request;
    request.records = &corpus.records();
    request.shards.threads = threads;
    request.analyzer = &analyzer;
    const engine::AnalysisResult result = engine::run(request);

    const std::string summary =
        engine::summary_table(result.tally.compliance).render();
    if (threads == thread_counts.front()) {
      baseline_summary = summary;
      baseline_elapsed = result.elapsed_seconds;
    } else if (summary != baseline_summary) {
      deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: %u-thread summary differs from "
                   "%u-thread baseline\n",
                   threads, thread_counts.front());
    }

    char elapsed[32], rps[32], speedup[32];
    std::snprintf(elapsed, sizeof elapsed, "%.2fs", result.elapsed_seconds);
    std::snprintf(rps, sizeof rps, "%.0f", result.records_per_second());
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  result.elapsed_seconds > 0.0
                      ? baseline_elapsed / result.elapsed_seconds
                      : 0.0);
    table.row({std::to_string(threads), elapsed, rps, speedup});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nhardware_concurrency: %u%s\n",
              std::thread::hardware_concurrency(),
              std::thread::hardware_concurrency() < 4
                  ? " (speedups above are bounded by available cores)"
                  : "");
  std::printf("summaries across thread counts: %s\n",
              deterministic ? "IDENTICAL (deterministic sharding)"
                            : "DIVERGED");
  std::fputs(baseline_summary.c_str(), stdout);
  return deterministic ? 0 : 1;
}
